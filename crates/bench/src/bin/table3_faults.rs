//! Regenerates **Table 3 / §5.4** — fault-injection slowdowns: the same
//! sort-style job under no faults, the 5% mix, the 10% mix, and 5% plus a
//! FuxiMaster kill. Paper: 1437 s baseline, +15.7%, +19.6%, and ~+13 s for
//! the master failover.
//!
//! Run: `cargo run --release -p fuxi-bench --bin table3_faults -- [--scale 0.2]`
//! (scale 1.0 = the paper's 300-node cluster)
//!
//! With `--trace-out <dir>`, the master-kill scenario additionally writes
//! its observability stream — `trace.jsonl` (event log for `trace_dump`),
//! `chrome_trace.json` (load it in Perfetto / `chrome://tracing`), and
//! `metrics.json` — and verifies that the failover fired a flight dump.

use fuxi_cluster::report::print_table;
use fuxi_cluster::{fault_plan, Cluster, ClusterConfig, FaultRatios, SubmitOpts};
use fuxi_proto::topology::MachineSpec;
use fuxi_proto::ResourceVec;
use fuxi_sim::obs::export;
use fuxi_sim::SimTime;
use fuxi_workloads::sortbench::{graysort_job, SortParams};
use std::collections::BTreeSet;

struct Scenario {
    name: &'static str,
    ratios: Option<FaultRatios>,
    kill_master: bool,
    fault_seed: u64,
}

fn run_scenario(
    machines: usize,
    data_scale: f64,
    seed: u64,
    sc: &Scenario,
    fault_window: (f64, f64),
    trace_out: Option<&str>,
) -> f64 {
    let mut c = Cluster::new(ClusterConfig {
        n_machines: machines,
        rack_size: 30,
        machine_spec: MachineSpec {
            resources: ResourceVec::cores_mb(24, 96 * 1024),
            ..MachineSpec::default()
        },
        seed,
        standby_master: true,
        ..ClusterConfig::default()
    });
    let p = SortParams::graysort(data_scale);
    c.pangu.create(&p.input_file, p.total_gb * 1024.0, p.chunk_mb, 3, &c.topo);
    let job = c.submit(&graysort_job(&p), &SubmitOpts::default());
    if let Some(ratios) = sc.ratios {
        // Faults land while the job is in full flight.
        let plan = fault_plan(
            machines,
            ratios,
            SimTime::from_secs_f64(fault_window.0),
            SimTime::from_secs_f64(fault_window.1),
            seed + sc.fault_seed,
            &BTreeSet::new(),
        );
        plan.install(&mut c.world);
    }
    if sc.kill_master {
        // The scripted FuxiMasterFailure of §5.4: run to t=60, then kill
        // whoever is primary; the hot standby takes over.
        c.run_until(SimTime::from_secs(60));
        c.kill_primary_master();
    }
    let done = c.run_until_job_done(job, SimTime::from_secs(100_000));
    let (ok, at) = done.expect("job completes under faults");
    assert!(ok, "{}: job must succeed", sc.name);
    if sc.kill_master {
        // The failover must have frozen the flight recorder: that dump is
        // the forensic record Table 3's "+13 s" claim is reconstructed from.
        let tracer = c.world.tracer();
        assert!(
            tracer.dumps.iter().any(|d| d.reason == "master_failover"),
            "{}: expected a master_failover flight dump",
            sc.name
        );
        if let Some(dir) = trace_out {
            export_run(&c, dir);
        }
    }
    let submitted = c.job_state(job).map(|s| s.submitted_s).unwrap_or(0.0);
    at - submitted
}

/// Writes the run's observability stream into `dir`.
fn export_run(c: &Cluster, dir: &str) {
    std::fs::create_dir_all(dir).expect("create trace-out dir");
    let t = c.world.tracer();
    let write = |name: &str, contents: String| {
        let path = format!("{dir}/{name}");
        std::fs::write(&path, contents).expect("write trace export");
        println!("  wrote {path}");
    };
    write("trace.jsonl", export::export_jsonl(t));
    write("chrome_trace.json", export::export_chrome_trace(t));
    write("metrics.json", c.world.metrics().snapshot_json());
}

fn main() {
    let args = fuxi_bench::Args::parse(0.2, 0);
    let machines = ((300.0 * args.scale).round() as usize).max(20);
    // Size the sort so per-node load mirrors the paper's fault experiment
    // (several minutes of work).
    let data_scale = machines as f64 / 5000.0;
    println!(
        "fault-injection experiment: {} machines (paper: 300), {:.2} TB sort",
        machines,
        100.0 * data_scale
    );
    let scenarios = [
        Scenario {
            name: "no faults",
            ratios: None,
            kill_master: false,
            fault_seed: 0,
        },
        Scenario {
            name: "5% faults",
            ratios: Some(FaultRatios::five_percent()),
            kill_master: false,
            fault_seed: 1000,
        },
        Scenario {
            name: "10% faults",
            ratios: Some(FaultRatios::ten_percent()),
            kill_master: false,
            fault_seed: 2000,
        },
        Scenario {
            name: "5% faults + FuxiMaster kill",
            ratios: Some(FaultRatios::five_percent()),
            kill_master: true,
            fault_seed: 1000,
        },
    ];
    let mut times = Vec::new();
    let mut fault_window = (30.0, 200.0);
    for sc in &scenarios {
        println!("running: {} ...", sc.name);
        let t = run_scenario(
            machines,
            data_scale,
            args.seed,
            sc,
            fault_window,
            args.trace_out.as_deref(),
        );
        println!("  finished in {t:.0} s");
        if times.is_empty() {
            // Spread faults through the bulk of the (fault-free) runtime,
            // as in the paper's "running period" injection.
            fault_window = (0.1 * t, 0.7 * t);
        }
        times.push(t);
    }
    let base = times[0];
    let slow = |t: f64| 100.0 * (t / base - 1.0);
    print_table(
        "Table 3 / §5.4: fault handling",
        &["scenario", "paper", "measured"],
        &[
            fuxi_bench::row("no faults", "1437 s", &format!("{:.0} s", times[0])),
            fuxi_bench::row(
                "5% faults (2 down / 2 partial / 11 slow per 300)",
                "1662 s (+15.7%)",
                &format!("{:.0} s (+{:.1}%)", times[1], slow(times[1])),
            ),
            fuxi_bench::row(
                "10% faults (2 down / 4 partial / 23 slow per 300)",
                "1762 s (+19.6%)",
                &format!("{:.0} s (+{:.1}%)", times[2], slow(times[2])),
            ),
            fuxi_bench::row(
                "5% faults + FuxiMaster kill",
                "+13 s vs 5% run",
                &format!("{:+.0} s vs 5% run", times[3] - times[1]),
            ),
        ],
    );
    println!(
        "\nShape claims under test: the job always completes; slowdown grows\n\
         sub-linearly with the fault rate (blacklisting + backup instances\n\
         absorb most of it); killing the master adds only seconds (failover\n\
         is user-transparent: running workers never stop)."
    );
}
