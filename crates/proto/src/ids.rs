//! Strongly-typed identifiers used across the Fuxi protocol.
//!
//! Newtypes (rather than bare integers) prevent the classic bug class of
//! passing a machine index where an application id is expected; they are all
//! `Copy` and order-preserving so they can key `BTreeMap`s on scheduler hot
//! paths without allocation.

use serde::{Deserialize, Serialize};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $inner:ty, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize,
            Deserialize,
        )]
        pub struct $name(pub $inner);

        impl $name {
            /// Raw integer value of this identifier.
            #[inline]
            pub const fn raw(self) -> $inner {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$inner> for $name {
            #[inline]
            fn from(v: $inner) -> Self {
                Self(v)
            }
        }
    };
}

id_type!(
    /// A physical machine (cluster node). Dense indices `0..n_machines`.
    MachineId, u32, "m"
);
id_type!(
    /// A rack of machines. Dense indices `0..n_racks`.
    RackId, u32, "r"
);
id_type!(
    /// An application known to FuxiMaster (one JobMaster instance = one app).
    AppId, u32, "app"
);
id_type!(
    /// A `ScheduleUnit` within an application (Section 3.2.2). Applications
    /// may define multiple units with distinct sizes and priorities.
    UnitId, u32, "u"
);
id_type!(
    /// A user-visible job (1:1 with an [`AppId`] in the DAG framework, but
    /// kept distinct: jobs survive JobMaster restarts while the app
    /// attachment may be re-established).
    JobId, u32, "job"
);
id_type!(
    /// A task (DAG node) within a job.
    TaskId, u32, "t"
);
id_type!(
    /// A worker process slot within an application (the unit of container
    /// reuse: one worker may execute many instances, Section 3.2.3).
    WorkerId, u64, "w"
);
id_type!(
    /// A quota group (Section 3.4). Every application belongs to exactly one.
    QuotaGroupId, u32, "q"
);
id_type!(
    /// Tag correlating a simulated data flow (disk/network transfer) with the
    /// actor-level operation that started it.
    FlowTag, u64, "f"
);

/// An instance (one shard of a task's parallel work). Identified by its task
/// and a dense index within the task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct InstanceId {
    /// Task id.
    pub task: TaskId,
    /// Dense index within the task.
    pub index: u32,
}

impl InstanceId {
    #[inline]
    /// New.
    pub const fn new(task: TaskId, index: u32) -> Self {
        Self { task, index }
    }
}

impl fmt::Display for InstanceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.task, self.index)
    }
}

/// Scheduling priority. **Smaller numeric value = more urgent**, so that the
/// natural ordering of queue keys `(Priority, submit_seq)` pops the most
/// urgent, oldest request first. The paper's example request (Figure 4) uses
/// `priority: 1000` as a mid-range default, which we keep as [`Priority::DEFAULT`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Priority(pub u16);

impl Priority {
    /// Most urgent priority.
    pub const HIGHEST: Priority = Priority(0);
    /// Default priority used when a request does not specify one.
    pub const DEFAULT: Priority = Priority(1000);
    /// Least urgent priority.
    pub const LOWEST: Priority = Priority(u16::MAX);

    /// `true` if `self` is strictly more urgent than `other`.
    #[inline]
    pub fn more_urgent_than(self, other: Priority) -> bool {
        self.0 < other.0
    }
}

impl Default for Priority {
    fn default() -> Self {
        Priority::DEFAULT
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_display_uses_prefix() {
        assert_eq!(MachineId(7).to_string(), "m7");
        assert_eq!(AppId(3).to_string(), "app3");
        assert_eq!(InstanceId::new(TaskId(2), 9).to_string(), "t2#9");
    }

    #[test]
    fn priority_ordering_smaller_is_more_urgent() {
        assert!(Priority(1) < Priority(2));
        assert!(Priority(1).more_urgent_than(Priority(2)));
        assert!(!Priority(2).more_urgent_than(Priority(2)));
        assert!(Priority::HIGHEST.more_urgent_than(Priority::DEFAULT));
        assert!(Priority::DEFAULT.more_urgent_than(Priority::LOWEST));
    }

    #[test]
    fn ids_roundtrip_raw() {
        assert_eq!(MachineId::from(12).raw(), 12);
        assert_eq!(WorkerId(99).raw(), 99);
    }

    #[test]
    fn ids_are_ordered_by_value() {
        let mut v = vec![MachineId(3), MachineId(1), MachineId(2)];
        v.sort();
        assert_eq!(v, vec![MachineId(1), MachineId(2), MachineId(3)]);
    }
}
