//! Live-runtime throughput benchmark: stands up a full Fuxi stack on OS
//! threads (`fuxi-rt`), streams synthetic jobs through it, kills the
//! primary FuxiMaster mid-run, and writes `BENCH_live.json` with
//! jobs/sec, messages/sec, and scheduling-decision latency percentiles.
//!
//! Usage:
//! ```text
//! cargo run --release -p fuxi-bench --bin bench_live -- \
//!     [--machines 200] [--jobs 1000] [--seed 2014] [--concurrent 64] \
//!     [--timeout 600] [--out BENCH_live.json] [--no-kill] \
//!     [--serve 127.0.0.1:9464] [--snapshot-out BENCH_live_view.json]
//! ```
//!
//! `--serve` exposes the live cluster view over HTTP mid-run (`/metrics`
//! Prometheus text, `/json`) for scraping and `fuxitop`. The output JSON
//! embeds three cluster-view summaries — pre-kill, during failover, and
//! post-recovery — and the final full view is written to
//! `--snapshot-out`.
//!
//! `--distributed` runs the same failover story across real OS processes:
//! the driver becomes the hub node (lock service + client) of a
//! [`fuxi_cluster::DeployTopology`] and re-executes itself three times —
//! master A, master B (standby), agent fleet — each child a `LiveNode`
//! dialing back over the versioned wire protocol. Once the pipeline is
//! warm the driver SIGKILLs the child hosting the elected master, then
//! asserts the standby (in the *other* OS process) takes over, every job
//! still reaches a terminal state exactly once, and the surviving
//! master's `/metrics` + `/json` scrape endpoints answer cross-process.
//! Results go to `--out` and a failover flight dump to `--snapshot-out`
//! (default `BENCH_live_failover.json` in this mode).
//!
//! Exits non-zero when the run does not complete every job, when the
//! standby fails to take over after the master kill, when the kill raises
//! no SLO alert (the 4 s pending-age rule must trip during the grant
//! stall; single-process mode only), or on any actor panic (propagated at
//! shutdown).

use fuxi_cluster::{ClusterConfig, DeployTopology, SubmitOpts};
use fuxi_core::master::MasterConfig;
use fuxi_node::LiveNode;
use fuxi_rt::LiveCluster;
use fuxi_sim::SimDuration;
use fuxi_workloads::mapreduce::{wordcount_job, MapReduceParams};
use std::io::{BufRead, BufReader, Read, Write};
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct LiveArgs {
    machines: usize,
    jobs: usize,
    seed: u64,
    concurrent: usize,
    timeout_s: u64,
    out: String,
    kill_master: bool,
    serve: Option<String>,
    snapshot_out: String,
    distributed: bool,
    dist_node: Option<usize>,
    dist_hub: Option<String>,
}

fn parse_args() -> LiveArgs {
    let argv: Vec<String> = std::env::args().collect();
    // Distributed defaults are sized for a CI smoke run (<60 s): fewer
    // machines, fewer (and smaller) jobs, and the flight dump replaces
    // the cluster-view snapshot as the side artifact.
    let distributed = argv.iter().any(|a| a == "--distributed");
    let mut a = if distributed {
        LiveArgs {
            machines: 12,
            jobs: 32,
            seed: 2014,
            concurrent: 8,
            timeout_s: 120,
            out: "BENCH_live.json".to_owned(),
            kill_master: true,
            serve: None,
            snapshot_out: "BENCH_live_failover.json".to_owned(),
            distributed: true,
            dist_node: None,
            dist_hub: None,
        }
    } else {
        LiveArgs {
            machines: 200,
            jobs: 1000,
            seed: 2014,
            concurrent: 64,
            timeout_s: 600,
            out: "BENCH_live.json".to_owned(),
            kill_master: true,
            serve: None,
            snapshot_out: "BENCH_live_view.json".to_owned(),
            distributed: false,
            dist_node: None,
            dist_hub: None,
        }
    };
    let mut i = 1;
    while i < argv.len() {
        let num = |j: usize| argv.get(j).and_then(|v| v.parse::<u64>().ok());
        match argv[i].as_str() {
            "--machines" => {
                a.machines = num(i + 1).map_or(a.machines, |v| v as usize);
                i += 2;
            }
            "--jobs" => {
                a.jobs = num(i + 1).map_or(a.jobs, |v| v as usize);
                i += 2;
            }
            "--seed" => {
                a.seed = num(i + 1).unwrap_or(a.seed);
                i += 2;
            }
            "--concurrent" => {
                a.concurrent = num(i + 1).map_or(a.concurrent, |v| v as usize);
                i += 2;
            }
            "--timeout" => {
                a.timeout_s = num(i + 1).unwrap_or(a.timeout_s);
                i += 2;
            }
            "--out" => {
                a.out = argv.get(i + 1).cloned().unwrap_or(a.out);
                i += 2;
            }
            "--no-kill" => {
                a.kill_master = false;
                i += 1;
            }
            "--serve" => {
                a.serve = argv.get(i + 1).cloned();
                i += 2;
            }
            "--snapshot-out" => {
                a.snapshot_out = argv.get(i + 1).cloned().unwrap_or(a.snapshot_out);
                i += 2;
            }
            "--distributed" => {
                i += 1; // pre-scanned above
            }
            "--dist-node" => {
                a.dist_node = num(i + 1).map(|v| v as usize);
                i += 2;
            }
            "--dist-hub" => {
                a.dist_hub = argv.get(i + 1).cloned();
                i += 2;
            }
            other => {
                eprintln!("ignoring unknown argument {other}");
                i += 1;
            }
        }
    }
    a
}

/// A small job so a thousand of them finish in CI time: 6 maps, 2
/// reduces, ~60 ms instances, a few MB of binary to keep the package
/// flow path exercised without dominating wall time.
fn live_job(seed: u64, i: usize) -> fuxi_job::JobDesc {
    wordcount_job(&MapReduceParams {
        maps: 6,
        reduces: 2,
        map_duration_s: 0.06,
        reduce_duration_s: 0.06,
        jitter: 0.2,
        max_workers: 4,
        binary_mb: 4.0,
        map_output_mb: 1.0,
        output_file: Some(format!("pangu://live/out-{seed}-{i}")),
        ..Default::default()
    })
}

/// Cluster config every process of a `--distributed` run computes
/// independently: it must be a pure function of (machines, seed) because
/// actor addressing derives from the topology, never from negotiation.
/// Tight failover clocks (1.5 s lease, 0.5 s keepalive) keep the SIGKILL
/// takeover inside a CI smoke budget.
fn dist_config(machines: usize, seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig {
        n_machines: machines,
        rack_size: 4.min(machines.max(1)),
        seed,
        ..ClusterConfig::default()
    };
    cfg.master.lease_ttl = SimDuration::from_secs_f64(1.5);
    cfg.master.keepalive_interval = SimDuration::from_secs_f64(0.5);
    cfg
}

/// Small jobs for the distributed smoke: 2 maps, 1 reduce, ~50 ms tasks.
fn dist_job(seed: u64, i: usize) -> fuxi_job::JobDesc {
    wordcount_job(&MapReduceParams {
        maps: 2,
        reduces: 1,
        map_duration_s: 0.05,
        reduce_duration_s: 0.05,
        jitter: 0.2,
        max_workers: 2,
        binary_mb: 1.0,
        map_output_mb: 0.2,
        output_file: Some(format!("pangu://dist/out-{seed}-{i}")),
        ..Default::default()
    })
}

/// Child-process mode (`--dist-node N --dist-hub ADDR`): boot one leaf
/// node of the distributed topology and run until the driver kills us or
/// our stdin pipe closes (orphan protection if the driver dies first).
fn run_dist_child(index: usize, hub: &str, machines: usize, seed: u64) -> ! {
    let deploy = DeployTopology::distributed(dist_config(machines, seed), hub);
    let name = deploy.nodes[index].name.clone();
    let node = match LiveNode::boot(deploy, index, Some(hub)) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("bench_live[{name}]: boot failed: {e}");
            std::process::exit(1);
        }
    };
    // Serve this process's metrics plane on an ephemeral port and tell
    // the driver where, so it can prove the scrape works cross-process.
    match node.serve_metrics("127.0.0.1:0") {
        Ok(bound) => {
            println!("DIST-METRICS {index} {bound}");
            let _ = std::io::stdout().flush();
        }
        Err(e) => eprintln!("bench_live[{name}]: metrics bind failed: {e}"),
    }
    // Block on stdin: EOF means the driver is gone. SIGKILL never reaches
    // this line — that is the point of the failover drill.
    let mut buf = [0u8; 64];
    loop {
        match std::io::stdin().read(&mut buf) {
            Ok(0) | Err(_) => std::process::exit(0),
            Ok(_) => {}
        }
    }
}

fn kill_children(children: &mut [Option<Child>]) {
    for c in children.iter_mut().flatten() {
        let _ = c.kill();
        let _ = c.wait();
    }
}

/// Minimal blocking HTTP GET against a scrape endpoint (status line +
/// full body; the server closes the connection after one response).
fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let mut s = std::net::TcpStream::connect(addr)?;
    s.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(s, "GET {path} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n")?;
    let mut out = String::new();
    s.read_to_string(&mut out)?;
    Ok(out)
}

fn fail_distributed(children: &mut [Option<Child>], msg: &str) -> ! {
    kill_children(children);
    eprintln!("bench_live[distributed]: FAIL — {msg}");
    std::process::exit(1);
}

/// Driver mode (`--distributed`): this process is the hub node (lock
/// service + submitting client); masters and agents live in SIGKILL-able
/// child processes connected over the versioned wire protocol.
fn run_distributed(args: &LiveArgs) {
    let exe = std::env::current_exe().expect("current_exe");
    let deploy = DeployTopology::distributed(dist_config(args.machines, args.seed), "127.0.0.1:0");
    let n_leaves = deploy.nodes.len() - 1;
    let mut hub = LiveNode::boot(deploy.clone(), 0, None).expect("hub boots");
    let hub_addr = hub.hub_addr().expect("hub bound").to_string();
    eprintln!(
        "bench_live[distributed]: hub (lock+client) pid {} listening on {hub_addr}; \
         {} machines, {} jobs ({} in flight)",
        std::process::id(),
        args.machines,
        args.jobs,
        args.concurrent
    );
    if let Some(addr) = &args.serve {
        let bound = hub.serve_metrics(addr).expect("bind scrape endpoint");
        eprintln!("bench_live[distributed]: hub metrics on http://{bound}/metrics");
    }

    // Child i's metrics endpoint, reported over its stdout pipe.
    let metrics_addrs: Arc<Mutex<Vec<Option<String>>>> =
        Arc::new(Mutex::new(vec![None; deploy.nodes.len()]));
    let mut children: Vec<Option<Child>> = Vec::new();
    for i in 1..deploy.nodes.len() {
        let child = Command::new(&exe)
            .args([
                "--dist-node",
                &i.to_string(),
                "--dist-hub",
                &hub_addr,
                "--machines",
                &args.machines.to_string(),
                "--seed",
                &args.seed.to_string(),
            ])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .spawn();
        let mut child = match child {
            Ok(c) => c,
            Err(e) => fail_distributed(&mut children, &format!("spawning node {i}: {e}")),
        };
        let out = child.stdout.take().expect("piped stdout");
        let map = Arc::clone(&metrics_addrs);
        std::thread::spawn(move || {
            for line in BufReader::new(out).lines().map_while(Result::ok) {
                if let Some(rest) = line.strip_prefix("DIST-METRICS ") {
                    if let Some((idx, addr)) = rest.split_once(' ') {
                        if let Ok(idx) = idx.parse::<usize>() {
                            if let Some(slot) = map.lock().unwrap().get_mut(idx) {
                                *slot = Some(addr.trim().to_owned());
                            }
                        }
                    }
                }
                eprintln!("  [node] {line}");
            }
        });
        eprintln!(
            "bench_live[distributed]: spawned node {i} ({}) pid {}",
            deploy.nodes[i].name,
            child.id()
        );
        children.push(Some(child));
    }

    if !hub.wait_connected(n_leaves as u32, Duration::from_secs(30)) {
        fail_distributed(&mut children, "child nodes never connected to the hub");
    }
    let start = Instant::now();
    let deadline = start + Duration::from_secs(args.timeout_s);
    // Wait for the cross-process election before pulling the trigger
    // later: the kill must target a *real* elected master.
    let first_master = loop {
        if let Some(m) = hub.current_master() {
            break m;
        }
        if Instant::now() > deadline {
            fail_distributed(&mut children, "no master elected across processes");
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    eprintln!(
        "bench_live[distributed]: master a{} elected in node window {} at {:.1}s",
        first_master.0,
        first_master.node_index(),
        start.elapsed().as_secs_f64()
    );

    let mut submitted = 0usize;
    let kill_at = args.jobs / 4; // kill once the pipeline is warm
    let mut killed: Option<(fuxi_sim::ActorId, usize, Instant, f64, usize)> = None;
    let mut failover: Option<(fuxi_sim::ActorId, f64)> = None;
    let mut timed_out = false;
    while hub.finished_count() < args.jobs {
        while submitted < args.jobs && submitted - hub.finished_count() < args.concurrent {
            let desc = dist_job(args.seed, submitted);
            hub.submit(&desc, &SubmitOpts::default());
            submitted += 1;
        }
        if args.kill_master && killed.is_none() && hub.finished_count() >= kill_at {
            if let Some(m) = hub.current_master() {
                let victim_node = m.node_index() as usize;
                assert!(
                    victim_node >= 1 && victim_node < deploy.nodes.len(),
                    "master {m:?} not hosted by a child process"
                );
                let child = children[victim_node - 1]
                    .as_mut()
                    .expect("victim child still tracked");
                let pid = child.id();
                eprintln!(
                    "bench_live[distributed]: SIGKILL node {victim_node} ({}) pid {pid} \
                     hosting master a{} at {:.1}s ({} jobs done)",
                    deploy.nodes[victim_node].name,
                    m.0,
                    start.elapsed().as_secs_f64(),
                    hub.finished_count()
                );
                child.kill().expect("SIGKILL child");
                let _ = child.wait();
                children[victim_node - 1] = None;
                killed = Some((
                    m,
                    victim_node,
                    Instant::now(),
                    start.elapsed().as_secs_f64(),
                    pid as usize,
                ));
            }
        }
        if let Some((old, _, kill_wall, _, _)) = killed {
            if failover.is_none() {
                if let Some(now_master) = hub.current_master() {
                    if now_master != old {
                        let latency = kill_wall.elapsed().as_secs_f64();
                        eprintln!(
                            "bench_live[distributed]: standby a{} (node window {}) took over \
                             {latency:.2}s after SIGKILL",
                            now_master.0,
                            now_master.node_index()
                        );
                        failover = Some((now_master, latency));
                    }
                }
            }
        }
        if Instant::now() > deadline {
            timed_out = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let elapsed_s = start.elapsed().as_secs_f64();

    let all = hub.all_jobs();
    let completed = all.iter().filter(|(_, s)| s.done.is_some()).count();
    let failed = all
        .iter()
        .filter(|(_, s)| matches!(s.done, Some((false, _, _))))
        .count();
    let dup = hub.duplicate_finishes();
    let (relayed, dropped, accepted) = hub.hub_stats();

    // The metrics plane must answer from the surviving master's process.
    let scrape = failover.and_then(|(m, _)| {
        let node = m.node_index() as usize;
        let addr = metrics_addrs.lock().unwrap().get(node).cloned().flatten();
        addr.map(|addr| {
            let metrics_ok = http_get(&addr, "/metrics")
                .is_ok_and(|r| r.starts_with("HTTP/1.1 200") && r.contains("fuxi_"));
            let json_ok =
                http_get(&addr, "/json").is_ok_and(|r| r.starts_with("HTTP/1.1 200"));
            (node, addr, metrics_ok, json_ok)
        })
    });

    let json = format!(
        concat!(
            "{{\n",
            "  \"mode\": \"distributed\",\n",
            "  \"processes\": {},\n  \"machines\": {},\n  \"jobs\": {},\n",
            "  \"completed\": {},\n  \"failed\": {},\n  \"duplicate_finishes\": {},\n",
            "  \"elapsed_s\": {:.3},\n  \"jobs_per_sec\": {:.3},\n",
            "  \"hub_relayed_frames\": {},\n  \"hub_relayed_per_sec\": {:.1},\n",
            "  \"hub_dropped_frames\": {},\n  \"hub_connections_accepted\": {},\n",
            "  \"master_killed\": {},\n  \"failover_recovered\": {},\n",
            "  \"failover_latency_s\": {},\n",
            "  \"metrics_scrape_ok\": {},\n  \"json_scrape_ok\": {}\n",
            "}}\n"
        ),
        deploy.nodes.len(),
        args.machines,
        args.jobs,
        completed,
        failed,
        dup,
        elapsed_s,
        completed as f64 / elapsed_s.max(1e-9),
        relayed,
        relayed as f64 / elapsed_s.max(1e-9),
        dropped,
        accepted,
        killed.is_some(),
        failover.is_some(),
        failover.map_or("null".to_owned(), |(_, l)| format!("{l:.3}")),
        scrape.as_ref().is_some_and(|s| s.2),
        scrape.as_ref().is_some_and(|s| s.3),
    );
    std::fs::write(&args.out, &json).expect("write distributed results");

    // Failover flight dump: the kill/takeover timeline for post-mortems
    // (uploaded by the CI distributed-smoke job next to the results).
    let flight = format!(
        concat!(
            "{{\n",
            "  \"hub_addr\": \"{}\",\n  \"hub_pid\": {},\n",
            "  \"nodes\": [{}],\n",
            "  \"killed_master_actor\": {},\n  \"killed_node\": {},\n",
            "  \"killed_pid\": {},\n  \"kill_at_s\": {},\n",
            "  \"new_master_actor\": {},\n  \"new_master_node\": {},\n",
            "  \"failover_latency_s\": {},\n",
            "  \"scrape_addr\": {}\n",
            "}}\n"
        ),
        hub_addr,
        std::process::id(),
        deploy
            .nodes
            .iter()
            .map(|n| format!("\"{}\"", n.name))
            .collect::<Vec<_>>()
            .join(", "),
        killed.map_or("null".to_owned(), |(m, ..)| m.0.to_string()),
        killed.map_or("null".to_owned(), |(_, n, ..)| n.to_string()),
        killed.map_or("null".to_owned(), |(.., pid)| pid.to_string()),
        killed.map_or("null".to_owned(), |(_, _, _, at, _)| format!("{at:.3}")),
        failover.map_or("null".to_owned(), |(m, _)| m.0.to_string()),
        failover.map_or("null".to_owned(), |(m, _)| m.node_index().to_string()),
        failover.map_or("null".to_owned(), |(_, l)| format!("{l:.3}")),
        scrape
            .as_ref()
            .map_or("null".to_owned(), |s| format!("\"{}\"", s.1)),
    );
    std::fs::write(&args.snapshot_out, &flight).expect("write failover flight dump");
    println!("{json}");
    eprintln!(
        "bench_live[distributed]: wrote {} and {}",
        args.out, args.snapshot_out
    );
    kill_children(&mut children);

    if timed_out {
        eprintln!(
            "bench_live[distributed]: FAIL — timed out after {}s with {completed}/{} jobs done",
            args.timeout_s, args.jobs
        );
        std::process::exit(1);
    }
    if args.kill_master {
        let Some((new_master, _)) = failover else {
            eprintln!("bench_live[distributed]: FAIL — standby never took over after SIGKILL");
            std::process::exit(1);
        };
        let (old_master, victim_node, ..) = killed.expect("kill recorded");
        if new_master.node_index() as usize == victim_node {
            eprintln!(
                "bench_live[distributed]: FAIL — new master a{} lives in the killed \
                 process's window",
                new_master.0
            );
            std::process::exit(1);
        }
        assert_ne!(new_master, old_master);
        match &scrape {
            Some((node, addr, metrics_ok, json_ok)) => {
                if !metrics_ok || !json_ok {
                    eprintln!(
                        "bench_live[distributed]: FAIL — scrape of surviving master \
                         (node {node}, {addr}) failed: /metrics ok={metrics_ok} /json ok={json_ok}"
                    );
                    std::process::exit(1);
                }
            }
            None => {
                eprintln!(
                    "bench_live[distributed]: FAIL — surviving master never reported a \
                     metrics endpoint"
                );
                std::process::exit(1);
            }
        }
    }
    if completed < args.jobs {
        eprintln!(
            "bench_live[distributed]: FAIL — only {completed}/{} jobs completed",
            args.jobs
        );
        std::process::exit(1);
    }
    if dup != 0 {
        eprintln!("bench_live[distributed]: FAIL — {dup} duplicate job completions observed");
        std::process::exit(1);
    }
    eprintln!(
        "bench_live[distributed]: OK — {completed} jobs across {} processes, \
         failover in {:.2}s, 0 duplicates",
        deploy.nodes.len(),
        failover.map_or(0.0, |(_, l)| l)
    );
}

fn main() {
    let args = parse_args();
    // Hidden child mode: this invocation is one leaf node of a
    // `--distributed` run (re-executed by the driver below).
    if let (Some(index), Some(hubaddr)) = (args.dist_node, args.dist_hub.clone()) {
        run_dist_child(index, &hubaddr, args.machines, args.seed);
    }
    fuxi_bench::warn_if_debug();
    if args.distributed {
        run_distributed(&args);
        return;
    }
    // Short lease so the standby takes over within a few seconds of the
    // live master kill (defaults are tuned for simulated hours) — but not
    // so short that scheduling hiccups on an oversubscribed CI host cost
    // the primary its lease before the scripted kill: a spurious
    // self-fence leaves no standby for the real one.
    let mut master = MasterConfig {
        lease_ttl: SimDuration::from_secs_f64(3.0),
        keepalive_interval: SimDuration::from_secs_f64(1.0),
        ..MasterConfig::default()
    };
    // A master kill stalls granting for lease-loss (~3 s) + the 8 s
    // rebuild window; a 4 s pending-age SLO turns that stall into a
    // watchdog alert the run can assert on.
    master.metrics.rules.pending_age_s = 4.0;
    let mut c = LiveCluster::new(ClusterConfig {
        n_machines: args.machines,
        rack_size: 50.min(args.machines.max(1)),
        seed: args.seed,
        master,
        standby_master: true,
        ..ClusterConfig::default()
    });
    eprintln!(
        "bench_live: {} machines, {} jobs ({} in flight), master kill: {}",
        args.machines, args.jobs, args.concurrent, args.kill_master
    );
    if let Some(addr) = &args.serve {
        let bound = c.serve_metrics(addr).expect("bind scrape endpoint");
        eprintln!("bench_live: serving http://{bound}/metrics and http://{bound}/json");
    }

    let start = Instant::now();
    let deadline = start + Duration::from_secs(args.timeout_s);
    let mut submitted = 0usize;
    let kill_at = args.jobs / 4; // kill once the pipeline is warm
    let mut killed_master = None;
    let mut failover_recovered = !args.kill_master;
    let mut timed_out = false;
    // Cluster-view snapshots bracketing the failover: just before the
    // kill, when the standby takes over (mid-rebuild, granting still
    // stalled), and after the run drains.
    let mut view_pre_kill = None;
    let mut view_during_failover = None;

    while c.finished_count() < args.jobs {
        while submitted < args.jobs && submitted - c.finished_count() < args.concurrent {
            let desc = live_job(args.seed, submitted);
            c.submit(&desc, &SubmitOpts::default());
            submitted += 1;
        }
        if args.kill_master && killed_master.is_none() && c.finished_count() >= kill_at {
            killed_master = c.current_master();
            if let Some(fm) = killed_master {
                eprintln!(
                    "bench_live: killing primary master a{} at {:.1}s ({} jobs done)",
                    fm.0,
                    start.elapsed().as_secs_f64(),
                    c.finished_count()
                );
                view_pre_kill = Some(c.hub.snapshot());
                c.kill_primary_master();
            }
        }
        if let Some(old) = killed_master {
            if !failover_recovered {
                if let Some(now_master) = c.current_master() {
                    if now_master != old {
                        eprintln!(
                            "bench_live: standby a{} took over at {:.1}s",
                            now_master.0,
                            start.elapsed().as_secs_f64()
                        );
                        failover_recovered = true;
                        view_during_failover = Some(c.hub.snapshot());
                    }
                }
            }
        }
        if Instant::now() > deadline {
            timed_out = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let elapsed_s = start.elapsed().as_secs_f64();

    let all = c.all_jobs();
    let completed = all.iter().filter(|(_, s)| s.done.is_some()).count();
    let failed = all
        .iter()
        .filter(|(_, s)| matches!(s.done, Some((false, _, _))))
        .count();
    let view_post = c.hub.snapshot();
    let (metrics, _tracer) = c.shutdown();

    let msgs = metrics.counter("net.sent");
    let (p50, p99) = metrics
        .histogram("fm.sched_s")
        .map_or((0.0, 0.0), |h| (h.quantile(0.5), h.quantile(0.99)));
    let json = format!(
        concat!(
            "{{\n",
            "  \"machines\": {},\n  \"jobs\": {},\n  \"completed\": {},\n",
            "  \"failed\": {},\n  \"elapsed_s\": {:.3},\n",
            "  \"jobs_per_sec\": {:.3},\n  \"msgs_per_sec\": {:.1},\n",
            "  \"sched_p50_s\": {:.6},\n  \"sched_p99_s\": {:.6},\n",
            "  \"mailbox_hwm\": {},\n  \"mailbox_parked\": {},\n",
            "  \"master_killed\": {},\n  \"failover_recovered\": {},\n",
            "  \"slo_alerts_total\": {},\n",
            "  \"cluster_view\": {{\n",
            "    \"pre_kill\": {},\n",
            "    \"during_failover\": {},\n",
            "    \"post_recovery\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        args.machines,
        args.jobs,
        completed,
        failed,
        elapsed_s,
        completed as f64 / elapsed_s.max(1e-9),
        msgs as f64 / elapsed_s.max(1e-9),
        p50,
        p99,
        metrics.gauge("rt.mailbox_hwm"),
        metrics.counter("rt.mailbox_parked"),
        killed_master.is_some(),
        failover_recovered,
        view_post.alerts_total,
        view_pre_kill.as_ref().map_or("null".to_owned(), |v| v.summary_json()),
        view_during_failover.as_ref().map_or("null".to_owned(), |v| v.summary_json()),
        view_post.summary_json(),
    );
    std::fs::write(&args.out, &json).expect("write BENCH_live.json");
    std::fs::write(&args.snapshot_out, view_post.to_json()).expect("write view snapshot");
    println!("{json}");
    eprintln!("bench_live: wrote {} and {}", args.out, args.snapshot_out);

    if timed_out {
        eprintln!(
            "bench_live: FAIL — timed out after {}s with {completed}/{} jobs done",
            args.timeout_s, args.jobs
        );
        std::process::exit(1);
    }
    if !failover_recovered {
        eprintln!("bench_live: FAIL — standby never took over after master kill");
        std::process::exit(1);
    }
    if completed < args.jobs {
        eprintln!("bench_live: FAIL — only {completed}/{} jobs completed", args.jobs);
        std::process::exit(1);
    }
    // The ~11 s grant stall (lease loss + rebuild) must have tripped the
    // 4 s pending-age SLO: a kill that raises no alert means the watchdog
    // or the report plane is broken.
    if killed_master.is_some() && view_post.alerts_total == 0 {
        eprintln!("bench_live: FAIL — master kill raised no SLO alert in the cluster view");
        std::process::exit(1);
    }
    if view_post.reports_received == 0 {
        eprintln!("bench_live: FAIL — master ingested zero metrics reports");
        std::process::exit(1);
    }
}
