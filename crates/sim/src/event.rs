//! The event queue: a hierarchical calendar queue ordered by `(time, seq)`.
//! The per-event sequence number makes simultaneous events deterministic.
//!
//! # Calendar queue
//!
//! A binary heap pays O(log n) sift-copies per operation over the whole
//! backlog. The calendar queue splits events into a near-term **window**
//! (a small heap holding everything below a time horizon) and a hashed
//! wheel of **tick slots** (unordered vectors, one push per far event).
//! Far events cost O(1) to insert and are migrated to the window one tick
//! at a time as the horizon advances, so the heap only ever contains the
//! events of the current tick neighbourhood — the same shape as the
//! runtime's `TimerWheel`, but deterministic: total order is exactly
//! `(time, seq)`, i.e. FIFO within a tick and stable across backends.
//!
//! Determinism rules: `seq` is assigned at push, strictly increasing;
//! the window heap orders by `(time, seq)`; slot migration moves *whole
//! ticks*, so no slot event can ever order before a window event. The
//! original heap kernel is kept as [`QueueKernel::Heap`] and a
//! differential proptest pins both kernels to byte-identical pop streams.
//!
//! # Envelope arena
//!
//! `Deliver` payloads (the message plus addressing/trace metadata) live in
//! a slab arena and are referenced from queued events by a `u32` handle:
//! sift and migration operations move 32-byte events regardless of message
//! size, and freed slots are recycled, so a steady-state world allocates
//! nothing for event traffic.

use crate::actor::ActorId;
use crate::time::SimTime;
use fuxi_obs::TraceId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The one requirement the kernel places on the message type: the flow
/// subsystem must be able to fabricate I/O-completion messages addressed to
/// the actor that started the flow.
pub trait KernelMsg: std::fmt::Debug + 'static {
    /// A message reporting that flow `tag` finished (`failed = true` when the
    /// flow was aborted by a machine failure).
    fn flow_done(tag: u64, failed: bool) -> Self;
}

/// A scripted control step run against the whole world.
pub(crate) type ControlFn<M> = Box<dyn FnOnce(&mut crate::world::World<M>)>;

/// Which event-queue implementation a world runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKernel {
    /// Hierarchical calendar queue (the default).
    #[default]
    Calendar,
    /// The original binary heap, kept as the differential reference.
    Heap,
}

pub(crate) enum EventKind<M: KernelMsg> {
    /// Deliver `msg` from `from` to `to`. The delivery envelope carries the
    /// causal trace id, so trace propagation needs no protocol-level fields:
    /// a handler's sends inherit the trace of the message being handled.
    Deliver {
        to: ActorId,
        from: ActorId,
        msg: M,
        trace: TraceId,
    },
    /// Fire actor `actor`'s timer carrying `tag`.
    Timer { actor: ActorId, tag: u64 },
    /// Advance the flow model.
    FlowTick,
    /// Run a control closure against the whole world (fault injection,
    /// scripted scenario steps).
    Control(ControlFn<M>),
}

pub(crate) struct Event<M: KernelMsg> {
    pub time: SimTime,
    /// Push-order sequence number; the tie-break within a timestamp. Part of
    /// the popped event's identity (the differential kernel tests compare
    /// it), though the world only dispatches on `time` and `kind`.
    #[allow(dead_code)]
    pub seq: u64,
    pub kind: EventKind<M>,
}

/// A `Deliver` payload parked in the arena while its event is queued.
struct Envelope<M> {
    to: ActorId,
    from: ActorId,
    msg: M,
    trace: TraceId,
}

/// Slab arena of delivery envelopes with a recycled free list.
struct EnvelopeArena<M> {
    slots: Vec<Option<Envelope<M>>>,
    free: Vec<u32>,
}

impl<M> EnvelopeArena<M> {
    fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
        }
    }

    fn insert(&mut self, env: Envelope<M>) -> u32 {
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = Some(env);
                i
            }
            None => {
                self.slots.push(Some(env));
                (self.slots.len() - 1) as u32
            }
        }
    }

    fn take(&mut self, i: u32) -> Envelope<M> {
        let env = self.slots[i as usize].take().expect("live envelope handle");
        self.free.push(i);
        env
    }
}

/// The queued form of an event: fixed-size, with `Deliver` payloads
/// replaced by arena handles.
struct QEvent<M: KernelMsg> {
    time: SimTime,
    seq: u64,
    kind: QueuedKind<M>,
}

enum QueuedKind<M: KernelMsg> {
    Deliver(u32),
    Timer { actor: ActorId, tag: u64 },
    FlowTick,
    Control(ControlFn<M>),
}

impl<M: KernelMsg> PartialEq for QEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<M: KernelMsg> Eq for QEvent<M> {}

impl<M: KernelMsg> PartialOrd for QEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M: KernelMsg> Ord for QEvent<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Calendar tick width. One tick of simulated time shares a slot visit.
const TICK_US: u64 = 1_000;
/// Hashed wheel size: tick `t` lands in slot `t % N_SLOTS`.
const N_SLOTS: usize = 256;

/// The calendar backend: near-term window heap + hashed far-tick slots.
///
/// Invariants: `horizon_us` is a multiple of [`TICK_US`]; every window
/// event has `time < horizon_us`; every slot event has `time >=
/// horizon_us`. A nonempty window's front is therefore the global
/// `(time, seq)` minimum.
struct Calendar<M: KernelMsg> {
    window: BinaryHeap<QEvent<M>>,
    slots: Vec<Vec<QEvent<M>>>,
    horizon_us: u64,
    /// Events currently parked in `slots`.
    in_slots: usize,
}

impl<M: KernelMsg> Calendar<M> {
    fn new() -> Self {
        Self {
            window: BinaryHeap::with_capacity(1024),
            slots: (0..N_SLOTS).map(|_| Vec::new()).collect(),
            horizon_us: 0,
            in_slots: 0,
        }
    }

    fn push(&mut self, ev: QEvent<M>) {
        if ev.time.0 < self.horizon_us {
            // Inside the current horizon (including same-tick pushes during
            // a drain): straight into the ordered window.
            self.window.push(ev);
        } else {
            let tick = ev.time.0 / TICK_US;
            self.slots[(tick % N_SLOTS as u64) as usize].push(ev);
            self.in_slots += 1;
        }
    }

    /// Refills the window from the slots when it runs dry, migrating whole
    /// ticks in horizon order. A full fruitless wheel round means the next
    /// `N_SLOTS` ticks are empty; the horizon then jumps straight to the
    /// earliest occupied tick instead of walking empty rounds.
    fn ensure_window(&mut self) {
        while self.window.is_empty() && self.in_slots > 0 {
            let mut moved = false;
            for _ in 0..N_SLOTS {
                let tick = self.horizon_us / TICK_US;
                let idx = (tick % N_SLOTS as u64) as usize;
                self.horizon_us = (tick + 1) * TICK_US;
                let slot = &mut self.slots[idx];
                let mut i = 0;
                while i < slot.len() {
                    if slot[i].time.0 / TICK_US == tick {
                        self.window.push(slot.swap_remove(i));
                        self.in_slots -= 1;
                        moved = true;
                    } else {
                        i += 1;
                    }
                }
                if moved {
                    break;
                }
            }
            if !moved {
                let min_tick = self
                    .slots
                    .iter()
                    .flatten()
                    .map(|e| e.time.0 / TICK_US)
                    .min()
                    .expect("in_slots > 0 implies an occupied slot");
                self.horizon_us = min_tick * TICK_US;
            }
        }
    }

    fn pop(&mut self) -> Option<QEvent<M>> {
        self.ensure_window();
        self.window.pop()
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        self.ensure_window();
        self.window.peek().map(|e| e.time)
    }

    fn len(&self) -> usize {
        self.window.len() + self.in_slots
    }
}

enum Backend<M: KernelMsg> {
    Calendar(Calendar<M>),
    Heap(BinaryHeap<QEvent<M>>),
}

/// The kernel's event queue: total order by `(time, seq)` regardless of
/// backend, with `Deliver` payloads parked in the envelope arena.
pub(crate) struct EventQueue<M: KernelMsg> {
    arena: EnvelopeArena<M>,
    backend: Backend<M>,
    next_seq: u64,
}

impl<M: KernelMsg> EventQueue<M> {
    #[cfg(test)]
    pub fn new() -> Self {
        Self::with_kernel(QueueKernel::Calendar)
    }

    pub fn with_kernel(kernel: QueueKernel) -> Self {
        Self {
            arena: EnvelopeArena::new(),
            backend: match kernel {
                QueueKernel::Calendar => Backend::Calendar(Calendar::new()),
                QueueKernel::Heap => Backend::Heap(BinaryHeap::with_capacity(1024)),
            },
            next_seq: 0,
        }
    }

    pub fn push(&mut self, time: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let kind = match kind {
            EventKind::Deliver { to, from, msg, trace } => QueuedKind::Deliver(
                self.arena.insert(Envelope { to, from, msg, trace }),
            ),
            EventKind::Timer { actor, tag } => QueuedKind::Timer { actor, tag },
            EventKind::FlowTick => QueuedKind::FlowTick,
            EventKind::Control(f) => QueuedKind::Control(f),
        };
        let ev = QEvent { time, seq, kind };
        match &mut self.backend {
            Backend::Calendar(c) => c.push(ev),
            Backend::Heap(h) => h.push(ev),
        }
    }

    pub fn pop(&mut self) -> Option<Event<M>> {
        let ev = match &mut self.backend {
            Backend::Calendar(c) => c.pop(),
            Backend::Heap(h) => h.pop(),
        }?;
        let kind = match ev.kind {
            QueuedKind::Deliver(i) => {
                let Envelope { to, from, msg, trace } = self.arena.take(i);
                EventKind::Deliver { to, from, msg, trace }
            }
            QueuedKind::Timer { actor, tag } => EventKind::Timer { actor, tag },
            QueuedKind::FlowTick => EventKind::FlowTick,
            QueuedKind::Control(f) => EventKind::Control(f),
        };
        Some(Event {
            time: ev.time,
            seq: ev.seq,
            kind,
        })
    }

    /// Time of the next event. `&mut`: the calendar backend may migrate a
    /// tick into its window to answer.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.backend {
            Backend::Calendar(c) => c.peek_time(),
            Backend::Heap(h) => h.peek().map(|e| e.time),
        }
    }

    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Calendar(c) => c.len(),
            Backend::Heap(h) => h.len(),
        }
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Debug)]
    struct NoMsg;
    impl KernelMsg for NoMsg {
        fn flow_done(_: u64, _: bool) -> Self {
            NoMsg
        }
    }

    fn timer_ev(actor: u32) -> EventKind<NoMsg> {
        EventKind::Timer {
            actor: ActorId(actor),
            tag: 0,
        }
    }

    fn tag_of(kind: &EventKind<NoMsg>) -> u32 {
        match kind {
            EventKind::Timer { actor, .. } => actor.0,
            _ => unreachable!(),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<NoMsg> = EventQueue::new();
        q.push(SimTime::from_secs(3), timer_ev(3));
        q.push(SimTime::from_secs(1), timer_ev(1));
        q.push(SimTime::from_secs(2), timer_ev(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_micros() / 1_000_000)
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        for kernel in [QueueKernel::Calendar, QueueKernel::Heap] {
            let mut q: EventQueue<NoMsg> = EventQueue::with_kernel(kernel);
            for i in 0..10u32 {
                q.push(SimTime::from_secs(1), timer_ev(i));
            }
            let order: Vec<u32> = std::iter::from_fn(|| q.pop())
                .map(|e| tag_of(&e.kind))
                .collect();
            assert_eq!(order, (0..10).collect::<Vec<_>>(), "{kernel:?}");
        }
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q: EventQueue<NoMsg> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(7), timer_ev(0));
        q.push(SimTime::from_secs(4), timer_ev(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn same_tick_pushes_during_drain_stay_fifo() {
        // Pushing at the exact time being drained (flow completions do
        // this) must deliver after everything already queued at that time.
        let mut q: EventQueue<NoMsg> = EventQueue::new();
        q.push(SimTime::from_micros(500), timer_ev(0));
        q.push(SimTime::from_micros(500), timer_ev(1));
        let first = q.pop().unwrap();
        assert_eq!(tag_of(&first.kind), 0);
        q.push(first.time, timer_ev(2));
        assert_eq!(tag_of(&q.pop().unwrap().kind), 1);
        assert_eq!(tag_of(&q.pop().unwrap().kind), 2);
    }

    #[test]
    fn sparse_horizon_jumps_over_empty_rounds() {
        // Events hours apart: the fruitless-round jump must find them
        // without walking millions of empty ticks.
        let mut q: EventQueue<NoMsg> = EventQueue::new();
        q.push(SimTime::from_secs(3), timer_ev(0));
        q.push(SimTime::from_secs(7200), timer_ev(1));
        q.push(SimTime::from_secs(10_000), timer_ev(2));
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| tag_of(&e.kind))
            .collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn envelope_arena_recycles_slots() {
        #[derive(Debug)]
        #[allow(dead_code)]
        struct Big([u64; 8]);
        impl KernelMsg for Big {
            fn flow_done(_: u64, _: bool) -> Self {
                Big([0; 8])
            }
        }
        let mut q: EventQueue<Big> = EventQueue::new();
        for round in 0..50u64 {
            for i in 0..4u64 {
                q.push(
                    SimTime::from_micros(round * 10 + i),
                    EventKind::Deliver {
                        to: ActorId(0),
                        from: ActorId(1),
                        msg: Big([round; 8]),
                        trace: TraceId::NONE,
                    },
                );
            }
            for _ in 0..4 {
                q.pop().unwrap();
            }
        }
        // 4 in-flight envelopes max; the slab never grows past that.
        assert!(q.arena.slots.len() <= 4, "slab grew: {}", q.arena.slots.len());
    }

    /// Drives one kernel through an op tape: pushes at `now + dt`, pops
    /// (advancing `now`), and same-tick storm re-pushes at pop time. The
    /// resulting `(time, seq, tag)` stream must be identical across
    /// kernels — the calendar queue is a drop-in reordering-free swap.
    fn drive(kernel: QueueKernel, ops: &[(u32, u8)]) -> Vec<(u64, u64, u32)> {
        let mut q: EventQueue<NoMsg> = EventQueue::with_kernel(kernel);
        let mut now = 0u64;
        let mut tag = 0u32;
        let mut out = Vec::new();
        for &(dt, kind) in ops {
            match kind % 4 {
                // Near and far pushes (dt spans sub-tick to many ticks).
                0 | 1 => {
                    q.push(SimTime(now + dt as u64), timer_ev(tag));
                    tag += 1;
                }
                2 => {
                    if let Some(ev) = q.pop() {
                        now = ev.time.0;
                        out.push((ev.time.0, ev.seq, tag_of(&ev.kind)));
                    }
                }
                // Pop, then a same-time storm push (drain re-entry).
                _ => {
                    if let Some(ev) = q.pop() {
                        now = ev.time.0;
                        out.push((ev.time.0, ev.seq, tag_of(&ev.kind)));
                        q.push(SimTime(now), timer_ev(tag));
                        tag += 1;
                    }
                }
            }
        }
        while let Some(ev) = q.pop() {
            out.push((ev.time.0, ev.seq, tag_of(&ev.kind)));
        }
        out
    }

    proptest! {
        /// Calendar and heap kernels produce byte-identical event streams
        /// on random schedules, including same-tick storms.
        #[test]
        fn calendar_matches_heap_kernel(
            ops in prop::collection::vec((0u32..50_000, 0u8..4), 1..300),
        ) {
            prop_assert_eq!(
                drive(QueueKernel::Calendar, &ops),
                drive(QueueKernel::Heap, &ops)
            );
        }

        /// Same property when every event lands within a handful of ticks
        /// (dense storms exercising FIFO-within-tick and drain re-pushes).
        #[test]
        fn calendar_matches_heap_in_tick_storms(
            ops in prop::collection::vec((0u32..2_500, 0u8..4), 1..300),
        ) {
            prop_assert_eq!(
                drive(QueueKernel::Calendar, &ops),
                drive(QueueKernel::Heap, &ops)
            );
        }
    }
}
