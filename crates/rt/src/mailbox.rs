//! Bounded per-actor mailboxes with backpressure accounting.
//!
//! Each live actor owns one mailbox: a `sync_channel` whose bound is the
//! runtime's backpressure limit. Senders first `try_send`; when the box is
//! full they park on the blocking path and the stall is counted
//! (`rt.mailbox_parked`), so overload shows up in metrics instead of as
//! silent unbounded queues. Depth and high-water mark are tracked with
//! atomics shared between the sender side and the draining actor thread.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;

/// Shared depth counters of one mailbox.
#[derive(Debug, Default)]
pub struct MailboxGauges {
    depth: AtomicUsize,
    hwm: AtomicUsize,
}

impl MailboxGauges {
    /// Current queue depth.
    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }

    /// Highest depth ever observed.
    pub fn hwm(&self) -> usize {
        self.hwm.load(Ordering::Relaxed)
    }

    // Depth is incremented BEFORE the channel send: the receiver can only
    // observe (and decrement for) an element whose increment already
    // happened, so depth never underflows.
    fn on_push(&self) {
        let d = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.hwm.fetch_max(d, Ordering::Relaxed);
    }

    fn undo_push(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }

    /// Called by the draining thread after each receive.
    pub fn on_pop(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Outcome of a mailbox push, for the sender's accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushOutcome {
    /// Enqueued without waiting.
    Sent,
    /// Enqueued after parking on a full mailbox.
    SentParked,
    /// The receiving actor is gone.
    Dead,
}

/// Sending half of a mailbox.
#[derive(Debug)]
pub struct MailboxSender<T> {
    tx: SyncSender<T>,
    gauges: Arc<MailboxGauges>,
}

// Manual impl: a derive would wrongly require `T: Clone`.
impl<T> Clone for MailboxSender<T> {
    fn clone(&self) -> Self {
        MailboxSender {
            tx: self.tx.clone(),
            gauges: self.gauges.clone(),
        }
    }
}

impl<T> MailboxSender<T> {
    /// Enqueues `v`, blocking only when the mailbox is full.
    pub fn push(&self, v: T) -> PushOutcome {
        self.gauges.on_push();
        match self.tx.try_send(v) {
            Ok(()) => PushOutcome::Sent,
            Err(TrySendError::Disconnected(_)) => {
                self.gauges.undo_push();
                PushOutcome::Dead
            }
            Err(TrySendError::Full(v)) => {
                if self.tx.send(v).is_ok() {
                    PushOutcome::SentParked
                } else {
                    self.gauges.undo_push();
                    PushOutcome::Dead
                }
            }
        }
    }

    /// Enqueues `v` without ever blocking (the clock thread uses this so a
    /// stuck actor cannot stall every timer in the runtime). `Err` returns
    /// the value on a full mailbox for the caller to retry later.
    pub fn push_nonblocking(&self, v: T) -> Result<PushOutcome, T> {
        self.gauges.on_push();
        match self.tx.try_send(v) {
            Ok(()) => Ok(PushOutcome::Sent),
            Err(TrySendError::Disconnected(_)) => {
                self.gauges.undo_push();
                Ok(PushOutcome::Dead)
            }
            Err(TrySendError::Full(v)) => {
                self.gauges.undo_push();
                Err(v)
            }
        }
    }

    /// The mailbox's depth gauges.
    pub fn gauges(&self) -> &Arc<MailboxGauges> {
        &self.gauges
    }
}

/// Creates a bounded mailbox; returns the sender, the receiver for the
/// actor thread, and the shared gauges.
pub fn mailbox<T>(capacity: usize) -> (MailboxSender<T>, Receiver<T>, Arc<MailboxGauges>) {
    let (tx, rx) = std::sync::mpsc::sync_channel(capacity);
    let gauges = Arc::new(MailboxGauges::default());
    (
        MailboxSender {
            tx,
            gauges: gauges.clone(),
        },
        rx,
        gauges,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_and_hwm_track_pushes_and_pops() {
        let (tx, rx, g) = mailbox::<u32>(8);
        assert_eq!(tx.push(1), PushOutcome::Sent);
        assert_eq!(tx.push(2), PushOutcome::Sent);
        assert_eq!(g.depth(), 2);
        assert_eq!(g.hwm(), 2);
        rx.recv().unwrap();
        g.on_pop();
        assert_eq!(g.depth(), 1);
        assert_eq!(g.hwm(), 2, "hwm is sticky");
    }

    #[test]
    fn nonblocking_push_reports_full() {
        let (tx, _rx, _) = mailbox::<u32>(1);
        assert_eq!(tx.push_nonblocking(1), Ok(PushOutcome::Sent));
        assert_eq!(tx.push_nonblocking(2), Err(2));
    }

    #[test]
    fn push_to_dropped_receiver_is_dead() {
        let (tx, rx, _) = mailbox::<u32>(1);
        drop(rx);
        assert_eq!(tx.push(1), PushOutcome::Dead);
    }

    #[test]
    fn full_mailbox_parks_then_delivers() {
        let (tx, rx, g) = mailbox::<u32>(1);
        assert_eq!(tx.push(1), PushOutcome::Sent);
        let t = std::thread::spawn(move || tx.push(2));
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 1);
        g.on_pop();
        assert_eq!(t.join().unwrap(), PushOutcome::SentParked);
        assert_eq!(rx.recv().unwrap(), 2);
    }
}
