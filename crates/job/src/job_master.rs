//! The JobMaster actor: DAG-level task scheduling, resource negotiation
//! with FuxiMaster, worker-container management, and user-transparent
//! failover via snapshots (paper Sections 4.2–4.4).
//!
//! The hierarchical model of Figure 8: one JobMaster object per job doing
//! high-level task scheduling; one [`TaskMaster`] object per task doing
//! fine-grained instance scheduling; TaskWorker actors executing instances.

use crate::backup::BackupConfig;
use crate::blacklist::{Escalation, JobBlacklist, JobBlacklistConfig};
use crate::dag::TaskGraph;
use crate::desc::JobDesc;
use crate::snapshot::{JobSnapshot, TaskSnapshot, INST_DONE, INST_PENDING, INST_RUNNING};
use crate::task_master::{AssignmentOut, Attempt, InstState, InstanceRt, TaskMaster};
use crate::worker::WorkerConfig;
use fuxi_agent::ProcMeta;
use fuxi_apsara::{NameRegistry, PanguHandle, StoreHandle};
use fuxi_proto::msg::{SeqCheck, SeqReceiver, SeqSender, WorkerSpec};
use fuxi_proto::request::{GrantDelta, RequestDelta, RequestState, ScheduleUnitDef};
use fuxi_proto::topology::Topology;
use fuxi_proto::{
    AppId, InstanceOutcome, JobId, JobSummary, MachineId, Msg, Priority, ResourceVec, TaskId,
    UnitId, WorkerId,
};
use fuxi_sim::{Actor, ActorId, Ctx, SimDuration, SimTime, TraceEvent, TraceId};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// JobMaster tuning.
#[derive(Debug, Clone)]
pub struct JobMasterConfig {
    /// Worker id.
    pub worker: WorkerConfig,
    /// Backup-instance (straggler) policy.
    pub backup: BackupConfig,
    /// Blacklist configuration.
    pub blacklist: JobBlacklistConfig,
    /// Periodic full-state safety sync with FuxiMaster (also how a new
    /// primary is discovered after master failover).
    pub full_sync_interval: SimDuration,
    /// Housekeeping cadence: backup scans, worker reconciliation, snapshot
    /// flushes.
    pub housekeeping_interval: SimDuration,
    /// How long a restarted JobMaster collects worker status before
    /// resuming scheduling.
    pub recovery_window: SimDuration,
    /// Cap on distinct shuffle source machines per downstream instance
    /// (larger fan-ins are sampled and rescaled; bounds memory at
    /// GraySort scale).
    pub shuffle_fanout_cap: usize,
    /// Fraction of its limit each worker actually consumes (the paper
    /// observed ~40% real memory usage against scheduled amounts).
    pub usage_factor: f64,
    /// Idle workers kept as backup-instance capacity while a task drains.
    pub idle_spares: usize,
    /// Worker launch failures on one machine before the job avoids it.
    pub launch_failures_to_avoid: u32,
    /// How long to wait for a requested worker to register before assuming
    /// its start was lost and retrying. Must exceed worst-case binary
    /// download times under load.
    pub worker_start_timeout_s: f64,
    /// Fuxi's task/container separation (Section 3.2.3). When false, the
    /// JobMaster behaves like YARN: every finished instance returns its
    /// container and a fresh request/grant/download cycle precedes the next
    /// one ("the node manager always reclaims back the resources ... the
    /// resource manager has to conduct additional rounds of rescheduling").
    /// The ablation benchmarks flip this.
    pub container_reuse: bool,
    /// Push a [`fuxi_sim::obs::JobReport`] to FuxiMaster on the
    /// housekeeping cadence (the in-band metrics channel).
    pub report_metrics: bool,
}

impl Default for JobMasterConfig {
    fn default() -> Self {
        Self {
            worker: WorkerConfig::default(),
            backup: BackupConfig::default(),
            blacklist: JobBlacklistConfig::default(),
            full_sync_interval: SimDuration::from_secs(5),
            housekeeping_interval: SimDuration::from_secs(2),
            recovery_window: SimDuration::from_secs(2),
            shuffle_fanout_cap: 64,
            usage_factor: 0.4,
            idle_spares: 1,
            launch_failures_to_avoid: 2,
            worker_start_timeout_s: 300.0,
            container_reuse: true,
            report_metrics: true,
        }
    }
}

const TIMER_HOUSEKEEPING: u64 = 1;
const TIMER_FULL_SYNC: u64 = 2;
const TIMER_RECOVERY_DONE: u64 = 3;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JmState {
    Recovering,
    Running,
    Done,
}

/// The JobMaster actor.
pub struct JobMaster {
    app: AppId,
    job: JobId,
    cfg: JobMasterConfig,
    naming: NameRegistry,
    store: StoreHandle,
    pangu: PanguHandle,
    topo: Arc<Topology>,
    payload: String,
    master_resource: ResourceVec,
    fm: Option<ActorId>,
    state: JmState,
    graph: Option<TaskGraph>,
    job_desc: Option<JobDesc>,
    tms: Vec<Option<TaskMaster>>,
    finished_tasks: BTreeSet<TaskId>,
    started_tasks: BTreeSet<TaskId>,
    blacklist: JobBlacklist,
    // AM-side protocol state (the mirror of FuxiMaster's view).
    req_states: BTreeMap<UnitId, RequestState>,
    ledger: fuxi_proto::request::GrantLedger,
    tx: SeqSender,
    rx: SeqReceiver,
    // Worker management.
    next_worker: u64,
    worker_task: BTreeMap<WorkerId, TaskId>,
    worker_actor: BTreeMap<WorkerId, ActorId>,
    worker_requested_at: BTreeMap<WorkerId, SimTime>,
    launch_failures: BTreeMap<MachineId, u32>,
    /// Assignments made before the worker's actor address is known
    /// (`WorkerRegister` can race ahead of `WorkerStarted`); flushed when
    /// the address arrives.
    undelivered: BTreeMap<WorkerId, (fuxi_proto::InstanceId, u32, fuxi_proto::InstanceWork)>,
    snapshot_dirty: bool,
    attached: bool,
}

impl JobMaster {
    #[allow(clippy::too_many_arguments)]
    /// Creates a new instance with the given configuration.
    pub fn new(
        app: AppId,
        job: JobId,
        cfg: JobMasterConfig,
        naming: NameRegistry,
        store: StoreHandle,
        pangu: PanguHandle,
        topo: Arc<Topology>,
        payload: String,
        master_resource: ResourceVec,
    ) -> Self {
        let blacklist = JobBlacklist::new(cfg.blacklist.clone());
        Self {
            app,
            job,
            cfg,
            naming,
            store,
            pangu,
            topo,
            payload,
            master_resource,
            fm: None,
            state: JmState::Running,
            graph: None,
            job_desc: None,
            tms: Vec::new(),
            finished_tasks: BTreeSet::new(),
            started_tasks: BTreeSet::new(),
            blacklist,
            req_states: BTreeMap::new(),
            ledger: Default::default(),
            tx: SeqSender::new(),
            rx: SeqReceiver::new(),
            // Worker ids are cluster-unique: agents track workers from many
            // apps in one table.
            next_worker: ((app.0 as u64) << 32) | 1,
            worker_task: BTreeMap::new(),
            worker_actor: BTreeMap::new(),
            worker_requested_at: BTreeMap::new(),
            launch_failures: BTreeMap::new(),
            undelivered: BTreeMap::new(),
            snapshot_dirty: false,
            attached: false,
        }
    }

    fn unit_of(task: TaskId) -> UnitId {
        UnitId(task.0)
    }

    /// Flat instance id for trace events: `(task << 32) | index`.
    fn inst_id(i: fuxi_proto::InstanceId) -> u64 {
        ((i.task.0 as u64) << 32) | i.index as u64
    }

    fn task_of(unit: UnitId) -> TaskId {
        TaskId(unit.0)
    }

    fn unit_def(&self, task: TaskId) -> ScheduleUnitDef {
        let (cpu, mem, prio) = match self.tms[task.0 as usize].as_ref().map(|t| &t.desc) {
            Some(d) => ((d.cpu * 1000.0) as u64, d.memory_mb, d.priority),
            None => (500, 2048, 1000),
        };
        ScheduleUnitDef::new(
            Self::unit_of(task),
            Priority(prio),
            ResourceVec::new(cpu, mem),
        )
    }

    // ------------------------------------------------------------------
    // FM liaison
    // ------------------------------------------------------------------

    fn attach(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.fm = self.naming.master();
        let Some(fm) = self.fm else { return };
        let units: Vec<ScheduleUnitDef> = self
            .started_tasks
            .iter()
            .map(|&t| self.unit_def(t))
            .collect();
        ctx.send(fm, Msg::AmAttach { app: self.app, units });
        self.attached = true;
        self.send_full_sync(ctx);
    }

    fn send_full_sync(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let Some(fm) = self.fm else { return };
        let units: Vec<ScheduleUnitDef> = self.req_states.values().map(|s| s.def.clone()).collect();
        let states: Vec<RequestState> = self.req_states.values().cloned().collect();
        ctx.send(
            fm,
            Msg::FullRequestSync {
                app: self.app,
                units,
                states,
                held: self.ledger.snapshot(),
            },
        );
        // The receiver re-baselines; restart delta numbering.
        self.tx.reset();
    }

    fn send_deltas(&mut self, ctx: &mut Ctx<'_, Msg>, deltas: Vec<RequestDelta>) {
        if deltas.iter().all(|d| d.is_empty()) {
            return;
        }
        // Keep the mirror in lock-step with what we tell FuxiMaster.
        for d in &deltas {
            if let Some(st) = self.req_states.get_mut(&d.unit) {
                st.apply(d);
            }
        }
        if let Some(fm) = self.fm {
            let seq = self.tx.next();
            ctx.send(
                fm,
                Msg::RequestUpdate {
                    app: self.app,
                    seq,
                    deltas,
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Task lifecycle
    // ------------------------------------------------------------------

    fn parse_and_build(&mut self, ctx: &mut Ctx<'_, Msg>) -> Result<(), String> {
        let desc = JobDesc::parse(&self.payload)?;
        let graph = TaskGraph::build(&desc)?;
        self.tms = Vec::new();
        self.tms.resize_with(graph.len(), || None);
        self.graph = Some(graph);
        self.job_desc = Some(desc);
        let _ = ctx;
        Ok(())
    }

    fn task_desc(&self, task: TaskId) -> crate::desc::TaskDesc {
        let g = self.graph.as_ref().unwrap();
        let name = &g.task(task).name;
        self.job_desc.as_ref().expect("parsed at start").tasks[name].clone()
    }

    /// Builds the per-instance inputs for a task and creates its
    /// TaskMaster.
    fn start_task(&mut self, ctx: &mut Ctx<'_, Msg>, task: TaskId) {
        if self.started_tasks.contains(&task) {
            return;
        }
        self.started_tasks.insert(task);
        let desc = self.task_desc(task);
        let node = self.graph.as_ref().unwrap().task(task).clone();
        let n = desc.instances.max(1);
        // DFS inputs: chunks round-robined over instances.
        let mut chunk_lists: Vec<Vec<fuxi_apsara::pangu::Chunk>> =
            (0..n).map(|_| Vec::new()).collect();
        for pattern in &node.input_files {
            for file in self.pangu.matching(pattern) {
                if let Some(f) = self.pangu.file(&file) {
                    for (i, chunk) in f.chunks.into_iter().enumerate() {
                        chunk_lists[i % n as usize].push(chunk);
                    }
                }
            }
        }
        // Shuffle inputs from finished upstream tasks.
        let shuffle = self.shuffle_reads_for(&node.upstream, n);
        let mut instances = Vec::with_capacity(n as usize);
        for i in 0..n {
            let jitter = if desc.duration_jitter > 0.0 {
                let j = desc.duration_jitter.min(0.99);
                1.0 + ctx.rng().gen_range(-j..=j)
            } else {
                1.0
            };
            let input_mb: f64 = chunk_lists[i as usize].iter().map(|c| c.size_mb).sum::<f64>()
                + shuffle.iter().map(|&(_, mb)| mb).sum::<f64>();
            let data_compute = if desc.data_driven {
                input_mb / desc.compute_mb_per_s.max(1e-6)
            } else {
                0.0
            };
            instances.push(InstanceRt {
                input_chunks: std::mem::take(&mut chunk_lists[i as usize]),
                shuffle_reads: shuffle.clone(),
                compute_s: (desc.duration_s * jitter + data_compute).max(0.001),
                state: InstState::Pending,
                attempts: vec![],
                next_attempt: 0,
                backups_launched: 0,
                output_machine: None,
                runtime_s: None,
            });
        }
        let tm = TaskMaster::new(task, desc.clone(), instances);
        // Request containers: cluster want = worker cap, with locality
        // hints spread across the machines holding the most input chunks
        // (an even spread keeps workers near data on *all* of them instead
        // of packing the first few hinted machines).
        let cap = desc.worker_cap() as i64;
        let raw_hints = tm.locality_hints(16);
        let per_machine = (cap / raw_hints.len().max(1) as i64).max(1);
        let hints: Vec<(MachineId, i64)> = raw_hints
            .into_iter()
            .map(|(m, c)| (m, (c as i64).min(per_machine)))
            .collect();
        let unit = Self::unit_of(task);
        let def = ScheduleUnitDef::new(
            unit,
            Priority(desc.priority),
            ResourceVec::new((desc.cpu * 1000.0) as u64, desc.memory_mb),
        );
        self.req_states.insert(unit, RequestState::new(def.clone()));
        self.tms[task.0 as usize] = Some(tm);
        if let Some(fm) = self.fm {
            ctx.send(
                fm,
                Msg::AmAttach {
                    app: self.app,
                    units: vec![def],
                },
            );
        }
        let delta = RequestDelta {
            unit,
            machine: hints,
            rack: vec![],
            cluster: cap,
            avoid_add: self.blacklist.job_level().iter().copied().collect(),
            avoid_remove: vec![],
        };
        self.send_deltas(ctx, vec![delta]);
        self.snapshot_dirty = true;
        ctx.metrics().count("jm.tasks_started", 1);
    }

    /// Aggregated per-source-machine shuffle reads for one downstream
    /// instance, capped at `shuffle_fanout_cap` distinct sources.
    fn shuffle_reads_for(&self, upstream: &[TaskId], n_instances: u32) -> Vec<(MachineId, f64)> {
        let mut per_machine: BTreeMap<MachineId, f64> = BTreeMap::new();
        for &u in upstream {
            if let Some(tm) = self.tms[u.0 as usize].as_ref() {
                for inst in &tm.instances {
                    if let Some(m) = inst.output_machine {
                        *per_machine.entry(m).or_insert(0.0) += tm.desc.output_mb_per_instance;
                    }
                }
            }
        }
        if per_machine.is_empty() {
            return Vec::new();
        }
        let total: f64 = per_machine.values().sum();
        let share = total / n_instances as f64;
        let cap = self.cfg.shuffle_fanout_cap.max(1);
        let entries: Vec<(MachineId, f64)> = per_machine.into_iter().collect();
        if entries.len() <= cap {
            entries
                .into_iter()
                .map(|(m, mb)| (m, mb / total * share))
                .collect()
        } else {
            // Sample every k-th source and rescale so volume is preserved.
            let k = entries.len().div_ceil(cap);
            let sampled: Vec<(MachineId, f64)> =
                entries.into_iter().step_by(k).collect();
            let sampled_total: f64 = sampled.iter().map(|&(_, mb)| mb).sum();
            sampled
                .into_iter()
                .map(|(m, mb)| (m, mb / sampled_total * share))
                .collect()
        }
    }

    fn finish_task(&mut self, ctx: &mut Ctx<'_, Msg>, task: TaskId) {
        self.finished_tasks.insert(task);
        ctx.metrics().count("jm.tasks_finished", 1);
        // Cancel leftover demand and release all containers of this task.
        let unit = Self::unit_of(task);
        if let Some(st) = self.req_states.get(&unit) {
            let mut delta = RequestDelta {
                unit,
                cluster: -(st.wants.cluster() as i64),
                ..Default::default()
            };
            for (m, c) in st.wants.machines() {
                delta.machine.push((m, -(c as i64)));
            }
            for (r, c) in st.wants.racks() {
                delta.rack.push((r, -(c as i64)));
            }
            self.send_deltas(ctx, vec![delta]);
        }
        let workers: Vec<WorkerId> = self.tms[task.0 as usize]
            .as_ref()
            .map(|tm| tm.workers.keys().copied().collect())
            .unwrap_or_default();
        for w in workers {
            self.release_worker(ctx, w);
        }
        // Materialise declared outputs in the DFS so chained jobs see them.
        let node = self.graph.as_ref().unwrap().task(task).clone();
        if !node.output_files.is_empty() {
            let tm = self.tms[task.0 as usize].as_ref().unwrap();
            let total_mb = tm.desc.output_mb_per_instance * tm.total_instances() as f64;
            for f in &node.output_files {
                let name = f.strip_prefix("pangu://").unwrap_or(f);
                self.pangu.create(name, total_mb.max(1.0), 256.0, 3, &self.topo);
            }
        }
        // Start the next wave.
        let ready = self
            .graph
            .as_ref()
            .unwrap()
            .ready_tasks(&self.finished_tasks, &self.started_tasks);
        for t in ready {
            self.start_task(ctx, t);
        }
        self.snapshot_dirty = true;
        if self.finished_tasks.len() == self.graph.as_ref().unwrap().len() {
            self.complete(ctx, true, "completed".into());
        }
    }

    fn complete(&mut self, ctx: &mut Ctx<'_, Msg>, success: bool, message: String) {
        if self.state == JmState::Done {
            return;
        }
        self.state = JmState::Done;
        // Stop anything still running.
        let all_workers: Vec<WorkerId> = self.worker_task.keys().copied().collect();
        for w in all_workers {
            self.release_worker(ctx, w);
        }
        if let Some(fm) = self.fm {
            ctx.send(fm, Msg::AmDetach { app: self.app });
            ctx.send(
                fm,
                Msg::JobFinished {
                    job: self.job,
                    app: self.app,
                    success,
                    message,
                },
            );
        }
        JobSnapshot::delete(&self.store, self.job.0);
        // Account our gauge contributions away before dying.
        self.set_obtained_gauge(ctx, 0.0, 0.0);
        ctx.kill_self();
    }

    // ------------------------------------------------------------------
    // Grants & workers
    // ------------------------------------------------------------------

    fn obtained_totals(&self) -> (f64, f64) {
        let mut mem = 0.0;
        let mut cpu = 0.0;
        for unit in self.req_states.keys() {
            if let Some(st) = self.req_states.get(unit) {
                let total = self.ledger.total(*unit) as f64;
                mem += total * st.def.resource.memory_mb() as f64;
                cpu += total * st.def.resource.cpu_milli() as f64;
            }
        }
        mem += self.master_resource.memory_mb() as f64;
        cpu += self.master_resource.cpu_milli() as f64;
        (mem, cpu)
    }

    fn set_obtained_gauge(&mut self, ctx: &mut Ctx<'_, Msg>, mem: f64, cpu: f64) {
        let m = ctx.metrics();
        let cur_mem = m.gauge(&format!("am.obtained_mem_mb/{}", self.app));
        let cur_cpu = m.gauge(&format!("am.obtained_cpu_milli/{}", self.app));
        m.gauge_add(&format!("am.obtained_mem_mb/{}", self.app), mem - cur_mem);
        m.gauge_add(&format!("am.obtained_cpu_milli/{}", self.app), cpu - cur_cpu);
        m.gauge_add("am.obtained_mem_mb", mem - cur_mem);
        m.gauge_add("am.obtained_cpu_milli", cpu - cur_cpu);
    }

    fn refresh_obtained_gauge(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let (mem, cpu) = self.obtained_totals();
        self.set_obtained_gauge(ctx, mem, cpu);
    }

    fn apply_grant_deltas(&mut self, ctx: &mut Ctx<'_, Msg>, grants: Vec<GrantDelta>) {
        for g in &grants {
            let unit = g.unit;
            let task = Self::task_of(unit);
            for &(m, delta) in &g.changes {
                if delta >= 0 {
                    if let Some(st) = self.req_states.get_mut(&unit) {
                        st.wants.satisfied_on(&self.topo, m, delta as u64);
                    }
                } else if let Some(st) = self.req_states.get_mut(&unit) {
                    // Revocation: demand returns at cluster level, and we
                    // stop trusting that machine a little.
                    st.wants.revoked((-delta) as u64);
                    let _ = task;
                }
            }
            self.ledger.apply(g);
        }
        self.refresh_obtained_gauge(ctx);
        // Turn ledger state into running workers.
        let tasks: BTreeSet<TaskId> = grants.iter().map(|g| Self::task_of(g.unit)).collect();
        for task in tasks {
            self.reconcile_workers(ctx, task);
        }
    }

    /// Makes the task's live workers match the ledger: start missing ones,
    /// retire extras (the revocation path: "application master might react
    /// to the message by terminating the corresponding worker").
    fn reconcile_workers(&mut self, ctx: &mut Ctx<'_, Msg>, task: TaskId) {
        if self.state != JmState::Running || self.finished_tasks.contains(&task) {
            return;
        }
        let Some(tm) = self.tms[task.0 as usize].as_ref() else {
            return;
        };
        let unit = Self::unit_of(task);
        let desired: BTreeMap<MachineId, u64> = self.ledger.machines(unit).collect();
        let current = tm.worker_counts();
        let mut to_start: Vec<(MachineId, u64)> = Vec::new();
        let mut to_stop: Vec<(MachineId, u64)> = Vec::new();
        for (&m, &want) in &desired {
            let have = current.get(&m).copied().unwrap_or(0);
            if want > have {
                to_start.push((m, want - have));
            }
        }
        for (&m, &have) in &current {
            let want = desired.get(&m).copied().unwrap_or(0);
            if have > want {
                to_stop.push((m, have - want));
            }
        }
        for (m, n) in to_start {
            for _ in 0..n {
                self.start_worker(ctx, task, m);
            }
        }
        for (m, n) in to_stop {
            // Idle workers go first; busy ones requeue their instance.
            let tm = self.tms[task.0 as usize].as_ref().unwrap();
            let mut victims: Vec<WorkerId> = tm
                .workers_on(m)
                .into_iter()
                .filter(|w| tm.workers[w].busy.is_none())
                .collect();
            let busy: Vec<WorkerId> = tm
                .workers_on(m)
                .into_iter()
                .filter(|w| !victims.contains(w))
                .collect();
            victims.extend(busy);
            for w in victims.into_iter().take(n as usize) {
                self.stop_worker_local(ctx, w);
            }
        }
        self.assign_work(ctx, task);
    }

    fn start_worker(&mut self, ctx: &mut Ctx<'_, Msg>, task: TaskId, m: MachineId) {
        let Some(agent) = self.naming.lookup(&format!("agent/{m}")) else {
            return; // retried at next reconciliation
        };
        let tm = self.tms[task.0 as usize].as_mut().unwrap();
        let worker = WorkerId(self.next_worker);
        self.next_worker += 1;
        let spec = WorkerSpec {
            app: self.app,
            worker,
            unit: Self::unit_of(task),
            limit: ResourceVec::new((tm.desc.cpu * 1000.0) as u64, tm.desc.memory_mb),
            binary_mb: tm.desc.binary_mb,
            master: ctx.id(),
            usage_factor: self.cfg.usage_factor,
        };
        tm.add_worker(worker, m);
        self.worker_task.insert(worker, task);
        self.worker_requested_at.insert(worker, ctx.now());
        ctx.trace(TraceEvent::WorkerLaunchRequested {
            app: self.app.0,
            worker: worker.0,
            machine: m.0,
        });
        ctx.send(agent, Msg::StartWorker { spec });
        ctx.metrics().count("jm.workers_requested", 1);
    }

    /// Stops a worker without returning its grant (revocation already
    /// removed it from the ledger).
    fn stop_worker_local(&mut self, ctx: &mut Ctx<'_, Msg>, worker: WorkerId) {
        let Some(task) = self.worker_task.remove(&worker) else {
            return;
        };
        self.worker_requested_at.remove(&worker);
        let machine = self.tms[task.0 as usize]
            .as_ref()
            .and_then(|tm| tm.workers.get(&worker))
            .map(|w| w.machine);
        if let Some(tm) = self.tms[task.0 as usize].as_mut() {
            if tm.remove_worker(worker).is_some() {
                self.snapshot_dirty = true;
            }
        }
        self.worker_actor.remove(&worker);
        if let Some(m) = machine {
            if let Some(agent) = self.naming.lookup(&format!("agent/{m}")) {
                ctx.send(
                    agent,
                    Msg::StopWorker {
                        app: self.app,
                        worker,
                    },
                );
            }
        }
    }

    /// Stops a worker *and* returns its container to FuxiMaster (the
    /// voluntary-return path: "when a worker is no longer needed").
    fn release_worker(&mut self, ctx: &mut Ctx<'_, Msg>, worker: WorkerId) {
        let Some(&task) = self.worker_task.get(&worker) else {
            return;
        };
        let unit = Self::unit_of(task);
        let machine = self.tms[task.0 as usize]
            .as_ref()
            .and_then(|tm| tm.workers.get(&worker))
            .map(|w| w.machine);
        self.stop_worker_local(ctx, worker);
        if let Some(m) = machine {
            if self.ledger.held(unit, m) > 0 {
                self.ledger.apply(&GrantDelta::revoke(unit, m, 1));
                if let Some(fm) = self.fm {
                    ctx.send(
                        fm,
                        Msg::ReturnGrant {
                            app: self.app,
                            unit,
                            machine: m,
                            count: 1,
                        },
                    );
                }
            }
        }
        self.refresh_obtained_gauge(ctx);
    }

    fn assign_work(&mut self, ctx: &mut Ctx<'_, Msg>, task: TaskId) {
        if self.state != JmState::Running {
            return;
        }
        let Some(tm) = self.tms[task.0 as usize].as_mut() else {
            return;
        };
        let out = tm.try_assign(ctx.now(), &self.blacklist);
        self.dispatch_assignments(ctx, out);
    }

    fn dispatch_assignments(&mut self, ctx: &mut Ctx<'_, Msg>, out: Vec<AssignmentOut>) {
        for a in out {
            // The assignment decision happens here whether or not the
            // worker's address is known yet — record it once.
            ctx.trace(TraceEvent::InstanceAssigned {
                instance: Self::inst_id(a.instance),
                attempt: a.attempt,
                worker: a.worker.0,
            });
            match self.worker_actor.get(&a.worker) {
                Some(&actor) => {
                    ctx.send(
                        actor,
                        Msg::AssignInstance {
                            instance: a.instance,
                            attempt: a.attempt,
                            work: a.work,
                        },
                    );
                }
                None => {
                    // Address not yet known; deliver on WorkerStarted.
                    self.undelivered
                        .insert(a.worker, (a.instance, a.attempt, a.work));
                }
            }
            self.snapshot_dirty = true;
        }
    }

    /// Retires idle workers a draining task no longer needs.
    fn maybe_shrink(&mut self, ctx: &mut Ctx<'_, Msg>, task: TaskId) {
        let Some(tm) = self.tms[task.0 as usize].as_ref() else {
            return;
        };
        if tm.pending_count() > 0 || tm.is_complete() {
            return;
        }
        let idle = tm.idle_workers();
        if idle.len() > self.cfg.idle_spares {
            let surplus = idle.len() - self.cfg.idle_spares;
            for w in idle.into_iter().take(surplus) {
                self.release_worker(ctx, w);
            }
        }
    }

    // ------------------------------------------------------------------
    // Instance events
    // ------------------------------------------------------------------

    fn on_instance_finished(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        worker: WorkerId,
        instance: fuxi_proto::InstanceId,
        attempt: u32,
        outcome: InstanceOutcome,
        runtime_s: f64,
    ) {
        let task = instance.task;
        if self.tms.len() <= task.0 as usize {
            return;
        }
        let Some(tm) = self.tms[task.0 as usize].as_mut() else {
            return;
        };
        self.snapshot_dirty = true;
        match outcome {
            InstanceOutcome::Success => {
                let was_done = tm
                    .instances
                    .get(instance.index as usize)
                    .map(|i| i.state == InstState::Done)
                    .unwrap_or(true);
                // Table 2's "instance running overhead": the difference
                // between the instance runtime as observed here and as
                // reported by the worker.
                let am_started = tm
                    .instances
                    .get(instance.index as usize)
                    .and_then(|i| i.attempts.iter().find(|a| a.attempt == attempt))
                    .map(|a| a.started);
                let losers = tm.attempt_succeeded(worker, instance.index, attempt, runtime_s);
                if was_done {
                    // Duplicate delivery of an already-recorded result.
                    return;
                }
                if let Some(s) = am_started {
                    let am_runtime = ctx.now().since(s).as_secs_f64();
                    ctx.metrics()
                        .record("am.instance_overhead_s", (am_runtime - runtime_s).max(0.0));
                }
                ctx.trace(TraceEvent::InstanceFinished {
                    instance: Self::inst_id(instance),
                    attempt,
                    ok: true,
                });
                for (lw, li, la) in losers {
                    if let Some(&actor) = self.worker_actor.get(&lw) {
                        ctx.send(actor, Msg::KillInstance { instance: li, attempt: la });
                    }
                    ctx.metrics().count("jm.backup_losers_killed", 1);
                }
                ctx.metrics().count("jm.instances_finished", 1);
                if tm.is_complete() {
                    self.finish_task(ctx, task);
                    return;
                }
                if !self.cfg.container_reuse {
                    // YARN-mode ablation: give the container back and
                    // re-request capacity for the remaining work.
                    let pending = tm.pending_count();
                    self.release_worker(ctx, worker);
                    if pending > 0 {
                        let delta = RequestDelta {
                            unit: Self::unit_of(task),
                            cluster: 1,
                            ..Default::default()
                        };
                        self.send_deltas(ctx, vec![delta]);
                    }
                    return;
                }
                self.assign_work(ctx, task);
                self.maybe_shrink(ctx, task);
            }
            InstanceOutcome::Failed(reason) => {
                let real_failure = tm.attempt_failed(worker, instance.index, attempt);
                let machine = tm.workers.get(&worker).map(|w| w.machine);
                if real_failure {
                    ctx.trace(TraceEvent::InstanceFinished {
                        instance: Self::inst_id(instance),
                        attempt,
                        ok: false,
                    });
                }
                if real_failure && reason != fuxi_proto::FailReason::Killed {
                    ctx.metrics().count("jm.instance_failures", 1);
                    if let Some(m) = machine {
                        self.record_suspect(ctx, task, instance.index, m);
                    }
                }
                self.assign_work(ctx, task);
            }
        }
    }

    fn record_suspect(&mut self, ctx: &mut Ctx<'_, Msg>, task: TaskId, instance: u32, m: MachineId) {
        match self.blacklist.record_failure(task, instance, m) {
            Escalation::Instance => {}
            Escalation::Task => {
                // "No longer be used by this task": avoid in future
                // requests and retire workers already there.
                let delta = RequestDelta {
                    unit: Self::unit_of(task),
                    avoid_add: vec![m],
                    ..Default::default()
                };
                self.send_deltas(ctx, vec![delta]);
                let victims: Vec<WorkerId> = self.tms[task.0 as usize]
                    .as_ref()
                    .map(|tm| tm.workers_on(m))
                    .unwrap_or_default();
                for w in victims {
                    self.release_worker(ctx, w);
                }
                ctx.metrics().count("jm.task_blacklists", 1);
            }
            Escalation::Job => {
                if let Some(fm) = self.fm {
                    ctx.send(fm, Msg::BadMachineReport { app: self.app, machine: m });
                }
                ctx.metrics().count("jm.job_blacklists", 1);
            }
        }
    }

    // ------------------------------------------------------------------
    // Snapshots & recovery
    // ------------------------------------------------------------------

    fn build_snapshot(&self) -> JobSnapshot {
        let mut tasks = Vec::new();
        for (i, tm) in self.tms.iter().enumerate() {
            let task = TaskId(i as u32);
            let Some(tm) = tm else {
                tasks.push(TaskSnapshot {
                    task: task.0,
                    ..Default::default()
                });
                continue;
            };
            let mut snap = TaskSnapshot {
                task: task.0,
                started: true,
                finished: self.finished_tasks.contains(&task),
                instance_status: Vec::with_capacity(tm.instances.len()),
                outputs: Vec::new(),
                running: Vec::new(),
            };
            for (idx, inst) in tm.instances.iter().enumerate() {
                let status = match inst.state {
                    InstState::Pending => INST_PENDING,
                    InstState::Running => INST_RUNNING,
                    InstState::Done => INST_DONE,
                };
                snap.instance_status.push(status);
                if let (InstState::Done, Some(m)) = (inst.state, inst.output_machine) {
                    snap.outputs.push((
                        idx as u32,
                        m.0,
                        tm.desc.output_mb_per_instance,
                        inst.runtime_s.unwrap_or(0.0),
                    ));
                }
                for a in &inst.attempts {
                    snap.running.push((idx as u32, a.attempt, a.worker.0));
                }
            }
            tasks.push(snap);
        }
        let mut workers = Vec::new();
        for (&w, &task) in &self.worker_task {
            let machine = self.tms[task.0 as usize]
                .as_ref()
                .and_then(|tm| tm.workers.get(&w))
                .map(|x| x.machine.0)
                .unwrap_or(0);
            let actor = self.worker_actor.get(&w).map(|a| a.0).unwrap_or(u32::MAX);
            workers.push((w.0, task.0, machine, actor));
        }
        JobSnapshot {
            job: self.job.0,
            app: self.app.0,
            tasks,
            workers,
            next_worker: self.next_worker,
        }
    }

    fn flush_snapshot(&mut self) {
        if self.snapshot_dirty && self.state == JmState::Running {
            self.build_snapshot().save(&self.store);
            self.snapshot_dirty = false;
        }
    }

    /// Rebuilds state from a snapshot after a JobMaster restart.
    fn recover(&mut self, ctx: &mut Ctx<'_, Msg>, snap: JobSnapshot) {
        self.state = JmState::Recovering;
        ctx.metrics().count("jm.recoveries", 1);
        self.next_worker = snap.next_worker;
        // Rebuild finished/started sets and TaskMasters task by task, in
        // topological order so shuffle inputs resolve.
        let order = self.graph.as_ref().unwrap().topo_order().expect("validated");
        let by_id: BTreeMap<u32, &TaskSnapshot> = snap.tasks.iter().map(|t| (t.task, t)).collect();
        for task in order {
            let Some(ts) = by_id.get(&task.0) else { continue };
            if !ts.started {
                continue;
            }
            self.started_tasks.insert(task);
            let desc = self.task_desc(task);
            let node = self.graph.as_ref().unwrap().task(task).clone();
            let n = desc.instances.max(1);
            let mut chunk_lists: Vec<Vec<fuxi_apsara::pangu::Chunk>> =
                (0..n).map(|_| Vec::new()).collect();
            for pattern in &node.input_files {
                for file in self.pangu.matching(pattern) {
                    if let Some(f) = self.pangu.file(&file) {
                        for (i, chunk) in f.chunks.into_iter().enumerate() {
                            chunk_lists[i % n as usize].push(chunk);
                        }
                    }
                }
            }
            let shuffle = self.shuffle_reads_for(&node.upstream, n);
            let outputs: BTreeMap<u32, (u32, f64)> = ts
                .outputs
                .iter()
                .map(|&(i, m, _mb, rt)| (i, (m, rt)))
                .collect();
            let mut instances = Vec::with_capacity(n as usize);
            for i in 0..n {
                let status = ts.instance_status.get(i as usize).copied().unwrap_or(INST_PENDING);
                let (state, output_machine, runtime_s) = match status {
                    INST_DONE => {
                        let (m, rt) = outputs.get(&i).copied().unwrap_or((0, 0.0));
                        (InstState::Done, Some(MachineId(m)), Some(rt))
                    }
                    // Running instances become pending unless a live worker
                    // confirms them during the recovery window.
                    _ => (InstState::Pending, None, None),
                };
                instances.push(InstanceRt {
                    input_chunks: std::mem::take(&mut chunk_lists[i as usize]),
                    shuffle_reads: shuffle.clone(),
                    compute_s: desc.duration_s.max(0.001),
                    state,
                    attempts: vec![],
                    next_attempt: ts
                        .running
                        .iter()
                        .filter(|&&(idx, _, _)| idx == i)
                        .map(|&(_, a, _)| a + 1)
                        .max()
                        .unwrap_or(0),
                    backups_launched: 0,
                    output_machine,
                    runtime_s,
                });
            }
            let mut tm = TaskMaster::new(task, desc, instances);
            tm.finished = ts
                .instance_status
                .iter()
                .filter(|&&s| s == INST_DONE)
                .count() as u64;
            for &(_, _, _, rt) in &ts.outputs {
                tm.stats.record(rt);
            }
            self.tms[task.0 as usize] = Some(tm);
            if ts.finished {
                self.finished_tasks.insert(task);
            }
            let unit = Self::unit_of(task);
            let def = self.unit_def(task);
            self.req_states.insert(unit, RequestState::new(def));
        }
        // Contact the workers the snapshot remembers ("collect the status
        // from TaskWorker"); confirmations arrive as WorkerStatusReply.
        for &(w, task, machine, actor) in &snap.workers {
            let worker = WorkerId(w);
            let task = TaskId(task);
            if self.finished_tasks.contains(&task) {
                continue;
            }
            if let Some(tm) = self.tms[task.0 as usize].as_mut() {
                tm.add_worker(worker, MachineId(machine));
            }
            self.worker_task.insert(worker, task);
            if actor != u32::MAX {
                let a = ActorId(actor);
                self.worker_actor.insert(worker, a);
                ctx.send(a, Msg::WorkerStatusQuery);
            }
        }
        ctx.timer(self.cfg.recovery_window, TIMER_RECOVERY_DONE);
    }

    fn finish_recovery(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if self.state != JmState::Recovering {
            return;
        }
        self.state = JmState::Running;
        // Workers that never replied are gone: drop them locally; the
        // full sync below re-baselines grants with FuxiMaster.
        let silent: Vec<WorkerId> = self
            .worker_task
            .keys()
            .filter(|w| {
                self.worker_actor
                    .get(w)
                    .map(|a| !ctx.alive(*a))
                    .unwrap_or(true)
            })
            .copied()
            .collect();
        for w in silent {
            let task = self.worker_task.remove(&w);
            self.worker_actor.remove(&w);
            if let Some(task) = task {
                if let Some(tm) = self.tms[task.0 as usize].as_mut() {
                    tm.remove_worker(w);
                }
            }
        }
        // Recompute outstanding demand: cap minus what we actually have.
        for (unit, st) in self.req_states.iter_mut() {
            let task = Self::task_of(*unit);
            if self.finished_tasks.contains(&task) {
                continue;
            }
            if let Some(tm) = self.tms[task.0 as usize].as_ref() {
                if !tm.is_complete() {
                    let cap = tm.desc.worker_cap() as u64;
                    let have = tm.workers.len() as u64;
                    st.wants = fuxi_proto::request::WantLevels::anywhere(cap.saturating_sub(have));
                }
            }
        }
        self.attach(ctx);
        // Resume assigning to confirmed-idle workers.
        let tasks: Vec<TaskId> = self.started_tasks.iter().copied().collect();
        for t in tasks {
            if !self.finished_tasks.contains(&t) {
                self.assign_work(ctx, t);
            }
        }
        // The job may already have been complete before the crash.
        if self.graph.is_some() && self.finished_tasks.len() == self.graph.as_ref().unwrap().len() {
            self.complete(ctx, true, "completed".into());
        }
        ctx.metrics().count("jm.recovery_done", 1);
    }

    fn summary(&self) -> JobSummary {
        let mut s = JobSummary {
            tasks_total: self.graph.as_ref().map(|g| g.len() as u32).unwrap_or(0),
            tasks_finished: self.finished_tasks.len() as u32,
            ..Default::default()
        };
        for tm in self.tms.iter().flatten() {
            s.instances_total += tm.total_instances();
            s.instances_running += tm.running_count();
            s.instances_finished += tm.finished;
            s.workers_active += tm.workers.len() as u64;
        }
        s
    }

    /// Pushes the in-band metrics report to the current master. Instance
    /// counters are cumulative, so a report lost to failover or reordering
    /// only delays the cluster view, never skews it.
    fn send_metrics_report(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let Some(fm) = self.fm else { return };
        let s = self.summary();
        let pending: u64 = self
            .tms
            .iter()
            .flatten()
            .map(|tm| tm.pending_count() as u64)
            .sum();
        let report = fuxi_sim::obs::JobReport {
            app: self.app.0,
            job: self.job.0,
            t_s: ctx.now().as_secs_f64(),
            tasks_total: s.tasks_total,
            tasks_finished: s.tasks_finished,
            instances_total: s.instances_total,
            instances_running: s.instances_running,
            instances_finished: s.instances_finished,
            workers_active: s.workers_active,
            pending_instances: pending,
        };
        ctx.send(
            fm,
            Msg::MetricsReport {
                report: fuxi_sim::obs::MetricsReport::Job(report),
            },
        );
    }
}

impl Actor<Msg> for JobMaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // Everything this actor does belongs to its job's causal chain —
        // re-establish it here and at every entry point below, since timers
        // arrive with no ambient trace.
        ctx.set_trace(TraceId::from_job(self.job.0));
        let meta = ProcMeta::JobMaster {
            app: self.app,
            job: self.job,
            resource: self.master_resource.clone(),
        };
        ctx.register_proc(meta.encode());
        self.fm = self.naming.master();
        if let Err(e) = self.parse_and_build(ctx) {
            ctx.metrics().count("jm.desc_rejected", 1);
            self.complete(ctx, false, e);
            return;
        }
        ctx.timer(self.cfg.housekeeping_interval, TIMER_HOUSEKEEPING);
        ctx.timer(self.cfg.full_sync_interval, TIMER_FULL_SYNC);
        if let Some(snap) = JobSnapshot::load(&self.store, self.job.0) {
            self.recover(ctx, snap);
            return;
        }
        self.attach(ctx);
        let ready = self
            .graph
            .as_ref()
            .unwrap()
            .ready_tasks(&self.finished_tasks, &self.started_tasks);
        for t in ready {
            self.start_task(ctx, t);
        }
        self.flush_snapshot();
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ActorId, msg: Msg) {
        if self.state == JmState::Done {
            return;
        }
        ctx.set_trace(TraceId::from_job(self.job.0));
        match msg {
            Msg::GrantUpdate { seq, grants } => match self.rx.accept(seq) {
                SeqCheck::Apply => self.apply_grant_deltas(ctx, grants),
                SeqCheck::Duplicate => {
                    ctx.metrics().count("jm.dup_grants_dropped", 1);
                }
                SeqCheck::Gap => {
                    ctx.metrics().count("jm.grant_gaps", 1);
                    if let Some(fm) = self.fm {
                        ctx.send(fm, Msg::GrantSyncNeeded { app: self.app });
                    }
                }
            },
            Msg::FullGrantSync { snapshot } => {
                self.rx.synced();
                // Diff old → new and apply as deltas so workers reconcile.
                let old = self.ledger.snapshot();
                let mut deltas: Vec<GrantDelta> = Vec::new();
                let to_map = |rows: &[(UnitId, Vec<(MachineId, u64)>)]| {
                    let mut m: BTreeMap<(UnitId, MachineId), u64> = BTreeMap::new();
                    for (u, per) in rows {
                        for &(mach, c) in per {
                            m.insert((*u, mach), c);
                        }
                    }
                    m
                };
                let old_m = to_map(&old);
                let new_m = to_map(&snapshot);
                let keys: BTreeSet<(UnitId, MachineId)> =
                    old_m.keys().chain(new_m.keys()).copied().collect();
                for (u, mach) in keys {
                    let o = old_m.get(&(u, mach)).copied().unwrap_or(0) as i64;
                    let n = new_m.get(&(u, mach)).copied().unwrap_or(0) as i64;
                    if n != o {
                        deltas.push(GrantDelta {
                            unit: u,
                            changes: vec![(mach, n - o)],
                        });
                    }
                }
                if !deltas.is_empty() {
                    self.apply_grant_deltas(ctx, deltas);
                }
            }
            Msg::RequestSyncNeeded { .. } => self.send_full_sync(ctx),
            Msg::WorkerStarted {
                worker,
                actor,
                machine,
            } => {
                self.worker_actor.insert(worker, actor);
                if let Some(&task) = self.worker_task.get(&worker) {
                    if let Some(tm) = self.tms[task.0 as usize].as_mut() {
                        tm.add_worker(worker, machine);
                    }
                }
                if let Some((instance, attempt, work)) = self.undelivered.remove(&worker) {
                    ctx.send(
                        actor,
                        Msg::AssignInstance {
                            instance,
                            attempt,
                            work,
                        },
                    );
                }
            }
            Msg::WorkerRegister {
                app: _,
                worker,
                machine,
            } => {
                if let Some(t0) = self.worker_requested_at.remove(&worker) {
                    let dt = ctx.now().since(t0).as_secs_f64();
                    ctx.metrics().record("am.worker_start_overhead_s", dt);
                }
                // A registration always comes from a *fresh* process. If
                // the TaskMaster thought this worker was mid-instance, that
                // attempt died with the old process (agent restarted it):
                // requeue it.
                if let Some(&task) = self.worker_task.get(&worker) {
                    self.worker_actor.insert(worker, from);
                    if let Some(tm) = self.tms[task.0 as usize].as_mut() {
                        if let Some((idx, attempt)) = tm.workers.get(&worker).and_then(|w| w.busy)
                        {
                            if self.undelivered.remove(&worker).is_none() {
                                tm.abandon_attempt(idx, attempt);
                                ctx.metrics().count("jm.attempts_lost_on_restart", 1);
                            } else {
                                // The assignment never reached the old
                                // process; undo and let try_assign redo it.
                                tm.abandon_attempt(idx, attempt);
                            }
                            if let Some(w) = tm.workers.get_mut(&worker) {
                                w.busy = None;
                            }
                        }
                        tm.worker_registered(worker, machine);
                    }
                    self.assign_work(ctx, task);
                }
            }
            Msg::WorkerStartFailed {
                worker,
                machine,
                reason,
            } => {
                ctx.metrics().count("jm.worker_start_failures", 1);
                // Capacity races are scheduling noise, not machine faults:
                // only real launch failures feed the blacklist.
                let machine_fault = !reason.contains("capacity");
                let avoid = if machine_fault {
                    let fails = self.launch_failures.entry(machine).or_insert(0);
                    *fails += 1;
                    *fails >= self.cfg.launch_failures_to_avoid
                } else {
                    false
                };
                if let Some(&task) = self.worker_task.get(&worker) {
                    let unit = Self::unit_of(task);
                    self.stop_worker_local(ctx, worker);
                    // Give the container back and re-ask for one elsewhere.
                    if self.ledger.held(unit, machine) > 0 {
                        self.ledger.apply(&GrantDelta::revoke(unit, machine, 1));
                        if let Some(fm) = self.fm {
                            ctx.send(
                                fm,
                                Msg::ReturnGrant {
                                    app: self.app,
                                    unit,
                                    machine,
                                    count: 1,
                                },
                            );
                        }
                    }
                    let delta = RequestDelta {
                        unit,
                        cluster: 1,
                        avoid_add: if avoid { vec![machine] } else { vec![] },
                        ..Default::default()
                    };
                    self.send_deltas(ctx, vec![delta]);
                    if avoid {
                        if let Some(fm) = self.fm {
                            ctx.send(
                                fm,
                                Msg::BadMachineReport {
                                    app: self.app,
                                    machine,
                                },
                            );
                        }
                    }
                    self.refresh_obtained_gauge(ctx);
                }
            }
            Msg::WorkerExited {
                app: _,
                worker,
                machine: _,
                reason: _,
            } => {
                // The process died (enforcement kill or unrestartable
                // crash); its container may still be granted — reconcile
                // starts a replacement if so.
                if let Some(&task) = self.worker_task.get(&worker) {
                    self.worker_actor.remove(&worker);
                    self.worker_task.remove(&worker);
                    if let Some(tm) = self.tms[task.0 as usize].as_mut() {
                        tm.remove_worker(worker);
                    }
                    self.reconcile_workers(ctx, task);
                }
            }
            Msg::InstanceFinished {
                worker,
                instance,
                attempt,
                outcome,
                runtime_s,
            } => self.on_instance_finished(ctx, worker, instance, attempt, outcome, runtime_s),
            Msg::InstanceReport { .. } => {
                // Progress feeds the status query path only.
            }
            Msg::WorkerStatusReply {
                app: _,
                worker,
                machine,
                running,
            } => {
                // Recovery confirmation from a surviving worker.
                if let Some(&task) = self.worker_task.get(&worker) {
                    if let Some(tm) = self.tms[task.0 as usize].as_mut() {
                        tm.worker_registered(worker, machine);
                        self.worker_actor.insert(worker, from);
                        if let Some((inst, attempt, _)) = running {
                            if inst.task == task
                                && (inst.index as usize) < tm.instances.len()
                                && tm.instances[inst.index as usize].state != InstState::Done
                            {
                                // Re-adopt the running attempt untouched —
                                // "during the absence of JobMaster process,
                                // all the workers are still running the
                                // instances without interruption".
                                let i = &mut tm.instances[inst.index as usize];
                                i.state = InstState::Running;
                                i.attempts.push(Attempt {
                                    attempt,
                                    worker,
                                    machine,
                                    started: ctx.now(),
                                    confirmed: true,
                                });
                                i.next_attempt = i.next_attempt.max(attempt + 1);
                                tm.workers.get_mut(&worker).unwrap().busy =
                                    Some((inst.index, attempt));
                            }
                        }
                    }
                }
            }
            Msg::WorkerListQuery { app: _, machine } => {
                // A restarted agent reconciling adopted processes.
                let mut workers = Vec::new();
                for (&w, &task) in &self.worker_task {
                    let on_m = self.tms[task.0 as usize]
                        .as_ref()
                        .and_then(|tm| tm.workers.get(&w))
                        .map(|x| x.machine == machine)
                        .unwrap_or(false);
                    if on_m {
                        let actor = self.worker_actor.get(&w).copied().unwrap_or(ActorId::NONE);
                        workers.push((w, actor));
                    }
                }
                ctx.send(
                    from,
                    Msg::WorkerListReply {
                        app: self.app,
                        machine,
                        workers,
                    },
                );
            }
            Msg::CapacityWarning { app: _, machine, .. } => {
                // Act before the agent kills blindly: retire one idle (or
                // any) worker on that machine.
                let mut candidates: Vec<WorkerId> = Vec::new();
                for (&w, &task) in &self.worker_task {
                    if let Some(tm) = self.tms[task.0 as usize].as_ref() {
                        if let Some(tw) = tm.workers.get(&w) {
                            if tw.machine == machine {
                                if tw.busy.is_none() {
                                    candidates.insert(0, w);
                                } else {
                                    candidates.push(w);
                                }
                            }
                        }
                    }
                }
                if let Some(w) = candidates.first().copied() {
                    self.stop_worker_local(ctx, w);
                }
            }
            Msg::JmStatusQuery => {
                let summary = self.summary();
                ctx.send(
                    from,
                    Msg::JmStatusReply {
                        job: self.job,
                        summary,
                    },
                );
            }
            Msg::StopJob { .. } => {
                self.complete(ctx, false, "stopped by user".into());
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        if self.state == JmState::Done {
            return;
        }
        ctx.set_trace(TraceId::from_job(self.job.0));
        match tag {
            TIMER_HOUSEKEEPING => {
                if self.state == JmState::Running {
                    // Workers that never came up (lost StartWorker or
                    // WorkerStarted): drop and let reconciliation retry.
                    let now = ctx.now();
                    let stuck: Vec<WorkerId> = self
                        .worker_requested_at
                        .iter()
                        .filter(|(_, &t0)| {
                            now.since(t0).as_secs_f64() > self.cfg.worker_start_timeout_s
                        })
                        .map(|(&w, _)| w)
                        .collect();
                    for w in stuck {
                        ctx.metrics().count("jm.worker_start_timeouts", 1);
                        self.stop_worker_local(ctx, w);
                    }
                    let tasks: Vec<TaskId> = self.started_tasks.iter().copied().collect();
                    for task in tasks {
                        if self.finished_tasks.contains(&task) {
                            continue;
                        }
                        self.reconcile_workers(ctx, task);
                        // Backup (speculative) instances for stragglers.
                        let now = ctx.now();
                        let backup_cfg = self.cfg.backup.clone();
                        if let Some(tm) = self.tms[task.0 as usize].as_mut() {
                            let out = tm.backup_scan(&backup_cfg, now, &self.blacklist);
                            if !out.is_empty() {
                                ctx.metrics().count("jm.backups_launched", out.len() as u64);
                            }
                            self.dispatch_assignments(ctx, out);
                        }
                    }
                    self.flush_snapshot();
                }
                if self.cfg.report_metrics && self.state != JmState::Done {
                    self.send_metrics_report(ctx);
                }
                ctx.timer(self.cfg.housekeeping_interval, TIMER_HOUSEKEEPING);
            }
            TIMER_FULL_SYNC => {
                if self.state == JmState::Running {
                    let current = self.naming.master();
                    if current != self.fm || !self.attached {
                        // Master failover: re-attach and re-send everything
                        // (Figure 7's AM side).
                        self.attach(ctx);
                    } else {
                        self.send_full_sync(ctx);
                    }
                }
                ctx.timer(self.cfg.full_sync_interval, TIMER_FULL_SYNC);
            }
            TIMER_RECOVERY_DONE => self.finish_recovery(ctx),
            _ => {}
        }
    }
}
