//! A Hadoop-1.0-style JobTracker (baseline).
//!
//! The *linear* slot model the paper contrasts against multi-dimensional
//! scheduling: every node exposes a fixed number of map slots and reduce
//! slots; a task consumes exactly one slot of its kind regardless of its
//! actual CPU/memory demand. Two consequences the ablation measures:
//!
//! 1. **Fragmentation** — a memory-light task occupies a whole slot, so
//!    effective utilization is bounded by slot granularity;
//! 2. **Kind rigidity** — idle reduce slots cannot run maps, leaving
//!    capacity stranded during the map phase.

use fuxi_proto::{AppId, MachineId, ResourceVec};
use std::collections::VecDeque;

/// Slot kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotKind {
    /// Map.
    Map,
    /// Reduce.
    Reduce,
}

/// Slot configuration per node.
#[derive(Debug, Clone)]
pub struct Hadoop1Config {
    /// The map slots per node.
    pub map_slots_per_node: u32,
    /// The reduce slots per node.
    pub reduce_slots_per_node: u32,
    /// Nominal resources one slot represents (for utilization accounting).
    pub slot_resource: ResourceVec,
}

impl Default for Hadoop1Config {
    fn default() -> Self {
        Self {
            map_slots_per_node: 8,
            reduce_slots_per_node: 4,
            slot_resource: ResourceVec::cores_mb(1, 8 * 1024),
        }
    }
}

#[derive(Debug)]
struct Pending {
    app: AppId,
    kind: SlotKind,
    remaining: u64,
    /// Actual multi-dimensional demand (for waste accounting only).
    actual: ResourceVec,
}

/// The slot-based JobTracker core.
pub struct Hadoop1Scheduler {
    cfg: Hadoop1Config,
    free_map: Vec<u32>,
    free_reduce: Vec<u32>,
    queue: VecDeque<Pending>,
    /// Resources nominally occupied by slots vs. actually demanded — the
    /// fragmentation gap.
    pub slot_occupied: ResourceVec,
    /// The actual demand.
    pub actual_demand: ResourceVec,
    /// Slot assignments made so far.
    pub assignments: u64,
}

impl Hadoop1Scheduler {
    /// Creates a new instance with the given configuration.
    pub fn new(cfg: Hadoop1Config, nodes: usize) -> Self {
        Self {
            free_map: vec![cfg.map_slots_per_node; nodes],
            free_reduce: vec![cfg.reduce_slots_per_node; nodes],
            cfg,
            queue: VecDeque::new(),
            slot_occupied: ResourceVec::ZERO,
            actual_demand: ResourceVec::ZERO,
            assignments: 0,
        }
    }

    /// Submit.
    pub fn submit(&mut self, app: AppId, kind: SlotKind, count: u64, actual: ResourceVec) {
        self.queue.push_back(Pending {
            app,
            kind,
            remaining: count,
            actual,
        });
    }

    /// TaskTracker heartbeat: fill this node's free slots FIFO.
    pub fn tracker_heartbeat(&mut self, m: MachineId) -> Vec<(AppId, SlotKind)> {
        let mut out = Vec::new();
        let idx = m.0 as usize;
        let mut i = 0;
        while i < self.queue.len() {
            let kind = self.queue[i].kind;
            let slot_free = match kind {
                SlotKind::Map => self.free_map[idx] > 0,
                SlotKind::Reduce => self.free_reduce[idx] > 0,
            };
            if slot_free && self.queue[i].remaining > 0 {
                match kind {
                    SlotKind::Map => self.free_map[idx] -= 1,
                    SlotKind::Reduce => self.free_reduce[idx] -= 1,
                }
                self.queue[i].remaining -= 1;
                self.assignments += 1;
                self.slot_occupied.add(&self.cfg.slot_resource);
                self.actual_demand.add(&self.queue[i].actual);
                out.push((self.queue[i].app, kind));
                if self.queue[i].remaining == 0 {
                    self.queue.remove(i);
                    continue;
                }
            } else {
                i += 1;
            }
            if self.free_map[idx] == 0 && self.free_reduce[idx] == 0 {
                break;
            }
        }
        out
    }

    /// Release.
    pub fn release(&mut self, m: MachineId, kind: SlotKind, actual: &ResourceVec) {
        let idx = m.0 as usize;
        match kind {
            SlotKind::Map => self.free_map[idx] += 1,
            SlotKind::Reduce => self.free_reduce[idx] += 1,
        }
        self.slot_occupied.saturating_sub(&self.cfg.slot_resource);
        self.actual_demand.saturating_sub(actual);
    }

    /// The fragmentation ratio: actual demand / slot-occupied resources on
    /// the memory dimension (1.0 = perfect fit, lower = waste).
    pub fn memory_efficiency(&self) -> f64 {
        if self.slot_occupied.memory_mb() == 0 {
            1.0
        } else {
            self.actual_demand.memory_mb() as f64 / self.slot_occupied.memory_mb() as f64
        }
    }

    /// Queue len.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Free slots.
    pub fn free_slots(&self, m: MachineId, kind: SlotKind) -> u32 {
        match kind {
            SlotKind::Map => self.free_map[m.0 as usize],
            SlotKind::Reduce => self.free_reduce[m.0 as usize],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_fill_and_release() {
        let mut s = Hadoop1Scheduler::new(Hadoop1Config::default(), 2);
        s.submit(AppId(1), SlotKind::Map, 10, ResourceVec::new(500, 2048));
        let a = s.tracker_heartbeat(MachineId(0));
        assert_eq!(a.len(), 8, "node 0's 8 map slots fill");
        assert_eq!(s.free_slots(MachineId(0), SlotKind::Map), 0);
        let b = s.tracker_heartbeat(MachineId(1));
        assert_eq!(b.len(), 2);
        s.release(MachineId(0), SlotKind::Map, &ResourceVec::new(500, 2048));
        assert_eq!(s.free_slots(MachineId(0), SlotKind::Map), 1);
    }

    #[test]
    fn reduce_slots_cannot_run_maps() {
        let mut s = Hadoop1Scheduler::new(Hadoop1Config::default(), 1);
        s.submit(AppId(1), SlotKind::Map, 100, ResourceVec::new(500, 2048));
        let a = s.tracker_heartbeat(MachineId(0));
        assert_eq!(a.len(), 8, "reduce slots stay idle during the map wave");
        assert_eq!(s.free_slots(MachineId(0), SlotKind::Reduce), 4);
    }

    #[test]
    fn fragmentation_is_visible() {
        let mut s = Hadoop1Scheduler::new(Hadoop1Config::default(), 1);
        // Tiny tasks in 8 GB slots: 2 GB / 8 GB = 25% efficiency.
        s.submit(AppId(1), SlotKind::Map, 8, ResourceVec::new(500, 2048));
        s.tracker_heartbeat(MachineId(0));
        assert!((s.memory_efficiency() - 0.25).abs() < 1e-9);
    }
}
