//! Node health telemetry carried in FuxiAgent heartbeats.
//!
//! Section 4.3.2: "we also introduce a plugin scheme to collect hardware
//! information from the operating system to aid judgement of machine health.
//! Disk statistics, machine load and network I/O are all collected to
//! calculate a score." The report here is the data those plugins consume;
//! the plugins themselves (and the scoring) live in `fuxi-core::blacklist`.

use serde::{Deserialize, Serialize};

/// A snapshot of one machine's health, produced by the FuxiAgent from the
/// (simulated) operating system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeHealthReport {
    /// Fraction of disks responding normally, in [0, 1]. Disk hang or
    /// corruption drives this below 1.
    pub disk_ok_ratio: f64,
    /// Normalised 1-minute load average (1.0 = fully busy, >1 overloaded).
    pub load: f64,
    /// Recent network throughput as a fraction of NIC capacity, in [0, 1].
    pub net_utilization: f64,
    /// Worker launch failures observed since the previous report.
    pub recent_launch_failures: u32,
    /// Execution speed factor observed for this node (1.0 = nominal). The
    /// simulator's SlowMachine fault lowers this.
    pub speed_factor: f64,
}

impl Default for NodeHealthReport {
    fn default() -> Self {
        Self::healthy()
    }
}

impl NodeHealthReport {
    /// A report from a perfectly healthy, idle machine.
    pub fn healthy() -> Self {
        Self {
            disk_ok_ratio: 1.0,
            load: 0.0,
            net_utilization: 0.0,
            recent_launch_failures: 0,
            speed_factor: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_defaults() {
        let h = NodeHealthReport::default();
        assert_eq!(h.disk_ok_ratio, 1.0);
        assert_eq!(h.recent_launch_failures, 0);
        assert_eq!(h.speed_factor, 1.0);
    }

    #[test]
    fn serde_roundtrip() {
        let h = NodeHealthReport {
            disk_ok_ratio: 0.5,
            load: 2.0,
            net_utilization: 0.9,
            recent_launch_failures: 3,
            speed_factor: 0.25,
        };
        let s = serde_json::to_string(&h).unwrap();
        let back: NodeHealthReport = serde_json::from_str(&s).unwrap();
        assert_eq!(h, back);
    }
}
