//! Property-based tests (proptest) on the incremental protocol's core
//! invariant (paper §3.1): "we must make sure the full version of
//! information on two communication peers is exactly the same" — under
//! duplication, loss and arbitrary delta streams, with periodic full syncs
//! repairing divergence. Plus invariants of the resource vector algebra
//! and the scheduling engine's conservation laws.

use fuxi::core::quota::QuotaManager;
use fuxi::core::scheduler::{Engine, EngineConfig, EngineEvent};
use fuxi::proto::msg::{SeqCheck, SeqReceiver, SeqSender};
use fuxi::proto::request::{RequestDelta, RequestState, ScheduleUnitDef};
use fuxi::proto::topology::{MachineSpec, TopologyBuilder};
use fuxi::proto::{AppId, MachineId, Priority, QuotaGroupId, RackId, ResourceVec, UnitId};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------

fn arb_delta() -> impl Strategy<Value = RequestDelta> {
    (
        prop::collection::vec((0u32..8, -5i64..10), 0..3),
        prop::collection::vec((0u32..3, -5i64..10), 0..2),
        -10i64..20,
        prop::collection::vec(0u32..8, 0..2),
        prop::collection::vec(0u32..8, 0..2),
    )
        .prop_map(|(machine, rack, cluster, avoid_add, avoid_remove)| RequestDelta {
            unit: UnitId(0),
            machine: machine.into_iter().map(|(m, d)| (MachineId(m), d)).collect(),
            rack: rack.into_iter().map(|(r, d)| (RackId(r), d)).collect(),
            cluster,
            avoid_add: avoid_add.into_iter().map(MachineId).collect(),
            avoid_remove: avoid_remove.into_iter().map(MachineId).collect(),
        })
}

fn unit_def() -> ScheduleUnitDef {
    ScheduleUnitDef::new(UnitId(0), Priority(1000), ResourceVec::new(500, 2048))
}

// ---------------------------------------------------------------------
// Protocol convergence
// ---------------------------------------------------------------------

proptest! {
    /// Sender applies every delta to its own state and ships it through an
    /// unreliable channel (drop/duplicate per delta). The receiver applies
    /// what survives, requesting a full sync on gaps; the sender answers
    /// every Nth step. After a final sync both sides must agree exactly.
    #[test]
    fn peers_converge_under_loss_and_duplication(
        deltas in prop::collection::vec(arb_delta(), 1..60),
        // per-delta fate: 0 = deliver, 1 = drop, 2 = duplicate
        fates in prop::collection::vec(0u8..3, 1..60),
        sync_every in 3usize..10,
    ) {
        let mut sender_state = RequestState::new(unit_def());
        let mut receiver_state = RequestState::new(unit_def());
        let mut tx = SeqSender::new();
        let mut rx = SeqReceiver::new();
        let mut want_sync = false;

        for (i, d) in deltas.iter().enumerate() {
            sender_state.apply(d);
            let seq = tx.next();
            let fate = fates.get(i).copied().unwrap_or(0);
            let deliveries: usize = match fate {
                1 => 0,
                2 => 2,
                _ => 1,
            };
            for _ in 0..deliveries {
                match rx.accept(seq) {
                    SeqCheck::Apply => receiver_state.apply(d),
                    SeqCheck::Duplicate => {}
                    SeqCheck::Gap => want_sync = true,
                }
            }
            if fate == 1 {
                // A later message will reveal the gap; model the receiver
                // noticing by probing with the next accept (handled above
                // on the next loop iteration).
            }
            // Periodic full-state safety sync (paper: "as a safety
            // measurement, application masters exchange with FuxiMaster
            // the full state of resources periodically").
            if (i + 1) % sync_every == 0 || want_sync {
                receiver_state = sender_state.clone();
                rx.synced();
                tx.reset();
                want_sync = false;
            }
        }
        // Final repair sync (always happens within one period).
        receiver_state = sender_state.clone();
        prop_assert_eq!(&receiver_state, &sender_state);
    }

    /// Without any loss, deltas alone keep the peers identical — no sync
    /// needed (the paper's steady-state claim).
    #[test]
    fn lossless_deltas_need_no_sync(deltas in prop::collection::vec(arb_delta(), 1..80)) {
        let mut a = RequestState::new(unit_def());
        let mut b = RequestState::new(unit_def());
        let mut tx = SeqSender::new();
        let mut rx = SeqReceiver::new();
        for d in &deltas {
            a.apply(d);
            let seq = tx.next();
            prop_assert_eq!(rx.accept(seq), SeqCheck::Apply);
            b.apply(d);
        }
        prop_assert_eq!(&a, &b);
    }

    /// Merging a batch of cluster-level deltas then applying once equals
    /// applying them one by one (FuxiMaster's §3.4 batch mode must not
    /// change meaning for the demand totals it batches). Locality hints
    /// are intentionally out of scope: a hint implies demand ("raise the
    /// total"), so interleaving hints with negative totals is
    /// order-sensitive by design — which is exactly why the protocol's
    /// periodic full sync exists, and why `merge` is only applied to
    /// deltas between two flushes of the same app.
    #[test]
    fn merged_batch_equals_sequential_application(
        mut deltas in prop::collection::vec(arb_delta(), 1..20),
    ) {
        // A real AM never asks to shed more than it currently wants (its
        // own mirror clamps first), so valid delta streams never drive the
        // running total negative; enforce that precondition.
        let mut running = 0i64;
        for d in &mut deltas {
            d.machine.clear();
            d.rack.clear();
            d.avoid_add.clear();
            d.avoid_remove.clear();
            if d.cluster < -running {
                d.cluster = -running;
            }
            running += d.cluster;
        }
        let mut sequential = RequestState::new(unit_def());
        for d in &deltas {
            sequential.apply(d);
        }
        let mut merged = deltas[0].clone();
        for d in &deltas[1..] {
            merged.merge(d);
        }
        let mut batched = RequestState::new(unit_def());
        batched.apply(&merged);
        prop_assert_eq!(batched.wants.cluster(), sequential.wants.cluster());
    }
}

// ---------------------------------------------------------------------
// Resource vector algebra
// ---------------------------------------------------------------------

fn arb_vec() -> impl Strategy<Value = ResourceVec> {
    (0u64..50_000, 0u64..500_000).prop_map(|(c, m)| ResourceVec::new(c, m))
}

proptest! {
    #[test]
    fn add_then_checked_sub_roundtrips(a in arb_vec(), b in arb_vec()) {
        let mut x = a.clone();
        x.add(&b);
        prop_assert!(x.checked_sub(&b));
        prop_assert_eq!(x, a);
    }

    #[test]
    fn fits_in_is_consistent_with_times_fitting(unit in arb_vec(), avail in arb_vec()) {
        let n = unit.times_fitting_in(&avail);
        if unit.is_zero() {
            prop_assert_eq!(n, u64::MAX);
        } else if n > 0 {
            prop_assert!(unit.fits_in(&avail));
            let scaled = unit.scaled(n);
            prop_assert!(scaled.fits_in(&avail));
        } else {
            prop_assert!(!unit.scaled(1).fits_in(&avail) || unit.is_zero());
        }
    }

    #[test]
    fn saturating_sub_never_underflows(a in arb_vec(), b in arb_vec()) {
        let mut x = a.clone();
        x.saturating_sub(&b);
        prop_assert!(x.cpu_milli() <= a.cpu_milli());
        prop_assert!(x.memory_mb() <= a.memory_mb());
    }
}

// ---------------------------------------------------------------------
// Engine conservation laws
// ---------------------------------------------------------------------

proptest! {
    /// Whatever random request/return traffic hits the engine, resources
    /// are conserved: grants - revokes - returns == currently planned, and
    /// nothing is ever granted beyond cluster capacity.
    #[test]
    fn engine_conserves_resources(
        ops in prop::collection::vec((0u8..3, 0u32..6, 1i64..30), 1..80),
    ) {
        let topo = TopologyBuilder::new()
            .uniform(2, 5, MachineSpec::default())
            .build();
        let capacity = topo.total_resources();
        let mut e = Engine::new(topo, EngineConfig::default(), QuotaManager::new());
        let unit = ResourceVec::new(500, 2048);
        for a in 0..6u32 {
            e.attach_app(
                AppId(a),
                QuotaGroupId(0),
                vec![ScheduleUnitDef::new(UnitId(0), Priority(1000), unit.clone())],
            );
        }
        let mut net_granted: i64 = 0;
        for (kind, app, amount) in ops {
            let app = AppId(app);
            match kind {
                0 => e.apply_deltas(app, &[RequestDelta::cluster(UnitId(0), amount)]),
                1 => e.apply_deltas(app, &[RequestDelta::cluster(UnitId(0), -amount)]),
                _ => {
                    if let Some((u, m, _, held)) = e.app_grants(app).first().cloned() {
                        e.return_grant(app, u, m, (amount as u64).min(held));
                    }
                }
            }
            for ev in e.drain_events() {
                match ev {
                    EngineEvent::Grant { count, .. } => net_granted += count as i64,
                    EngineEvent::Revoke { count, .. } => net_granted -= count as i64,
                }
            }
            // Returns don't produce events; recompute from the books.
            let mut planned_units = 0i64;
            for a in 0..6u32 {
                planned_units += e.unit_granted_total(AppId(a), UnitId(0)) as i64;
            }
            prop_assert!(e.planned().fits_in(&capacity), "planned exceeds capacity");
            prop_assert_eq!(e.planned().memory_mb(), planned_units as u64 * 2048);
        }
        let _ = net_granted;
    }

    /// The free pool plus everything granted always equals total capacity.
    #[test]
    fn free_plus_planned_equals_capacity(
        wants in prop::collection::vec(1i64..40, 1..6),
    ) {
        let topo = TopologyBuilder::new()
            .uniform(2, 4, MachineSpec::default())
            .build();
        let capacity = topo.total_resources();
        let mut e = Engine::new(topo.clone(), EngineConfig::default(), QuotaManager::new());
        let unit = ResourceVec::new(1000, 4096);
        for (i, w) in wants.iter().enumerate() {
            let app = AppId(i as u32);
            e.attach_app(
                app,
                QuotaGroupId(0),
                vec![ScheduleUnitDef::new(UnitId(0), Priority(1000), unit.clone())],
            );
            e.apply_deltas(app, &[RequestDelta::cluster(UnitId(0), *w)]);
        }
        let mut free_total = ResourceVec::ZERO;
        for m in topo.machines() {
            free_total.add(e.free_on(m));
        }
        free_total.add(e.planned());
        prop_assert_eq!(free_total.cpu_milli(), capacity.cpu_milli());
        prop_assert_eq!(free_total.memory_mb(), capacity.memory_mb());
    }
}
