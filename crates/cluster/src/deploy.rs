//! Deployment topology: which process hosts which actor group.
//!
//! One config surface for every execution mode. A [`DeployTopology`] lists
//! the [`NodeSpec`]s of a cluster — hub plus leaves — and each spec names
//! the [`ActorGroup`]s that node hosts. The single-process harnesses
//! (`fuxi_rt::LiveCluster`, the sim [`crate::Cluster`]) flatten the whole
//! topology into one runtime; the multi-process runner (`fuxi-node`,
//! `bench_live --distributed`) boots one OS process per node and connects
//! them over the versioned wire protocol.
//!
//! Actor addressing is deterministic: node `i` numbers its actors from
//! `ActorId::node_base(i)` in spec order, so every process can compute the
//! address of every actor in the cluster from the topology alone — no
//! discovery round is needed before the name service comes up.

use crate::harness::ClusterConfig;
use fuxi_proto::MachineId;
use fuxi_sim::ActorId;

/// How a node participates in the star overlay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// The rendezvous process: listens for peers, relays leaf↔leaf
    /// frames, and rebroadcasts name/store replication updates.
    Hub,
    /// A peer process that dials the hub (with reconnect supervision).
    Leaf,
}

/// One actor group a node can host. Groups spawn in the order they appear
/// in the [`NodeSpec`], which fixes their actor ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActorGroup {
    /// The lease-lock service driving master election.
    LockService,
    /// One FuxiMaster (primary or hot standby — election decides which).
    Master,
    /// FuxiAgents for machines `first .. first + count` (one per machine,
    /// spawned in machine order). JobMasters and workers launched on those
    /// machines live in the same process.
    Agents {
        /// First machine id in the range.
        first: u32,
        /// Number of consecutive machines.
        count: u32,
    },
    /// The submitting client (records job outcomes).
    Client,
}

impl ActorGroup {
    /// Number of actors this group spawns.
    pub fn len(&self) -> u32 {
        match self {
            ActorGroup::Agents { count, .. } => *count,
            _ => 1,
        }
    }

    /// True when the group spawns no actors.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One OS process (or one slice of a single-process cluster).
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// Human-readable node name (appears in HELLO and logs).
    pub name: String,
    /// Hub or leaf.
    pub role: NodeRole,
    /// Hub: the listen address. Leaf: ignored (leaves dial the hub's
    /// address). `None` means the topology only runs single-process.
    pub addr: Option<String>,
    /// Actor groups hosted here, in spawn order.
    pub actors: Vec<ActorGroup>,
}

impl NodeSpec {
    /// A hub node.
    pub fn hub(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            role: NodeRole::Hub,
            addr: None,
            actors: Vec::new(),
        }
    }

    /// A leaf node.
    pub fn leaf(name: &str) -> Self {
        Self {
            name: name.to_owned(),
            role: NodeRole::Leaf,
            addr: None,
            actors: Vec::new(),
        }
    }

    /// Sets the listen address (hub only).
    pub fn at(mut self, addr: &str) -> Self {
        self.addr = Some(addr.to_owned());
        self
    }

    /// Appends an actor group.
    pub fn with(mut self, group: ActorGroup) -> Self {
        self.actors.push(group);
        self
    }
}

/// Address of one spawned actor within a topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlacedActor {
    /// Which node hosts it.
    pub node: usize,
    /// Its globally routable id.
    pub id: ActorId,
}

/// A full deployment: the shared [`ClusterConfig`] plus the node layout.
#[derive(Debug, Clone)]
pub struct DeployTopology {
    /// Cluster-wide knobs (machine count, seeds, component configs).
    pub cluster: ClusterConfig,
    /// Node layout. Exactly one node must be the [`NodeRole::Hub`].
    pub nodes: Vec<NodeSpec>,
}

impl DeployTopology {
    /// Starts a builder around `cluster`.
    pub fn builder(cluster: ClusterConfig) -> DeployBuilder {
        DeployBuilder {
            topo: Self {
                cluster,
                nodes: Vec::new(),
            },
        }
    }

    /// The canonical all-in-one layout every single-process harness uses:
    /// lock service, primary master (+ optional hot standby), one agent
    /// per machine, client — in that spawn order, matching the historical
    /// `LiveCluster::new` wiring exactly.
    pub fn single_process(cluster: ClusterConfig) -> Self {
        let n_machines = cluster.n_machines as u32;
        let standby = cluster.standby_master;
        let mut node = NodeSpec::hub("all-in-one").with(ActorGroup::LockService);
        node = node.with(ActorGroup::Master);
        if standby {
            node = node.with(ActorGroup::Master);
        }
        node = node
            .with(ActorGroup::Agents {
                first: 0,
                count: n_machines,
            })
            .with(ActorGroup::Client);
        Self::builder(cluster).node(node).build()
    }

    /// The standard 4-process layout proven by `bench_live --distributed`:
    /// node 0 (hub/driver) hosts the lock service and client; node 1 the
    /// primary master; node 2 the hot standby; node 3 the agent fleet.
    /// Which master is "primary" is decided by lock election, not layout.
    pub fn distributed(mut cluster: ClusterConfig, hub_addr: &str) -> Self {
        cluster.standby_master = true;
        let n_machines = cluster.n_machines as u32;
        Self::builder(cluster)
            .node(
                NodeSpec::hub("driver")
                    .at(hub_addr)
                    .with(ActorGroup::LockService)
                    .with(ActorGroup::Client),
            )
            .node(NodeSpec::leaf("master-a").with(ActorGroup::Master))
            .node(NodeSpec::leaf("master-b").with(ActorGroup::Master))
            .node(NodeSpec::leaf("agents").with(ActorGroup::Agents {
                first: 0,
                count: n_machines,
            }))
            .build()
    }

    /// Index of the hub node.
    pub fn hub_index(&self) -> usize {
        self.nodes
            .iter()
            .position(|n| n.role == NodeRole::Hub)
            .expect("topology has a hub")
    }

    /// First actor id node `node` assigns. The single-process flatteners
    /// ignore windows (everything lands in window 0); the multi-process
    /// runner gives each node its own id window.
    pub fn actor_base(&self, node: usize) -> u32 {
        ActorId::node_base(node as u32)
    }

    /// Id of the `k`-th actor of group `group` on node `node`, under
    /// multi-process (windowed) addressing.
    pub fn actor_id(&self, node: usize, group: usize, k: u32) -> ActorId {
        let spec = &self.nodes[node];
        let offset: u32 = spec.actors[..group].iter().map(ActorGroup::len).sum();
        ActorId(self.actor_base(node) + offset + k)
    }

    fn find_group(&self, want: impl Fn(&ActorGroup) -> bool) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for (ni, node) in self.nodes.iter().enumerate() {
            for (gi, g) in node.actors.iter().enumerate() {
                if want(g) {
                    out.push((ni, gi));
                }
            }
        }
        out
    }

    /// The lock service's address (windowed).
    pub fn lock_id(&self) -> PlacedActor {
        let (ni, gi) = self.find_group(|g| matches!(g, ActorGroup::LockService))[0];
        PlacedActor {
            node: ni,
            id: self.actor_id(ni, gi, 0),
        }
    }

    /// Every master's address (windowed), in node order.
    pub fn master_ids(&self) -> Vec<PlacedActor> {
        self.find_group(|g| matches!(g, ActorGroup::Master))
            .into_iter()
            .map(|(ni, gi)| PlacedActor {
                node: ni,
                id: self.actor_id(ni, gi, 0),
            })
            .collect()
    }

    /// The client's address (windowed).
    pub fn client_id(&self) -> PlacedActor {
        let (ni, gi) = self.find_group(|g| matches!(g, ActorGroup::Client))[0];
        PlacedActor {
            node: ni,
            id: self.actor_id(ni, gi, 0),
        }
    }

    /// Agent addresses (windowed) keyed by machine.
    pub fn agent_ids(&self) -> Vec<(MachineId, PlacedActor)> {
        let mut out = Vec::new();
        for (ni, gi) in self.find_group(|g| matches!(g, ActorGroup::Agents { .. })) {
            if let ActorGroup::Agents { first, count } = self.nodes[ni].actors[gi] {
                for k in 0..count {
                    out.push((
                        MachineId(first + k),
                        PlacedActor {
                            node: ni,
                            id: self.actor_id(ni, gi, k),
                        },
                    ));
                }
            }
        }
        out
    }
}

/// Builder for [`DeployTopology`].
pub struct DeployBuilder {
    topo: DeployTopology,
}

impl DeployBuilder {
    /// Appends a node.
    pub fn node(mut self, spec: NodeSpec) -> Self {
        self.topo.nodes.push(spec);
        self
    }

    /// Validates and returns the topology.
    pub fn build(self) -> DeployTopology {
        let hubs = self
            .topo
            .nodes
            .iter()
            .filter(|n| n.role == NodeRole::Hub)
            .count();
        assert_eq!(hubs, 1, "a topology needs exactly one hub node");
        assert!(
            self.topo.nodes.len() < 256,
            "node index must fit the actor-id window bits"
        );
        self.topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_process_layout_matches_historical_spawn_order() {
        let cfg = ClusterConfig {
            n_machines: 3,
            standby_master: true,
            ..ClusterConfig::default()
        };
        let t = DeployTopology::single_process(cfg);
        assert_eq!(t.nodes.len(), 1);
        let groups = &t.nodes[0].actors;
        assert!(matches!(groups[0], ActorGroup::LockService));
        assert!(matches!(groups[1], ActorGroup::Master));
        assert!(matches!(groups[2], ActorGroup::Master));
        assert!(matches!(groups[3], ActorGroup::Agents { first: 0, count: 3 }));
        assert!(matches!(groups[4], ActorGroup::Client));
        // Flattened (window 0) ids are sequential: lock=0, masters 1..2,
        // agents 3..5, client 6.
        assert_eq!(t.lock_id().id, ActorId(0));
        assert_eq!(t.client_id().id, ActorId(6));
    }

    #[test]
    fn distributed_layout_windows_ids_by_node() {
        let cfg = ClusterConfig {
            n_machines: 4,
            ..ClusterConfig::default()
        };
        let t = DeployTopology::distributed(cfg, "127.0.0.1:0");
        assert_eq!(t.nodes.len(), 4);
        assert_eq!(t.hub_index(), 0);
        assert_eq!(t.lock_id().id, ActorId(0));
        assert_eq!(t.client_id().id, ActorId(1));
        let masters = t.master_ids();
        assert_eq!(masters[0].id, ActorId(ActorId::node_base(1)));
        assert_eq!(masters[1].id, ActorId(ActorId::node_base(2)));
        let agents = t.agent_ids();
        assert_eq!(agents.len(), 4);
        assert_eq!(agents[0].1.id, ActorId(ActorId::node_base(3)));
        assert_eq!(agents[3].1.id, ActorId(ActorId::node_base(3) + 3));
        assert_eq!(agents[3].1.id.node_index(), 3);
    }

    #[test]
    #[should_panic(expected = "exactly one hub")]
    fn topology_requires_a_hub() {
        DeployTopology::builder(ClusterConfig::default())
            .node(NodeSpec::leaf("a"))
            .build();
    }
}
