//! The live metrics plane, end to end: agent + JobMaster reports flow
//! in-band to the master, the master's windowed rollup lands in the
//! shared [`fuxi::obs::MetricsHub`], the SLO watchdog raises alerts, and
//! the scrape endpoint serves it all — identically under the
//! deterministic kernel and the live `fuxi-rt` runtime.
//!
//! The differential check: cumulative totals in the cluster view must
//! equal the shutdown-merged `Metrics` counters. The rollup is fed by
//! periodic ticks and in-band reports; the counters by the actors
//! themselves. Agreement means no report was double-counted, dropped
//! on a code path the plane forgot, or skewed by window arithmetic.

use fuxi::cluster::{Cluster, ClusterConfig, SubmitOpts};
use fuxi::job::JobDesc;
use fuxi::obs::{ClusterView, TraceEvent};
use fuxi::rt::LiveCluster;
use fuxi::sim::{SimDuration, SimTime};
use fuxi::workloads::mapreduce::{wordcount_job, MapReduceParams};
use std::io::{Read, Write};
use std::time::Duration;

const N_MACHINES: usize = 20;
const N_JOBS: usize = 30;
const SEED: u64 = 404;

fn plane_config() -> ClusterConfig {
    ClusterConfig {
        n_machines: N_MACHINES,
        rack_size: 5,
        seed: SEED,
        ..ClusterConfig::default()
    }
}

fn plane_job(i: usize) -> JobDesc {
    wordcount_job(&MapReduceParams {
        maps: 4,
        reduces: 1,
        map_duration_s: 0.05,
        reduce_duration_s: 0.05,
        jitter: 0.1,
        max_workers: 2,
        binary_mb: 2.0,
        map_output_mb: 0.5,
        output_file: Some(format!("pangu://plane/out-{i}")),
        ..Default::default()
    })
}

/// Cumulative rollup totals must equal the shutdown-merged counters the
/// actors bumped themselves, and every agent must appear in the view.
fn assert_view_matches_counters(view: &ClusterView, m: &fuxi::sim::Metrics) {
    assert_eq!(
        view.rollup.jobs_finished_total,
        m.counter("fm.jobs_finished"),
        "rollup finished-jobs total diverged from the merged counter"
    );
    assert_eq!(
        view.rollup.jobs_submitted_total,
        m.counter("fm.jobs_submitted"),
        "rollup submitted-jobs total diverged from the merged counter"
    );
    assert_eq!(
        view.reports_received,
        m.counter("fm.metrics_reports"),
        "hub report count diverged from the master's ingestion counter"
    );
    assert_eq!(view.agents.len(), N_MACHINES, "every agent must be reporting");
    assert_eq!(view.rollup.jobs_finished_total, N_JOBS as u64);
    assert!(view.rollup.sched_count_win > 0 || view.rollup.jobs_finished_total > 0);
}

#[test]
fn sim_rollup_matches_shutdown_merged_metrics() {
    let mut c = Cluster::new(plane_config());
    for i in 0..N_JOBS {
        c.submit(&plane_job(i), &SubmitOpts::default());
    }
    let done = c.run_until_n_done(N_JOBS, SimTime::from_secs(3600));
    assert_eq!(done, N_JOBS, "sim run left jobs unfinished");
    // Quiesce a few windows so the final rollup tick observes the final
    // counter values (nothing finishes after this point).
    c.run_for(SimDuration::from_secs(5));
    let view = c.hub.snapshot();
    assert_view_matches_counters(&view, c.world.metrics());
    assert_eq!(view.rollup.master_epoch, 1, "no failover happened");
    assert_eq!(view.alerts_total, 0, "an idle healthy cluster raises no alerts");
}

/// A job whose instances can never fit (1 TB per instance) stays pending
/// forever; with a 2 s pending-age SLO the watchdog must raise exactly
/// that alert, trace it, and dump the flight recorder once.
#[test]
fn watchdog_raises_pending_age_alert_and_dumps_flight_recorder() {
    let mut cfg = plane_config();
    cfg.master.metrics.rules.pending_age_s = 2.0;
    let mut c = Cluster::new(cfg);
    c.submit(
        &wordcount_job(&MapReduceParams {
            maps: 2,
            reduces: 1,
            memory_mb: 1 << 20, // 1 TB per instance: unsatisfiable
            output_file: Some("pangu://plane/stuck".to_owned()),
            ..Default::default()
        }),
        &SubmitOpts::default(),
    );
    c.run_for(SimDuration::from_secs(15));

    let view = c.hub.snapshot();
    assert!(view.alerts_total >= 1, "pending-age breach must raise an alert");
    assert!(
        view.alerts.iter().any(|a| a.rule.name() == "pending_age"),
        "the active alert must be the pending-age rule, got {:?}",
        view.alerts
    );
    assert!(view.oldest_pending_age_s >= 2.0, "view must show the stuck job's age");

    let tracer = c.world.tracer();
    let raised = tracer
        .records
        .iter()
        .filter(|r| {
            matches!(r.event, TraceEvent::SloAlert { rule: "pending_age", raised: true, .. })
        })
        .count();
    assert_eq!(raised, 1, "edge-triggered: one raise transition, not one per tick");
    assert!(
        tracer.dumps.iter().any(|d| d.reason == "slo_pending_age"),
        "a breach must freeze the flight recorder (got {:?})",
        tracer.dumps.iter().map(|d| d.reason).collect::<Vec<_>>()
    );
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut s = std::net::TcpStream::connect(addr).expect("connect scrape endpoint");
    write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    let (head, body) = buf.split_once("\r\n\r\n").expect("header block");
    (head.to_owned(), body.to_owned())
}

/// The same workload on the live runtime: the rollup must satisfy the
/// exact same differential invariants (identical cumulative totals, all
/// agents reporting), and the scrape endpoint must serve it mid-flight.
#[test]
fn live_rollup_and_scrape_match_sim() {
    let mut c = LiveCluster::new(plane_config());
    let addr = c.serve_metrics("127.0.0.1:0").expect("bind scrape endpoint");
    for i in 0..N_JOBS {
        c.submit(&plane_job(i), &SubmitOpts::default());
    }
    let done = c.wait_n_done(N_JOBS, Duration::from_secs(120));
    assert_eq!(done, N_JOBS, "live run left jobs unfinished");
    // Let the last heartbeat reports land and a rollup tick fire.
    std::thread::sleep(Duration::from_secs(3));

    let (head, prom) = http_get(addr, "/metrics");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(prom.contains(&format!("fuxi_jobs_finished_total {N_JOBS}")), "{prom}");
    assert!(prom.contains(&format!("fuxi_agents_reporting {N_MACHINES}")), "{prom}");
    let (head, json) = http_get(addr, "/json");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    let v = serde_json::value_from_str(&json).expect("scrape /json must parse");
    let reports = v
        .get_field("summary")
        .and_then(|s| s.get_field("reports_received"))
        .cloned()
        .unwrap_or(serde_json::Value::Null);
    assert!(
        matches!(reports, serde_json::Value::UInt(n) if n > 0),
        "live master must have ingested reports, got {reports:?}"
    );

    let view = c.hub.snapshot();
    let (metrics, _tracer) = c.shutdown();
    assert_view_matches_counters(&view, &metrics);
}
