//! JobMaster snapshots (paper §4.3.1(3)).
//!
//! "For failover, JobMaster exports a snapshot of all instances' status.
//! The snapshot exporting is performed by the event of any instance status
//! change, thus it brings in very little overhead ... This kind of job
//! snapshot is also light-weighted since only the status like 'Running' is
//! recorded."
//!
//! Status changes mark the snapshot dirty; a short coalescing timer writes
//! it, bounding overhead for tasks with tens of thousands of instances
//! while preserving the event-driven semantics.

use fuxi_apsara::StoreHandle;
use serde::{Deserialize, Serialize};

/// Instance status byte.
pub const INST_PENDING: u8 = 0;
/// Inst running.
pub const INST_RUNNING: u8 = 1;
/// Inst done.
pub const INST_DONE: u8 = 2;

/// One task's snapshotted state.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Default)]
pub struct TaskSnapshot {
    /// Task id.
    pub task: u32,
    /// When the attempt started.
    pub started: bool,
    /// Instances completed so far.
    pub finished: bool,
    /// One status byte per instance.
    pub instance_status: Vec<u8>,
    /// `(instance, machine, output_mb, runtime_s)` for done instances —
    /// needed to rebuild downstream shuffle inputs after recovery.
    pub outputs: Vec<(u32, u32, f64, f64)>,
    /// `(instance, attempt, worker)` for running attempts.
    pub running: Vec<(u32, u32, u64)>,
}

/// The whole job snapshot.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Default)]
pub struct JobSnapshot {
    /// Job id.
    pub job: u32,
    /// Application id.
    pub app: u32,
    /// Tasks of the job.
    pub tasks: Vec<TaskSnapshot>,
    /// `(worker, task, machine, actor)` — live containers and how to reach
    /// them for status collection after a restart.
    pub workers: Vec<(u64, u32, u32, u32)>,
    /// Worker-id allocator state, so restarts never reuse an id.
    pub next_worker: u64,
}

impl JobSnapshot {
    fn key(job: u32) -> String {
        format!("jobsnap/{job}")
    }

    /// Save.
    pub fn save(&self, store: &StoreHandle) {
        store.put_json(&Self::key(self.job), self);
    }

    /// Load.
    pub fn load(store: &StoreHandle, job: u32) -> Option<JobSnapshot> {
        store.get_json(&Self::key(job))
    }

    /// Delete.
    pub fn delete(store: &StoreHandle, job: u32) {
        store.delete(&Self::key(job));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> JobSnapshot {
        JobSnapshot {
            job: 7,
            app: 3,
            tasks: vec![TaskSnapshot {
                task: 0,
                started: true,
                finished: false,
                instance_status: vec![INST_DONE, INST_RUNNING, INST_PENDING],
                outputs: vec![(0, 12, 64.0, 30.5)],
                running: vec![(1, 0, 42)],
            }],
            workers: vec![(42, 0, 12, 901)],
            next_worker: 43,
        }
    }

    #[test]
    fn save_load_delete_roundtrip() {
        let store = StoreHandle::new();
        let snap = sample();
        snap.save(&store);
        assert_eq!(JobSnapshot::load(&store, 7), Some(snap));
        assert_eq!(JobSnapshot::load(&store, 8), None);
        JobSnapshot::delete(&store, 7);
        assert_eq!(JobSnapshot::load(&store, 7), None);
    }

    #[test]
    fn snapshot_is_lightweight() {
        // 10k instances must serialize to ~1 status byte each plus running
        // rows, not full instance descriptions.
        let store = StoreHandle::new();
        let snap = JobSnapshot {
            job: 1,
            app: 1,
            tasks: vec![TaskSnapshot {
                task: 0,
                started: true,
                finished: false,
                instance_status: vec![INST_DONE; 10_000],
                outputs: Vec::new(), // trimmed for the size check
                running: vec![],
            }],
            workers: vec![],
            next_worker: 0,
        };
        snap.save(&store);
        assert!(
            store.bytes_written() < 60_000,
            "10k instances ≈ {}B — must stay tens of KB",
            store.bytes_written()
        );
    }
}
