//! Cluster-level faulty-node detection and blacklisting (paper §4.3.2).
//!
//! Three cooperating detectors, exactly as described:
//!
//! 1. **Heartbeat timeout** — "once FuxiMaster finds a heartbeat timeout,
//!    the FuxiAgent will be removed from scheduling resource list and a
//!    resource revocation is sent". Tracked as the *dead* set (distinct
//!    from the blacklist, which is for machines "behaving abnormally yet
//!    not dead").
//! 2. **Health-score plugins** — "disk statistics, machine load and network
//!    I/O are all collected to calculate a score. Once the score is too low
//!    for a long time, FuxiMaster will also mark the machine as
//!    unavailable. With this plugin schema, administrators can add more
//!    check items."
//! 3. **Cross-job marks** — "among different jobs, FuxiMaster will turn
//!    this machine into disabled mode if a same machine is marked bad by
//!    different JobMasters. To avoid abuse ... an upper bound limit can be
//!    configured."

use fuxi_proto::{AppId, MachineId, NodeHealthReport};
use fuxi_sim::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// A pluggable health check producing a score in [0, 1] (1 = healthy).
/// `Send` so a FuxiMaster holding plugins can run on a live-runtime thread.
pub trait HealthPlugin: Send {
    /// Short identifier of this plugin.
    fn name(&self) -> &'static str;
    /// Health score in [0, 1] derived from the report.
    fn score(&self, report: &NodeHealthReport) -> f64;
}

/// Disk health: fraction of disks responding.
pub struct DiskPlugin;
impl HealthPlugin for DiskPlugin {
    fn name(&self) -> &'static str {
        "disk"
    }
    fn score(&self, r: &NodeHealthReport) -> f64 {
        r.disk_ok_ratio.clamp(0.0, 1.0)
    }
}

/// Load: a machine pegged far above capacity scores low.
pub struct LoadPlugin;
impl HealthPlugin for LoadPlugin {
    fn name(&self) -> &'static str {
        "load"
    }
    fn score(&self, r: &NodeHealthReport) -> f64 {
        // 1.0 until fully busy, decaying past that.
        if r.load <= 1.0 {
            1.0
        } else {
            (1.0 / r.load).clamp(0.0, 1.0)
        }
    }
}

/// Network: sustained saturation scores low (congestion proxy).
pub struct NetIoPlugin;
impl HealthPlugin for NetIoPlugin {
    fn name(&self) -> &'static str {
        "netio"
    }
    fn score(&self, r: &NodeHealthReport) -> f64 {
        if r.net_utilization < 0.95 {
            1.0
        } else {
            0.5
        }
    }
}

/// Launch failures: any recent failed process launch is a strong signal of
/// the paper's PartialWorkerFailure class (corrupt disk).
pub struct LaunchFailurePlugin;
impl HealthPlugin for LaunchFailurePlugin {
    fn name(&self) -> &'static str {
        "launch"
    }
    fn score(&self, r: &NodeHealthReport) -> f64 {
        match r.recent_launch_failures {
            0 => 1.0,
            1 => 0.5,
            _ => 0.0,
        }
    }
}

/// Execution speed observed by the agent (SlowMachine detection).
pub struct SpeedPlugin;
impl HealthPlugin for SpeedPlugin {
    fn name(&self) -> &'static str {
        "speed"
    }
    fn score(&self, r: &NodeHealthReport) -> f64 {
        r.speed_factor.clamp(0.0, 1.0)
    }
}

/// Blacklist tuning.
#[derive(Debug, Clone)]
pub struct BlacklistConfig {
    /// Heartbeats older than this mark a machine dead.
    pub heartbeat_timeout: SimDuration,
    /// Combined plugin score below this is "low".
    pub score_threshold: f64,
    /// Low score must persist this long before blacklisting ("too low for a
    /// long time").
    pub low_score_duration: SimDuration,
    /// Distinct JobMasters that must mark a machine before it is disabled.
    pub marks_to_disable: usize,
    /// Upper bound on the blacklisted fraction of the cluster.
    pub max_fraction: f64,
    /// Blacklisted machines are re-admitted after this probation (a healthy
    /// machine should not be lost forever to one bad period).
    pub probation: SimDuration,
}

impl Default for BlacklistConfig {
    fn default() -> Self {
        Self {
            heartbeat_timeout: SimDuration::from_secs(15),
            score_threshold: 0.6,
            low_score_duration: SimDuration::from_secs(30),
            marks_to_disable: 2,
            max_fraction: 0.1,
            probation: SimDuration::from_secs(600),
        }
    }
}

/// Why a machine is currently excluded from scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExclusionReason {
    /// Heartbeat timeout.
    HeartbeatTimeout,
    /// Low health score.
    LowHealthScore,
    /// Cross job marks.
    CrossJobMarks,
}

/// State transition reported back to the master.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// Excluded.
    Excluded(MachineId, ExclusionReason),
    /// Readmitted.
    Readmitted(MachineId),
}

/// The cluster-level blacklist kept by FuxiMaster.
pub struct ClusterBlacklist {
    cfg: BlacklistConfig,
    n_machines: usize,
    plugins: Vec<Box<dyn HealthPlugin>>,
    last_heartbeat: Vec<SimTime>,
    /// When the machine's combined score first went low (None = healthy).
    low_since: Vec<Option<SimTime>>,
    /// Last combined score, for introspection.
    last_score: Vec<f64>,
    /// Jobs that marked each machine bad.
    marks: BTreeMap<MachineId, BTreeSet<AppId>>,
    dead: BTreeSet<MachineId>,
    blacklisted: BTreeMap<MachineId, (ExclusionReason, SimTime)>,
}

impl ClusterBlacklist {
    /// Creates a new instance with the given configuration.
    pub fn new(cfg: BlacklistConfig, n_machines: usize) -> Self {
        Self {
            cfg,
            n_machines,
            plugins: Self::default_plugins(),
            last_heartbeat: vec![SimTime::ZERO; n_machines],
            low_since: vec![None; n_machines],
            last_score: vec![1.0; n_machines],
            marks: BTreeMap::new(),
            dead: BTreeSet::new(),
            blacklisted: BTreeMap::new(),
        }
    }

    /// The paper's stock plugin set: disk, load, network I/O, plus launch
    /// failures and observed speed.
    pub fn default_plugins() -> Vec<Box<dyn HealthPlugin>> {
        vec![
            Box::new(DiskPlugin),
            Box::new(LoadPlugin),
            Box::new(NetIoPlugin),
            Box::new(LaunchFailurePlugin),
            Box::new(SpeedPlugin),
        ]
    }

    /// Administrators "can add more check items to the list".
    pub fn add_plugin(&mut self, plugin: Box<dyn HealthPlugin>) {
        self.plugins.push(plugin);
    }

    /// Is excluded.
    pub fn is_excluded(&self, m: MachineId) -> bool {
        self.dead.contains(&m) || self.blacklisted.contains_key(&m)
    }

    /// Is dead.
    pub fn is_dead(&self, m: MachineId) -> bool {
        self.dead.contains(&m)
    }

    /// Blacklisted count.
    pub fn blacklisted_count(&self) -> usize {
        self.blacklisted.len()
    }

    /// Score.
    pub fn score(&self, m: MachineId) -> f64 {
        self.last_score[m.0 as usize]
    }

    fn at_capacity(&self) -> bool {
        self.blacklisted.len() + 1
            > (self.cfg.max_fraction * self.n_machines as f64).ceil() as usize
    }

    /// Processes one heartbeat. Returns a transition when the machine's
    /// status changes.
    pub fn on_heartbeat(
        &mut self,
        now: SimTime,
        m: MachineId,
        health: &NodeHealthReport,
    ) -> Option<Transition> {
        let idx = m.0 as usize;
        self.last_heartbeat[idx] = now;
        let was_dead = self.dead.remove(&m);
        // Combined score: minimum across plugins (one bad subsystem makes a
        // bad machine; averaging would hide a dead disk behind good CPU).
        let score = self
            .plugins
            .iter()
            .map(|p| p.score(health))
            .fold(1.0f64, f64::min);
        self.last_score[idx] = score;
        if score < self.cfg.score_threshold {
            let since = *self.low_since[idx].get_or_insert(now);
            let low_for = now.since(since);
            if low_for >= self.cfg.low_score_duration
                && !self.blacklisted.contains_key(&m)
                && !self.at_capacity()
            {
                self.blacklisted
                    .insert(m, (ExclusionReason::LowHealthScore, now));
                return Some(Transition::Excluded(m, ExclusionReason::LowHealthScore));
            }
        } else {
            self.low_since[idx] = None;
        }
        if was_dead && !self.blacklisted.contains_key(&m) {
            return Some(Transition::Readmitted(m));
        }
        None
    }

    /// A JobMaster reported this machine bad for its job. Returns a
    /// transition when the cross-job threshold trips.
    pub fn report_mark(&mut self, now: SimTime, app: AppId, m: MachineId) -> Option<Transition> {
        let marks = self.marks.entry(m).or_default();
        marks.insert(app);
        if marks.len() >= self.cfg.marks_to_disable
            && !self.blacklisted.contains_key(&m)
            && !self.at_capacity()
        {
            self.blacklisted
                .insert(m, (ExclusionReason::CrossJobMarks, now));
            return Some(Transition::Excluded(m, ExclusionReason::CrossJobMarks));
        }
        None
    }

    /// Periodic sweep: expire heartbeats, end probations. Returns all
    /// transitions.
    pub fn sweep(&mut self, now: SimTime) -> Vec<Transition> {
        let mut out = Vec::new();
        for i in 0..self.n_machines {
            let m = MachineId(i as u32);
            if !self.dead.contains(&m)
                && now.since(self.last_heartbeat[i]) > self.cfg.heartbeat_timeout
            {
                self.dead.insert(m);
                out.push(Transition::Excluded(m, ExclusionReason::HeartbeatTimeout));
            }
        }
        let expired: Vec<MachineId> = self
            .blacklisted
            .iter()
            .filter(|(_, &(_, since))| now.since(since) >= self.cfg.probation)
            .map(|(&m, _)| m)
            .collect();
        for m in expired {
            // Probation ends only for machines that look healthy again; a
            // still-sick machine stays excluded (its probation restarts).
            if self.last_score[m.0 as usize] < self.cfg.score_threshold {
                if let Some(entry) = self.blacklisted.get_mut(&m) {
                    entry.1 = now;
                }
                continue;
            }
            self.blacklisted.remove(&m);
            self.marks.remove(&m);
            self.low_since[m.0 as usize] = None;
            if !self.dead.contains(&m) {
                out.push(Transition::Readmitted(m));
            }
        }
        out
    }

    /// Hard-state snapshot of the blacklist (machine + reason tag) for the
    /// FuxiMaster checkpoint.
    pub fn snapshot(&self) -> Vec<(u32, u8)> {
        self.blacklisted
            .iter()
            .map(|(&m, &(r, _))| {
                let tag = match r {
                    ExclusionReason::HeartbeatTimeout => 0u8,
                    ExclusionReason::LowHealthScore => 1,
                    ExclusionReason::CrossJobMarks => 2,
                };
                (m.0, tag)
            })
            .collect()
    }

    /// Restores from a checkpoint snapshot (the probation clock restarts).
    pub fn restore(&mut self, now: SimTime, snap: &[(u32, u8)]) {
        for &(m, tag) in snap {
            let reason = match tag {
                1 => ExclusionReason::LowHealthScore,
                2 => ExclusionReason::CrossJobMarks,
                _ => ExclusionReason::HeartbeatTimeout,
            };
            self.blacklisted.insert(MachineId(m), (reason, now));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> BlacklistConfig {
        BlacklistConfig {
            heartbeat_timeout: SimDuration::from_secs(10),
            score_threshold: 0.6,
            low_score_duration: SimDuration::from_secs(20),
            marks_to_disable: 2,
            max_fraction: 0.2,
            probation: SimDuration::from_secs(100),
        }
    }

    fn healthy() -> NodeHealthReport {
        NodeHealthReport::healthy()
    }

    fn sick() -> NodeHealthReport {
        NodeHealthReport {
            disk_ok_ratio: 0.3,
            ..NodeHealthReport::healthy()
        }
    }

    #[test]
    fn heartbeat_timeout_marks_dead_and_readmits() {
        let mut b = ClusterBlacklist::new(cfg(), 10);
        let t0 = SimTime::from_secs(1);
        for i in 0..10 {
            b.on_heartbeat(t0, MachineId(i), &healthy());
        }
        let tr = b.sweep(SimTime::from_secs(5));
        assert!(tr.is_empty());
        // m3 goes silent.
        let t = SimTime::from_secs(20);
        for i in 0..10 {
            if i != 3 {
                b.on_heartbeat(t, MachineId(i), &healthy());
            }
        }
        let tr = b.sweep(t);
        assert_eq!(
            tr,
            vec![Transition::Excluded(MachineId(3), ExclusionReason::HeartbeatTimeout)]
        );
        assert!(b.is_dead(MachineId(3)));
        // It heartbeats again: readmitted.
        let tr = b.on_heartbeat(SimTime::from_secs(25), MachineId(3), &healthy());
        assert_eq!(tr, Some(Transition::Readmitted(MachineId(3))));
        assert!(!b.is_excluded(MachineId(3)));
    }

    #[test]
    fn low_score_must_persist_before_blacklisting() {
        let mut b = ClusterBlacklist::new(cfg(), 10);
        let m = MachineId(0);
        assert!(b.on_heartbeat(SimTime::from_secs(0), m, &sick()).is_none());
        assert!(b.on_heartbeat(SimTime::from_secs(10), m, &sick()).is_none());
        // 20 s of continuous low score: blacklisted.
        let tr = b.on_heartbeat(SimTime::from_secs(20), m, &sick());
        assert_eq!(
            tr,
            Some(Transition::Excluded(m, ExclusionReason::LowHealthScore))
        );
        assert!(b.is_excluded(m));
    }

    #[test]
    fn recovery_resets_the_low_score_clock() {
        let mut b = ClusterBlacklist::new(cfg(), 10);
        let m = MachineId(0);
        b.on_heartbeat(SimTime::from_secs(0), m, &sick());
        b.on_heartbeat(SimTime::from_secs(15), m, &healthy()); // clock resets
        assert!(b.on_heartbeat(SimTime::from_secs(25), m, &sick()).is_none());
        assert!(
            b.on_heartbeat(SimTime::from_secs(40), m, &sick()).is_none(),
            "only 15s low since reset"
        );
        let tr = b.on_heartbeat(SimTime::from_secs(46), m, &sick());
        assert!(tr.is_some());
    }

    #[test]
    fn cross_job_marks_disable_at_threshold() {
        let mut b = ClusterBlacklist::new(cfg(), 10);
        let m = MachineId(4);
        assert!(b.report_mark(SimTime::from_secs(1), AppId(1), m).is_none());
        // Same job marking again does not count twice.
        assert!(b.report_mark(SimTime::from_secs(2), AppId(1), m).is_none());
        let tr = b.report_mark(SimTime::from_secs(3), AppId(2), m);
        assert_eq!(
            tr,
            Some(Transition::Excluded(m, ExclusionReason::CrossJobMarks))
        );
    }

    #[test]
    fn upper_bound_caps_blacklist_size() {
        let mut b = ClusterBlacklist::new(cfg(), 10); // cap = 20% of 10 = 2
        for i in 0..5u32 {
            b.report_mark(SimTime::from_secs(1), AppId(1), MachineId(i));
            b.report_mark(SimTime::from_secs(1), AppId(2), MachineId(i));
        }
        assert_eq!(b.blacklisted_count(), 2, "abuse guard holds");
    }

    #[test]
    fn probation_readmits_blacklisted_machines() {
        let mut b = ClusterBlacklist::new(cfg(), 10);
        let m = MachineId(0);
        b.report_mark(SimTime::from_secs(1), AppId(1), m);
        b.report_mark(SimTime::from_secs(1), AppId(2), m);
        assert!(b.is_excluded(m));
        b.on_heartbeat(SimTime::from_secs(101), m, &healthy());
        let tr = b.sweep(SimTime::from_secs(102));
        assert!(tr.contains(&Transition::Readmitted(m)));
        assert!(!b.is_excluded(m));
    }

    #[test]
    fn combined_score_is_minimum_of_plugins() {
        let mut b = ClusterBlacklist::new(cfg(), 1);
        let r = NodeHealthReport {
            disk_ok_ratio: 1.0,
            load: 0.2,
            net_utilization: 0.1,
            recent_launch_failures: 5, // launch plugin says 0.0
            speed_factor: 1.0,
        };
        b.on_heartbeat(SimTime::from_secs(0), MachineId(0), &r);
        assert_eq!(b.score(MachineId(0)), 0.0);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut b = ClusterBlacklist::new(cfg(), 10);
        b.report_mark(SimTime::from_secs(1), AppId(1), MachineId(7));
        b.report_mark(SimTime::from_secs(1), AppId(2), MachineId(7));
        let snap = b.snapshot();
        let mut b2 = ClusterBlacklist::new(cfg(), 10);
        b2.restore(SimTime::from_secs(30), &snap);
        assert!(b2.is_excluded(MachineId(7)));
    }

    #[test]
    fn custom_plugin_participates() {
        struct AlwaysBad;
        impl HealthPlugin for AlwaysBad {
            fn name(&self) -> &'static str {
                "always-bad"
            }
            fn score(&self, _: &NodeHealthReport) -> f64 {
                0.1
            }
        }
        let mut b = ClusterBlacklist::new(cfg(), 4);
        b.add_plugin(Box::new(AlwaysBad));
        b.on_heartbeat(SimTime::from_secs(0), MachineId(0), &healthy());
        assert!((b.score(MachineId(0)) - 0.1).abs() < 1e-9);
    }
}
