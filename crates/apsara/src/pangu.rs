//! A model of the Pangu distributed file system.
//!
//! Job inputs in the paper are `pangu://` URIs (Figure 6). What the
//! scheduler actually consumes from the DFS is *placement*: which machines
//! hold replicas of which chunk, so map instances can be scheduled where
//! their data lives ("computation at best happens where data resides").
//! This module models exactly that: files are split into fixed-size chunks
//! and replicas are placed with the classic policy — first replica on a
//! random machine, second in the same rack, third in a remote rack.

use fuxi_proto::topology::Topology;
use fuxi_proto::MachineId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// One chunk of a file.
#[derive(Debug, Clone, PartialEq)]
pub struct Chunk {
    /// Chunk size, MB.
    pub size_mb: f64,
    /// Machines holding a replica, primary first.
    pub replicas: Vec<MachineId>,
}

/// A file: an ordered list of chunks.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PanguFile {
    /// Ordered chunks of the file.
    pub chunks: Vec<Chunk>,
}

impl PanguFile {
    /// Total mb.
    pub fn total_mb(&self) -> f64 {
        self.chunks.iter().map(|c| c.size_mb).sum()
    }
}

/// The file system model.
#[derive(Debug)]
pub struct PanguFs {
    files: BTreeMap<String, PanguFile>,
    rng: SmallRng,
}

impl PanguFs {
    /// Creates a new instance with the given configuration.
    pub fn new(seed: u64) -> Self {
        Self {
            files: BTreeMap::new(),
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Creates a file of `total_mb` in `chunk_mb` chunks with `replication`
    /// replicas each, placed over live machines of `topo`.
    pub fn create(
        &mut self,
        name: &str,
        total_mb: f64,
        chunk_mb: f64,
        replication: usize,
        topo: &Topology,
    ) -> &PanguFile {
        let n_chunks = (total_mb / chunk_mb).ceil().max(1.0) as usize;
        let mut chunks = Vec::with_capacity(n_chunks);
        let mut remaining = total_mb;
        for _ in 0..n_chunks {
            let size = chunk_mb.min(remaining);
            remaining -= size;
            chunks.push(Chunk {
                size_mb: size,
                replicas: self.place_replicas(replication, topo),
            });
        }
        self.files.insert(name.to_owned(), PanguFile { chunks });
        &self.files[name]
    }

    fn place_replicas(&mut self, replication: usize, topo: &Topology) -> Vec<MachineId> {
        let n = topo.n_machines() as u32;
        let mut replicas = Vec::with_capacity(replication);
        // Primary: uniform random machine.
        let primary = MachineId(self.rng.gen_range(0..n));
        replicas.push(primary);
        if replication >= 2 {
            // Second: same rack as primary, different machine when possible.
            let rack = topo.rack_of(primary);
            let peers: Vec<MachineId> = topo
                .machines_in_rack(rack)
                .iter()
                .copied()
                .filter(|&m| m != primary)
                .collect();
            if let Some(&m) = peers.as_slice().choose(&mut self.rng) {
                replicas.push(m);
            }
        }
        while replicas.len() < replication {
            // Remaining: random machines in other racks.
            let m = MachineId(self.rng.gen_range(0..n));
            let off_rack = topo.rack_of(m) != topo.rack_of(primary) || topo.n_racks() == 1;
            if off_rack && !replicas.contains(&m) {
                replicas.push(m);
            }
        }
        replicas
    }

    /// Get.
    pub fn get(&self, name: &str) -> Option<&PanguFile> {
        self.files.get(name)
    }

    /// Delete.
    pub fn delete(&mut self, name: &str) {
        self.files.remove(name);
    }

    /// Files matching a `pangu://` glob-free prefix pattern (the paper's
    /// `FilePattern`). A trailing `*` matches any suffix.
    pub fn matching(&self, pattern: &str) -> Vec<String> {
        let pat = pattern.strip_prefix("pangu://").unwrap_or(pattern);
        if let Some(prefix) = pat.strip_suffix('*') {
            self.files
                .keys()
                .filter(|k| k.starts_with(prefix))
                .cloned()
                .collect()
        } else {
            self.files.keys().filter(|k| *k == pat).cloned().collect()
        }
    }
}

/// Cloneable handle to a shared [`PanguFs`]. `Arc<Mutex>`-backed so one
/// handle serves the kernel and the live runtime alike.
#[derive(Debug, Clone)]
pub struct PanguHandle {
    inner: Arc<Mutex<PanguFs>>,
}

impl PanguHandle {
    /// Creates a new instance with the given configuration.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: Arc::new(Mutex::new(PanguFs::new(seed))),
        }
    }

    /// Create.
    pub fn create(
        &self,
        name: &str,
        total_mb: f64,
        chunk_mb: f64,
        replication: usize,
        topo: &Topology,
    ) {
        self.inner
            .lock()
            .unwrap()
            .create(name, total_mb, chunk_mb, replication, topo);
    }

    /// File.
    pub fn file(&self, name: &str) -> Option<PanguFile> {
        self.inner.lock().unwrap().get(name).cloned()
    }

    /// Matching.
    pub fn matching(&self, pattern: &str) -> Vec<String> {
        self.inner.lock().unwrap().matching(pattern)
    }

    /// Delete.
    pub fn delete(&self, name: &str) {
        self.inner.lock().unwrap().delete(name);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuxi_proto::topology::{MachineSpec, TopologyBuilder};

    fn topo() -> Topology {
        TopologyBuilder::new()
            .uniform(5, 10, MachineSpec::default())
            .build()
    }

    #[test]
    fn create_splits_into_chunks() {
        let t = topo();
        let mut fs = PanguFs::new(1);
        let f = fs.create("input", 1000.0, 256.0, 3, &t);
        assert_eq!(f.chunks.len(), 4);
        assert!((f.total_mb() - 1000.0).abs() < 1e-9);
        assert!((f.chunks[3].size_mb - 232.0).abs() < 1e-9, "last chunk is the remainder");
    }

    #[test]
    fn replica_policy_rack_aware() {
        let t = topo();
        let mut fs = PanguFs::new(2);
        let f = fs.create("input", 25600.0, 256.0, 3, &t).clone();
        for c in &f.chunks {
            assert_eq!(c.replicas.len(), 3);
            let r0 = t.rack_of(c.replicas[0]);
            let r1 = t.rack_of(c.replicas[1]);
            let r2 = t.rack_of(c.replicas[2]);
            assert_eq!(r0, r1, "second replica shares the primary's rack");
            assert_ne!(r0, r2, "third replica is off-rack");
            assert_ne!(c.replicas[0], c.replicas[1]);
        }
    }

    #[test]
    fn placement_spreads_over_cluster() {
        let t = topo();
        let mut fs = PanguFs::new(3);
        let f = fs.create("big", 100.0 * 256.0, 256.0, 1, &t).clone();
        let distinct: std::collections::HashSet<_> =
            f.chunks.iter().map(|c| c.replicas[0]).collect();
        assert!(distinct.len() > 25, "100 chunks should hit >25 of 50 machines");
    }

    #[test]
    fn pattern_matching() {
        let t = topo();
        let mut fs = PanguFs::new(4);
        fs.create("logs/day1", 10.0, 10.0, 1, &t);
        fs.create("logs/day2", 10.0, 10.0, 1, &t);
        fs.create("other", 10.0, 10.0, 1, &t);
        assert_eq!(fs.matching("pangu://logs/*").len(), 2);
        assert_eq!(fs.matching("pangu://other").len(), 1);
        assert_eq!(fs.matching("pangu://nope*").len(), 0);
    }

    #[test]
    fn handle_shares_state() {
        let t = topo();
        let h = PanguHandle::new(5);
        h.create("f", 100.0, 50.0, 2, &t);
        let h2 = h.clone();
        assert_eq!(h2.file("f").unwrap().chunks.len(), 2);
        h2.delete("f");
        assert!(h.file("f").is_none());
    }

    #[test]
    fn single_rack_cluster_still_places() {
        let t = TopologyBuilder::new()
            .uniform(1, 5, MachineSpec::default())
            .build();
        let mut fs = PanguFs::new(6);
        let f = fs.create("f", 256.0, 256.0, 3, &t).clone();
        assert_eq!(f.chunks[0].replicas.len(), 3);
    }
}
