//! The synthetic workload of §5.2.1.
//!
//! "We keep 1,000 jobs concurrently running by starting a new job when one
//! job finishes. ... we use WordCount and Terasort with the following
//! specifications evenly distributed. The number of map instance and reduce
//! instance are (10,10), (100,10), (100,100), (1k,100), (1k,1k) and
//! (10k,5k) in each type respectively. The average execution time ranges
//! from 10 seconds to 10 minutes and each instance resource request is
//! configured as 0.5 core CPU with 2GB memory."

use crate::mapreduce::{terasort_job, wordcount_job, MapReduceParams};
use fuxi_job::desc::JobDesc;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The six (maps, reduces) shapes of the paper.
pub const PAPER_SHAPES: [(u32, u32); 6] = [
    (10, 10),
    (100, 10),
    (100, 100),
    (1_000, 100),
    (1_000, 1_000),
    (10_000, 5_000),
];

/// One job drawn from the mix.
#[derive(Debug, Clone)]
pub struct SyntheticSpec {
    /// Task description.
    pub desc: JobDesc,
    /// Workload kind ("wordcount" or "terasort").
    pub kind: &'static str,
    /// (maps, reduces) shape drawn from the paper's six classes.
    pub shape: (u32, u32),
}

/// The generator. `scale` shrinks instance counts proportionally so the
/// experiment fits smaller clusters while keeping the mix's shape
/// (scale = 1.0 reproduces the paper's numbers).
pub struct SyntheticMix {
    rng: SmallRng,
    scale: f64,
    counter: u64,
    /// Container cap relative to instances (workers per task); the paper's
    /// production trace shows ~0.4 workers per instance on average.
    pub workers_per_instances: f64,
    /// Absolute per-task container cap. Table 1 shows even 99,937-instance
    /// tasks ran on ≤4,636 workers; capping the mix's giants at ~540
    /// containers makes 1,000 concurrent jobs oversubscribe 240k slots by
    /// ~1.2× (the paper's saturated-but-live operating point) while leaving
    /// small jobs schedulable alongside them.
    pub max_workers_abs: u32,
    /// Duration range, seconds.
    pub duration_range: (f64, f64),
}

impl SyntheticMix {
    /// Creates a new instance with the given configuration.
    pub fn new(seed: u64, scale: f64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
            scale: scale.clamp(0.001, 1.0),
            counter: 0,
            workers_per_instances: 0.5,
            max_workers_abs: 540,
            duration_range: (10.0, 600.0),
        }
    }

    fn scaled(&self, n: u32) -> u32 {
        ((n as f64 * self.scale).round() as u32).max(1)
    }

    /// Draws the next job: shapes cycle round-robin ("evenly distributed"),
    /// kinds alternate, durations sampled uniformly from the range.
    pub fn next_job(&mut self) -> SyntheticSpec {
        let shape = PAPER_SHAPES[(self.counter % 6) as usize];
        let wordcount = self.counter.is_multiple_of(2);
        self.counter += 1;
        let (lo, hi) = self.duration_range;
        let map_d = self.rng.gen_range(lo..hi);
        let red_d = self.rng.gen_range(lo..hi);
        let maps = self.scaled(shape.0);
        let reduces = self.scaled(shape.1);
        let max_workers = ((maps as f64 * self.workers_per_instances).ceil() as u32)
            .min(self.max_workers_abs.max(1))
            .clamp(1, maps);
        let p = MapReduceParams {
            maps,
            reduces,
            map_duration_s: map_d,
            reduce_duration_s: red_d,
            jitter: 0.2,
            cpu: 0.5,
            memory_mb: 2048,
            max_workers,
            ..Default::default()
        };
        let desc = if wordcount {
            wordcount_job(&p)
        } else {
            terasort_job(&p)
        };
        SyntheticSpec {
            desc,
            kind: if wordcount { "wordcount" } else { "terasort" },
            shape,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_all_shapes_evenly() {
        let mut mix = SyntheticMix::new(1, 1.0);
        let shapes: Vec<(u32, u32)> = (0..12).map(|_| mix.next_job().shape).collect();
        assert_eq!(&shapes[..6], &PAPER_SHAPES);
        assert_eq!(&shapes[6..], &PAPER_SHAPES);
    }

    #[test]
    fn alternates_kinds() {
        let mut mix = SyntheticMix::new(1, 1.0);
        let kinds: Vec<&str> = (0..4).map(|_| mix.next_job().kind).collect();
        assert_eq!(kinds, vec!["wordcount", "terasort", "wordcount", "terasort"]);
    }

    #[test]
    fn durations_within_paper_range() {
        let mut mix = SyntheticMix::new(7, 1.0);
        for _ in 0..20 {
            let j = mix.next_job();
            for t in j.desc.tasks.values() {
                assert!(t.duration_s >= 10.0 && t.duration_s <= 600.0);
                assert_eq!(t.cpu, 0.5);
                assert_eq!(t.memory_mb, 2048);
            }
        }
    }

    #[test]
    fn scale_shrinks_but_never_zeroes() {
        let mut mix = SyntheticMix::new(1, 0.01);
        for _ in 0..6 {
            let j = mix.next_job();
            for t in j.desc.tasks.values() {
                assert!(t.instances >= 1);
                assert!(t.instances <= 100, "10k maps scale to 100");
            }
        }
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a: Vec<String> = {
            let mut m = SyntheticMix::new(42, 1.0);
            (0..3).map(|_| m.next_job().desc.to_json()).collect()
        };
        let b: Vec<String> = {
            let mut m = SyntheticMix::new(42, 1.0);
            (0..3).map(|_| m.next_job().desc.to_json()).collect()
        };
        assert_eq!(a, b);
    }
}
