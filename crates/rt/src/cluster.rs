//! A fully wired *live* Fuxi cluster: the same production actors the
//! simulated harness runs — lock service, FuxiMaster pair, one FuxiAgent
//! per machine, JobMaster/TaskWorker factories, a submitting client — but
//! on OS threads under [`LiveRuntime`] instead of the kernel.
//!
//! The wiring mirrors `fuxi_cluster::Cluster::new` step for step and
//! reuses its [`ClusterConfig`]/[`SubmitOpts`]/[`JobState`] types, so a
//! scenario can be expressed once and run on either engine (the sim↔live
//! parity test does exactly that).

use crate::runtime::{LiveRuntime, RuntimeConfig};
use fuxi_agent::{FuxiAgent, MasterFactory, MasterLaunch, WorkerFactory, WorkerLaunch};
use fuxi_apsara::{LockService, NameRegistry, PanguHandle, StoreHandle};
use fuxi_cluster::deploy::{ActorGroup, DeployTopology};
use fuxi_cluster::{ClusterConfig, JobState, SubmitOpts};
use fuxi_core::master::FuxiMaster;
use fuxi_job::job_master::JobMaster;
use fuxi_job::worker::TaskWorker;
use fuxi_job::JobDesc;
use fuxi_proto::msg::AppDescription;
use fuxi_proto::topology::{Topology, TopologyBuilder};
use fuxi_proto::{JobId, MachineId, Msg};
use fuxi_sim::{
    Actor, ActorId, Ctx, MachineConfig, Metrics, SimDuration, TraceId, Tracer,
};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

type ClientLog = Arc<Mutex<BTreeMap<JobId, JobState>>>;

/// The live client actor: submits jobs to the current master (retrying
/// across failovers) and records outcomes. Same protocol as the simulated
/// harness's client.
struct Client {
    naming: NameRegistry,
    log: ClientLog,
    pending: BTreeMap<JobId, AppDescription>,
}

impl Actor<Msg> for Client {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.timer(SimDuration::from_secs(2), 1);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: ActorId, msg: Msg) {
        match msg {
            Msg::SubmitJob { job, desc, .. } => {
                self.log.lock().unwrap().entry(job).or_insert(JobState {
                    submitted_s: ctx.now().as_secs_f64(),
                    ..Default::default()
                });
                self.pending.insert(job, desc.clone());
                if let Some(fm) = self.naming.master() {
                    ctx.send(
                        fm,
                        Msg::SubmitJob {
                            job,
                            desc,
                            client: ctx.id(),
                        },
                    );
                }
            }
            Msg::JobAccepted { job, .. } => {
                if let Some(st) = self.log.lock().unwrap().get_mut(&job) {
                    st.accepted = true;
                }
                self.pending.remove(&job);
            }
            Msg::JobFinished {
                job,
                success,
                message,
                ..
            } => {
                if let Some(st) = self.log.lock().unwrap().get_mut(&job) {
                    st.done = Some((success, ctx.now().as_secs_f64(), message));
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: u64) {
        if let Some(fm) = self.naming.master() {
            for (&job, desc) in &self.pending {
                ctx.send_traced(
                    fm,
                    Msg::SubmitJob {
                        job,
                        desc: desc.clone(),
                        client: ctx.id(),
                    },
                    TraceId::from_job(job.0),
                );
            }
        }
        ctx.timer(SimDuration::from_secs(2), 1);
    }
}

/// A fully wired live Fuxi cluster.
pub struct LiveCluster {
    /// The live runtime everything runs in.
    pub rt: LiveRuntime<Msg>,
    /// Shared name service.
    pub naming: NameRegistry,
    /// Shared checkpoint store.
    pub store: StoreHandle,
    /// Shared DFS model.
    pub pangu: PanguHandle,
    /// Cluster topology.
    pub topo: Arc<Topology>,
    /// Lock-service actor.
    pub lock: ActorId,
    /// FuxiMaster actors spawned (primary and standbys).
    pub masters: Vec<ActorId>,
    /// Agent actor per machine (index = machine id).
    pub agents: Vec<ActorId>,
    /// Submitting client's actor address.
    pub client: ActorId,
    /// Shared cluster metrics view — what the scrape endpoint serves.
    pub hub: fuxi_sim::obs::MetricsHub,
    log: ClientLog,
    next_job: u32,
}

impl LiveCluster {
    /// Boots a live cluster with the same wiring the simulated harness
    /// builds, driven by the same [`ClusterConfig`]. Equivalent to
    /// flattening [`DeployTopology::single_process`].
    pub fn new(cfg: ClusterConfig) -> Self {
        Self::from_topology(DeployTopology::single_process(cfg))
    }

    /// Boots every actor group of `deploy` — whatever node it is assigned
    /// to — inside **one** process and one runtime. This is the
    /// single-process flattening of the shared topology surface; the
    /// multi-process runner (`fuxi-node`) boots the same topology one
    /// node at a time instead.
    pub fn from_topology(deploy: DeployTopology) -> Self {
        let cfg = deploy.cluster.clone();
        let topo = {
            let mut b = TopologyBuilder::new();
            let full = cfg.n_machines / cfg.rack_size;
            let rem = cfg.n_machines % cfg.rack_size;
            b = b.uniform(full, cfg.rack_size, cfg.machine_spec.clone());
            if rem > 0 {
                b = b.add_rack(vec![cfg.machine_spec.clone(); rem]);
            }
            Arc::new(b.build())
        };
        let machines: Vec<MachineConfig> = topo
            .machines()
            .map(|m| MachineConfig {
                rack: topo.rack_of(m).0,
                disk_bw_mbps: topo.spec(m).disk_bw_mbps,
                net_bw_mbps: topo.spec(m).net_bw_mbps,
            })
            .collect();
        let rt: LiveRuntime<Msg> = LiveRuntime::new(RuntimeConfig {
            machines,
            seed: cfg.seed,
            obs: cfg.obs.clone(),
            ..RuntimeConfig::default()
        });
        let naming = NameRegistry::new();
        let store = StoreHandle::new();
        let pangu = PanguHandle::new(cfg.seed.wrapping_mul(31).wrapping_add(7));

        let worker_cfg = cfg.jm.worker.clone();
        let worker_factory: WorkerFactory = Arc::new(move |launch: &WorkerLaunch| {
            Box::new(TaskWorker::from_spec(&launch.spec, worker_cfg.clone()))
        });
        let jm_cfg = cfg.jm.clone();
        let (n2, s2, p2, t2) = (naming.clone(), store.clone(), pangu.clone(), topo.clone());
        let master_factory: MasterFactory = Arc::new(move |launch: &MasterLaunch| {
            Box::new(JobMaster::new(
                launch.app,
                launch.job,
                jm_cfg.clone(),
                n2.clone(),
                s2.clone(),
                p2.clone(),
                t2.clone(),
                launch.desc.payload.clone(),
                launch.desc.master_resource.clone(),
            ))
        });

        // Both masters share one hub, and the runtime's clock thread
        // samples mailbox depths into the same view (satellite: queue
        // gauges are windowed series, not just a high-water mark).
        let hub = fuxi_sim::obs::MetricsHub::new(cfg.master.metrics.window_s);
        rt.attach_hub(hub.clone());

        // Spawn every group of every node, in topology order. The lock
        // service always precedes the masters in the canonical layouts,
        // so its id is known by the time a master needs it.
        let log: ClientLog = Arc::new(Mutex::new(BTreeMap::new()));
        let mut lock = ActorId::NONE;
        let mut masters = Vec::new();
        let mut agents = Vec::new();
        let mut client = ActorId::NONE;
        for node in &deploy.nodes {
            for group in &node.actors {
                match group {
                    ActorGroup::LockService => {
                        lock = rt.spawn(None, Box::new(LockService::with_defaults()));
                    }
                    ActorGroup::Master => {
                        assert_ne!(lock, ActorId::NONE, "lock service must precede masters");
                        masters.push(rt.spawn(
                            None,
                            Box::new(FuxiMaster::new(
                                cfg.master.clone(),
                                (*topo).clone(),
                                naming.clone(),
                                store.clone(),
                                lock,
                                hub.clone(),
                            )),
                        ));
                    }
                    ActorGroup::Agents { first, count } => {
                        for k in *first..(*first + *count) {
                            let m = MachineId(k);
                            agents.push(rt.spawn(
                                Some(m.0),
                                Box::new(FuxiAgent::new(
                                    m,
                                    topo.spec(m).resources.clone(),
                                    cfg.agent.clone(),
                                    naming.clone(),
                                    master_factory.clone(),
                                    worker_factory.clone(),
                                )),
                            ));
                        }
                    }
                    ActorGroup::Client => {
                        client = rt.spawn(
                            None,
                            Box::new(Client {
                                naming: naming.clone(),
                                log: log.clone(),
                                pending: BTreeMap::new(),
                            }),
                        );
                    }
                }
            }
        }

        Self {
            rt,
            naming,
            store,
            pangu,
            topo,
            lock,
            masters,
            agents,
            client,
            hub,
            log,
            next_job: 1,
        }
    }

    /// Starts the HTTP scrape endpoint on `addr` (e.g. `"127.0.0.1:9090"`)
    /// serving this cluster's view; returns the bound address.
    pub fn serve_metrics(&self, addr: &str) -> std::io::Result<std::net::SocketAddr> {
        crate::scrape::serve(self.hub.clone(), addr)
    }

    /// Submits a job description; returns its id immediately.
    pub fn submit(&mut self, desc: &JobDesc, opts: &SubmitOpts) -> JobId {
        let job = JobId(self.next_job);
        self.next_job += 1;
        let app_desc = AppDescription {
            app_type: "fuxi_job".to_owned(),
            quota_group: opts.quota_group,
            priority: opts.priority,
            master_resource: fuxi_proto::ResourceVec::cores_mb(1, 2048),
            master_package_mb: opts.master_package_mb,
            payload: desc.to_json(),
        };
        self.rt.send_external_traced(
            self.client,
            Msg::SubmitJob {
                job,
                desc: app_desc,
                client: self.client,
            },
            TraceId::from_job(job.0),
        );
        job
    }

    /// Job state as the client observed it.
    pub fn job_state(&self, job: JobId) -> Option<JobState> {
        self.log.lock().unwrap().get(&job).cloned()
    }

    /// `Some((success, finish_time_s))` once the job reached a terminal
    /// state.
    pub fn job_done(&self, job: JobId) -> Option<(bool, f64)> {
        self.log
            .lock()
            .unwrap()
            .get(&job)
            .and_then(|st| st.done.as_ref().map(|&(ok, t, _)| (ok, t)))
    }

    /// Number of jobs in a terminal state.
    pub fn finished_count(&self) -> usize {
        self.log
            .lock()
            .unwrap()
            .values()
            .filter(|s| s.done.is_some())
            .count()
    }

    /// All jobs and their client-observed states.
    pub fn all_jobs(&self) -> Vec<(JobId, JobState)> {
        self.log
            .lock()
            .unwrap()
            .iter()
            .map(|(&j, s)| (j, s.clone()))
            .collect()
    }

    /// Blocks until `n` jobs are terminal or `timeout` passes; returns how
    /// many finished.
    pub fn wait_n_done(&self, n: usize, timeout: Duration) -> usize {
        let start = Instant::now();
        while start.elapsed() < timeout {
            if self.finished_count() >= n {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        self.finished_count()
    }

    /// The actor currently holding the master role.
    pub fn current_master(&self) -> Option<ActorId> {
        self.naming.master()
    }

    /// Kills the current primary FuxiMaster (the paper's
    /// FuxiMasterFailure fault) — live, mid-run.
    pub fn kill_primary_master(&self) {
        if let Some(fm) = self.naming.master() {
            self.rt.kill_actor(fm);
        }
    }

    /// Takes a machine down (NodeDown fault).
    pub fn kill_machine(&self, m: MachineId) {
        self.rt.kill_machine(m.0);
    }

    /// Stops the cluster and returns the merged metrics and tracer.
    pub fn shutdown(self) -> (Metrics, Tracer) {
        self.rt.shutdown()
    }
}
