//! Criterion: incremental-protocol primitives — delta application, delta
//! merging (FuxiMaster's batch mode) and sequence-channel bookkeeping.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fuxi_proto::msg::{SeqReceiver, SeqSender};
use fuxi_proto::request::{RequestDelta, RequestState, ScheduleUnitDef};
use fuxi_proto::{MachineId, Priority, ResourceVec, UnitId};

fn bench(c: &mut Criterion) {
    c.bench_function("delta_apply_cluster_level", |b| {
        let mut st = RequestState::new(ScheduleUnitDef::new(
            UnitId(0),
            Priority(1000),
            ResourceVec::new(500, 2048),
        ));
        let up = RequestDelta::cluster(UnitId(0), 5);
        let down = RequestDelta::cluster(UnitId(0), -5);
        b.iter(|| {
            st.apply(black_box(&up));
            st.apply(black_box(&down));
        });
    });

    c.bench_function("delta_apply_with_machine_hints", |b| {
        let mut st = RequestState::new(ScheduleUnitDef::new(
            UnitId(0),
            Priority(1000),
            ResourceVec::new(500, 2048),
        ));
        let up = RequestDelta {
            unit: UnitId(0),
            machine: (0..16).map(|i| (MachineId(i), 2i64)).collect(),
            rack: vec![],
            cluster: 32,
            avoid_add: vec![],
            avoid_remove: vec![],
        };
        let down = RequestDelta {
            unit: UnitId(0),
            machine: (0..16).map(|i| (MachineId(i), -2i64)).collect(),
            rack: vec![],
            cluster: -32,
            avoid_add: vec![],
            avoid_remove: vec![],
        };
        b.iter(|| {
            st.apply(black_box(&up));
            st.apply(black_box(&down));
        });
    });

    c.bench_function("delta_merge_batching", |b| {
        // FuxiMaster merges "frequently changing resource requests from one
        // application" before applying them (§3.4).
        let incoming: Vec<RequestDelta> = (0..32)
            .map(|i| RequestDelta::machine(UnitId(0), MachineId(i % 8), 1))
            .collect();
        b.iter(|| {
            let mut acc = RequestDelta::cluster(UnitId(0), 0);
            for d in &incoming {
                acc.merge(black_box(d));
            }
            black_box(acc)
        });
    });

    c.bench_function("seq_channel_accept", |b| {
        let mut tx = SeqSender::new();
        let mut rx = SeqReceiver::new();
        b.iter(|| {
            let s = tx.next();
            black_box(rx.accept(s));
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
