//! A YARN-like resource manager (baseline).
//!
//! Differences from Fuxi's engine, per the paper:
//!
//! * **Heartbeat-driven**: allocation decisions happen when a node manager
//!   heartbeats, not when resources change — so a freed container waits on
//!   average half a heartbeat interval before reuse.
//! * **Per-task containers**: "whenever a task completes, the node manager
//!   always reclaims back the resources, even though the application master
//!   has more ready tasks to execute."
//! * **Repeated asks**: pending requests are re-asserted on every AM
//!   heartbeat rather than stated once incrementally; the message-volume
//!   ablation counts these.

use fuxi_proto::{AppId, MachineId, ResourceVec};
use std::collections::VecDeque;

/// Baseline tuning.
#[derive(Debug, Clone)]
pub struct YarnConfig {
    /// Node-manager heartbeat interval, seconds (YARN default: 1 s).
    pub nm_heartbeat_s: f64,
    /// AM → RM heartbeat (ask re-assertion) interval, seconds.
    pub am_heartbeat_s: f64,
}

impl Default for YarnConfig {
    fn default() -> Self {
        Self {
            nm_heartbeat_s: 1.0,
            am_heartbeat_s: 1.0,
        }
    }
}

/// One granted container.
#[derive(Debug, Clone, PartialEq)]
pub struct YarnAllocation {
    /// Application id.
    pub app: AppId,
    /// Machine this applies to.
    pub machine: MachineId,
    /// Resource amount.
    pub resource: ResourceVec,
    /// Seconds the ask waited in the queue before this grant.
    pub queued_s: f64,
}

#[derive(Debug)]
struct Ask {
    app: AppId,
    resource: ResourceVec,
    remaining: u64,
    preferred: Option<MachineId>,
    asked_at_s: f64,
}

/// The YARN-like scheduler core.
pub struct YarnScheduler {
    cfg: YarnConfig,
    free: Vec<ResourceVec>,
    queue: VecDeque<Ask>,
    /// Counters for the ablation benches.
    pub messages: u64,
    /// Containers allocated so far.
    pub allocations: u64,
    /// Queue entries examined across all heartbeats.
    pub scan_steps: u64,
}

impl YarnScheduler {
    /// Creates a new instance with the given configuration.
    pub fn new(cfg: YarnConfig, capacities: Vec<ResourceVec>) -> Self {
        Self {
            cfg,
            free: capacities,
            queue: VecDeque::new(),
            messages: 0,
            allocations: 0,
            scan_steps: 0,
        }
    }

    /// Config.
    pub fn config(&self) -> &YarnConfig {
        &self.cfg
    }

    /// AM submits (or re-submits) an ask. YARN AMs repeat their full
    /// outstanding ask every AM heartbeat; callers model that by invoking
    /// this again with the still-outstanding count (the message counter
    /// ticks every time).
    pub fn ask(
        &mut self,
        now_s: f64,
        app: AppId,
        resource: ResourceVec,
        count: u64,
        preferred: Option<MachineId>,
    ) {
        self.messages += 1;
        if count == 0 {
            return;
        }
        // Replace any previous ask from this app for the same shape.
        if let Some(existing) = self
            .queue
            .iter_mut()
            .find(|a| a.app == app && a.resource == resource && a.preferred == preferred)
        {
            existing.remaining = count;
            return;
        }
        self.queue.push_back(Ask {
            app,
            resource,
            remaining: count,
            preferred,
            asked_at_s: now_s,
        });
    }

    /// Node `m` heartbeats with its current free resources implied by the
    /// scheduler's books; the RM hands out whatever fits, FIFO. Returns the
    /// allocations made.
    pub fn node_heartbeat(&mut self, now_s: f64, m: MachineId) -> Vec<YarnAllocation> {
        self.messages += 1;
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.queue.len() {
            self.scan_steps += 1;
            let ask = &mut self.queue[i];
            // Strict locality first pass is not modelled: YARN's delay
            // scheduling eventually relaxes to any node; we grant anywhere,
            // counting a locality miss when a preference existed.
            let fits = ask.resource.fits_in(&self.free[m.0 as usize]);
            if fits && ask.remaining > 0 {
                self.free[m.0 as usize].saturating_sub(&ask.resource);
                ask.remaining -= 1;
                self.allocations += 1;
                out.push(YarnAllocation {
                    app: ask.app,
                    machine: m,
                    resource: ask.resource.clone(),
                    queued_s: now_s - ask.asked_at_s,
                });
                if ask.remaining == 0 {
                    self.queue.remove(i);
                    continue;
                }
            } else {
                i += 1;
            }
            if self.free[m.0 as usize].is_zero() {
                break;
            }
        }
        out
    }

    /// A container completed: the node manager reclaims it. The AM must ask
    /// again for further work (the Fuxi/YARN difference under test).
    pub fn release(&mut self, m: MachineId, resource: &ResourceVec) {
        self.messages += 1;
        self.free[m.0 as usize].add(resource);
    }

    /// Queue len.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Free on.
    pub fn free_on(&self, m: MachineId) -> &ResourceVec {
        &self.free[m.0 as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(n: usize) -> YarnScheduler {
        YarnScheduler::new(
            YarnConfig::default(),
            vec![ResourceVec::cores_mb(12, 96 * 1024); n],
        )
    }

    #[test]
    fn allocations_happen_only_on_heartbeat() {
        let mut s = sched(2);
        s.ask(0.0, AppId(1), ResourceVec::new(1000, 2048), 3, None);
        assert_eq!(s.queue_len(), 1);
        let a = s.node_heartbeat(1.0, MachineId(0));
        assert_eq!(a.len(), 3);
        assert!(a.iter().all(|x| (x.queued_s - 1.0).abs() < 1e-9));
        assert_eq!(s.queue_len(), 0);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut s = sched(1);
        let big = ResourceVec::cores_mb(12, 96 * 1024);
        s.ask(0.0, AppId(1), big.clone(), 1, None);
        s.ask(0.0, AppId(2), ResourceVec::new(1000, 1024), 1, None);
        let a = s.node_heartbeat(1.0, MachineId(0));
        // app1's machine-sized ask goes first, leaving nothing for app2.
        assert_eq!(a.len(), 1);
        assert_eq!(a[0].app, AppId(1));
        assert_eq!(s.queue_len(), 1);
    }

    #[test]
    fn release_then_next_heartbeat_reuses() {
        let mut s = sched(1);
        let unit = ResourceVec::cores_mb(12, 96 * 1024);
        s.ask(0.0, AppId(1), unit.clone(), 1, None);
        let a = s.node_heartbeat(1.0, MachineId(0));
        assert_eq!(a.len(), 1);
        s.ask(1.0, AppId(2), unit.clone(), 1, None);
        // Nothing free until release + heartbeat.
        assert!(s.node_heartbeat(2.0, MachineId(0)).is_empty());
        s.release(MachineId(0), &unit);
        let b = s.node_heartbeat(3.0, MachineId(0));
        assert_eq!(b.len(), 1);
        assert_eq!(b[0].app, AppId(2));
        assert!((b[0].queued_s - 2.0).abs() < 1e-9, "waited for hb after release");
    }

    #[test]
    fn repeated_asks_update_in_place_but_count_messages() {
        let mut s = sched(1);
        let r = ResourceVec::new(1000, 2048);
        s.ask(0.0, AppId(1), r.clone(), 5, None);
        let m0 = s.messages;
        for t in 1..=10 {
            s.ask(t as f64, AppId(1), r.clone(), 5, None);
        }
        assert_eq!(s.queue_len(), 1, "asks coalesce");
        assert_eq!(s.messages, m0 + 10, "but every re-assertion is a message");
    }
}
