//! Every message exchanged between Fuxi components, plus the sequencing
//! layer that makes incremental (delta) channels idempotent and
//! gap-detecting (paper Section 3.1: "we must ensure the changed portions be
//! delivered and processed in the same order at the receiver side as they
//! are generated on sender side ... we must ensure the idempotency of the
//! handling of duplicated delta messages").

use crate::health::NodeHealthReport;
use crate::ids::{AppId, InstanceId, JobId, MachineId, Priority, QuotaGroupId, UnitId, WorkerId};
use crate::request::{CapacityChange, GrantDelta, RequestDelta, RequestState, ScheduleUnitDef};
use crate::resource::ResourceVec;
use fuxi_sim::ActorId;
use serde::{Deserialize, Serialize};

/// Submission-time description of an application (the paper's job
/// description: "application type, master package location and
/// application-specific information"). The payload is an opaque string —
/// for the DAG framework it is the Figure 6 JSON document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppDescription {
    /// Application type tag (e.g. `"fuxi_job"`), selecting the master factory.
    pub app_type: String,
    /// Quota group this application bills against (Section 3.4).
    pub quota_group: QuotaGroupId,
    /// Scheduling priority of the application's master container.
    pub priority: Priority,
    /// Resources the application master process itself needs.
    pub master_resource: ResourceVec,
    /// Size of the master binary package (downloaded before launch).
    pub master_package_mb: f64,
    /// Application-specific payload (JSON for DAG jobs).
    pub payload: String,
}

impl Default for AppDescription {
    fn default() -> Self {
        Self {
            app_type: "fuxi_job".to_owned(),
            quota_group: QuotaGroupId(0),
            priority: Priority::DEFAULT,
            master_resource: ResourceVec::cores_mb(1, 2048),
            master_package_mb: 100.0,
            payload: String::new(),
        }
    }
}

/// AM → FA: launch a worker process ("the work plan contains the necessary
/// information to launch a specific process, such as its package location,
/// resource usage limits and start-up parameters").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkerSpec {
    /// Application id.
    pub app: AppId,
    /// Worker id.
    pub worker: WorkerId,
    /// ScheduleUnit this applies to.
    pub unit: UnitId,
    /// Resource usage limit enforced by the agent (the Cgroup limits).
    pub limit: ResourceVec,
    /// Worker binary size; downloading it is the dominant part of the
    /// paper's 11.84 s worker start overhead (Table 2: "average 400MB").
    pub binary_mb: f64,
    /// Where the worker reports (its application/task master).
    pub master: ActorId,
    /// Fraction of the limit the process actually consumes (the paper
    /// observed ~40% real memory and <10% real CPU usage against scheduled
    /// amounts). Values above 1.0 model misbehaving processes that the
    /// agent's overload policy must kill.
    pub usage_factor: f64,
}

/// The work an instance performs, in simulator terms.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct InstanceWork {
    /// Pure compute time at nominal machine speed, seconds.
    pub compute_s: f64,
    /// Data reads: `(source machine, megabytes)`. A source equal to the
    /// worker's own machine is a local disk read; anything else is a remote
    /// (disk + network) read. Empty for duration-only workloads.
    pub reads: Vec<(MachineId, f64)>,
    /// Local output written to disk, megabytes.
    pub write_mb: f64,
    /// When false, reads/writes are folded into `compute_s` analytically and
    /// no flows are started (fast mode for scheduling-focused experiments).
    pub use_flows: bool,
    /// Maximum concurrent fetch flows while reading remote data.
    pub fetch_fanout: u32,
}

/// Why an instance attempt did not succeed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailReason {
    /// The agent could not launch the worker (disk corrupted — the paper's
    /// PartialWorkerFailure fault).
    LaunchFailed,
    /// A data flow failed (source or local machine died mid-read).
    IoError,
    /// The instance was killed (backup-instance loser, preemption).
    Killed,
    /// The worker's machine went down.
    MachineDown,
    /// The worker process crashed (and the agent chose not to restart it).
    Crashed,
}

/// Terminal state of one instance attempt.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum InstanceOutcome {
    /// Success.
    Success,
    /// Failed.
    Failed(FailReason),
}

/// Compact job progress summary (returned to status queries and carried in
/// JobMaster → FuxiMaster status reports).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct JobSummary {
    /// Tasks in the job.
    pub tasks_total: u32,
    /// Tasks that completed.
    pub tasks_finished: u32,
    /// Instances across all tasks.
    pub instances_total: u64,
    /// Instances currently executing.
    pub instances_running: u64,
    /// Instances completed.
    pub instances_finished: u64,
    /// Worker containers currently held.
    pub workers_active: u64,
}

/// The complete message set. One enum keeps dispatch exhaustive: adding a
/// message forces every component to consider it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Msg {
    // ------------------------------------------------------------------
    // Client ↔ FuxiMaster
    // ------------------------------------------------------------------
    /// Client submits a job; FuxiMaster checkpoints it (hard state) and
    /// launches a JobMaster on some agent.
    SubmitJob {
        /// Job id.
        job: JobId,
        /// Application description.
        desc: AppDescription,
        /// Submitting client's actor address.
        client: ActorId,
    },
    /// FuxiMaster accepted the job and assigned an application id.
    JobAccepted {
        /// Job id.
        job: JobId,
        /// Application id.
        app: AppId,
    },
    /// Client asks FuxiMaster to stop a job.
    StopJob {
        /// Job id.
        job: JobId,
    },
    /// Job reached a terminal state (forwarded FM → client as well).
    JobFinished {
        /// Job id.
        job: JobId,
        /// Application id.
        app: AppId,
        /// Whether the job succeeded.
        success: bool,
        /// Human-readable detail.
        message: String,
    },

    // ------------------------------------------------------------------
    // FuxiAgent ↔ FuxiMaster
    // ------------------------------------------------------------------
    /// Agent announces itself (on boot and after agent failover).
    AgentHello {
        /// Machine index.
        machine: MachineId,
        /// Total schedulable resources of the machine.
        total: ResourceVec,
    },
    /// Periodic liveness + health telemetry.
    AgentHeartbeat {
        /// Machine index.
        machine: MachineId,
        /// Node health telemetry.
        health: NodeHealthReport,
    },
    /// FM → FA: start an application master for `app` on this machine.
    StartAppMaster {
        /// Application id.
        app: AppId,
        /// Job id.
        job: JobId,
        /// Application description.
        desc: AppDescription,
    },
    /// FA → FM: the application master is running.
    AppMasterStarted {
        /// Application id.
        app: AppId,
        /// Actor address.
        actor: ActorId,
        /// Machine index.
        machine: MachineId,
    },
    /// FA → FM: launch failed (bad machine); FM will pick another agent.
    /// Why it happened.
    AppMasterStartFailed {
        /// Application id.
        app: AppId,
        /// Human-readable failure reason.
        reason: String,
    },
    /// FM → FA: per-app capacity bookkeeping on this machine changed
    /// (grants/revocations); the agent enforces the new envelope. One
    /// message carries all of a flush's changes for this agent, so a
    /// scheduling tick costs one envelope per agent, not one per decision.
    CapacityNotify {
        /// All capacity changes for this agent from one flush.
        changes: Vec<CapacityChange>,
    },
    /// FA/JM → FM on the status-heartbeat cadence: compact telemetry for
    /// the live metrics plane. Counters inside are cumulative, so a lost
    /// report skews nothing once the next one lands — the same
    /// incremental-update idiom as the resource-state reports.
    MetricsReport {
        /// The agent- or job-level payload.
        report: fuxi_obs::MetricsReport,
    },
    /// FA → FM during master failover: full per-app allocation on this
    /// machine (Figure 7: "each FuxiAgent re-sends the resource allocation
    /// on this machine for each application master").
    AgentAllocationReport {
        /// Machine index.
        machine: MachineId,
        /// Total schedulable resources of the machine.
        total: ResourceVec,
        /// Per-app allocations as (app, unit, unit resource, count).
        allocations: Vec<(AppId, UnitId, ResourceVec, u64)>,
        /// Application masters hosted on this machine `(app, actor)` — a
        /// rebuilding FuxiMaster must re-learn where JobMasters live or it
        /// would start duplicates.
        app_masters: Vec<(AppId, ActorId)>,
    },
    /// FM → FA after an agent restarts: the granted envelope the master
    /// still has on the books for this machine, so the agent can rebuild
    /// its enforcement state ("with the full granted resource amount from
    /// FuxiMaster for each application, FuxiAgent finally rebuilds the
    /// complete states before failover").
    AgentCapacitySnapshot {
        /// Per-app allocations as (app, unit, unit resource, count).
        allocations: Vec<(AppId, UnitId, ResourceVec, u64)>,
    },
    /// FA → FM: the application-master process on this machine exited
    /// (detected by the agent's process sweep); FM decides whether to
    /// restart it ("the FuxiMaster leverages heartbeat to determine whether
    /// to start a new master or not").
    AppMasterExited {
        /// Application id.
        app: AppId,
        /// Machine id.
        machine: MachineId,
    },
    /// FA → AM: a worker process exited or was killed by enforcement.
    WorkerExited {
        /// Application id.
        app: AppId,
        /// Worker id.
        worker: WorkerId,
        /// Machine index.
        machine: MachineId,
        /// Why it happened.
        reason: FailReason,
    },

    // ------------------------------------------------------------------
    // Application master ↔ FuxiMaster (the incremental resource protocol)
    // ------------------------------------------------------------------
    /// AM registers (or re-registers after FM failover) with its
    /// ScheduleUnit definitions.
    AmAttach {
        /// Application id.
        app: AppId,
        /// ScheduleUnit definitions.
        units: Vec<ScheduleUnitDef>,
    },
    /// AM → FM: incremental request deltas (sequenced).
    RequestUpdate {
        /// Application id.
        app: AppId,
        /// Channel sequence number (see `SeqSender`/`SeqReceiver`).
        seq: u64,
        /// Incremental request updates.
        deltas: Vec<RequestDelta>,
    },
    /// AM → FM: voluntary return of granted containers. Urgent class:
    /// handled immediately so freed resources turn over fast (Section 3.4).
    ReturnGrant {
        /// Application id.
        app: AppId,
        /// ScheduleUnit id.
        unit: UnitId,
        /// Machine index.
        machine: MachineId,
        /// Number of containers.
        count: u64,
    },
    /// AM → FM: periodic full-state safety sync and failover rebuild.
    FullRequestSync {
        /// Application id.
        app: AppId,
        /// ScheduleUnit definitions.
        units: Vec<ScheduleUnitDef>,
        /// Full request states per unit.
        states: Vec<RequestState>,
        /// Currently held grants per unit.
        held: Vec<(UnitId, Vec<(MachineId, u64)>)>,
    },
    /// FM → AM: incremental grant/revocation deltas (sequenced).
    GrantUpdate {
        /// Channel sequence number (see [`SeqSender`]/[`SeqReceiver`]).
        seq: u64,
        /// Incremental grant/revocation updates.
        grants: Vec<GrantDelta>,
    },
    /// FM → AM: full grant snapshot (on gap detection or after rebuild).
    FullGrantSync {
        /// Full grant snapshot per unit.
        snapshot: Vec<(UnitId, Vec<(MachineId, u64)>)>,
    },
    /// FM → AM: FM detected a request-channel gap; please full-sync.
    RequestSyncNeeded {
        /// Application id.
        app: AppId,
    },
    /// AM → FM: AM detected a grant-channel gap; please full-sync.
    GrantSyncNeeded {
        /// Application id.
        app: AppId,
    },
    /// AM → FM: job is done; release all resources and forget the app.
    AmDetach {
        /// Application id.
        app: AppId,
    },
    /// AM → FM: this machine misbehaved for this app (multi-level blacklist
    /// aggregation across jobs, Section 4.3.2).
    BadMachineReport {
        /// Application id.
        app: AppId,
        /// Machine id.
        machine: MachineId,
    },

    // ------------------------------------------------------------------
    // Application master ↔ FuxiAgent (worker lifecycle)
    // ------------------------------------------------------------------
    /// AM → FA: start a worker under an existing grant.
    /// Worker launch specification.
    StartWorker {
        /// Worker launch specification.
        spec: WorkerSpec,
    },
    /// FA → AM: worker process is up (after binary download).
    WorkerStarted {
        /// Worker id.
        worker: WorkerId,
        /// Actor address.
        actor: ActorId,
        /// Machine index.
        machine: MachineId,
    },
    /// FA → AM: worker launch failed.
    WorkerStartFailed {
        /// Worker id.
        worker: WorkerId,
        /// Machine index.
        machine: MachineId,
        /// Why it happened.
        reason: String,
    },
    /// AM → FA: stop a worker (container returned or job done).
    StopWorker {
        /// Application id.
        app: AppId,
        /// Worker id.
        worker: WorkerId,
    },
    /// FA → AM: capacity on this machine dropped below what your workers
    /// use; release within the grace period or the agent kills one
    /// ("FuxiAgent will kill one process of this application compulsorily").
    CapacityWarning {
        /// Application id.
        app: AppId,
        /// Machine index.
        machine: MachineId,
        /// Amount by which usage exceeds the granted envelope.
        over: ResourceVec,
    },
    /// FA → AM during agent failover: which workers do you expect on this
    /// machine? ("requests the full worker lists from each corresponding
    /// application master").
    WorkerListQuery {
        /// Application id.
        app: AppId,
        /// Machine id.
        machine: MachineId,
    },
    /// AM → FA: the expected workers on that machine.
    WorkerListReply {
        /// Application id.
        app: AppId,
        /// Machine index.
        machine: MachineId,
        /// Workers involved.
        workers: Vec<(WorkerId, ActorId)>,
    },

    // ------------------------------------------------------------------
    // Task worker ↔ application master (job framework)
    // ------------------------------------------------------------------
    /// Worker → AM: alive and ready for instances.
    WorkerRegister {
        /// Application id.
        app: AppId,
        /// Worker id.
        worker: WorkerId,
        /// Machine index.
        machine: MachineId,
    },
    /// AM → worker: execute an instance (container reuse: arbitrarily many
    /// of these per worker lifetime).
    AssignInstance {
        /// Instance id.
        instance: InstanceId,
        /// Attempt number of the instance.
        attempt: u32,
        /// The work the instance performs.
        work: InstanceWork,
    },
    /// Worker → AM: periodic progress ("all TaskWorkers will periodically
    /// report their status including execution progresses").
    InstanceReport {
        /// Worker id.
        worker: WorkerId,
        /// Instance id.
        instance: InstanceId,
        /// Attempt number of the instance.
        attempt: u32,
        /// Execution progress in [0, 1].
        progress: f64,
    },
    /// Worker → AM: instance attempt finished.
    InstanceFinished {
        /// Worker id.
        worker: WorkerId,
        /// Instance id.
        instance: InstanceId,
        /// Attempt number of the instance.
        attempt: u32,
        /// Terminal outcome of the attempt.
        outcome: InstanceOutcome,
        /// Worker-observed runtime, seconds.
        runtime_s: f64,
    },
    /// AM → worker: abandon an attempt (backup-instance race loser).
    KillInstance {
        /// Instance id.
        instance: InstanceId,
        /// Attempt number.
        attempt: u32,
    },
    /// AM → worker: exit gracefully.
    WorkerExit,
    /// Restarted JobMaster → worker: report your current state (JobMaster
    /// failover recovery: "collect the status from TaskWorker").
    WorkerStatusQuery,
    /// Worker → restarted JobMaster.
    WorkerStatusReply {
        /// Application id.
        app: AppId,
        /// Worker id.
        worker: WorkerId,
        /// Machine index.
        machine: MachineId,
        /// Currently executing (instance, attempt, progress), if any.
        running: Option<(InstanceId, u32, f64)>,
    },

    // ------------------------------------------------------------------
    // Job status
    // ------------------------------------------------------------------
    /// Anyone → JobMaster: progress query (the command-line tool).
    JmStatusQuery,
    /// JobMaster → requester.
    /// Job progress summary.
    JmStatusReply {
        /// Job id.
        job: JobId,
        /// Job progress summary.
        summary: JobSummary,
    },

    // ------------------------------------------------------------------
    // Apsara lock service (hot-standby master election)
    // ------------------------------------------------------------------
    /// Try to acquire the named lease-based lock.
    LockAcquire {
        /// Lock name.
        name: String,
        /// Lease duration, seconds.
        ttl_s: f64,
    },
    /// The lock is yours (until the lease lapses without keepalive).
    LockGranted {
        /// Lock name.
        name: String,
    },
    /// Keepalive from the current holder.
    LockKeepalive {
        /// Lock name.
        name: String,
    },
    /// Voluntary release.
    LockRelease {
        /// Lock name.
        name: String,
    },
    /// Lock service → former holder: lease expired (you were presumed dead).
    LockLost {
        /// Lock name.
        name: String,
    },

    // ------------------------------------------------------------------
    // Kernel
    // ------------------------------------------------------------------
    /// A data flow completed (constructed by the simulation kernel).
    FlowDone {
        /// Flow correlation tag.
        tag: u64,
        /// True if the flow was aborted by a failure.
        failed: bool,
    },
}

impl fuxi_sim::KernelMsg for Msg {
    fn flow_done(tag: u64, failed: bool) -> Self {
        Msg::FlowDone { tag, failed }
    }
}

/// Assigns sequence numbers to outgoing deltas on one channel.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SeqSender {
    next: u64,
}

impl SeqSender {
    /// Creates a new instance with the given configuration.
    pub fn new() -> Self {
        Self { next: 1 }
    }

    /// The sequence number for the next message. Not an iterator: every
    /// call consumes a number, and the stream never ends.
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        if self.next == 0 {
            self.next = 1;
        }
        let s = self.next;
        self.next += 1;
        s
    }

    /// Restart numbering after a full-state sync established a new baseline.
    pub fn reset(&mut self) {
        self.next = 1;
    }
}

/// Verdict on an incoming sequenced delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeqCheck {
    /// In order: apply it.
    Apply,
    /// Already seen (duplicate delivery): drop it.
    Duplicate,
    /// A delta was lost: the receiver must request a full-state sync and
    /// ignore deltas until it arrives.
    Gap,
}

/// Tracks the last applied sequence number on one incoming channel.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SeqReceiver {
    last: u64,
    /// Set while waiting for a full sync; deltas are ignored meanwhile.
    awaiting_sync: bool,
}

impl SeqReceiver {
    /// Creates a new instance with the given configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Classifies an incoming sequence number and advances state when it is
    /// applicable.
    pub fn accept(&mut self, seq: u64) -> SeqCheck {
        if self.awaiting_sync {
            return SeqCheck::Gap;
        }
        if seq == self.last + 1 {
            self.last = seq;
            SeqCheck::Apply
        } else if seq <= self.last {
            SeqCheck::Duplicate
        } else {
            self.awaiting_sync = true;
            SeqCheck::Gap
        }
    }

    /// A full-state sync arrived: resume from a fresh baseline. The sender
    /// resets its numbering after emitting a sync, so expect `1` next.
    pub fn synced(&mut self) {
        self.last = 0;
        self.awaiting_sync = false;
    }

    /// Awaiting sync.
    pub fn awaiting_sync(&self) -> bool {
        self.awaiting_sync
    }

    /// Last.
    pub fn last(&self) -> u64 {
        self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_sender_counts_from_one() {
        let mut s = SeqSender::new();
        assert_eq!(s.next(), 1);
        assert_eq!(s.next(), 2);
        s.reset();
        assert_eq!(s.next(), 1);
    }

    #[test]
    fn receiver_applies_in_order() {
        let mut r = SeqReceiver::new();
        assert_eq!(r.accept(1), SeqCheck::Apply);
        assert_eq!(r.accept(2), SeqCheck::Apply);
        assert_eq!(r.last(), 2);
    }

    #[test]
    fn receiver_drops_duplicates() {
        let mut r = SeqReceiver::new();
        assert_eq!(r.accept(1), SeqCheck::Apply);
        assert_eq!(r.accept(1), SeqCheck::Duplicate);
        assert_eq!(r.accept(2), SeqCheck::Apply);
        assert_eq!(r.accept(1), SeqCheck::Duplicate);
    }

    #[test]
    fn receiver_detects_gap_and_blocks_until_sync() {
        let mut r = SeqReceiver::new();
        assert_eq!(r.accept(1), SeqCheck::Apply);
        assert_eq!(r.accept(3), SeqCheck::Gap);
        assert!(r.awaiting_sync());
        // Everything is ignored until the sync, even "valid-looking" deltas.
        assert_eq!(r.accept(2), SeqCheck::Gap);
        assert_eq!(r.accept(4), SeqCheck::Gap);
        r.synced();
        assert!(!r.awaiting_sync());
        assert_eq!(r.accept(1), SeqCheck::Apply);
    }

    #[test]
    fn default_app_description_is_sane() {
        let d = AppDescription::default();
        assert_eq!(d.quota_group, QuotaGroupId(0));
        assert!(d.master_resource.memory_mb() > 0);
    }

    #[test]
    fn kernel_msg_constructs_flow_done() {
        use fuxi_sim::KernelMsg;
        match Msg::flow_done(5, true) {
            Msg::FlowDone { tag: 5, failed: true } => {}
            other => panic!("unexpected: {other:?}"),
        }
    }
}
