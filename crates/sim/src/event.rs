//! The event queue: a binary heap of `(time, sequence)`-ordered events.
//! The per-event sequence number makes simultaneous events deterministic.

use crate::actor::ActorId;
use crate::time::SimTime;
use fuxi_obs::TraceId;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The one requirement the kernel places on the message type: the flow
/// subsystem must be able to fabricate I/O-completion messages addressed to
/// the actor that started the flow.
pub trait KernelMsg: std::fmt::Debug + 'static {
    /// A message reporting that flow `tag` finished (`failed = true` when the
    /// flow was aborted by a machine failure).
    fn flow_done(tag: u64, failed: bool) -> Self;
}

/// A scripted control step run against the whole world.
pub(crate) type ControlFn<M> = Box<dyn FnOnce(&mut crate::world::World<M>)>;

pub(crate) enum EventKind<M: KernelMsg> {
    /// Deliver `msg` from `from` to `to`. The delivery envelope carries the
    /// causal trace id, so trace propagation needs no protocol-level fields:
    /// a handler's sends inherit the trace of the message being handled.
    Deliver {
        to: ActorId,
        from: ActorId,
        msg: M,
        trace: TraceId,
    },
    /// Fire actor `actor`'s timer carrying `tag`.
    Timer { actor: ActorId, tag: u64 },
    /// Advance the flow model.
    FlowTick,
    /// Run a control closure against the whole world (fault injection,
    /// scripted scenario steps).
    Control(ControlFn<M>),
}

pub(crate) struct Event<M: KernelMsg> {
    pub time: SimTime,
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M: KernelMsg> PartialEq for Event<M> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<M: KernelMsg> Eq for Event<M> {}

impl<M: KernelMsg> PartialOrd for Event<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M: KernelMsg> Ord for Event<M> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Min-heap of events by `(time, seq)`.
pub(crate) struct EventQueue<M: KernelMsg> {
    heap: BinaryHeap<Event<M>>,
    next_seq: u64,
}

impl<M: KernelMsg> EventQueue<M> {
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::with_capacity(1024),
            next_seq: 0,
        }
    }

    pub fn push(&mut self, time: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time, seq, kind });
    }

    pub fn pop(&mut self) -> Option<Event<M>> {
        self.heap.pop()
    }

    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct NoMsg;
    impl KernelMsg for NoMsg {
        fn flow_done(_: u64, _: bool) -> Self {
            NoMsg
        }
    }

    fn timer_ev(actor: u32) -> EventKind<NoMsg> {
        EventKind::Timer {
            actor: ActorId(actor),
            tag: 0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<NoMsg> = EventQueue::new();
        q.push(SimTime::from_secs(3), timer_ev(3));
        q.push(SimTime::from_secs(1), timer_ev(1));
        q.push(SimTime::from_secs(2), timer_ev(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.time.as_micros() / 1_000_000)
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q: EventQueue<NoMsg> = EventQueue::new();
        for i in 0..10u32 {
            q.push(SimTime::from_secs(1), timer_ev(i));
        }
        let order: Vec<u32> = std::iter::from_fn(|| q.pop())
            .map(|e| match e.kind {
                EventKind::Timer { actor, .. } => actor.0,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q: EventQueue<NoMsg> = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_secs(7), timer_ev(0));
        q.push(SimTime::from_secs(4), timer_ev(1));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4)));
        assert_eq!(q.len(), 2);
    }
}
