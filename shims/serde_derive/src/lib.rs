//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no crates.io access, so this proc-macro crate
//! is hand-rolled on top of `proc_macro` alone (no `syn`/`quote`). It
//! implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for exactly
//! the shapes present in this workspace:
//!
//! - named-field structs (with the `#[serde(...)]` attributes listed below)
//! - newtype structs (`struct Priority(pub u16)`) — transparent
//! - enums with unit variants (serialized as strings), newtype variants and
//!   struct variants (single-key objects), matching real serde's externally
//!   tagged JSON convention
//!
//! Container attributes: `rename_all = "PascalCase"`, `deny_unknown_fields`.
//! Field attributes: `rename = "..."`, `default`, `default = "path"`,
//! `skip_serializing_if = "path"`.
//!
//! Missing fields with no `default` fall back to deserializing from `Null`,
//! which makes `Option<T>` fields tolerate absence (as real serde does) while
//! still producing a "missing field" error for required scalar fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------

#[derive(Debug, Default, Clone)]
struct FieldAttrs {
    rename: Option<String>,
    default: Option<Option<String>>, // None = no default; Some(None) = Default::default; Some(Some(p)) = path
    skip_serializing_if: Option<String>,
}

#[derive(Debug)]
struct Field {
    ident: String,
    attrs: FieldAttrs,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Newtype,
    Struct(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    ident: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Shape {
    Named(Vec<Field>),
    Newtype,
    Unit,
    Enum(Vec<Variant>),
}

#[derive(Debug, Default)]
struct ContainerAttrs {
    rename_all_pascal: bool,
    deny_unknown_fields: bool,
}

#[derive(Debug)]
struct Input {
    name: String,
    attrs: ContainerAttrs,
    shape: Shape,
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Collects the `key`, `key = "value"` items inside a `#[serde(...)]` group.
fn parse_serde_items(group: &proc_macro::Group) -> Vec<(String, Option<String>)> {
    let mut items = Vec::new();
    let mut tokens = group.stream().into_iter().peekable();
    while let Some(t) = tokens.next() {
        let TokenTree::Ident(key) = t else { continue };
        let key = key.to_string();
        let mut value = None;
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == '=' {
                tokens.next();
                if let Some(TokenTree::Literal(lit)) = tokens.next() {
                    let s = lit.to_string();
                    value = Some(s.trim_matches('"').to_string());
                }
            }
        }
        items.push((key, value));
        // Skip the separating comma, if any.
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == ',' {
                tokens.next();
            }
        }
    }
    items
}

/// Consumes a leading run of `#[...]` attributes, returning any serde items.
fn take_attrs(
    tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
) -> Vec<(String, Option<String>)> {
    let mut out = Vec::new();
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    let mut inner = g.stream().into_iter();
                    if let Some(TokenTree::Ident(name)) = inner.next() {
                        if name.to_string() == "serde" {
                            if let Some(TokenTree::Group(args)) = inner.next() {
                                out.extend(parse_serde_items(&args));
                            }
                        }
                    }
                }
            }
            _ => return out,
        }
    }
}

fn field_attrs_from(items: Vec<(String, Option<String>)>) -> FieldAttrs {
    let mut fa = FieldAttrs::default();
    for (k, v) in items {
        match k.as_str() {
            "rename" => fa.rename = v,
            "default" => fa.default = Some(v),
            "skip_serializing_if" => fa.skip_serializing_if = v,
            _ => {}
        }
    }
    fa
}

/// Skips a type expression up to a top-level `,` (or end of stream),
/// balancing `<`/`>` so generic arguments don't end the field early.
fn skip_type(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut depth = 0i32;
    while let Some(t) = tokens.peek() {
        if let TokenTree::Punct(p) = t {
            let c = p.as_char();
            if c == ',' && depth == 0 {
                tokens.next();
                return;
            }
            if c == '<' {
                depth += 1;
            }
            if c == '>' {
                depth -= 1;
            }
        }
        tokens.next();
    }
}

/// Parses the named fields inside a struct/struct-variant brace group.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = group.stream().into_iter().peekable();
    loop {
        let items = take_attrs(&mut tokens);
        // Skip visibility.
        while let Some(TokenTree::Ident(id)) = tokens.peek() {
            if id.to_string() == "pub" {
                tokens.next();
                // Optional `(crate)` etc.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            } else {
                break;
            }
        }
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            break;
        };
        // Consume the `:`.
        let Some(TokenTree::Punct(_)) = tokens.next() else {
            break;
        };
        skip_type(&mut tokens);
        fields.push(Field {
            ident: name.to_string(),
            attrs: field_attrs_from(items),
        });
    }
    fields
}

fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = group.stream().into_iter().peekable();
    loop {
        let _ = take_attrs(&mut tokens);
        let Some(TokenTree::Ident(name)) = tokens.next() else {
            break;
        };
        let mut shape = VariantShape::Unit;
        if let Some(TokenTree::Group(g)) = tokens.peek() {
            match g.delimiter() {
                Delimiter::Parenthesis => shape = VariantShape::Newtype,
                Delimiter::Brace => {
                    let names = parse_named_fields(g).into_iter().map(|f| f.ident).collect();
                    shape = VariantShape::Struct(names);
                }
                _ => {}
            }
            tokens.next();
        }
        variants.push(Variant {
            ident: name.to_string(),
            shape,
        });
        // Skip the separating comma.
        if let Some(TokenTree::Punct(p)) = tokens.peek() {
            if p.as_char() == ',' {
                tokens.next();
            }
        }
    }
    variants
}

fn parse_input(input: TokenStream) -> Input {
    let mut tokens = input.into_iter().peekable();
    let items = take_attrs(&mut tokens);
    let mut attrs = ContainerAttrs::default();
    for (k, v) in items {
        match k.as_str() {
            "rename_all" => attrs.rename_all_pascal = v.as_deref() == Some("PascalCase"),
            "deny_unknown_fields" => attrs.deny_unknown_fields = true,
            _ => {}
        }
    }
    // Skip visibility and find `struct` / `enum`.
    let mut is_enum = false;
    loop {
        match tokens.next() {
            Some(TokenTree::Ident(id)) => match id.to_string().as_str() {
                "struct" => break,
                "enum" => {
                    is_enum = true;
                    break;
                }
                _ => {}
            },
            Some(_) => {}
            None => panic!("serde_derive shim: no struct/enum keyword found"),
        }
    }
    let Some(TokenTree::Ident(name)) = tokens.next() else {
        panic!("serde_derive shim: missing type name");
    };
    let name = name.to_string();
    // Body: the next brace/paren group (no generics in this workspace).
    let shape = loop {
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break if is_enum {
                    Shape::Enum(parse_variants(&g))
                } else {
                    Shape::Named(parse_named_fields(&g))
                };
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = g
                    .stream()
                    .into_iter()
                    .filter(|t| matches!(t, TokenTree::Punct(p) if p.as_char() == ','))
                    .count();
                assert!(
                    n == 0,
                    "serde_derive shim: multi-field tuple structs are unsupported"
                );
                break Shape::Newtype;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => break Shape::Unit,
            Some(_) => {}
            None => break Shape::Unit,
        }
    };
    Input { name, attrs, shape }
}

// ---------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------

/// `snake_case` → `PascalCase` (the only `rename_all` value in the tree).
fn pascal(s: &str) -> String {
    let mut out = String::new();
    for part in s.split('_') {
        let mut ch = part.chars();
        if let Some(c) = ch.next() {
            out.extend(c.to_uppercase());
            out.push_str(ch.as_str());
        }
    }
    out
}

fn wire_name(f: &Field, container: &ContainerAttrs) -> String {
    if let Some(r) = &f.attrs.rename {
        r.clone()
    } else if container.rename_all_pascal {
        pascal(&f.ident)
    } else {
        f.ident.clone()
    }
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Newtype => "serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Unit => "serde::Value::Null".to_string(),
        Shape::Named(fields) => {
            let mut s = String::from(
                "{ let mut fields: Vec<(String, serde::Value)> = Vec::new();\n",
            );
            for f in fields {
                let wire = wire_name(f, &input.attrs);
                let push = format!(
                    "fields.push((\"{wire}\".to_string(), serde::Serialize::to_value(&self.{id})));",
                    id = f.ident
                );
                if let Some(pred) = &f.attrs.skip_serializing_if {
                    s.push_str(&format!("if !{pred}(&self.{id}) {{ {push} }}\n", id = f.ident));
                } else {
                    s.push_str(&push);
                    s.push('\n');
                }
            }
            s.push_str("serde::Value::Object(fields) }");
            s
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.ident;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantShape::Newtype => arms.push_str(&format!(
                        "{name}::{vn}(inner) => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Serialize::to_value(inner))]),\n"
                    )),
                    VariantShape::Struct(fs) => {
                        let binds = fs.join(", ");
                        let pushes: String = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), serde::Serialize::to_value({f})), "
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => serde::Value::Object(vec![(\"{vn}\".to_string(), serde::Value::Object(vec![{pushes}]))]),\n"
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl serde::Serialize for {name} {{\n fn to_value(&self) -> serde::Value {{ {body} }}\n}}\n"
    )
}

fn gen_field_read(f: &Field, wire: &str) -> String {
    let missing = match &f.attrs.default {
        Some(None) => "Default::default()".to_string(),
        Some(Some(path)) => format!("{path}()"),
        None => format!(
            "serde::Deserialize::from_value(&serde::Value::Null).map_err(|_| serde::DeError::custom(\"missing field `{wire}`\"))?"
        ),
    };
    format!(
        "{id}: match __v.get_field(\"{wire}\") {{ Some(v) => serde::Deserialize::from_value(v)?, None => {missing} }},\n",
        id = f.ident
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Newtype => {
            format!("Ok({name}(serde::Deserialize::from_value(__v)?))")
        }
        Shape::Unit => format!("Ok({name})"),
        Shape::Named(fields) => {
            let mut s = format!(
                "let __obj = __v.as_object().ok_or_else(|| serde::DeError::custom(\"expected object for {name}\"))?;\n"
            );
            if input.attrs.deny_unknown_fields {
                let wires: Vec<String> = fields
                    .iter()
                    .map(|f| format!("\"{}\"", wire_name(f, &input.attrs)))
                    .collect();
                s.push_str(&format!(
                    "for (k, _) in __obj.iter() {{ if ![{}].contains(&k.as_str()) {{ return Err(serde::DeError::custom(format!(\"unknown field `{{}}` in {name}\", k))); }} }}\n",
                    wires.join(", ")
                ));
            }
            s.push_str(&format!("Ok({name} {{\n"));
            for f in fields {
                let wire = wire_name(f, &input.attrs);
                s.push_str(&gen_field_read(f, &wire));
            }
            s.push_str("})");
            s
        }
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in variants {
                let vn = &v.ident;
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => return Ok({name}::{vn}),\n"
                    )),
                    VariantShape::Newtype => keyed_arms.push_str(&format!(
                        "\"{vn}\" => return Ok({name}::{vn}(serde::Deserialize::from_value(__inner)?)),\n"
                    )),
                    VariantShape::Struct(fs) => {
                        let reads: String = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: match __inner.get_field(\"{f}\") {{ Some(v) => serde::Deserialize::from_value(v)?, None => serde::Deserialize::from_value(&serde::Value::Null).map_err(|_| serde::DeError::custom(\"missing field `{f}`\"))? }},\n"
                                )
                            })
                            .collect();
                        keyed_arms.push_str(&format!(
                            "\"{vn}\" => return Ok({name}::{vn} {{ {reads} }}),\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 serde::Value::Str(s) => match s.as_str() {{ {unit_arms} other => Err(serde::DeError::custom(format!(\"unknown variant `{{}}` of {name}\", other))) }},\n\
                 serde::Value::Object(o) if o.len() == 1 => {{\n\
                   let (__tag, __inner) = &o[0];\n\
                   match __tag.as_str() {{ {keyed_arms} other => Err(serde::DeError::custom(format!(\"unknown variant `{{}}` of {name}\", other))) }}\n\
                 }}\n\
                 _ => Err(serde::DeError::custom(\"expected string or single-key object for enum {name}\")),\n\
                 }}"
            )
        }
    };
    format!(
        "impl serde::Deserialize for {name} {{\n fn from_value(__v: &serde::Value) -> Result<Self, serde::DeError> {{ {body} }}\n}}\n"
    )
}

/// Derives the shim's `serde::Serialize` (a `to_value` tree builder).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed).parse().expect("generated Serialize impl parses")
}

/// Derives the shim's `serde::Deserialize` (a `from_value` tree reader).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed).parse().expect("generated Deserialize impl parses")
}
