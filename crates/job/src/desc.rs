//! The JSON job description (paper Section 4.1, Figure 6).
//!
//! "The framework accepts a JSON file as job description. The JSON file has
//! a field 'Tasks' which describes the properties of each task including
//! the executable binary path and other user customized parameters. The
//! field 'Pipes' depicts all the data shuffle with each one having a
//! 'Source' and 'Destination' access point associated with tasks."
//!
//! Field names are PascalCase to match the paper's sample document; the
//! execution-model fields (durations, sizes) are this reproduction's
//! "user customized parameters".

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One task ("T1": {...}).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(deny_unknown_fields, rename_all = "PascalCase")]
pub struct TaskDesc {
    /// Binary path (informational; the simulation executes a model of it).
    #[serde(default = "default_executable")]
    pub executable: String,
    /// Number of parallel instances.
    pub instances: u32,
    /// CPU per instance, cores (0.5 = the paper's synthetic workload).
    #[serde(default = "default_cpu")]
    pub cpu: f64,
    /// Memory per instance, MB.
    #[serde(default = "default_memory", rename = "MemoryMB")]
    pub memory_mb: u64,
    /// Mean instance duration, seconds (synthetic-duration mode).
    #[serde(default)]
    pub duration_s: f64,
    /// Uniform jitter fraction applied to `duration_s` (0.2 = ±20%).
    #[serde(default)]
    pub duration_jitter: f64,
    /// The user-declared "normal running time" that gates backup instances
    /// ("users should also specify a normal running time of the instances
    /// when configuring the backup instance schema"). 0 disables the gate.
    #[serde(default)]
    pub normal_time_s: f64,
    /// Worker (container) cap; instances are multiplexed over these
    /// (container reuse). Defaults to one worker per instance.
    #[serde(default)]
    pub max_workers: u32,
    /// Scheduling priority of this task's ScheduleUnit.
    #[serde(default = "default_priority")]
    pub priority: u16,
    /// Output produced per instance, MB (input to downstream shuffles).
    #[serde(default, rename = "OutputMBPerInstance")]
    pub output_mb_per_instance: f64,
    /// When true, instance I/O goes through the simulated disk/NIC flow
    /// model; when false, durations are purely synthetic.
    #[serde(default)]
    pub data_driven: bool,
    /// Processing rate for data-driven instances, MB/s of input.
    #[serde(default = "default_rate", rename = "ComputeMBPerS")]
    pub compute_mb_per_s: f64,
    /// Worker binary size (download dominates worker start overhead).
    #[serde(default = "default_binary", rename = "BinaryMB")]
    pub binary_mb: f64,
    /// Maximum concurrent shuffle-fetch flows per instance.
    #[serde(default = "default_fanout")]
    pub fetch_fanout: u32,
}

fn default_executable() -> String {
    "app".to_owned()
}
fn default_cpu() -> f64 {
    0.5
}
fn default_memory() -> u64 {
    2048
}
fn default_priority() -> u16 {
    1000
}
fn default_rate() -> f64 {
    100.0
}
fn default_binary() -> f64 {
    400.0
}
fn default_fanout() -> u32 {
    8
}

impl TaskDesc {
    /// Effective worker cap.
    pub fn worker_cap(&self) -> u32 {
        if self.max_workers == 0 {
            self.instances
        } else {
            self.max_workers.min(self.instances).max(1)
        }
    }
}

/// A pipe endpoint: either a DFS file pattern or a task access point
/// (`"T1:toT2"`).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Default)]
#[serde(deny_unknown_fields)]
pub struct Endpoint {
    #[serde(rename = "FilePattern", skip_serializing_if = "Option::is_none")]
    /// DFS file pattern (`pangu://...`), for DFS endpoints.
    pub file_pattern: Option<String>,
    #[serde(rename = "AccessPoint", skip_serializing_if = "Option::is_none")]
    /// Task access point (`"T1:out"`), for task endpoints.
    pub access_point: Option<String>,
}

impl Endpoint {
    /// Task name part of an access point (`"T1:input"` → `"T1"`).
    pub fn task_name(&self) -> Option<&str> {
        self.access_point
            .as_deref()
            .map(|ap| ap.split(':').next().unwrap_or(ap))
    }
}

/// One data pipe.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(deny_unknown_fields)]
pub struct PipeDesc {
    #[serde(rename = "Source")]
    /// Where the data comes from.
    pub source: Endpoint,
    #[serde(rename = "Destination")]
    /// Where the data goes.
    pub destination: Endpoint,
}

/// The whole job description (Figure 6).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
#[serde(deny_unknown_fields)]
pub struct JobDesc {
    #[serde(rename = "Tasks")]
    /// Tasks of the job.
    pub tasks: BTreeMap<String, TaskDesc>,
    #[serde(rename = "Pipes", default)]
    /// Data pipes wiring tasks and DFS files together.
    pub pipes: Vec<PipeDesc>,
}

impl JobDesc {
    /// Parse.
    pub fn parse(json: &str) -> Result<JobDesc, String> {
        serde_json::from_str(json).map_err(|e| format!("job description: {e}"))
    }

    /// To json.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("job desc serializes")
    }
}

// TaskDesc uses PascalCase on the wire to match the paper's document style.
impl TaskDesc {
    /// Synthetic.
    pub fn synthetic(instances: u32, duration_s: f64) -> Self {
        TaskDesc {
            executable: default_executable(),
            instances,
            cpu: default_cpu(),
            memory_mb: default_memory(),
            duration_s,
            duration_jitter: 0.0,
            normal_time_s: 0.0,
            max_workers: 0,
            priority: default_priority(),
            output_mb_per_instance: 0.0,
            data_driven: false,
            compute_mb_per_s: default_rate(),
            binary_mb: default_binary(),
            fetch_fanout: default_fanout(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIGURE6_STYLE: &str = r#"{
        "Tasks": {
            "T1": {"Executable": "bin/t1", "Instances": 4, "OutputMBPerInstance": 10.0},
            "T2": {"Instances": 2, "OutputMBPerInstance": 5.0},
            "T3": {"Instances": 2, "OutputMBPerInstance": 5.0},
            "T4": {"Instances": 1, "Cpu": 1.0, "MemoryMB": 4096}
        },
        "Pipes": [
            {"Source": {"FilePattern": "pangu://input/*"}, "Destination": {"AccessPoint": "T1:input"}},
            {"Source": {"AccessPoint": "T1:toT2"}, "Destination": {"AccessPoint": "T2:fromT1"}},
            {"Source": {"AccessPoint": "T1:toT3"}, "Destination": {"AccessPoint": "T3:fromT1"}},
            {"Source": {"AccessPoint": "T2:toT4"}, "Destination": {"AccessPoint": "T4:fromT2"}},
            {"Source": {"AccessPoint": "T3:toT4"}, "Destination": {"AccessPoint": "T4:fromT3"}},
            {"Source": {"AccessPoint": "T4:output"}, "Destination": {"FilePattern": "pangu://output"}}
        ]
    }"#;

    #[test]
    fn parses_figure6_document() {
        let d = JobDesc::parse(FIGURE6_STYLE).unwrap();
        assert_eq!(d.tasks.len(), 4);
        assert_eq!(d.pipes.len(), 6);
        assert_eq!(d.tasks["T1"].executable, "bin/t1");
        assert_eq!(d.tasks["T1"].instances, 4);
        assert_eq!(d.tasks["T2"].cpu, 0.5, "defaults applied");
        assert_eq!(d.tasks["T4"].memory_mb, 4096);
        assert_eq!(d.pipes[0].source.file_pattern.as_deref(), Some("pangu://input/*"));
        assert_eq!(d.pipes[1].source.task_name(), Some("T1"));
        assert_eq!(d.pipes[1].destination.task_name(), Some("T2"));
    }

    #[test]
    fn roundtrips_through_json() {
        let d = JobDesc::parse(FIGURE6_STYLE).unwrap();
        let d2 = JobDesc::parse(&d.to_json()).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn rejects_unknown_fields() {
        let bad = r#"{"Tasks": {"T1": {"Instances": 1, "Bogus": 3}}, "Pipes": []}"#;
        assert!(JobDesc::parse(bad).is_err());
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(JobDesc::parse("{nope").is_err());
    }

    #[test]
    fn worker_cap_rules() {
        let mut t = TaskDesc::synthetic(10, 1.0);
        assert_eq!(t.worker_cap(), 10, "default: one worker per instance");
        t.max_workers = 3;
        assert_eq!(t.worker_cap(), 3);
        t.max_workers = 50;
        assert_eq!(t.worker_cap(), 10, "cap never exceeds instances");
    }
}
