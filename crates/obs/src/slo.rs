//! SLO watchdog: rule evaluation over the live [`ClusterView`] rollup.
//!
//! The primary FuxiMaster evaluates the rules once per metrics window.
//! Alerts are edge-triggered — a rule emits one `raised` alert when its
//! value first crosses the threshold and one `cleared` alert when it
//! recovers — so a sustained breach produces a single flight-recorder dump
//! rather than one per window.
//!
//! [`ClusterView`]: crate::view::ClusterView

use crate::view::ClusterView;

/// The rules the watchdog knows how to evaluate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloRuleKind {
    /// Scheduling-decision p99 over the retained windows, seconds.
    SchedP99,
    /// Age of the oldest continuously-pending job queue, seconds.
    PendingAge,
    /// Free-pool fragmentation: fraction of free memory stranded on
    /// machines too small to fit the probe unit.
    Fragmentation,
    /// Live mailbox backlog (current sampled depth, not high-water).
    MailboxDepth,
}

impl SloRuleKind {
    /// All rules, in evaluation order.
    pub const ALL: [SloRuleKind; 4] = [
        SloRuleKind::SchedP99,
        SloRuleKind::PendingAge,
        SloRuleKind::Fragmentation,
        SloRuleKind::MailboxDepth,
    ];

    /// Stable short name, used in trace events and exposition labels.
    pub fn name(self) -> &'static str {
        match self {
            SloRuleKind::SchedP99 => "sched_p99",
            SloRuleKind::PendingAge => "pending_age",
            SloRuleKind::Fragmentation => "fragmentation",
            SloRuleKind::MailboxDepth => "mailbox_depth",
        }
    }

    /// Flight-recorder dump reason used when this rule fires.
    pub fn dump_reason(self) -> &'static str {
        match self {
            SloRuleKind::SchedP99 => "slo_sched_p99",
            SloRuleKind::PendingAge => "slo_pending_age",
            SloRuleKind::Fragmentation => "slo_fragmentation",
            SloRuleKind::MailboxDepth => "slo_mailbox_depth",
        }
    }
}

/// Thresholds for the watchdog rules. Defaults are deliberately loose —
/// far above anything a healthy run produces — so breaches mean trouble,
/// not noise; chaos scenarios tighten them to taste.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRules {
    /// Breach when the windowed sched p99 exceeds this many seconds.
    pub sched_p99_s: f64,
    /// Minimum windowed sample count before the sched rule is evaluated
    /// (a single slow decision in an idle window is not a p99).
    pub min_sched_samples: u64,
    /// Breach when some job has had pending instances continuously for
    /// longer than this many seconds.
    pub pending_age_s: f64,
    /// Breach when the stranded-free-memory fraction exceeds this.
    pub frag_ratio: f64,
    /// Breach when the sampled live mailbox backlog exceeds this depth.
    pub mailbox_depth: u64,
}

impl Default for SloRules {
    fn default() -> Self {
        SloRules {
            sched_p99_s: 0.25,
            min_sched_samples: 8,
            pending_age_s: 30.0,
            frag_ratio: 0.95,
            mailbox_depth: 6144,
        }
    }
}

/// One edge-triggered alert transition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloAlert {
    /// Which rule transitioned.
    pub rule: SloRuleKind,
    /// `true` = breach began, `false` = breach cleared.
    pub raised: bool,
    /// Observed value at the transition.
    pub value: f64,
    /// Configured threshold.
    pub threshold: f64,
    /// Rollup time of the transition, seconds.
    pub t_s: f64,
}

/// Evaluates [`SloRules`] against successive rollups, tracking which rules
/// are currently breached so transitions are reported exactly once.
#[derive(Debug, Clone, Default)]
pub struct SloWatchdog {
    active: [bool; SloRuleKind::ALL.len()],
    /// Total raise transitions observed.
    pub breaches: u64,
}

impl SloWatchdog {
    /// Fresh watchdog with no active breaches.
    pub fn new() -> SloWatchdog {
        SloWatchdog::default()
    }

    /// Whether `rule` is currently breached.
    pub fn is_active(&self, rule: SloRuleKind) -> bool {
        self.active[Self::slot(rule)]
    }

    fn slot(rule: SloRuleKind) -> usize {
        SloRuleKind::ALL.iter().position(|r| *r == rule).unwrap()
    }

    /// The (value, threshold, breached) reading of one rule against a view.
    fn read(rules: &SloRules, view: &ClusterView, rule: SloRuleKind) -> (f64, f64, bool) {
        match rule {
            SloRuleKind::SchedP99 => {
                let v = view.sched_p99_s;
                let enough = view.sched_count_win >= rules.min_sched_samples;
                (v, rules.sched_p99_s, enough && v > rules.sched_p99_s)
            }
            SloRuleKind::PendingAge => {
                let v = view.oldest_pending_age_s;
                (v, rules.pending_age_s, v > rules.pending_age_s)
            }
            SloRuleKind::Fragmentation => {
                let v = view.frag_ratio;
                (v, rules.frag_ratio, v > rules.frag_ratio)
            }
            SloRuleKind::MailboxDepth => {
                let v = view.mailbox_depth as f64;
                (v, rules.mailbox_depth as f64, view.mailbox_depth > rules.mailbox_depth)
            }
        }
    }

    /// Evaluates every rule against `view` at rollup time `now_s`,
    /// returning only the transitions (raises and clears).
    pub fn evaluate(&mut self, rules: &SloRules, view: &ClusterView, now_s: f64) -> Vec<SloAlert> {
        let mut out = Vec::new();
        for rule in SloRuleKind::ALL {
            let (value, threshold, breached) = Self::read(rules, view, rule);
            let slot = Self::slot(rule);
            if breached != self.active[slot] {
                self.active[slot] = breached;
                if breached {
                    self.breaches += 1;
                }
                out.push(SloAlert {
                    rule,
                    raised: breached,
                    value,
                    threshold,
                    t_s: now_s,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alerts_are_edge_triggered() {
        let rules = SloRules {
            pending_age_s: 5.0,
            ..SloRules::default()
        };
        let mut view = ClusterView::new(1.0);
        let mut wd = SloWatchdog::new();
        assert!(wd.evaluate(&rules, &view, 1.0).is_empty());

        view.oldest_pending_age_s = 9.0;
        let raised = wd.evaluate(&rules, &view, 2.0);
        assert_eq!(raised.len(), 1);
        assert!(raised[0].raised);
        assert_eq!(raised[0].rule, SloRuleKind::PendingAge);
        assert_eq!(raised[0].value, 9.0);
        // Sustained breach: no further transitions.
        assert!(wd.evaluate(&rules, &view, 3.0).is_empty());
        assert!(wd.is_active(SloRuleKind::PendingAge));
        assert_eq!(wd.breaches, 1);

        view.oldest_pending_age_s = 0.0;
        let cleared = wd.evaluate(&rules, &view, 4.0);
        assert_eq!(cleared.len(), 1);
        assert!(!cleared[0].raised);
        assert!(!wd.is_active(SloRuleKind::PendingAge));
    }

    #[test]
    fn sched_rule_needs_samples() {
        let rules = SloRules::default();
        let mut view = ClusterView::new(1.0);
        view.sched_p99_s = 10.0;
        view.sched_count_win = rules.min_sched_samples - 1;
        let mut wd = SloWatchdog::new();
        assert!(wd.evaluate(&rules, &view, 1.0).is_empty(), "too few samples");
        view.sched_count_win = rules.min_sched_samples;
        assert_eq!(wd.evaluate(&rules, &view, 2.0).len(), 1);
    }
}
