#![warn(missing_docs)]
//! # fuxi-apsara
//!
//! The Apsara substrate services Fuxi depends on (paper Section 2.1):
//!
//! * [`lock`] — the lease-based distributed **lock service** used for
//!   FuxiMaster hot-standby election ("these two masters are mutually
//!   excluded by using a distributed lock on the Apsara lock service").
//!   Implemented as a simulated actor so lease-expiry timing shapes failover
//!   latency exactly as in production.
//! * [`naming`] — a **name service** resolving well-known service names
//!   (e.g. `"fuxi-master"`) to current actor addresses. Modelled as shared
//!   state (clients cache name lookups in real Apsara too; the interesting
//!   failover timing lives in the lock leases and heartbeats, not here).
//! * [`pangu`] — a model of the **Pangu distributed file system**: files
//!   split into chunks, replicas placed across machines and racks. Supplies
//!   the data-locality information that drives locality-tree scheduling and
//!   the GraySort experiment.
//! * [`store`] — a reliable **checkpoint store** (Pangu-backed in
//!   production) holding FuxiMaster hard state and JobMaster snapshots.

pub mod lock;
pub mod naming;
pub mod pangu;
pub mod store;

pub use lock::LockService;
pub use naming::NameRegistry;
pub use pangu::{Chunk, PanguFile, PanguFs, PanguHandle};
pub use store::{CheckpointStore, StoreHandle};
