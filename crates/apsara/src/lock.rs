//! Lease-based distributed lock service.
//!
//! Drives FuxiMaster hot-standby election (Section 4.3.1): "the primary
//! master that has grabbed the lock will take charge of resource scheduling
//! while the other master is standby. When the primary FuxiMaster crashes,
//! the standby will immediately grasp the lock and become the new primary."
//!
//! Leases are the failure detector: the holder must send keepalives; when a
//! lease lapses, the lock passes to the first waiter and the former holder
//! (if somehow alive) is told via `LockLost`. Lease length therefore bounds
//! how long a dead primary can stall the cluster — it is a first-order term
//! in the paper's "extra 13 s" master-failover measurement.

use fuxi_proto::Msg;
use fuxi_sim::{Actor, ActorId, Ctx, SimDuration, SimTime};
use std::collections::{BTreeMap, VecDeque};

#[derive(Debug)]
struct LockState {
    holder: ActorId,
    ttl: SimDuration,
    expires: SimTime,
    waiters: VecDeque<(ActorId, SimDuration)>,
}

/// The lock-service actor. Spawn placeless (it models a replicated quorum
/// service that does not fail with any single machine).
pub struct LockService {
    locks: BTreeMap<String, LockState>,
    sweep: SimDuration,
}

impl LockService {
    /// Creates a new instance with the given configuration.
    pub fn new(sweep: SimDuration) -> Self {
        Self {
            locks: BTreeMap::new(),
            sweep,
        }
    }

    /// Default sweep granularity: 250 ms.
    pub fn with_defaults() -> Self {
        Self::new(SimDuration::from_millis(250))
    }

    fn grant(ctx: &mut Ctx<'_, Msg>, name: &str, to: ActorId) {
        ctx.send(
            to,
            Msg::LockGranted {
                name: name.to_owned(),
            },
        );
    }

    fn acquire(&mut self, ctx: &mut Ctx<'_, Msg>, from: ActorId, name: String, ttl_s: f64) {
        let ttl = SimDuration::from_secs_f64(ttl_s);
        let now = ctx.now();
        match self.locks.get_mut(&name) {
            None => {
                self.locks.insert(
                    name.clone(),
                    LockState {
                        holder: from,
                        ttl,
                        expires: now + ttl,
                        waiters: VecDeque::new(),
                    },
                );
                Self::grant(ctx, &name, from);
            }
            Some(state) => {
                if state.holder == from {
                    // Re-acquire refreshes the lease (idempotent).
                    state.ttl = ttl;
                    state.expires = now + ttl;
                    Self::grant(ctx, &name, from);
                } else if !state.waiters.iter().any(|&(w, _)| w == from) {
                    state.waiters.push_back((from, ttl));
                }
            }
        }
    }

    fn keepalive(&mut self, now: SimTime, from: ActorId, name: &str) {
        if let Some(state) = self.locks.get_mut(name) {
            if state.holder == from {
                state.expires = now + state.ttl;
            }
        }
    }

    fn release(&mut self, ctx: &mut Ctx<'_, Msg>, from: ActorId, name: &str) {
        let Some(state) = self.locks.get_mut(name) else {
            return;
        };
        if state.holder != from {
            // A non-holder may cancel its waiting position.
            state.waiters.retain(|&(w, _)| w != from);
            return;
        }
        self.pass_on(ctx, name);
    }

    /// Hands the lock to the next live waiter or removes it.
    fn pass_on(&mut self, ctx: &mut Ctx<'_, Msg>, name: &str) {
        let now = ctx.now();
        let state = self.locks.get_mut(name).expect("lock exists");
        loop {
            match state.waiters.pop_front() {
                Some((next, ttl)) if ctx.alive(next) => {
                    state.holder = next;
                    state.ttl = ttl;
                    state.expires = now + ttl;
                    Self::grant(ctx, name, next);
                    return;
                }
                Some(_) => continue, // dead waiter, skip
                None => {
                    self.locks.remove(name);
                    return;
                }
            }
        }
    }

    fn sweep_expired(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let now = ctx.now();
        let expired: Vec<String> = self
            .locks
            .iter()
            .filter(|(_, s)| s.expires <= now)
            .map(|(n, _)| n.clone())
            .collect();
        for name in expired {
            let holder = self.locks[&name].holder;
            if ctx.alive(holder) {
                ctx.send(
                    holder,
                    Msg::LockLost { name: name.clone() },
                );
            }
            ctx.metrics().count("lock.lease_expired", 1);
            self.pass_on(ctx, &name);
        }
    }
}

impl Actor<Msg> for LockService {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        ctx.timer(self.sweep, 0);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ActorId, msg: Msg) {
        match msg {
            Msg::LockAcquire { name, ttl_s } => self.acquire(ctx, from, name, ttl_s),
            Msg::LockKeepalive { name } => self.keepalive(ctx.now(), from, &name),
            Msg::LockRelease { name } => self.release(ctx, from, &name),
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: u64) {
        self.sweep_expired(ctx);
        ctx.timer(self.sweep, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuxi_sim::{World, WorldConfig};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Shared `(time, event)` log the contenders append to.
    type EventLog = Rc<RefCell<Vec<(f64, String)>>>;

    /// A test contender that records lock events and keeps its lease alive
    /// while `keepalive` is set.
    struct Contender {
        lock: ActorId,
        keepalive: Rc<RefCell<bool>>,
        log: EventLog,
        tagname: &'static str,
    }

    impl Actor<Msg> for Contender {
        fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
            ctx.send(
                self.lock,
                Msg::LockAcquire {
                    name: "fuxi-master".into(),
                    ttl_s: 2.0,
                },
            );
            ctx.timer(SimDuration::from_millis(500), 1);
        }

        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: ActorId, msg: Msg) {
            match msg {
                Msg::LockGranted { .. } => {
                    self.log
                        .borrow_mut()
                        .push((ctx.now().as_secs_f64(), format!("{}:granted", self.tagname)));
                }
                Msg::LockLost { .. } => {
                    self.log
                        .borrow_mut()
                        .push((ctx.now().as_secs_f64(), format!("{}:lost", self.tagname)));
                }
                _ => {}
            }
        }

        fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: u64) {
            if *self.keepalive.borrow() {
                ctx.send(
                    self.lock,
                    Msg::LockKeepalive {
                        name: "fuxi-master".into(),
                    },
                );
            }
            ctx.timer(SimDuration::from_millis(500), 1);
        }
    }

    fn setup() -> (
        World<Msg>,
        EventLog,
        Rc<RefCell<bool>>,
        ActorId,
    ) {
        let mut w: World<Msg> = World::new(WorldConfig::uniform(4, 2, 9));
        let lock = w.spawn(None, Box::new(LockService::with_defaults()));
        let log = Rc::new(RefCell::new(Vec::new()));
        let ka = Rc::new(RefCell::new(true));
        let a = w.spawn(
            Some(0),
            Box::new(Contender {
                lock,
                keepalive: ka.clone(),
                log: log.clone(),
                tagname: "A",
            }),
        );
        // B joins shortly after; queues behind A.
        let log2 = log.clone();
        let ka_b = Rc::new(RefCell::new(true));
        let kb = ka_b.clone();
        w.at(fuxi_sim::SimTime::from_millis(100), move |w| {
            w.spawn(
                Some(1),
                Box::new(Contender {
                    lock,
                    keepalive: kb.clone(),
                    log: log2.clone(),
                    tagname: "B",
                }),
            );
        });
        let _ = a;
        (w, log, ka, a)
    }

    #[test]
    fn first_acquirer_wins_and_standby_queues() {
        let (mut w, log, _ka, _a) = setup();
        w.run_until(fuxi_sim::SimTime::from_secs(5));
        let log = log.borrow();
        assert_eq!(log.len(), 1, "only A holds the lock: {log:?}");
        assert!(log[0].1.contains("A:granted"));
    }

    #[test]
    // Re-enabled (PR 2): the kernel now guarantees per-source FIFO delivery
    // — everything one actor sends arrives in send order even across
    // destinations — so "A:lost" can no longer overtake "B:granted".
    fn lease_expiry_passes_lock_to_standby() {
        let (mut w, log, ka, _a) = setup();
        // A stops keeping alive at t=3: lease (2s) expires by ~t=5.x.
        let ka2 = ka.clone();
        w.at(fuxi_sim::SimTime::from_secs(3), move |_| {
            *ka2.borrow_mut() = false;
        });
        w.run_until(fuxi_sim::SimTime::from_secs(10));
        let log = log.borrow();
        let events: Vec<&str> = log.iter().map(|(_, e)| e.as_str()).collect();
        assert_eq!(events, vec!["A:granted", "A:lost", "B:granted"], "{log:?}");
        // The handover happens within ttl + sweep of the last keepalive.
        let t_granted_b = log[2].0;
        assert!(t_granted_b > 4.0 && t_granted_b < 6.5, "t = {t_granted_b}");
    }

    #[test]
    fn holder_death_hands_over_without_lock_lost() {
        let (mut w, log, _ka, a) = setup();
        w.at(fuxi_sim::SimTime::from_secs(3), move |w| {
            w.kill_actor(a);
        });
        w.run_until(fuxi_sim::SimTime::from_secs(10));
        let log = log.borrow();
        let events: Vec<&str> = log.iter().map(|(_, e)| e.as_str()).collect();
        assert_eq!(events, vec!["A:granted", "B:granted"], "{log:?}");
    }

    #[test]
    fn nonholder_release_cancels_waiting_position() {
        // C queues behind A, then cancels; when A's lease lapses the lock
        // must go to B (still waiting), never to C.
        let (mut w, log, ka, _a) = setup();
        struct Canceller {
            lock: ActorId,
            log: EventLog,
        }
        impl Actor<Msg> for Canceller {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.send(
                    self.lock,
                    Msg::LockAcquire {
                        name: "fuxi-master".into(),
                        ttl_s: 2.0,
                    },
                );
                ctx.timer(SimDuration::from_millis(600), 7);
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _: ActorId, msg: Msg) {
                if let Msg::LockGranted { .. } = msg {
                    self.log
                        .borrow_mut()
                        .push((ctx.now().as_secs_f64(), "C:granted".into()));
                }
            }
            fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, _tag: u64) {
                ctx.send(
                    self.lock,
                    Msg::LockRelease {
                        name: "fuxi-master".into(),
                    },
                );
            }
        }
        let lock = ActorId(0); // lock service is the first spawn in setup()
        let log2 = log.clone();
        w.at(fuxi_sim::SimTime::from_millis(50), move |w| {
            w.spawn(Some(2), Box::new(Canceller { lock, log: log2.clone() }));
        });
        // A stops keepalives; lease lapses; B (not C) must inherit.
        let ka2 = ka.clone();
        w.at(fuxi_sim::SimTime::from_secs(3), move |_| {
            *ka2.borrow_mut() = false;
        });
        w.run_until(fuxi_sim::SimTime::from_secs(10));
        let log = log.borrow();
        let events: Vec<&str> = log.iter().map(|(_, e)| e.as_str()).collect();
        assert_eq!(events, vec!["A:granted", "A:lost", "B:granted"], "{log:?}");
    }
}
