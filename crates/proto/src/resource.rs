//! Multi-dimensional resource descriptions (paper Section 3.2.1).
//!
//! Fuxi unifies diverse demands into a uniform multi-dimensional resource
//! description covering physical resources (CPU, memory) and an open-ended
//! set of *virtual resources* ("to run a distributed sort application called
//! ASort ... configure each node to only contain 5 virtual resource").
//! Alibaba's production deployment used 7 dimensions (Section 5.1): CPU,
//! memory and 5 virtual types; this implementation supports any number.
//!
//! All allocations are component-wise: a request fits iff **every** dimension
//! fits ("all dimensions of this description must be satisfied in the
//! meantime").

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// CPU is accounted in milli-cores, so the paper's `0.5 core` instances are
/// exactly representable (the paper's own request format uses `amount: 100`
/// per core, i.e. centi-cores; milli-cores is a strict refinement).
pub const CPU_MILLI_PER_CORE: u64 = 1000;

/// Identifier of a registered virtual-resource dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VirtualResourceId(pub u32);

/// Interns virtual-resource names (e.g. `"ASortResource"`) to dense ids so
/// the scheduler hot path compares integers, never strings.
#[derive(Debug, Default, Clone)]
pub struct VirtualResourceRegistry {
    names: Vec<String>,
    by_name: HashMap<String, VirtualResourceId>,
}

impl VirtualResourceRegistry {
    /// Creates a new instance with the given configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the id for `name`, registering it if unseen.
    pub fn intern(&mut self, name: &str) -> VirtualResourceId {
        if let Some(&id) = self.by_name.get(name) {
            return id;
        }
        let id = VirtualResourceId(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Looks up an already-registered name.
    pub fn get(&self, name: &str) -> Option<VirtualResourceId> {
        self.by_name.get(name).copied()
    }

    /// The name registered for `id`, if any.
    pub fn name(&self, id: VirtualResourceId) -> Option<&str> {
        self.names.get(id.0 as usize).map(String::as_str)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// A point in resource space: CPU milli-cores, memory MB, plus any virtual
/// dimensions. Virtual dimensions are kept sorted by id in a small vector;
/// absent entries mean zero, so the common CPU+memory-only case carries no
/// heap data beyond one empty `Vec`.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceVec {
    cpu_milli: u64,
    memory_mb: u64,
    /// Sorted by `VirtualResourceId`; never contains zero amounts.
    virtuals: Vec<(VirtualResourceId, u64)>,
}

impl ResourceVec {
    /// The zero vector.
    pub const ZERO: ResourceVec = ResourceVec {
        cpu_milli: 0,
        memory_mb: 0,
        virtuals: Vec::new(),
    };

    /// A physical-only resource amount.
    pub fn new(cpu_milli: u64, memory_mb: u64) -> Self {
        Self {
            cpu_milli,
            memory_mb,
            virtuals: Vec::new(),
        }
    }

    /// Convenience: whole cores and megabytes.
    pub fn cores_mb(cores: u64, memory_mb: u64) -> Self {
        Self::new(cores * CPU_MILLI_PER_CORE, memory_mb)
    }

    /// Builder-style addition of a virtual dimension.
    pub fn with_virtual(mut self, id: VirtualResourceId, amount: u64) -> Self {
        self.set_virtual(id, amount);
        self
    }

    /// Cpu milli.
    pub fn cpu_milli(&self) -> u64 {
        self.cpu_milli
    }

    /// Memory mb.
    pub fn memory_mb(&self) -> u64 {
        self.memory_mb
    }

    /// Set cpu milli.
    pub fn set_cpu_milli(&mut self, v: u64) {
        self.cpu_milli = v;
    }

    /// Set memory mb.
    pub fn set_memory_mb(&mut self, v: u64) {
        self.memory_mb = v;
    }

    /// Amount of virtual dimension `id` (zero when absent).
    pub fn virtual_amount(&self, id: VirtualResourceId) -> u64 {
        match self.virtuals.binary_search_by_key(&id, |e| e.0) {
            Ok(i) => self.virtuals[i].1,
            Err(_) => 0,
        }
    }

    /// Sets virtual dimension `id` to `amount` (removing the entry when zero).
    pub fn set_virtual(&mut self, id: VirtualResourceId, amount: u64) {
        match self.virtuals.binary_search_by_key(&id, |e| e.0) {
            Ok(i) => {
                if amount == 0 {
                    self.virtuals.remove(i);
                } else {
                    self.virtuals[i].1 = amount;
                }
            }
            Err(i) => {
                if amount != 0 {
                    self.virtuals.insert(i, (id, amount));
                }
            }
        }
    }

    /// Iterates the non-zero virtual dimensions.
    pub fn virtuals(&self) -> impl Iterator<Item = (VirtualResourceId, u64)> + '_ {
        self.virtuals.iter().copied()
    }

    /// Is zero.
    pub fn is_zero(&self) -> bool {
        self.cpu_milli == 0 && self.memory_mb == 0 && self.virtuals.is_empty()
    }

    /// Component-wise `self + other`.
    pub fn add(&mut self, other: &ResourceVec) {
        self.cpu_milli += other.cpu_milli;
        self.memory_mb += other.memory_mb;
        for &(id, amt) in &other.virtuals {
            let cur = self.virtual_amount(id);
            self.set_virtual(id, cur + amt);
        }
    }

    /// Component-wise `self - other`, saturating at zero per dimension.
    pub fn saturating_sub(&mut self, other: &ResourceVec) {
        self.cpu_milli = self.cpu_milli.saturating_sub(other.cpu_milli);
        self.memory_mb = self.memory_mb.saturating_sub(other.memory_mb);
        for &(id, amt) in &other.virtuals {
            let cur = self.virtual_amount(id);
            self.set_virtual(id, cur.saturating_sub(amt));
        }
    }

    /// Component-wise subtraction that fails (leaving `self` untouched) if any
    /// dimension would underflow.
    pub fn checked_sub(&mut self, other: &ResourceVec) -> bool {
        if !other.fits_in(self) {
            return false;
        }
        self.saturating_sub(other);
        true
    }

    /// `true` iff every dimension of `self` is ≤ the same dimension of
    /// `available` — the admission test for one allocation.
    #[inline]
    pub fn fits_in(&self, available: &ResourceVec) -> bool {
        if self.cpu_milli > available.cpu_milli || self.memory_mb > available.memory_mb {
            return false;
        }
        if self.virtuals.is_empty() {
            return true;
        }
        self.virtuals
            .iter()
            .all(|&(id, amt)| amt <= available.virtual_amount(id))
    }

    /// How many copies of `self` fit into `available` (component-wise floor
    /// division, the multi-unit grant count used by the scheduler). Returns
    /// `u64::MAX` when `self` is the zero vector.
    #[inline]
    pub fn times_fitting_in(&self, available: &ResourceVec) -> u64 {
        // Physical-only fast path: the overwhelmingly common case in the
        // scheduler hot loop carries no virtual dimensions, so two divisions
        // suffice and the binary-search walk is skipped entirely.
        if self.virtuals.is_empty() {
            let cpu = available.cpu_milli.checked_div(self.cpu_milli).unwrap_or(u64::MAX);
            let mem = available.memory_mb.checked_div(self.memory_mb).unwrap_or(u64::MAX);
            return cpu.min(mem);
        }
        let mut n = u64::MAX;
        if let Some(q) = available.cpu_milli.checked_div(self.cpu_milli) {
            n = n.min(q);
        }
        if let Some(q) = available.memory_mb.checked_div(self.memory_mb) {
            n = n.min(q);
        }
        for &(id, amt) in &self.virtuals {
            if let Some(q) = available.virtual_amount(id).checked_div(amt) {
                n = n.min(q);
            }
        }
        n
    }

    /// Component-wise `self * k`.
    pub fn scaled(&self, k: u64) -> ResourceVec {
        ResourceVec {
            cpu_milli: self.cpu_milli * k,
            memory_mb: self.memory_mb * k,
            virtuals: self
                .virtuals
                .iter()
                .map(|&(id, amt)| (id, amt * k))
                .collect(),
        }
    }

    /// Adds `other * k` to self without materialising the intermediate.
    #[inline]
    pub fn add_scaled(&mut self, other: &ResourceVec, k: u64) {
        self.cpu_milli += other.cpu_milli * k;
        self.memory_mb += other.memory_mb * k;
        if other.virtuals.is_empty() {
            return;
        }
        for &(id, amt) in &other.virtuals {
            let cur = self.virtual_amount(id);
            self.set_virtual(id, cur + amt * k);
        }
    }

    /// Subtracts `other * k`, saturating at zero per dimension.
    #[inline]
    pub fn sub_scaled(&mut self, other: &ResourceVec, k: u64) {
        self.cpu_milli = self.cpu_milli.saturating_sub(other.cpu_milli * k);
        self.memory_mb = self.memory_mb.saturating_sub(other.memory_mb * k);
        if other.virtuals.is_empty() {
            return;
        }
        for &(id, amt) in &other.virtuals {
            let cur = self.virtual_amount(id);
            self.set_virtual(id, cur.saturating_sub(amt * k));
        }
    }

    /// Clamps every dimension of `self` to at most the matching dimension of
    /// `bound`. Virtual dimensions absent from `bound` are dropped. Used when
    /// returning resources to a machine whose capacity shrank in the meantime
    /// (node flap, blacklist): free space must never exceed capacity.
    pub fn clamp_to(&mut self, bound: &ResourceVec) {
        if self.fits_in(bound) {
            return;
        }
        self.cpu_milli = self.cpu_milli.min(bound.cpu_milli);
        self.memory_mb = self.memory_mb.min(bound.memory_mb);
        if self.virtuals.is_empty() {
            return;
        }
        let mut clamped = Vec::with_capacity(self.virtuals.len());
        for &(id, amt) in &self.virtuals {
            let limit = bound.virtual_amount(id);
            let v = amt.min(limit);
            if v > 0 {
                clamped.push((id, v));
            }
        }
        self.virtuals = clamped;
    }

    /// Component-wise maximum with `other` — the join in the per-dimension
    /// lattice. The scheduler's hierarchical fit index stores, per rack, the
    /// component-wise max of member free vectors: if one unit does not fit in
    /// that aggregate, it fits on no machine in the rack.
    pub fn max_with(&mut self, other: &ResourceVec) {
        self.cpu_milli = self.cpu_milli.max(other.cpu_milli);
        self.memory_mb = self.memory_mb.max(other.memory_mb);
        for &(id, amt) in &other.virtuals {
            let cur = self.virtual_amount(id);
            if amt > cur {
                self.set_virtual(id, amt);
            }
        }
    }

    /// The degree (in [0, 1]) to which `used` consumes `self` on the most
    /// loaded physical dimension; drives the agent's overload detection.
    pub fn max_physical_load(&self, used: &ResourceVec) -> f64 {
        let cpu = if self.cpu_milli > 0 {
            used.cpu_milli as f64 / self.cpu_milli as f64
        } else {
            0.0
        };
        let mem = if self.memory_mb > 0 {
            used.memory_mb as f64 / self.memory_mb as f64
        } else {
            0.0
        };
        cpu.max(mem)
    }
}

impl fmt::Display for ResourceVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{{{:.2}c, {}MB",
            self.cpu_milli as f64 / CPU_MILLI_PER_CORE as f64,
            self.memory_mb
        )?;
        for &(id, amt) in &self.virtuals {
            write!(f, ", v{}={}", id.0, amt)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vid(n: u32) -> VirtualResourceId {
        VirtualResourceId(n)
    }

    #[test]
    fn registry_interns_and_resolves() {
        let mut reg = VirtualResourceRegistry::new();
        let a = reg.intern("ASortResource");
        let b = reg.intern("BSortResource");
        assert_ne!(a, b);
        assert_eq!(reg.intern("ASortResource"), a);
        assert_eq!(reg.get("BSortResource"), Some(b));
        assert_eq!(reg.name(a), Some("ASortResource"));
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn add_and_sub_roundtrip() {
        let mut a = ResourceVec::cores_mb(4, 8192).with_virtual(vid(0), 5);
        let b = ResourceVec::new(1500, 2048).with_virtual(vid(0), 2);
        a.add(&b);
        assert_eq!(a.cpu_milli(), 5500);
        assert_eq!(a.memory_mb(), 10240);
        assert_eq!(a.virtual_amount(vid(0)), 7);
        assert!(a.checked_sub(&b));
        assert_eq!(a, ResourceVec::cores_mb(4, 8192).with_virtual(vid(0), 5));
    }

    #[test]
    fn checked_sub_rejects_underflow_and_leaves_untouched() {
        let mut a = ResourceVec::cores_mb(1, 1024);
        let b = ResourceVec::cores_mb(2, 512);
        assert!(!a.checked_sub(&b));
        assert_eq!(a, ResourceVec::cores_mb(1, 1024));
    }

    #[test]
    fn saturating_sub_floors_at_zero() {
        let mut a = ResourceVec::cores_mb(1, 1024).with_virtual(vid(1), 3);
        let b = ResourceVec::cores_mb(2, 100).with_virtual(vid(1), 10);
        a.saturating_sub(&b);
        assert_eq!(a.cpu_milli(), 0);
        assert_eq!(a.memory_mb(), 924);
        assert_eq!(a.virtual_amount(vid(1)), 0);
        assert!(a.virtuals().count() == 0, "zero entries must be removed");
    }

    #[test]
    fn fits_requires_all_dimensions() {
        let avail = ResourceVec::cores_mb(12, 96 * 1024);
        assert!(ResourceVec::new(500, 2048).fits_in(&avail));
        // CPU fits, memory does not.
        assert!(!ResourceVec::new(500, 100 * 1024 * 1024).fits_in(&avail));
        // A virtual dimension absent from `avail` blocks the fit.
        assert!(!ResourceVec::new(1, 1).with_virtual(vid(0), 1).fits_in(&avail));
        assert!(ResourceVec::new(1, 1)
            .with_virtual(vid(0), 1)
            .fits_in(&avail.clone().with_virtual(vid(0), 5)));
    }

    #[test]
    fn times_fitting_is_component_wise_min() {
        let avail = ResourceVec::cores_mb(12, 96 * 1024);
        // paper's synthetic instance: 0.5 core, 2 GB -> CPU allows 24, mem allows 48.
        let unit = ResourceVec::new(500, 2048);
        assert_eq!(unit.times_fitting_in(&avail), 24);
        assert_eq!(ResourceVec::ZERO.times_fitting_in(&avail), u64::MAX);
    }

    #[test]
    fn scaled_and_add_scaled_match() {
        let unit = ResourceVec::new(500, 2048).with_virtual(vid(2), 1);
        let mut acc = ResourceVec::ZERO;
        acc.add_scaled(&unit, 7);
        assert_eq!(acc, unit.scaled(7));
        acc.sub_scaled(&unit, 7);
        assert!(acc.is_zero());
    }

    #[test]
    fn clamp_to_is_noop_when_within_bound() {
        let mut v = ResourceVec::new(500, 2048).with_virtual(vid(0), 3);
        let bound = ResourceVec::cores_mb(12, 96 * 1024).with_virtual(vid(0), 5);
        v.clamp_to(&bound);
        assert_eq!(v, ResourceVec::new(500, 2048).with_virtual(vid(0), 3));
    }

    #[test]
    fn clamp_to_caps_each_dimension_independently() {
        // Node flap: capacity shrank from 12c/96GB to 4c/8GB while grants
        // were being returned, so accumulated free exceeds the new capacity.
        let mut free = ResourceVec::cores_mb(12, 4 * 1024);
        let shrunk = ResourceVec::cores_mb(4, 8 * 1024);
        free.clamp_to(&shrunk);
        assert_eq!(free.cpu_milli(), 4000, "cpu clamped to new capacity");
        assert_eq!(free.memory_mb(), 4 * 1024, "memory already within bound");
    }

    #[test]
    fn clamp_to_drops_virtuals_absent_from_bound() {
        // Virtual dimension deconfigured during the flap: entry must vanish,
        // not linger at zero (ResourceVec never stores zero entries).
        let mut free = ResourceVec::new(100, 100)
            .with_virtual(vid(0), 7)
            .with_virtual(vid(1), 2);
        let bound = ResourceVec::new(100, 100).with_virtual(vid(1), 1);
        free.clamp_to(&bound);
        assert_eq!(free.virtual_amount(vid(0)), 0);
        assert_eq!(free.virtual_amount(vid(1)), 1);
        assert_eq!(free.virtuals().count(), 1, "zeroed entries are removed");
    }

    #[test]
    fn max_with_is_component_wise_join() {
        let mut a = ResourceVec::new(500, 4096).with_virtual(vid(0), 2);
        let b = ResourceVec::new(1000, 1024).with_virtual(vid(1), 9);
        a.max_with(&b);
        assert_eq!(a.cpu_milli(), 1000);
        assert_eq!(a.memory_mb(), 4096);
        assert_eq!(a.virtual_amount(vid(0)), 2);
        assert_eq!(a.virtual_amount(vid(1)), 9);
        // Soundness of the fit-index bound: anything fitting in a or b fits
        // in the join.
        assert!(ResourceVec::new(1000, 1024).fits_in(&a));
        assert!(ResourceVec::new(500, 4096).fits_in(&a));
    }

    #[test]
    fn times_fitting_fast_path_matches_general_path() {
        // Physical-only request against an available vector that also has
        // virtuals: the fast path must ignore the extra dimensions.
        let avail = ResourceVec::cores_mb(12, 96 * 1024).with_virtual(vid(0), 5);
        let unit = ResourceVec::new(500, 2048);
        assert_eq!(unit.times_fitting_in(&avail), 24);
        assert_eq!(ResourceVec::new(0, 2048).times_fitting_in(&avail), 48);
        assert_eq!(ResourceVec::new(500, 0).times_fitting_in(&avail), 24);
    }

    #[test]
    fn max_physical_load_picks_hotter_dimension() {
        let cap = ResourceVec::cores_mb(10, 1000);
        let used = ResourceVec::new(2000, 900);
        let load = cap.max_physical_load(&used);
        assert!((load - 0.9).abs() < 1e-9);
    }

    #[test]
    fn display_is_human_readable() {
        let v = ResourceVec::new(1500, 2048).with_virtual(vid(3), 2);
        assert_eq!(v.to_string(), "{1.50c, 2048MB, v3=2}");
    }
}
