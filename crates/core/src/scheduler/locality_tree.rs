//! The locality tree: waiting queues at machine, rack and cluster level
//! (paper Section 3.3, Figure 5).
//!
//! "Different machine, rack and cluster have their individual waiting queue
//! and applications that request resource on the same machine, rack or
//! cluster will be put into the same queue. ... all applications waiting on
//! the same tree are sorted by priority and submission time."
//!
//! Queue entries are `(priority, submit_seq, app, unit)` keys ordered so the
//! most urgent, longest-waiting unit pops first. Each queue tracks a
//! monotone lower bound of the smallest queued unit footprint so the
//! scheduler can stop scanning a queue the moment remaining free resources
//! cannot possibly satisfy anyone in it.

use fuxi_proto::{AppId, MachineId, Priority, RackId, ResourceVec, UnitId};
use std::collections::BTreeMap;

/// Ordering key of a waiting (app, unit): priority first, then submission
/// order (FIFO within a priority), then ids for determinism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct QueueKey {
    /// Scheduling priority.
    pub priority: Priority,
    /// Submission order (FIFO within a priority).
    pub seq: u64,
    /// Application id.
    pub app: AppId,
    /// ScheduleUnit id.
    pub unit: UnitId,
}

/// One waiting queue (for a machine, a rack, or the cluster).
///
/// Entries live in a sorted `Vec` rather than a `BTreeSet`: queues are
/// read (merged, drained) far more often than mutated, and a contiguous
/// slice iterates with zero pointer chasing and no per-node allocation.
/// The vector's capacity is retained across drain/refill cycles, so a
/// steady-state queue allocates nothing.
#[derive(Debug, Default)]
pub struct WaitQueue {
    entries: Vec<QueueKey>,
    /// Monotone lower bounds of the smallest queued footprint; only lowered
    /// on insert, reset when the queue empties. Safe (never excludes a
    /// satisfiable entry), merely conservative.
    min_cpu: u64,
    min_mem: u64,
}

impl WaitQueue {
    fn new() -> Self {
        Self {
            entries: Vec::new(),
            min_cpu: u64::MAX,
            min_mem: u64::MAX,
        }
    }

    fn insert(&mut self, key: QueueKey, footprint: &ResourceVec) {
        if let Err(i) = self.entries.binary_search(&key) {
            self.entries.insert(i, key);
        }
        self.min_cpu = self.min_cpu.min(footprint.cpu_milli());
        self.min_mem = self.min_mem.min(footprint.memory_mb());
    }

    fn remove(&mut self, key: &QueueKey) {
        if let Ok(i) = self.entries.binary_search(key) {
            self.entries.remove(i);
        }
        if self.entries.is_empty() {
            self.min_cpu = u64::MAX;
            self.min_mem = u64::MAX;
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when nothing in this queue could possibly fit in `free`.
    pub fn hopeless_for(&self, free: &ResourceVec) -> bool {
        self.entries.is_empty()
            || self.min_cpu > free.cpu_milli()
            || self.min_mem > free.memory_mb()
    }

    /// Iter.
    pub fn iter(&self) -> impl Iterator<Item = &QueueKey> {
        self.entries.iter()
    }

    /// First.
    pub fn first(&self) -> Option<&QueueKey> {
        self.entries.first()
    }

    /// Entries as a sorted slice.
    fn as_slice(&self) -> &[QueueKey] {
        &self.entries
    }
}

/// Which queue level an entry sits at. Order matters: at equal priority the
/// paper gives machine-queue waiters precedence over rack/cluster waiters
/// ("applications waiting on the machine queue will take precedence over
/// those waiting on the rack/cluster queue that the machine belongs to").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Machine.
    Machine = 0,
    /// Rack.
    Rack = 1,
    /// Cluster.
    Cluster = 2,
}

/// The full locality tree.
#[derive(Debug, Default)]
pub struct LocalityTree {
    machine: BTreeMap<MachineId, WaitQueue>,
    rack: BTreeMap<RackId, WaitQueue>,
    cluster: WaitQueue,
    total_entries: usize,
}

impl LocalityTree {
    /// Creates a new instance with the given configuration.
    pub fn new() -> Self {
        Self {
            cluster: WaitQueue::new(),
            ..Self::default()
        }
    }

    /// Enqueue machine.
    pub fn enqueue_machine(&mut self, m: MachineId, key: QueueKey, footprint: &ResourceVec) {
        let q = self.machine.entry(m).or_default();
        let before = q.len();
        q.insert(key, footprint);
        self.total_entries += q.len() - before;
    }

    /// Enqueue rack.
    pub fn enqueue_rack(&mut self, r: RackId, key: QueueKey, footprint: &ResourceVec) {
        let q = self.rack.entry(r).or_default();
        let before = q.len();
        q.insert(key, footprint);
        self.total_entries += q.len() - before;
    }

    /// Enqueue cluster.
    pub fn enqueue_cluster(&mut self, key: QueueKey, footprint: &ResourceVec) {
        let before = self.cluster.len();
        self.cluster.insert(key, footprint);
        self.total_entries += self.cluster.len() - before;
    }

    /// Dequeue machine.
    pub fn dequeue_machine(&mut self, m: MachineId, key: &QueueKey) {
        if let Some(q) = self.machine.get_mut(&m) {
            let before = q.len();
            q.remove(key);
            self.total_entries -= before - q.len();
            if q.is_empty() {
                self.machine.remove(&m);
            }
        }
    }

    /// Dequeue rack.
    pub fn dequeue_rack(&mut self, r: RackId, key: &QueueKey) {
        if let Some(q) = self.rack.get_mut(&r) {
            let before = q.len();
            q.remove(key);
            self.total_entries -= before - q.len();
            if q.is_empty() {
                self.rack.remove(&r);
            }
        }
    }

    /// Dequeue cluster.
    pub fn dequeue_cluster(&mut self, key: &QueueKey) {
        let before = self.cluster.len();
        self.cluster.remove(key);
        self.total_entries -= before - self.cluster.len();
    }

    /// Machine queue.
    pub fn machine_queue(&self, m: MachineId) -> Option<&WaitQueue> {
        self.machine.get(&m)
    }

    /// Rack queue.
    pub fn rack_queue(&self, r: RackId) -> Option<&WaitQueue> {
        self.rack.get(&r)
    }

    /// Cluster queue.
    pub fn cluster_queue(&self) -> &WaitQueue {
        &self.cluster
    }

    /// Total entries.
    pub fn total_entries(&self) -> usize {
        self.total_entries
    }

    /// Collects candidates for resources freed on machine `m`, merged from
    /// the machine's queue, its rack's queue and the cluster queue in
    /// scheduling order: `(priority, level, seq)` — i.e. strictly by
    /// priority, machine-locality winning ties, FIFO within that. Capped at
    /// `limit` candidates.
    pub fn candidates_for_machine(
        &self,
        m: MachineId,
        rack: RackId,
        free: &ResourceVec,
        limit: usize,
    ) -> Vec<(Level, QueueKey)> {
        let mut out = Vec::new();
        self.candidates_into(m, rack, free, limit, &mut out);
        out
    }

    /// [`candidates_for_machine`](Self::candidates_for_machine), but writing
    /// into a caller-owned scratch vector (cleared first). The scheduler hot
    /// path reuses one scratch buffer across calls, so steady-state
    /// candidate collection allocates nothing once the buffer has grown to
    /// the configured candidate cap.
    pub fn candidates_into(
        &self,
        m: MachineId,
        rack: RackId,
        free: &ResourceVec,
        limit: usize,
        out: &mut Vec<(Level, QueueKey)>,
    ) {
        out.clear();
        let mq = self.machine.get(&m).filter(|q| !q.hopeless_for(free));
        let rq = self.rack.get(&rack).filter(|q| !q.hopeless_for(free));
        let cq = Some(&self.cluster).filter(|q| !q.hopeless_for(free));
        let avail = mq.map_or(0, WaitQueue::len)
            + rq.map_or(0, WaitQueue::len)
            + cq.map_or(0, WaitQueue::len);
        if limit.min(avail) == 0 {
            return;
        }
        // Three-way merge with cached fronts. Entries within a queue are
        // already sorted, and levels are distinct, so two ranks are never
        // equal and the smallest front is unambiguous.
        const EMPTY: &[QueueKey] = &[];
        let mut m_it = mq.map_or(EMPTY.iter(), |q| q.as_slice().iter());
        let mut r_it = rq.map_or(EMPTY.iter(), |q| q.as_slice().iter());
        let mut c_it = cq.map_or(EMPTY.iter(), |q| q.as_slice().iter());
        let mut m_f = m_it.next().copied();
        let mut r_f = r_it.next().copied();
        let mut c_f = c_it.next().copied();
        let rank = |k: &QueueKey, lvl: Level| (k.priority, lvl, k.seq);
        let min2 = |a: Option<(Priority, Level, u64)>, b: Option<(Priority, Level, u64)>| match (a, b)
        {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, None) => x,
            (None, y) => y,
        };
        // After winning the 3-way pick, a queue keeps popping while its
        // front stays below both other fronts (which don't move meanwhile):
        // the same sequence as re-picking each step, but the rival bound is
        // computed once per run instead of per pop.
        macro_rules! drain_run {
            ($front:ident, $it:ident, $lvl:expr, $others:expr) => {{
                let om = $others;
                while let Some(k) = $front {
                    if let Some(om) = om {
                        if rank(&k, $lvl) >= om {
                            break;
                        }
                    }
                    out.push(($lvl, k));
                    $front = $it.next().copied();
                    if out.len() >= limit {
                        return;
                    }
                }
            }};
        }
        loop {
            let mr = m_f.map(|k| rank(&k, Level::Machine));
            let rr = r_f.map(|k| rank(&k, Level::Rack));
            let cr = c_f.map(|k| rank(&k, Level::Cluster));
            let Some(best) = min2(min2(mr, rr), cr) else {
                return;
            };
            if Some(best) == mr {
                drain_run!(m_f, m_it, Level::Machine, min2(rr, cr));
            } else if Some(best) == rr {
                drain_run!(r_f, r_it, Level::Rack, min2(mr, cr));
            } else {
                drain_run!(c_f, c_it, Level::Cluster, min2(mr, rr));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(p: u16, seq: u64, app: u32) -> QueueKey {
        QueueKey {
            priority: Priority(p),
            seq,
            app: AppId(app),
            unit: UnitId(0),
        }
    }

    fn fp(cpu: u64, mem: u64) -> ResourceVec {
        ResourceVec::new(cpu, mem)
    }

    #[test]
    fn queue_orders_by_priority_then_seq() {
        let mut t = LocalityTree::new();
        t.enqueue_cluster(key(5, 2, 1), &fp(100, 100));
        t.enqueue_cluster(key(1, 3, 2), &fp(100, 100));
        t.enqueue_cluster(key(5, 1, 3), &fp(100, 100));
        let order: Vec<u32> = t.cluster_queue().iter().map(|k| k.app.0).collect();
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn candidates_merge_prefers_machine_at_equal_priority() {
        let mut t = LocalityTree::new();
        // Same priority: cluster waiter submitted earlier than machine
        // waiter, but machine level must still win the tie on priority.
        t.enqueue_cluster(key(5, 1, 10), &fp(1, 1));
        t.enqueue_machine(MachineId(0), key(5, 2, 20), &fp(1, 1));
        t.enqueue_rack(RackId(0), key(5, 3, 30), &fp(1, 1));
        let c = t.candidates_for_machine(MachineId(0), RackId(0), &fp(1000, 1000), 10);
        let apps: Vec<u32> = c.iter().map(|(_, k)| k.app.0).collect();
        assert_eq!(apps, vec![20, 30, 10]);
    }

    #[test]
    fn candidates_respect_priority_over_level() {
        let mut t = LocalityTree::new();
        t.enqueue_machine(MachineId(0), key(5, 1, 20), &fp(1, 1));
        t.enqueue_cluster(key(1, 2, 10), &fp(1, 1));
        let c = t.candidates_for_machine(MachineId(0), RackId(0), &fp(1000, 1000), 10);
        let apps: Vec<u32> = c.iter().map(|(_, k)| k.app.0).collect();
        assert_eq!(apps, vec![10, 20], "higher priority wins regardless of level");
    }

    #[test]
    fn hopeless_queues_are_skipped() {
        let mut t = LocalityTree::new();
        t.enqueue_cluster(key(1, 1, 1), &fp(5000, 5000));
        // Free resources smaller than anything queued: no candidates.
        let c = t.candidates_for_machine(MachineId(0), RackId(0), &fp(100, 100), 10);
        assert!(c.is_empty());
        // But a small entry re-opens the queue.
        t.enqueue_cluster(key(1, 2, 2), &fp(50, 50));
        let c = t.candidates_for_machine(MachineId(0), RackId(0), &fp(100, 100), 10);
        assert_eq!(c.len(), 2, "bound is conservative: big entry also listed");
    }

    #[test]
    fn dequeue_cleans_up_and_counts() {
        let mut t = LocalityTree::new();
        let k = key(1, 1, 1);
        t.enqueue_machine(MachineId(3), k, &fp(1, 1));
        t.enqueue_rack(RackId(1), k, &fp(1, 1));
        t.enqueue_cluster(k, &fp(1, 1));
        assert_eq!(t.total_entries(), 3);
        t.dequeue_machine(MachineId(3), &k);
        t.dequeue_rack(RackId(1), &k);
        t.dequeue_cluster(&k);
        assert_eq!(t.total_entries(), 0);
        assert!(t.machine_queue(MachineId(3)).is_none(), "empty queues pruned");
        // Double-dequeue is harmless.
        t.dequeue_cluster(&k);
        assert_eq!(t.total_entries(), 0);
    }

    #[test]
    fn candidate_limit_caps_output() {
        let mut t = LocalityTree::new();
        for i in 0..100 {
            t.enqueue_cluster(key(5, i, i as u32), &fp(1, 1));
        }
        let c = t.candidates_for_machine(MachineId(0), RackId(0), &fp(10, 10), 7);
        assert_eq!(c.len(), 7);
    }

    #[test]
    fn min_footprint_resets_when_queue_drains() {
        let mut t = LocalityTree::new();
        let small = key(1, 1, 1);
        t.enqueue_cluster(small, &fp(10, 10));
        t.dequeue_cluster(&small);
        t.enqueue_cluster(key(1, 2, 2), &fp(500, 500));
        // After drain+reinsert the bound reflects only the big entry.
        let c = t.candidates_for_machine(MachineId(0), RackId(0), &fp(100, 100), 10);
        assert!(c.is_empty());
    }
}
