//! Streamline: the data-shuffle operator library shipped with the Fuxi SDK
//! (paper Section 4.1: "for data shuffle, we encapsulate the common data
//! operators like sort, merge-sort, reduce into a library named Streamline
//! along with the released SDK").
//!
//! These are real, functional in-memory operators — the examples use them
//! to compute actual results (word counts, sorted runs) while the cluster
//! simulation models the distributed I/O around them.

use std::collections::BTreeMap;

/// Hash-partitions records by key into `n` buckets (the map-side shuffle).
pub fn partition<K: std::hash::Hash, V>(records: Vec<(K, V)>, n: usize) -> Vec<Vec<(K, V)>> {
    use std::hash::{DefaultHasher, Hasher};
    assert!(n > 0, "partition count must be positive");
    let mut buckets: Vec<Vec<(K, V)>> = (0..n).map(|_| Vec::new()).collect();
    for (k, v) in records {
        let mut h = DefaultHasher::new();
        k.hash(&mut h);
        let b = (h.finish() % n as u64) as usize;
        buckets[b].push((k, v));
    }
    buckets
}

/// Sorts records by key (the spill-side sort).
pub fn sort<K: Ord, V>(mut records: Vec<(K, V)>) -> Vec<(K, V)> {
    records.sort_by(|a, b| a.0.cmp(&b.0));
    records
}

/// Merges already-sorted runs into one sorted stream (the reduce-side
/// merge-sort over fetched spills). O(total · log runs).
pub fn merge_sort<K: Ord + Clone, V>(runs: Vec<Vec<(K, V)>>) -> Vec<(K, V)> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    #[derive(PartialEq, Eq)]
    struct Head<K: Ord>(K, usize);
    impl<K: Ord> PartialOrd for Head<K> {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl<K: Ord> Ord for Head<K> {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.cmp(&other.0).then(self.1.cmp(&other.1))
        }
    }
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut iters: Vec<std::vec::IntoIter<(K, V)>> =
        runs.into_iter().map(Vec::into_iter).collect();
    let mut heap = BinaryHeap::new();
    let mut heads: Vec<Option<(K, V)>> = Vec::with_capacity(iters.len());
    for (i, it) in iters.iter_mut().enumerate() {
        match it.next() {
            Some((k, v)) => {
                heap.push(Reverse(Head(k.clone(), i)));
                heads.push(Some((k, v)));
            }
            None => heads.push(None),
        }
    }
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse(Head(_, i))) = heap.pop() {
        let (k, v) = heads[i].take().expect("head present");
        out.push((k, v));
        if let Some((k2, v2)) = iters[i].next() {
            heap.push(Reverse(Head(k2.clone(), i)));
            heads[i] = Some((k2, v2));
        }
    }
    out
}

/// Groups a key-sorted stream and folds each group (the reduce operator).
pub fn reduce<K: Ord + Clone, V, A>(
    sorted: Vec<(K, V)>,
    init: impl Fn() -> A,
    fold: impl Fn(&mut A, V),
) -> Vec<(K, A)> {
    let mut out: Vec<(K, A)> = Vec::new();
    for (k, v) in sorted {
        match out.last_mut() {
            Some((lk, acc)) if *lk == k => fold(acc, v),
            _ => {
                let mut acc = init();
                fold(&mut acc, v);
                out.push((k, acc));
            }
        }
    }
    out
}

/// Convenience: word-count over raw text (tokenize → count), the classic
/// first Fuxi job.
pub fn word_count(text: &str) -> BTreeMap<String, u64> {
    let mut counts = BTreeMap::new();
    for word in text
        .split(|c: char| !c.is_alphanumeric())
        .filter(|w| !w.is_empty())
    {
        *counts.entry(word.to_lowercase()).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_deterministic_and_complete() {
        let recs: Vec<(u32, u32)> = (0..100).map(|i| (i, i)).collect();
        let parts = partition(recs.clone(), 7);
        assert_eq!(parts.len(), 7);
        assert_eq!(parts.iter().map(Vec::len).sum::<usize>(), 100);
        let again = partition(recs, 7);
        assert_eq!(parts, again);
    }

    #[test]
    fn same_key_lands_in_same_partition() {
        let recs = vec![("a", 1), ("b", 2), ("a", 3), ("b", 4)];
        let parts = partition(recs, 4);
        for p in &parts {
            let mut keys: Vec<_> = p.iter().map(|(k, _)| *k).collect();
            keys.dedup();
            // within a partition all "a"s are together (trivially true),
            // the real check: "a" appears in exactly one partition
            let _ = keys;
        }
        let with_a: Vec<_> = parts
            .iter()
            .filter(|p| p.iter().any(|(k, _)| *k == "a"))
            .collect();
        assert_eq!(with_a.len(), 1);
        assert_eq!(with_a[0].iter().filter(|(k, _)| *k == "a").count(), 2);
    }

    #[test]
    fn sort_orders_by_key() {
        let out = sort(vec![(3, 'c'), (1, 'a'), (2, 'b')]);
        assert_eq!(out, vec![(1, 'a'), (2, 'b'), (3, 'c')]);
    }

    #[test]
    fn merge_sort_merges_runs() {
        let runs = vec![
            vec![(1, 'a'), (4, 'd'), (7, 'g')],
            vec![(2, 'b'), (5, 'e')],
            vec![],
            vec![(3, 'c'), (6, 'f')],
        ];
        let merged = merge_sort(runs);
        let keys: Vec<i32> = merged.iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn merge_sort_equals_flat_sort() {
        let a: Vec<(u32, u32)> = (0..50).map(|i| (i * 3 % 17, i)).collect();
        let mut runs = vec![
            sort(a[..20].to_vec()),
            sort(a[20..35].to_vec()),
            sort(a[35..].to_vec()),
        ];
        let merged: Vec<u32> = merge_sort(std::mem::take(&mut runs))
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        let flat: Vec<u32> = sort(a).into_iter().map(|(k, _)| k).collect();
        assert_eq!(merged, flat);
    }

    #[test]
    fn reduce_folds_groups() {
        let sorted = vec![("a", 1), ("a", 2), ("b", 5), ("c", 1), ("c", 1)];
        let out = reduce(sorted, || 0i64, |acc, v| *acc += v as i64);
        assert_eq!(out, vec![("a", 3), ("b", 5), ("c", 2)]);
    }

    #[test]
    fn word_count_end_to_end() {
        let counts = word_count("the quick brown fox, The QUICK fox!");
        assert_eq!(counts["the"], 2);
        assert_eq!(counts["quick"], 2);
        assert_eq!(counts["fox"], 2);
        assert_eq!(counts["brown"], 1);
        assert_eq!(counts.len(), 4);
    }
}
