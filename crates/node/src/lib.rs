#![warn(missing_docs)]
//! # fuxi-node
//!
//! Real multi-process Fuxi deployment. One `fuxi-node` process hosts one
//! actor group of a [`fuxi_cluster::DeployTopology`] — master, hot
//! standby, agent fleet, or the hub (lock service + client) — and the
//! processes talk over the versioned wire protocol from
//! `fuxi_proto::wire` via `fuxi_rt`'s [`fuxi_rt::Transport`].
//!
//! * [`supervisor`] — connection supervision: hub accept/relay loops,
//!   leaf dial loop with jittered backoff and session epochs, and the
//!   name/store replication plane;
//! * [`node`] — [`node::LiveNode`]: boots one topology node inside this
//!   process and wires its runtime to the supervisor.
//!
//! `bench_live --distributed` drives a 4-process cluster through SIGKILL
//! failover with this crate; the `fuxi-node` binary runs the same nodes
//! by hand (see the README quickstart).

pub mod node;
pub mod supervisor;

pub use node::LiveNode;
pub use supervisor::{backoff_delay, HubSupervisor, LeafConfig, LeafSupervisor};
