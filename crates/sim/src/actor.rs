//! Actors: the unit of concurrency in the simulated cluster.
//!
//! Every Fuxi component (FuxiMaster, FuxiAgent, JobMaster, TaskWorker, lock
//! service, clients) is an [`Actor`]: single-threaded state machines that
//! react to messages and timers through a [`Ctx`] handle onto the world.
//! Actors may be *placed* on a machine — then they die with it — or be
//! placeless services.
//!
//! A [`Ctx`] is backed by one of two execution engines: the deterministic
//! discrete-event kernel in this crate, or a live multi-threaded runtime
//! (`fuxi-rt`) that implements [`LiveCtxOps`]. Actor code is written once
//! against [`Ctx`] and runs unchanged on both.

use crate::event::{EventKind, KernelMsg};
use crate::flow::FlowSpec;
use crate::metrics::Metrics;
use crate::time::{SimDuration, SimTime};
use crate::world::WorldCore;
use fuxi_obs::{SpanKind, TraceEvent, TraceId, Tracer};
use rand::rngs::SmallRng;
use std::fmt;

/// Address of an actor. Never reused within one world, so a stale address
/// reliably refers to a dead actor (messages to it are counted and dropped).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ActorId(pub u32);

impl ActorId {
    /// A placeholder address that is never alive (used before registration).
    pub const NONE: ActorId = ActorId(u32::MAX);

    /// Width of one deployment node's actor-id window. In a multi-process
    /// cluster, node `i` numbers its actors from `i << NODE_WINDOW_SHIFT`,
    /// so any [`ActorId`] is globally routable: the high bits name the
    /// owning process, the low bits its local slot.
    pub const NODE_WINDOW_SHIFT: u32 = 24;

    /// First actor id owned by deployment node `node_index`.
    pub const fn node_base(node_index: u32) -> u32 {
        node_index << Self::NODE_WINDOW_SHIFT
    }

    /// Deployment-node index encoded in this id's high bits (0 for every
    /// id in a single-process cluster).
    pub const fn node_index(self) -> u32 {
        self.0 >> Self::NODE_WINDOW_SHIFT
    }
}

impl fmt::Display for ActorId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

// Manual (not derived) so the wire form is a bare integer: actor addresses
// appear in nearly every routed message and pay for compactness.
impl serde::Serialize for ActorId {
    fn to_value(&self) -> serde::Value {
        serde::Value::UInt(u64::from(self.0))
    }
}

impl serde::Deserialize for ActorId {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        <u32 as serde::Deserialize>::from_value(v).map(ActorId)
    }
}

/// Behaviour of one simulated component.
pub trait Actor<M: KernelMsg> {
    /// Called once when the actor comes to life (after spawn).
    fn on_start(&mut self, _ctx: &mut Ctx<'_, M>) {}

    /// Called for each delivered message.
    fn on_message(&mut self, ctx: &mut Ctx<'_, M>, from: ActorId, msg: M);

    /// Called when a timer set via [`Ctx::timer`] fires. Timers cannot be
    /// cancelled; actors discard stale ones by tag/generation convention.
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, M>, _tag: u64) {}
}

/// The engine-facing half of a live (wall-clock, multi-threaded) context.
///
/// `fuxi-rt` implements this for its per-actor thread state; the kernel
/// never does — the simulated side dispatches straight into [`WorldCore`]
/// so the hot path stays a single predictable branch.
///
/// Methods that act *as* the current actor take the acting [`ActorId`]
/// explicitly because one implementation may serve a handler for any actor.
pub trait LiveCtxOps<M: KernelMsg> {
    /// Wall-clock time since the runtime epoch, as a [`SimTime`].
    fn now(&self) -> SimTime;
    /// Sends `msg` from `from` to `to` under `trace`, after `extra` delay.
    fn send(&mut self, from: ActorId, to: ActorId, msg: M, extra: SimDuration, trace: TraceId);
    /// Arms a timer firing `on_timer(tag)` on `actor` after `delay`.
    fn timer(&mut self, actor: ActorId, delay: SimDuration, tag: u64);
    /// Spawns a new actor thread, optionally placed on a machine.
    fn spawn(&mut self, machine: Option<u32>, actor: Box<dyn Actor<M> + Send>) -> ActorId;
    /// Terminates `id`.
    fn kill(&mut self, id: ActorId);
    /// `true` if `id` refers to a live actor.
    fn alive(&self, id: ActorId) -> bool;
    /// The machine a live actor is placed on.
    fn machine_of(&self, id: ActorId) -> Option<u32>;
    /// `true` if machine `m` is up.
    fn machine_up(&self, m: u32) -> bool;
    /// Execution speed factor of machine `m`.
    fn machine_speed(&self, m: u32) -> f64;
    /// `true` if process launches currently succeed on machine `m`.
    fn launch_ok(&self, m: u32) -> bool;
    /// Rack of machine `m`.
    fn rack_of(&self, m: u32) -> u32;
    /// Number of machines.
    fn n_machines(&self) -> usize;
    /// Registers `id` in its machine's process table.
    fn register_proc(&mut self, id: ActorId, meta: Vec<u8>);
    /// Reads machine `m`'s process table.
    fn procs_on(&self, m: u32) -> Vec<(ActorId, Vec<u8>)>;
    /// Starts a data flow owned by `owner`.
    fn start_flow(&mut self, owner: ActorId, spec: FlowSpec);
    /// Cancels all incomplete flows owned by `owner`.
    fn cancel_flows_of(&mut self, owner: ActorId);
    /// Per-thread RNG.
    fn rng(&mut self) -> &mut SmallRng;
    /// Per-thread metrics sink (merged into the runtime's at shutdown).
    fn metrics(&mut self) -> &mut Metrics;
    /// The causal trace of the handler currently running.
    fn trace_id(&self) -> TraceId;
    /// Re-establishes the causal trace for the rest of the handler.
    fn set_trace(&mut self, trace: TraceId);
    /// Records a typed trace event attributed to `actor` under `trace`.
    fn trace_event_as(&mut self, actor: ActorId, trace: TraceId, event: TraceEvent);
    /// Records a completed span under the current trace.
    fn span(&mut self, actor: ActorId, kind: SpanKind, wall_s: f64);
    /// Forces a flight-recorder dump.
    fn flight_dump(&mut self, reason: &'static str);
    /// Read access to the per-thread tracer.
    fn tracer(&self) -> &Tracer;
}

/// Which engine a [`Ctx`] dispatches into.
pub(crate) enum CtxBackend<'a, M: KernelMsg> {
    /// The deterministic discrete-event kernel.
    Sim(&'a mut WorldCore<M>),
    /// A live wall-clock runtime (one object per actor thread).
    Live(&'a mut dyn LiveCtxOps<M>),
}

/// The handle through which an actor acts on the world. Borrowed for the
/// duration of one handler invocation.
pub struct Ctx<'a, M: KernelMsg> {
    pub(crate) backend: CtxBackend<'a, M>,
    pub(crate) self_id: ActorId,
}

impl<'a, M: KernelMsg> Ctx<'a, M> {
    /// Wraps a live-runtime context so handlers written against [`Ctx`]
    /// run on real threads. The kernel builds its own contexts internally.
    pub fn for_live(ops: &'a mut dyn LiveCtxOps<M>, self_id: ActorId) -> Self {
        Ctx {
            backend: CtxBackend::Live(ops),
            self_id,
        }
    }

    /// Current time: simulated in the kernel, wall-clock-since-epoch live.
    #[inline]
    pub fn now(&self) -> SimTime {
        match &self.backend {
            CtxBackend::Sim(core) => core.time,
            CtxBackend::Live(ops) => ops.now(),
        }
    }

    /// This actor's address.
    #[inline]
    pub fn id(&self) -> ActorId {
        self.self_id
    }

    /// The machine this actor is placed on, if any.
    pub fn self_machine(&self) -> Option<u32> {
        match &self.backend {
            CtxBackend::Sim(core) => core.machine_of(self.self_id),
            CtxBackend::Live(ops) => ops.machine_of(self.self_id),
        }
    }

    /// Sends `msg` to `to` with modelled network latency.
    pub fn send(&mut self, to: ActorId, msg: M) {
        match &mut self.backend {
            CtxBackend::Sim(core) => core.send_from(self.self_id, to, msg),
            CtxBackend::Live(ops) => {
                let trace = ops.trace_id();
                ops.send(self.self_id, to, msg, SimDuration::ZERO, trace);
            }
        }
    }

    /// Sends `msg` to `to` after an explicit extra delay (e.g. modelling
    /// local processing time before the reply goes out).
    pub fn send_after(&mut self, delay: SimDuration, to: ActorId, msg: M) {
        match &mut self.backend {
            CtxBackend::Sim(core) => core.send_from_after(self.self_id, to, msg, delay),
            CtxBackend::Live(ops) => {
                let trace = ops.trace_id();
                ops.send(self.self_id, to, msg, delay, trace);
            }
        }
    }

    /// Arms a timer that fires `on_timer(tag)` after `delay`.
    pub fn timer(&mut self, delay: SimDuration, tag: u64) {
        match &mut self.backend {
            CtxBackend::Sim(core) => {
                let at = core.time + delay;
                core.queue.push(
                    at,
                    EventKind::Timer {
                        actor: self.self_id,
                        tag,
                    },
                );
            }
            CtxBackend::Live(ops) => ops.timer(self.self_id, delay, tag),
        }
    }

    /// Spawns a new actor, optionally placed on a machine. The spawned
    /// actor's `on_start` runs after the current handler returns. Returns
    /// the new actor's address immediately so it can be communicated.
    ///
    /// The `Send` bound exists for the live runtime, where the new actor
    /// moves to its own OS thread; in the kernel it coerces away.
    pub fn spawn(&mut self, machine: Option<u32>, actor: Box<dyn Actor<M> + Send>) -> ActorId {
        match &mut self.backend {
            CtxBackend::Sim(core) => core.queue_spawn(machine, actor),
            CtxBackend::Live(ops) => ops.spawn(machine, actor),
        }
    }

    /// Terminates another actor after the current handler returns.
    pub fn kill(&mut self, id: ActorId) {
        match &mut self.backend {
            CtxBackend::Sim(core) => core.queue_kill(id),
            CtxBackend::Live(ops) => ops.kill(id),
        }
    }

    /// Terminates this actor after the current handler returns.
    pub fn kill_self(&mut self) {
        let id = self.self_id;
        match &mut self.backend {
            CtxBackend::Sim(core) => core.queue_kill(id),
            CtxBackend::Live(ops) => ops.kill(id),
        }
    }

    /// `true` if `id` refers to a live actor.
    pub fn alive(&self, id: ActorId) -> bool {
        match &self.backend {
            CtxBackend::Sim(core) => core.actor_alive(id),
            CtxBackend::Live(ops) => ops.alive(id),
        }
    }

    /// The machine a live actor is placed on.
    pub fn machine_of(&self, id: ActorId) -> Option<u32> {
        match &self.backend {
            CtxBackend::Sim(core) => core.machine_of(id),
            CtxBackend::Live(ops) => ops.machine_of(id),
        }
    }

    /// `true` if machine `m` is up.
    pub fn machine_up(&self, m: u32) -> bool {
        match &self.backend {
            CtxBackend::Sim(core) => core.machine_up(m),
            CtxBackend::Live(ops) => ops.machine_up(m),
        }
    }

    /// The execution speed factor of machine `m` (1.0 nominal; SlowMachine
    /// faults lower it).
    pub fn machine_speed(&self, m: u32) -> f64 {
        match &self.backend {
            CtxBackend::Sim(core) => core.machine_speed(m),
            CtxBackend::Live(ops) => ops.machine_speed(m),
        }
    }

    /// `true` if process launches currently succeed on machine `m`
    /// (PartialWorkerFailure faults turn this off).
    pub fn launch_ok(&self, m: u32) -> bool {
        match &self.backend {
            CtxBackend::Sim(core) => core.launch_ok(m),
            CtxBackend::Live(ops) => ops.launch_ok(m),
        }
    }

    /// Rack of machine `m` (from the world's configuration).
    pub fn rack_of(&self, m: u32) -> u32 {
        match &self.backend {
            CtxBackend::Sim(core) => core.rack_of(m),
            CtxBackend::Live(ops) => ops.rack_of(m),
        }
    }

    /// Number of machines in the world.
    pub fn n_machines(&self) -> usize {
        match &self.backend {
            CtxBackend::Sim(core) => core.n_machines(),
            CtxBackend::Live(ops) => ops.n_machines(),
        }
    }

    /// Registers this actor in its machine's process table with opaque
    /// metadata — the simulation equivalent of appearing in `/proc`, which
    /// is how a restarted FuxiAgent adopts running workers (Section 4.3.1).
    pub fn register_proc(&mut self, meta: Vec<u8>) {
        let id = self.self_id;
        match &mut self.backend {
            CtxBackend::Sim(core) => core.register_proc(id, meta),
            CtxBackend::Live(ops) => ops.register_proc(id, meta),
        }
    }

    /// Reads machine `m`'s process table.
    pub fn procs_on(&self, m: u32) -> Vec<(ActorId, Vec<u8>)> {
        match &self.backend {
            CtxBackend::Sim(core) => core.procs_on(m),
            CtxBackend::Live(ops) => ops.procs_on(m),
        }
    }

    /// Starts a data flow. Completion arrives as `M::flow_done(tag, failed)`
    /// addressed to this actor.
    pub fn start_flow(&mut self, spec: FlowSpec) {
        let id = self.self_id;
        match &mut self.backend {
            CtxBackend::Sim(core) => core.start_flow(id, spec),
            CtxBackend::Live(ops) => ops.start_flow(id, spec),
        }
    }

    /// Cancels all flows this actor started that have not completed
    /// (no completion message will arrive for them).
    pub fn cancel_own_flows(&mut self) {
        let id = self.self_id;
        match &mut self.backend {
            CtxBackend::Sim(core) => core.cancel_flows_of(id),
            CtxBackend::Live(ops) => ops.cancel_flows_of(id),
        }
    }

    /// Deterministic per-world RNG (per-thread in the live runtime).
    pub fn rng(&mut self) -> &mut SmallRng {
        match &mut self.backend {
            CtxBackend::Sim(core) => &mut core.rng,
            CtxBackend::Live(ops) => ops.rng(),
        }
    }

    /// The world's metrics sink (per-thread live, merged at shutdown).
    pub fn metrics(&mut self) -> &mut Metrics {
        match &mut self.backend {
            CtxBackend::Sim(core) => &mut core.metrics,
            CtxBackend::Live(ops) => ops.metrics(),
        }
    }

    // --- observability -----------------------------------------------------

    /// The causal trace under which this handler runs: inherited from the
    /// delivered message (or from the spawner for `on_start`), `NONE` for
    /// timer-driven activity unless [`Ctx::set_trace`] re-establishes it.
    #[inline]
    pub fn trace_id(&self) -> TraceId {
        match &self.backend {
            CtxBackend::Sim(core) => core.current_trace,
            CtxBackend::Live(ops) => ops.trace_id(),
        }
    }

    /// Re-establishes the causal context for the rest of this handler:
    /// subsequent sends, spawns, and trace events carry `trace`. Actors
    /// with a durable causal identity (a JobMaster belongs to exactly one
    /// job) call this at the top of timer handlers.
    #[inline]
    pub fn set_trace(&mut self, trace: TraceId) {
        match &mut self.backend {
            CtxBackend::Sim(core) => core.current_trace = trace,
            CtxBackend::Live(ops) => ops.set_trace(trace),
        }
    }

    /// Sends `msg` under an explicit trace (overriding the inherited one) —
    /// used where one handler acts for many causal chains, e.g. the
    /// FuxiMaster flushing batched grants for several jobs.
    pub fn send_traced(&mut self, to: ActorId, msg: M, trace: TraceId) {
        let id = self.self_id;
        match &mut self.backend {
            CtxBackend::Sim(core) => {
                core.send_from_traced(id, to, msg, SimDuration::ZERO, trace)
            }
            CtxBackend::Live(ops) => ops.send(id, to, msg, SimDuration::ZERO, trace),
        }
    }

    /// Records a typed trace event under the current trace.
    #[inline]
    pub fn trace(&mut self, event: TraceEvent) {
        let id = self.self_id;
        match &mut self.backend {
            CtxBackend::Sim(core) => core.trace_event(id, event),
            CtxBackend::Live(ops) => {
                let trace = ops.trace_id();
                ops.trace_event_as(id, trace, event);
            }
        }
    }

    /// Records a typed trace event under an explicit trace.
    #[inline]
    pub fn trace_as(&mut self, trace: TraceId, event: TraceEvent) {
        let id = self.self_id;
        match &mut self.backend {
            CtxBackend::Sim(core) => core.trace_event_as(id, trace, event),
            CtxBackend::Live(ops) => ops.trace_event_as(id, trace, event),
        }
    }

    /// Records a completed span: `wall_s` of measured wall-clock work at
    /// the current simulated time.
    pub fn span(&mut self, kind: SpanKind, wall_s: f64) {
        let id = self.self_id;
        match &mut self.backend {
            CtxBackend::Sim(core) => {
                let t_s = core.time.as_secs_f64();
                let trace = core.current_trace;
                core.tracer.span(t_s, id.0, trace, kind, wall_s);
            }
            CtxBackend::Live(ops) => ops.span(id, kind, wall_s),
        }
    }

    /// Forces a flight-recorder dump (invariant violations, failover).
    pub fn flight_dump(&mut self, reason: &'static str) {
        match &mut self.backend {
            CtxBackend::Sim(core) => {
                let t_s = core.time.as_secs_f64();
                core.tracer.dump(t_s, reason);
            }
            CtxBackend::Live(ops) => ops.flight_dump(reason),
        }
    }

    /// Read access to the tracer (rarely needed by actors).
    pub fn tracer(&self) -> &Tracer {
        match &self.backend {
            CtxBackend::Sim(core) => &core.tracer,
            CtxBackend::Live(ops) => ops.tracer(),
        }
    }
}
