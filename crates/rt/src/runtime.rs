//! The live runtime: every actor on its own OS thread, timers on a real
//! clock, mailboxes as bounded MPSC channels.
//!
//! The same actor code that runs under the deterministic kernel runs here
//! unchanged — handlers see a [`Ctx`] whose live backend is implemented by
//! [`ThreadCtx`] below. What changes is the execution substrate:
//!
//! * **Delivery** is a bounded `sync_channel` per actor. A given sender's
//!   messages to a given destination arrive in send order (the kernel's
//!   per-source FIFO guarantee, restricted to each destination pair); there
//!   is no global order across destinations.
//! * **Timers** live in a hashed [`TimerWheel`] owned by one clock thread,
//!   which also drives the shared [`FlowNet`] I/O model on wall time.
//! * **Observability** is per-thread: each actor thread owns a `Metrics`
//!   and a `Tracer` (so the hot path takes no locks) which the runtime
//!   merges into one stream at shutdown.
//!
//! Determinism is deliberately traded away: two runs of the same workload
//! interleave differently. The sim↔live parity test pins down what must
//! still agree — terminal job outcomes, not schedules.

use crate::mailbox::{mailbox, MailboxGauges, MailboxSender, PushOutcome};
use crate::timer::TimerWheel;
use fuxi_sim::{
    Actor, ActorId, FlowNet, FlowSpec, KernelMsg, LiveCtxOps, MachineConfig, Metrics, SimDuration,
    SimTime,
};
use fuxi_sim::{Ctx, TracerConfig};
use fuxi_obs::{SpanKind, TraceEvent, TraceId, Tracer};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Live-runtime construction parameters.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Hardware description per machine (same shape the kernel takes).
    pub machines: Vec<MachineConfig>,
    /// Seed from which every actor thread's RNG is derived.
    pub seed: u64,
    /// Observability configuration applied to each per-thread tracer.
    pub obs: TracerConfig,
    /// Mailbox bound: senders park (and are counted) beyond this depth.
    pub mailbox_capacity: usize,
    /// Timer-wheel granularity.
    pub timer_tick: Duration,
    /// How often each actor thread folds its private metrics into the
    /// runtime-global sink (and the clock thread samples mailbox depths).
    /// Sub-second values make the scrape endpoint near-live; the shutdown
    /// merge still catches whatever accumulated since the last flush.
    pub metrics_flush: Duration,
    /// First actor id this runtime assigns (`node_index <<`
    /// [`ACTOR_WINDOW_SHIFT`]). In a multi-process deployment every node
    /// numbers its actors inside its own window, so an [`ActorId`] is
    /// globally routable; ids outside this runtime's window go to the
    /// remote router (or count as dead when none is installed).
    pub actor_base: u32,
}

/// Width of one node's actor-id window: ids `base .. base + 2^24` are
/// local to the node whose base is `node_index << 24` (canonically
/// defined on [`ActorId`]).
pub const ACTOR_WINDOW_SHIFT: u32 = ActorId::NODE_WINDOW_SHIFT;

/// `true` when two ids live in the same node window.
#[inline]
pub fn same_window(a: u32, b: u32) -> bool {
    (a >> ACTOR_WINDOW_SHIFT) == (b >> ACTOR_WINDOW_SHIFT)
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        RuntimeConfig {
            machines: Vec::new(),
            seed: 1,
            obs: TracerConfig::default(),
            mailbox_capacity: 8192,
            timer_tick: Duration::from_millis(2),
            metrics_flush: Duration::from_secs(1),
            actor_base: 0,
        }
    }
}

/// Callback delivering a message whose destination lives in another
/// process: `(from, to, msg)`. Installed by the node supervisor.
pub type RemoteRouter<M> = Box<dyn Fn(ActorId, ActorId, M) + Send + Sync>;

/// Liveness oracle for non-local actor ids (typically "is the owning
/// peer's connection up"). Installed by the node supervisor.
pub type RemoteAlive = Box<dyn Fn(ActorId) -> bool + Send + Sync>;

/// What lands in an actor's mailbox.
enum Envelope<M> {
    /// Run `on_start` under the spawner's trace.
    Start { trace: TraceId },
    /// Deliver a message; the envelope carries the causal trace like the
    /// kernel's delivery events do.
    Msg {
        from: ActorId,
        msg: M,
        trace: TraceId,
    },
    /// Fire `on_timer(tag)`.
    Timer { tag: u64 },
    /// Terminate the actor thread.
    Kill,
}

/// Commands to the clock thread.
enum ClockCmd<M> {
    Timer {
        actor: ActorId,
        delay: SimDuration,
        tag: u64,
    },
    DelayedSend {
        from: ActorId,
        to: ActorId,
        msg: M,
        delay: SimDuration,
        trace: TraceId,
    },
    StartFlow {
        owner: ActorId,
        spec: FlowSpec,
    },
    CancelFlows {
        owner: ActorId,
    },
    FailMachine {
        m: u32,
    },
    SetIoSpeed {
        m: u32,
        factor: f64,
    },
    Shutdown,
}

/// What the wheel holds: a due timer or a due delayed delivery.
enum Due<M> {
    Timer { actor: ActorId, tag: u64 },
    Send {
        from: ActorId,
        to: ActorId,
        msg: M,
        trace: TraceId,
    },
}

/// What an actor thread returns at exit: its accumulated observability.
type ActorJoin = JoinHandle<(Metrics, Tracer)>;

struct ActorSlot<M> {
    sender: Option<MailboxSender<Envelope<M>>>,
    machine: Option<u32>,
    alive: bool,
    gauges: Arc<MailboxGauges>,
    handle: Option<ActorJoin>,
}

struct MachineState {
    up: bool,
    speed: f64,
    launch_ok: bool,
    procs: BTreeMap<ActorId, Vec<u8>>,
}

/// State shared by every thread of one runtime.
struct Shared<M: KernelMsg + Send> {
    epoch: Instant,
    cfg: RuntimeConfig,
    slots: RwLock<Vec<ActorSlot<M>>>,
    machines: RwLock<Vec<MachineState>>,
    clock_tx: Sender<ClockCmd<M>>,
    /// Runtime-global sinks: fault events, external sends, shutdown merge.
    metrics: Mutex<Metrics>,
    tracer: Mutex<Tracer>,
    /// Cluster metrics view, if a harness attached one: the clock thread
    /// samples mailbox pressure into it alongside the windowed series.
    hub: Mutex<Option<fuxi_obs::MetricsHub>>,
    /// Outbound path for destinations in other processes.
    remote_router: RwLock<Option<RemoteRouter<M>>>,
    /// Liveness oracle for remote ids (`ctx.alive` on a peer's actor).
    remote_alive: RwLock<Option<RemoteAlive>>,
}

impl<M: KernelMsg + Send + 'static> Shared<M> {
    fn now(&self) -> SimTime {
        SimTime(self.epoch.elapsed().as_micros() as u64)
    }

    /// `true` when `id` belongs to this runtime's actor-id window.
    fn is_local(&self, id: ActorId) -> bool {
        same_window(id.0, self.cfg.actor_base)
    }

    /// Slot index for a local id.
    fn slot_index(&self, id: ActorId) -> usize {
        (id.0 - self.cfg.actor_base) as usize
    }

    /// Hands a message for a non-local destination to the remote router.
    /// Only plain messages cross process boundaries — timers, kills and
    /// spawns are strictly node-local. Returns the push verdict.
    fn route_remote(&self, to: ActorId, env: Envelope<M>) -> PushOutcome {
        if to == ActorId::NONE {
            return PushOutcome::Dead; // pre-registration placeholder, never routable
        }
        if let Envelope::Msg { from, msg, .. } = env {
            let router = self.remote_router.read().unwrap();
            if let Some(route) = router.as_ref() {
                route(from, to, msg);
                return PushOutcome::Sent;
            }
        }
        PushOutcome::Dead
    }

    /// Clones the destination's sender under the read lock, pushes outside
    /// it (a parked push must never hold the registry lock).
    fn push_envelope(&self, to: ActorId, env: Envelope<M>) -> PushOutcome {
        if !self.is_local(to) {
            return self.route_remote(to, env);
        }
        let sender = {
            let slots = self.slots.read().unwrap();
            slots
                .get(self.slot_index(to))
                .filter(|s| s.alive)
                .and_then(|s| s.sender.clone())
        };
        match sender {
            Some(tx) => tx.push(env),
            None => PushOutcome::Dead,
        }
    }

    /// Non-blocking delivery used by the clock thread: remote envelopes are
    /// routed (never parked), local ones try the mailbox and hand the
    /// envelope back on a full box so the caller can retry next tick.
    fn try_deliver(&self, to: ActorId, env: Envelope<M>) -> Result<(), Envelope<M>> {
        // (remote routing never parks; local full mailboxes hand back the envelope)
        if !self.is_local(to) {
            self.route_remote(to, env);
            return Ok(());
        }
        let sender = {
            let slots = self.slots.read().unwrap();
            slots
                .get(self.slot_index(to))
                .filter(|s| s.alive)
                .and_then(|s| s.sender.clone())
        };
        match sender {
            Some(tx) => tx.push_nonblocking(env).map(|_| ()),
            None => Ok(()),
        }
    }

    fn spawn(self: &Arc<Self>, machine: Option<u32>, actor: Box<dyn Actor<M> + Send>, trace: TraceId) -> ActorId {
        let (tx, rx, gauges) = mailbox(self.cfg.mailbox_capacity);
        let id = {
            let mut slots = self.slots.write().unwrap();
            assert!(
                (slots.len() as u32) < (1 << ACTOR_WINDOW_SHIFT),
                "actor-id window exhausted"
            );
            let id = ActorId(self.cfg.actor_base + slots.len() as u32);
            let shared = Arc::clone(self);
            let g = Arc::clone(&gauges);
            let handle = std::thread::Builder::new()
                .name(format!("fuxi-{id}"))
                .spawn(move || actor_thread(shared, id, actor, rx, g))
                .expect("spawn actor thread");
            slots.push(ActorSlot {
                sender: Some(tx.clone()),
                machine,
                alive: true,
                gauges,
                handle: Some(handle),
            });
            id
        };
        self.metrics.lock().unwrap().count("rt.actors_spawned", 1);
        tx.push(Envelope::Start { trace });
        id
    }

    fn kill(&self, id: ActorId) {
        if !self.is_local(id) {
            return; // remote actors are killed by their own node
        }
        let (sender, machine) = {
            let mut slots = self.slots.write().unwrap();
            match slots.get_mut(self.slot_index(id)) {
                Some(s) if s.alive => {
                    s.alive = false;
                    (s.sender.take(), s.machine)
                }
                _ => return,
            }
        };
        if let Some(tx) = sender {
            // Best effort: if the box is full, dropping the last sender
            // still terminates the thread once it drains.
            let _ = tx.push_nonblocking(Envelope::Kill);
        }
        if let Some(m) = machine {
            self.machines.write().unwrap()[m as usize].procs.remove(&id);
        }
        let _ = self.clock_tx.send(ClockCmd::CancelFlows { owner: id });
    }

    fn alive(&self, id: ActorId) -> bool {
        if !self.is_local(id) {
            // A peer's actor is presumed alive while its connection is up;
            // with no supervisor installed, remote ids are dead (matches
            // the old out-of-range behaviour).
            return self
                .remote_alive
                .read()
                .unwrap()
                .as_ref()
                .is_some_and(|f| f(id));
        }
        self.slots
            .read()
            .unwrap()
            .get(self.slot_index(id))
            .is_some_and(|s| s.alive)
    }

    fn machine_of(&self, id: ActorId) -> Option<u32> {
        if !self.is_local(id) {
            return None;
        }
        self.slots
            .read()
            .unwrap()
            .get(self.slot_index(id))
            .and_then(|s| s.machine)
    }

    /// Samples mailbox pressure: per-actor depth gauges for non-empty
    /// queues, the global depth/high-water gauges, a windowed depth series
    /// (so a pressure spike between scrapes still shows up), and — when a
    /// hub is attached — the cluster view's mailbox fields.
    fn sample_mailboxes(&self) {
        let t = self.now().as_secs_f64();
        let mut total = 0usize;
        let mut hwm = 0usize;
        {
            let slots = self.slots.read().unwrap();
            let mut metrics = self.metrics.lock().unwrap();
            for (i, s) in slots.iter().enumerate() {
                hwm = hwm.max(s.gauges.hwm());
                let depth = s.gauges.depth();
                if s.alive && depth > 0 {
                    metrics.gauge_set(&format!("rt.mailbox_depth.a{i}"), depth as f64);
                    total += depth;
                }
            }
            metrics.gauge_set("rt.mailbox_depth", total as f64);
            metrics.gauge_max("rt.mailbox_hwm", hwm as f64);
            metrics.window_sample("rt.mailbox_depth.w", t, total as f64);
        }
        let hub = self.hub.lock().unwrap().clone();
        if let Some(hub) = hub {
            hub.update(|v| {
                v.mailbox_depth = total as u64;
                v.mailbox_hwm = v.mailbox_hwm.max(hwm as u64);
            });
        }
    }
}

/// One actor's event loop. Runs on a dedicated thread until killed; returns
/// the thread's metrics and tracer for the shutdown merge.
fn actor_thread<M: KernelMsg + Send + 'static>(
    shared: Arc<Shared<M>>,
    id: ActorId,
    mut actor: Box<dyn Actor<M> + Send>,
    rx: Receiver<Envelope<M>>,
    gauges: Arc<MailboxGauges>,
) -> (Metrics, Tracer) {
    let clock_tx = shared.clock_tx.clone();
    let seed = shared
        .cfg
        .seed
        .wrapping_add(u64::from(id.0).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let obs = shared.cfg.obs.clone();
    let flush_every = shared.cfg.metrics_flush;
    let mut tc = ThreadCtx {
        shared,
        clock_tx,
        rng: SmallRng::seed_from_u64(seed),
        metrics: Metrics::new(),
        tracer: Tracer::new(obs),
        current_trace: TraceId::NONE,
    };
    // Stagger each thread's flush phase across the interval: hundreds of
    // actors started in the same instant would otherwise all hit the
    // shared sink's mutex in the same tick, which on a small host can
    // stall time-critical actors (e.g. the master's lease keepalive).
    let phase = flush_every.mul_f64(f64::from(id.0 % 64) / 64.0);
    let mut last_flush = Instant::now().checked_sub(phase).unwrap_or_else(Instant::now);
    while let Ok(env) = rx.recv() {
        gauges.on_pop();
        match env {
            Envelope::Start { trace } => {
                tc.current_trace = trace;
                actor.on_start(&mut Ctx::for_live(&mut tc, id));
            }
            Envelope::Msg { from, msg, trace } => {
                tc.current_trace = trace;
                actor.on_message(&mut Ctx::for_live(&mut tc, id), from, msg);
            }
            Envelope::Timer { tag } => {
                // Like the kernel: timer-driven activity has no inherited
                // causal context unless the actor re-establishes it.
                tc.current_trace = TraceId::NONE;
                actor.on_timer(&mut Ctx::for_live(&mut tc, id), tag);
            }
            Envelope::Kill => break,
        }
        // Periodic flush: fold this thread's private metrics into the
        // runtime-global sink so live scrapes see near-current data
        // instead of waiting for the shutdown merge. Safe because actor
        // code only uses additive instruments (counters, gauge deltas,
        // histograms, windows) whose merge is take-and-sum.
        if flush_every > Duration::ZERO && last_flush.elapsed() >= flush_every {
            let m = std::mem::take(&mut tc.metrics);
            tc.shared.metrics.lock().unwrap().merge(&m);
            last_flush = Instant::now();
        }
    }
    (tc.metrics, tc.tracer)
}

/// The live backend of a [`Ctx`]: one per actor thread, owning that
/// thread's RNG, metrics, and tracer.
struct ThreadCtx<M: KernelMsg + Send + 'static> {
    shared: Arc<Shared<M>>,
    clock_tx: Sender<ClockCmd<M>>,
    rng: SmallRng,
    metrics: Metrics,
    tracer: Tracer,
    current_trace: TraceId,
}

impl<M: KernelMsg + Send + 'static> LiveCtxOps<M> for ThreadCtx<M> {
    fn now(&self) -> SimTime {
        self.shared.now()
    }

    fn send(&mut self, from: ActorId, to: ActorId, msg: M, extra: SimDuration, trace: TraceId) {
        self.metrics.count("net.sent", 1);
        if extra > SimDuration::ZERO {
            let _ = self.clock_tx.send(ClockCmd::DelayedSend {
                from,
                to,
                msg,
                delay: extra,
                trace,
            });
            return;
        }
        match self.shared.push_envelope(to, Envelope::Msg { from, msg, trace }) {
            PushOutcome::Sent => {}
            PushOutcome::SentParked => self.metrics.count("rt.mailbox_parked", 1),
            PushOutcome::Dead => self.metrics.count("net.to_dead", 1),
        }
    }

    fn timer(&mut self, actor: ActorId, delay: SimDuration, tag: u64) {
        let _ = self.clock_tx.send(ClockCmd::Timer { actor, delay, tag });
    }

    fn spawn(&mut self, machine: Option<u32>, actor: Box<dyn Actor<M> + Send>) -> ActorId {
        self.shared.spawn(machine, actor, self.current_trace)
    }

    fn kill(&mut self, id: ActorId) {
        self.shared.kill(id);
    }

    fn alive(&self, id: ActorId) -> bool {
        self.shared.alive(id)
    }

    fn machine_of(&self, id: ActorId) -> Option<u32> {
        self.shared.machine_of(id)
    }

    fn machine_up(&self, m: u32) -> bool {
        self.shared
            .machines
            .read()
            .unwrap()
            .get(m as usize)
            .is_some_and(|s| s.up)
    }

    fn machine_speed(&self, m: u32) -> f64 {
        self.shared
            .machines
            .read()
            .unwrap()
            .get(m as usize)
            .map_or(1.0, |s| s.speed)
    }

    fn launch_ok(&self, m: u32) -> bool {
        self.shared
            .machines
            .read()
            .unwrap()
            .get(m as usize)
            .is_some_and(|s| s.launch_ok)
    }

    fn rack_of(&self, m: u32) -> u32 {
        self.shared.cfg.machines[m as usize].rack
    }

    fn n_machines(&self) -> usize {
        self.shared.cfg.machines.len()
    }

    fn register_proc(&mut self, id: ActorId, meta: Vec<u8>) {
        if let Some(m) = self.shared.machine_of(id) {
            self.shared.machines.write().unwrap()[m as usize]
                .procs
                .insert(id, meta);
        }
    }

    fn procs_on(&self, m: u32) -> Vec<(ActorId, Vec<u8>)> {
        self.shared.machines.read().unwrap()[m as usize]
            .procs
            .iter()
            .map(|(&a, meta)| (a, meta.clone()))
            .collect()
    }

    fn start_flow(&mut self, owner: ActorId, spec: FlowSpec) {
        let _ = self.clock_tx.send(ClockCmd::StartFlow { owner, spec });
    }

    fn cancel_flows_of(&mut self, owner: ActorId) {
        let _ = self.clock_tx.send(ClockCmd::CancelFlows { owner });
    }

    fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    fn metrics(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    fn trace_id(&self) -> TraceId {
        self.current_trace
    }

    fn set_trace(&mut self, trace: TraceId) {
        self.current_trace = trace;
    }

    fn trace_event_as(&mut self, actor: ActorId, trace: TraceId, event: TraceEvent) {
        let t = self.shared.now().as_secs_f64();
        self.tracer.record(t, actor.0, trace, event);
    }

    fn span(&mut self, actor: ActorId, kind: SpanKind, wall_s: f64) {
        let t = self.shared.now().as_secs_f64();
        let trace = self.current_trace;
        self.tracer.span(t, actor.0, trace, kind, wall_s);
    }

    fn flight_dump(&mut self, reason: &'static str) {
        let t = self.shared.now().as_secs_f64();
        self.tracer.dump(t, reason);
    }

    fn tracer(&self) -> &Tracer {
        &self.tracer
    }
}

/// The clock thread: hashed timer wheel plus the shared flow model, both
/// driven by wall time. Deliveries it owes to full mailboxes are retried on
/// the next tick rather than blocking (a stuck actor must not stall every
/// timer in the runtime).
fn clock_thread<M: KernelMsg + Send + 'static>(
    shared: Arc<Shared<M>>,
    rx: Receiver<ClockCmd<M>>,
) {
    let tick_us = shared.cfg.timer_tick.as_micros().max(100) as u64;
    let mut wheel: TimerWheel<Due<M>> = TimerWheel::new(512, tick_us);
    let disk_bw: Vec<f64> = shared.cfg.machines.iter().map(|m| m.disk_bw_mbps).collect();
    let net_bw: Vec<f64> = shared.cfg.machines.iter().map(|m| m.net_bw_mbps).collect();
    let mut flows = FlowNet::new(disk_bw, net_bw);
    let mut backlog: Vec<(ActorId, Envelope<M>)> = Vec::new();
    let sample_every = shared.cfg.metrics_flush;
    let mut last_sample = Instant::now();

    let deliver = |shared: &Arc<Shared<M>>,
                       backlog: &mut Vec<(ActorId, Envelope<M>)>,
                       to: ActorId,
                       env: Envelope<M>| {
        match shared.push_envelope(to, env) {
            PushOutcome::Sent | PushOutcome::SentParked => {}
            PushOutcome::Dead => {}
        }
        let _ = backlog; // retried entries are re-pushed by the caller
    };

    loop {
        let now = shared.now();
        let mut next = now + SimDuration(tick_us);
        if let Some(fc) = flows.next_completion() {
            if fc < next {
                next = fc.max(now);
            }
        }
        let wait = Duration::from_micros((next.0.saturating_sub(now.0)).max(100));
        let mut shutdown = false;
        let mut first = match rx.recv_timeout(wait) {
            Ok(cmd) => Some(cmd),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => return,
        };
        // Drain whatever queued up behind the first command.
        loop {
            let Some(cmd) = first.take() else { break };
            let now = shared.now();
            match cmd {
                ClockCmd::Shutdown => shutdown = true,
                ClockCmd::Timer { actor, delay, tag } => {
                    wheel.arm(now, delay, Due::Timer { actor, tag })
                }
                ClockCmd::DelayedSend {
                    from,
                    to,
                    msg,
                    delay,
                    trace,
                } => wheel.arm(now, delay, Due::Send { from, to, msg, trace }),
                ClockCmd::StartFlow { owner, spec } => {
                    if let Some(done) = flows.start(now, owner, spec) {
                        // Degenerate (zero-size) flow: completes immediately.
                        let env = Envelope::Msg {
                            from: done.owner,
                            msg: M::flow_done(done.tag, done.failed),
                            trace: TraceId::NONE,
                        };
                        deliver(&shared, &mut backlog, done.owner, env);
                    }
                }
                ClockCmd::CancelFlows { owner } => flows.cancel_owned_by(now, owner),
                ClockCmd::FailMachine { m } => {
                    for done in flows.fail_machine(now, m) {
                        let env = Envelope::Msg {
                            from: done.owner,
                            msg: M::flow_done(done.tag, done.failed),
                            trace: TraceId::NONE,
                        };
                        deliver(&shared, &mut backlog, done.owner, env);
                    }
                }
                ClockCmd::SetIoSpeed { m, factor } => flows.set_speed(now, m, factor),
            }
            first = rx.try_recv().ok();
        }
        if shutdown {
            return;
        }

        let now = shared.now();
        // Retry deliveries parked on full mailboxes.
        if !backlog.is_empty() {
            let pending = std::mem::take(&mut backlog);
            for (to, env) in pending {
                if let Err(env) = shared.try_deliver(to, env) {
                    backlog.push((to, env));
                }
            }
        }
        for due in wheel.expire(now) {
            let (to, env) = match due {
                Due::Timer { actor, tag } => (actor, Envelope::Timer { tag }),
                Due::Send {
                    from, to, msg, trace,
                } => (to, Envelope::Msg { from, msg, trace }),
            };
            if let Err(env) = shared.try_deliver(to, env) {
                shared.metrics.lock().unwrap().count("rt.clock_parked", 1);
                backlog.push((to, env));
            }
        }
        for done in flows.advance(now) {
            let env = Envelope::Msg {
                from: done.owner,
                msg: M::flow_done(done.tag, done.failed),
                trace: TraceId::NONE,
            };
            deliver(&shared, &mut backlog, done.owner, env);
        }
        // Queue pressure is a time series, not a shutdown summary: sample
        // depths on the flush cadence so a mid-run spike is visible in the
        // windowed series and the cluster view.
        if sample_every > Duration::ZERO && last_sample.elapsed() >= sample_every {
            shared.sample_mailboxes();
            last_sample = Instant::now();
        }
    }
}

/// A running live world. Dropping it without [`LiveRuntime::shutdown`]
/// detaches the threads; call `shutdown` to join them and collect the
/// merged observability streams.
pub struct LiveRuntime<M: KernelMsg + Send + 'static> {
    shared: Arc<Shared<M>>,
    clock: Option<JoinHandle<()>>,
}

impl<M: KernelMsg + Send + 'static> LiveRuntime<M> {
    /// Boots the runtime: machine table, clock thread, no actors yet.
    pub fn new(cfg: RuntimeConfig) -> Self {
        let (clock_tx, clock_rx) = std::sync::mpsc::channel();
        let machines = cfg
            .machines
            .iter()
            .map(|_| MachineState {
                up: true,
                speed: 1.0,
                launch_ok: true,
                procs: BTreeMap::new(),
            })
            .collect();
        let shared = Arc::new(Shared {
            epoch: Instant::now(),
            cfg,
            slots: RwLock::new(Vec::new()),
            machines: RwLock::new(machines),
            clock_tx,
            metrics: Mutex::new(Metrics::new()),
            tracer: Mutex::new(Tracer::default()),
            hub: Mutex::new(None),
            remote_router: RwLock::new(None),
            remote_alive: RwLock::new(None),
        });
        let clock = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fuxi-clock".into())
                .spawn(move || clock_thread(shared, clock_rx))
                .expect("spawn clock thread")
        };
        LiveRuntime {
            shared,
            clock: Some(clock),
        }
    }

    /// Wall-clock time since the runtime epoch.
    pub fn now(&self) -> SimTime {
        self.shared.now()
    }

    /// Spawns an actor on its own thread, optionally placed on a machine.
    pub fn spawn(&self, machine: Option<u32>, actor: Box<dyn Actor<M> + Send>) -> ActorId {
        self.shared.spawn(machine, actor, TraceId::NONE)
    }

    /// Injects a message from outside the world under `trace`.
    pub fn send_external_traced(&self, to: ActorId, msg: M, trace: TraceId) {
        self.shared.metrics.lock().unwrap().count("net.sent", 1);
        let _ = self.shared.push_envelope(
            to,
            Envelope::Msg {
                from: ActorId::NONE,
                msg,
                trace,
            },
        );
    }

    /// Injects an untraced external message.
    pub fn send_external(&self, to: ActorId, msg: M) {
        self.send_external_traced(to, msg, TraceId::NONE);
    }

    /// Delivers a message that arrived from a peer process, preserving the
    /// remote sender's address. The node supervisor's inbound path.
    pub fn route_in(&self, from: ActorId, to: ActorId, msg: M) {
        self.shared.metrics.lock().unwrap().count("net.remote_in", 1);
        let _ = self.shared.push_envelope(
            to,
            Envelope::Msg {
                from,
                msg,
                trace: TraceId::NONE,
            },
        );
    }

    /// A detached [`LiveRuntime::route_in`] handle the node supervisor's
    /// reader threads can own without borrowing the runtime.
    pub fn remote_injector(&self) -> Arc<dyn Fn(ActorId, ActorId, M) + Send + Sync> {
        let shared = Arc::clone(&self.shared);
        Arc::new(move |from, to, msg| {
            shared.metrics.lock().unwrap().count("net.remote_in", 1);
            let _ = shared.push_envelope(
                to,
                Envelope::Msg {
                    from,
                    msg,
                    trace: TraceId::NONE,
                },
            );
        })
    }

    /// Terminates one actor (its thread exits after draining its mailbox).
    pub fn kill_actor(&self, id: ActorId) {
        self.shared.kill(id);
    }

    /// `true` while `id`'s thread is accepting messages.
    pub fn alive(&self, id: ActorId) -> bool {
        self.shared.alive(id)
    }

    /// `true` if machine `m` is up.
    pub fn machine_up(&self, m: u32) -> bool {
        self.shared.machines.read().unwrap()[m as usize].up
    }

    /// Machine `m`'s process table.
    pub fn procs_on(&self, m: u32) -> Vec<(ActorId, Vec<u8>)> {
        self.shared.machines.read().unwrap()[m as usize]
            .procs
            .iter()
            .map(|(&a, meta)| (a, meta.clone()))
            .collect()
    }

    /// Takes machine `m` down: every actor placed on it dies, its process
    /// table clears, and flows touching it fail (the NodeDown fault).
    pub fn kill_machine(&self, m: u32) {
        {
            let mut machines = self.shared.machines.write().unwrap();
            machines[m as usize].up = false;
            machines[m as usize].procs.clear();
        }
        let victims: Vec<ActorId> = {
            let slots = self.shared.slots.read().unwrap();
            slots
                .iter()
                .enumerate()
                .filter(|(_, s)| s.alive && s.machine == Some(m))
                .map(|(i, _)| ActorId(self.shared.cfg.actor_base + i as u32))
                .collect()
        };
        for id in victims {
            self.shared.kill(id);
        }
        let _ = self.shared.clock_tx.send(ClockCmd::FailMachine { m });
        let t = self.shared.now().as_secs_f64();
        self.shared.metrics.lock().unwrap().count("fault.node_down", 1);
        self.shared.tracer.lock().unwrap().record(
            t,
            u32::MAX,
            TraceId::NONE,
            TraceEvent::NodeDown { machine: m },
        );
    }

    /// Degrades (or restores) machine `m`'s compute and I/O speed by
    /// `factor` — the paper's slow-node fault, live. Running flows are
    /// re-paced from now; new worker startups scale via `machine_speed`.
    pub fn set_io_speed(&self, m: u32, factor: f64) {
        self.shared.machines.write().unwrap()[m as usize].speed = factor;
        let _ = self.shared.clock_tx.send(ClockCmd::SetIoSpeed { m, factor });
    }

    /// Records mailbox pressure into the runtime metrics: current depths
    /// as gauges *and* a windowed time series (the clock thread does this
    /// periodically on `metrics_flush` cadence; this forces one sample
    /// now), plus the global high-water mark.
    pub fn record_mailbox_gauges(&self) {
        self.shared.sample_mailboxes();
    }

    /// Attaches a cluster metrics hub: the clock thread's mailbox sampler
    /// starts feeding the view's `mailbox_depth`/`mailbox_hwm` fields.
    pub fn attach_hub(&self, hub: fuxi_obs::MetricsHub) {
        *self.shared.hub.lock().unwrap() = Some(hub);
    }

    /// First actor id this runtime assigns.
    pub fn actor_base(&self) -> u32 {
        self.shared.cfg.actor_base
    }

    /// Installs the outbound path for messages addressed outside this
    /// runtime's actor-id window (the node supervisor's send queue).
    pub fn set_remote_router(&self, route: RemoteRouter<M>) {
        *self.shared.remote_router.write().unwrap() = Some(route);
    }

    /// Installs the liveness oracle consulted by `ctx.alive` for remote
    /// ids. Without one, remote actors read as dead — which is exactly
    /// what the lock service must see when a peer process is gone.
    pub fn set_remote_alive(&self, alive: RemoteAlive) {
        *self.shared.remote_alive.write().unwrap() = Some(alive);
    }

    /// A clone of the runtime-global metrics as of now. With periodic
    /// per-thread flushes (`metrics_flush`) this is a near-live picture;
    /// only the last sub-interval of each actor thread is missing.
    pub fn metrics_snapshot(&self) -> Metrics {
        self.shared.metrics.lock().unwrap().clone()
    }

    /// Stops everything: kills the actors, joins every thread, and merges
    /// the per-thread metrics and tracers into the runtime-global pair.
    pub fn shutdown(mut self) -> (Metrics, Tracer) {
        self.record_mailbox_gauges();
        let handles: Vec<Option<ActorJoin>> = {
            let mut slots = self.shared.slots.write().unwrap();
            slots
                .iter_mut()
                .map(|s| {
                    s.alive = false;
                    if let Some(tx) = s.sender.take() {
                        let _ = tx.push_nonblocking(Envelope::Kill);
                    }
                    s.handle.take()
                })
                .collect()
        };
        let _ = self.shared.clock_tx.send(ClockCmd::Shutdown);
        if let Some(clock) = self.clock.take() {
            let _ = clock.join();
        }
        let mut metrics = std::mem::take(&mut *self.shared.metrics.lock().unwrap());
        let mut tracer = std::mem::take(&mut *self.shared.tracer.lock().unwrap());
        for h in handles.into_iter().flatten() {
            // A panicked actor thread must not vanish into a clean
            // shutdown — re-raise so callers (tests, bench_live) fail.
            match h.join() {
                Ok((m, t)) => {
                    metrics.merge(&m);
                    tracer.absorb(t);
                }
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        (metrics, tracer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[derive(Debug)]
    enum TMsg {
        Ping(u64),
        Pong(u64),
        FlowDone { tag: u64, failed: bool },
    }

    impl KernelMsg for TMsg {
        fn flow_done(tag: u64, failed: bool) -> Self {
            TMsg::FlowDone { tag, failed }
        }
    }

    fn two_machine_cfg() -> RuntimeConfig {
        RuntimeConfig {
            machines: vec![
                MachineConfig {
                    rack: 0,
                    disk_bw_mbps: 100.0,
                    net_bw_mbps: 100.0,
                },
                MachineConfig {
                    rack: 0,
                    disk_bw_mbps: 100.0,
                    net_bw_mbps: 100.0,
                },
            ],
            ..RuntimeConfig::default()
        }
    }

    /// Echoes pings back; counts what it saw into a shared atomic.
    struct Echo {
        seen: Arc<AtomicU64>,
    }
    impl Actor<TMsg> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_, TMsg>, from: ActorId, msg: TMsg) {
            if let TMsg::Ping(n) = msg {
                self.seen.fetch_add(1, Ordering::SeqCst);
                ctx.send(from, TMsg::Pong(n));
            }
        }
    }

    /// Sends `n` pings, checks pongs arrive in send order (per-source FIFO).
    struct Pinger {
        peer: ActorId,
        n: u64,
        next_expected: u64,
        ordered: Arc<AtomicU64>,
    }
    impl Actor<TMsg> for Pinger {
        fn on_start(&mut self, ctx: &mut Ctx<'_, TMsg>) {
            for i in 0..self.n {
                ctx.send(self.peer, TMsg::Ping(i));
            }
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, TMsg>, _from: ActorId, msg: TMsg) {
            if let TMsg::Pong(n) = msg {
                if n == self.next_expected {
                    self.next_expected += 1;
                    self.ordered.store(self.next_expected, Ordering::SeqCst);
                }
            }
        }
    }

    fn wait_for(cond: impl Fn() -> bool, timeout: Duration) -> bool {
        let start = Instant::now();
        while start.elapsed() < timeout {
            if cond() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        cond()
    }

    #[test]
    fn ping_pong_preserves_per_source_order() {
        let rt: LiveRuntime<TMsg> = LiveRuntime::new(two_machine_cfg());
        let seen = Arc::new(AtomicU64::new(0));
        let ordered = Arc::new(AtomicU64::new(0));
        let echo = rt.spawn(None, Box::new(Echo { seen: seen.clone() }));
        let n = 500;
        rt.spawn(
            None,
            Box::new(Pinger {
                peer: echo,
                n,
                next_expected: 0,
                ordered: ordered.clone(),
            }),
        );
        assert!(
            wait_for(|| ordered.load(Ordering::SeqCst) == n, Duration::from_secs(10)),
            "pongs arrived out of order or not at all: {}",
            ordered.load(Ordering::SeqCst)
        );
        assert_eq!(seen.load(Ordering::SeqCst), n);
        let (metrics, _tracer) = rt.shutdown();
        // Pinger's n pings + echo's n pongs.
        assert!(metrics.counter("net.sent") >= 2 * n);
        assert_eq!(metrics.counter("rt.actors_spawned"), 2);
    }

    /// Timer-driven counter actor.
    struct Ticker {
        fired: Arc<AtomicU64>,
    }
    impl Actor<TMsg> for Ticker {
        fn on_start(&mut self, ctx: &mut Ctx<'_, TMsg>) {
            ctx.timer(SimDuration::from_millis(5), 7);
        }
        fn on_message(&mut self, _: &mut Ctx<'_, TMsg>, _: ActorId, _: TMsg) {}
        fn on_timer(&mut self, ctx: &mut Ctx<'_, TMsg>, tag: u64) {
            assert_eq!(tag, 7);
            if self.fired.fetch_add(1, Ordering::SeqCst) < 4 {
                ctx.timer(SimDuration::from_millis(5), 7);
            }
        }
    }

    #[test]
    fn timers_fire_on_wall_clock() {
        let rt: LiveRuntime<TMsg> = LiveRuntime::new(two_machine_cfg());
        let fired = Arc::new(AtomicU64::new(0));
        rt.spawn(None, Box::new(Ticker { fired: fired.clone() }));
        assert!(
            wait_for(|| fired.load(Ordering::SeqCst) >= 5, Duration::from_secs(10)),
            "only {} timer fires",
            fired.load(Ordering::SeqCst)
        );
        rt.shutdown();
    }

    /// Starts one disk flow and records the completion.
    struct FlowUser {
        done: Arc<AtomicU64>,
    }
    impl Actor<TMsg> for FlowUser {
        fn on_start(&mut self, ctx: &mut Ctx<'_, TMsg>) {
            ctx.start_flow(FlowSpec {
                kind: fuxi_sim::FlowKind::DiskWrite { machine: 0 },
                size_mb: 0.5,
                tag: 42,
            });
        }
        fn on_message(&mut self, _: &mut Ctx<'_, TMsg>, _: ActorId, msg: TMsg) {
            if let TMsg::FlowDone { tag, failed } = msg {
                assert_eq!(tag, 42);
                assert!(!failed);
                self.done.fetch_add(1, Ordering::SeqCst);
            }
        }
    }

    #[test]
    fn flows_complete_on_wall_clock() {
        let rt: LiveRuntime<TMsg> = LiveRuntime::new(two_machine_cfg());
        let done = Arc::new(AtomicU64::new(0));
        rt.spawn(Some(0), Box::new(FlowUser { done: done.clone() }));
        // 0.5 MB at 100 MB/s = 5 ms.
        assert!(
            wait_for(|| done.load(Ordering::SeqCst) == 1, Duration::from_secs(10)),
            "flow completion never arrived"
        );
        rt.shutdown();
    }

    #[test]
    fn kill_machine_kills_placed_actors_only() {
        let rt: LiveRuntime<TMsg> = LiveRuntime::new(two_machine_cfg());
        let seen = Arc::new(AtomicU64::new(0));
        let on0 = rt.spawn(Some(0), Box::new(Echo { seen: seen.clone() }));
        let on1 = rt.spawn(Some(1), Box::new(Echo { seen: seen.clone() }));
        let free = rt.spawn(None, Box::new(Echo { seen: seen.clone() }));
        rt.kill_machine(0);
        assert!(wait_for(|| !rt.alive(on0), Duration::from_secs(5)));
        assert!(rt.alive(on1));
        assert!(rt.alive(free));
        assert!(!rt.machine_up(0));
        assert!(rt.machine_up(1));
        let (metrics, tracer) = rt.shutdown();
        assert_eq!(metrics.counter("fault.node_down"), 1);
        assert!(tracer
            .records
            .iter()
            .any(|r| matches!(r.event, TraceEvent::NodeDown { machine: 0 })));
    }

    #[test]
    fn shutdown_merges_thread_metrics() {
        let rt: LiveRuntime<TMsg> = LiveRuntime::new(two_machine_cfg());
        let seen = Arc::new(AtomicU64::new(0));
        let echo = rt.spawn(None, Box::new(Echo { seen: seen.clone() }));
        rt.send_external(echo, TMsg::Ping(1));
        assert!(wait_for(|| seen.load(Ordering::SeqCst) == 1, Duration::from_secs(5)));
        let (metrics, _) = rt.shutdown();
        // External send + echo's pong (to a dead ActorId::NONE).
        assert!(metrics.counter("net.sent") >= 2);
        assert!(metrics.gauge("rt.mailbox_hwm") >= 0.0);
    }
}
