//! The FuxiAgent actor.

use crate::enforce::{pick_overload_victim, Envelope, ProcUsage, Sandbox};
use crate::ProcMeta;
use fuxi_apsara::NameRegistry;
use fuxi_proto::msg::{AppDescription, WorkerSpec};
use fuxi_proto::{
    AppId, FailReason, JobId, MachineId, Msg, NodeHealthReport, ResourceVec, UnitId, WorkerId,
};
use fuxi_sim::{Actor, ActorId, Ctx, FlowKind, FlowSpec, SimDuration, TraceEvent, TraceId};
use rand::Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Everything a factory needs to construct an application-master actor.
pub struct MasterLaunch {
    /// Application id.
    pub app: AppId,
    /// Job id.
    pub job: JobId,
    /// Task description.
    pub desc: AppDescription,
    /// Machine this applies to.
    pub machine: MachineId,
}

/// Everything a factory needs to construct a worker actor.
pub struct WorkerLaunch {
    /// Launch specification of the worker.
    pub spec: WorkerSpec,
    /// Machine this applies to.
    pub machine: MachineId,
}

/// Builds the application-master actor for a job type — the simulation
/// counterpart of exec'ing the downloaded master package.
pub type MasterFactory = Arc<dyn Fn(&MasterLaunch) -> Box<dyn Actor<Msg> + Send> + Send + Sync>;

/// Builds a worker actor — the counterpart of exec'ing the worker binary.
pub type WorkerFactory = Arc<dyn Fn(&WorkerLaunch) -> Box<dyn Actor<Msg> + Send> + Send + Sync>;

/// Agent tuning.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// The heartbeat interval.
    pub heartbeat_interval: SimDuration,
    /// Process-liveness and overload sweep cadence.
    pub sweep_interval: SimDuration,
    /// Grace the application master gets to act on a `CapacityWarning`
    /// before the agent kills a process itself.
    pub capacity_grace: SimDuration,
    /// Machine load (usage / capacity on the hottest dimension) above which
    /// the overload kill rule engages.
    pub overload_threshold: f64,
    /// Restart crashed workers ("FuxiAgent watches the worker's status and
    /// restarts it if it crashes").
    pub restart_crashed_workers: bool,
    /// Push an [`fuxi_sim::obs::AgentReport`] to the master on each
    /// heartbeat (the in-band metrics channel).
    pub report_metrics: bool,
}

impl Default for AgentConfig {
    fn default() -> Self {
        Self {
            heartbeat_interval: SimDuration::from_secs(2),
            sweep_interval: SimDuration::from_secs(1),
            capacity_grace: SimDuration::from_secs(3),
            overload_threshold: 1.05,
            restart_crashed_workers: true,
            report_metrics: true,
        }
    }
}

const TIMER_HB: u64 = 1;
const TIMER_SWEEP: u64 = 2;
const TIMER_PARKED: u64 = 3;
const GRACE_BASE: u64 = 1 << 32;
/// Heartbeats between periodic envelope refreshes from the master (repairs
/// any drift from lost CapacityNotify messages).
const ENVELOPE_REFRESH_BEATS: u32 = 15;

#[derive(Debug)]
struct WorkerRt {
    spec: WorkerSpec,
    actor: Option<ActorId>,
    /// Causal trace captured when the launch request arrived. Downloads and
    /// retry timers reset the ambient trace, so it is stored, not inherited.
    trace: TraceId,
}

enum PendingLaunch {
    Master { launch: MasterLaunch, trace: TraceId },
    Worker { spec: WorkerSpec, trace: TraceId },
}

/// The per-machine agent actor.
pub struct FuxiAgent {
    machine: MachineId,
    total: ResourceVec,
    cfg: AgentConfig,
    naming: NameRegistry,
    master_factory: MasterFactory,
    worker_factory: WorkerFactory,
    fm: Option<ActorId>,
    envelope: Envelope,
    workers: BTreeMap<WorkerId, WorkerRt>,
    jms: BTreeMap<AppId, (ActorId, JobId, ResourceVec)>,
    sandbox: Sandbox,
    pending: BTreeMap<u64, PendingLaunch>,
    next_tag: u64,
    launch_failures_since_hb: u32,
    /// StartWorker requests that arrived before the matching
    /// CapacityNotify (the FM→AM→FA path can beat the FM→FA path);
    /// retried a few times before failing.
    parked: Vec<(WorkerSpec, u32, TraceId)>,
    beats: u32,
    /// Apps whose worker binary is already on local disk: container reuse
    /// means one download per (machine, app), not one per worker.
    binary_cache: BTreeSet<AppId>,
    /// Workers waiting for an in-flight download of their app's binary.
    download_waiters: BTreeMap<AppId, Vec<(WorkerSpec, TraceId)>>,
    /// Cumulative counters mirrored into each metrics report. Cumulative —
    /// not per-interval — so a dropped report never loses events: the
    /// master diffs successive values.
    worker_starts: u64,
    worker_exits: u64,
    launch_failures_total: u64,
}

impl FuxiAgent {
    /// Creates a new instance with the given configuration.
    pub fn new(
        machine: MachineId,
        total: ResourceVec,
        cfg: AgentConfig,
        naming: NameRegistry,
        master_factory: MasterFactory,
        worker_factory: WorkerFactory,
    ) -> Self {
        Self {
            machine,
            total,
            cfg,
            naming,
            master_factory,
            worker_factory,
            fm: None,
            envelope: Envelope::new(),
            workers: BTreeMap::new(),
            jms: BTreeMap::new(),
            sandbox: Sandbox::default(),
            pending: BTreeMap::new(),
            next_tag: 1,
            launch_failures_since_hb: 0,
            parked: Vec::new(),
            beats: 0,
            binary_cache: BTreeSet::new(),
            download_waiters: BTreeMap::new(),
            worker_starts: 0,
            worker_exits: 0,
            launch_failures_total: 0,
        }
    }

    fn m(&self) -> u32 {
        self.machine.0
    }

    // ------------------------------------------------------------------
    // Master liaison
    // ------------------------------------------------------------------

    fn send_allocation_report(&mut self, ctx: &mut Ctx<'_, Msg>) {
        if let Some(fm) = self.fm {
            ctx.send(
                fm,
                Msg::AgentAllocationReport {
                    machine: self.machine,
                    total: self.total.clone(),
                    allocations: self.envelope.report(),
                    app_masters: self.jms.iter().map(|(&app, &(a, _, _))| (app, a)).collect(),
                },
            );
        }
    }

    fn resolve_master(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let current = self.naming.master();
        if current != self.fm {
            self.fm = current;
            // A (possibly new) master: report what this machine runs so a
            // rebuilding master reconstructs soft state (Figure 7).
            self.send_allocation_report(ctx);
        }
    }

    fn health(&mut self, ctx: &mut Ctx<'_, Msg>) -> NodeHealthReport {
        let mut usage = ResourceVec::ZERO;
        for w in self.workers.values() {
            usage.add(&proc_usage(&w.spec).usage());
        }
        for (_, _, res) in self.jms.values() {
            usage.add(res);
        }
        let report = NodeHealthReport {
            disk_ok_ratio: if ctx.launch_ok(self.m()) { 1.0 } else { 0.4 },
            load: self.total.max_physical_load(&usage),
            net_utilization: 0.0,
            recent_launch_failures: self.launch_failures_since_hb,
            speed_factor: ctx.machine_speed(self.m()),
        };
        // Fold the interval counter into the cumulative total the metrics
        // reports carry, then reset it for the next health interval.
        self.launch_failures_total += u64::from(self.launch_failures_since_hb);
        self.launch_failures_since_hb = 0;
        report
    }

    /// Builds and pushes the in-band metrics report (one per heartbeat).
    fn send_metrics_report(&mut self, ctx: &mut Ctx<'_, Msg>, load: f64) {
        let Some(fm) = self.fm else { return };
        let mut usage = ResourceVec::ZERO;
        for w in self.workers.values() {
            usage.add(&proc_usage(&w.spec).usage());
        }
        for (_, _, res) in self.jms.values() {
            usage.add(res);
        }
        let report = fuxi_sim::obs::AgentReport {
            machine: self.m(),
            t_s: ctx.now().as_secs_f64(),
            total_cpu_milli: self.total.cpu_milli(),
            total_mem_mb: self.total.memory_mb(),
            used_cpu_milli: usage.cpu_milli(),
            used_mem_mb: usage.memory_mb(),
            workers: self.workers.len() as u32,
            worker_starts: self.worker_starts,
            worker_exits: self.worker_exits,
            launch_failures: self.launch_failures_total,
            load,
        };
        ctx.send(
            fm,
            Msg::MetricsReport {
                report: fuxi_sim::obs::MetricsReport::Agent(report),
            },
        );
    }

    // ------------------------------------------------------------------
    // Launching
    // ------------------------------------------------------------------

    fn begin_download(&mut self, ctx: &mut Ctx<'_, Msg>, size_mb: f64, launch: PendingLaunch) {
        let tag = self.next_tag;
        self.next_tag += 1;
        self.pending.insert(tag, launch);
        // Binary packages are pulled from a (replicated) package store; the
        // paper attributes most of the 11.84 s worker start overhead to this
        // download (~400 MB). We model it as a transfer from a random
        // machine — contention with job traffic is real.
        let n = ctx.n_machines() as u32;
        let src = ctx.rng().gen_range(0..n);
        let kind = if src == self.m() {
            FlowKind::DiskRead { machine: self.m() }
        } else {
            FlowKind::Transfer {
                src,
                dst: self.m(),
            }
        };
        ctx.start_flow(FlowSpec {
            kind,
            size_mb,
            tag,
        });
    }

    fn finish_download(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64, failed: bool) {
        let Some(launch) = self.pending.remove(&tag) else {
            return;
        };
        match launch {
            PendingLaunch::Master { launch, trace } => {
                // Restore the causal context the request arrived under: the
                // spawn below hands it to the JobMaster's `on_start`, and
                // every reply to the FuxiMaster inherits it.
                ctx.set_trace(trace);
                let app = launch.app;
                if failed || !ctx.launch_ok(self.m()) {
                    self.launch_failures_since_hb += 1;
                    if let Some(fm) = self.fm {
                        ctx.send(
                            fm,
                            Msg::AppMasterStartFailed {
                                app,
                                reason: "launch failed".into(),
                            },
                        );
                    }
                    return;
                }
                let actor = ctx.spawn(Some(self.m()), (self.master_factory)(&launch));
                self.jms
                    .insert(app, (actor, launch.job, launch.desc.master_resource.clone()));
                ctx.metrics()
                    .gauge_add("fa.planned_mem_mb", launch.desc.master_resource.memory_mb() as f64);
                ctx.metrics()
                    .gauge_add("fa.planned_cpu_milli", launch.desc.master_resource.cpu_milli() as f64);
                if let Some(fm) = self.fm {
                    ctx.send(
                        fm,
                        Msg::AppMasterStarted {
                            app,
                            actor,
                            machine: self.machine,
                        },
                    );
                }
            }
            PendingLaunch::Worker { spec, trace } => {
                let app = spec.app;
                let waiters = self.download_waiters.remove(&app).unwrap_or_default();
                if failed || !ctx.launch_ok(self.m()) {
                    self.launch_failures_since_hb += 1;
                    for (s, t) in
                        std::iter::once((&spec, trace)).chain(waiters.iter().map(|(s, t)| (s, *t)))
                    {
                        ctx.metrics().count("fa.worker_launch_failed", 1);
                        ctx.send_traced(
                            s.master,
                            Msg::WorkerStartFailed {
                                worker: s.worker,
                                machine: self.machine,
                                reason: "launch failed".into(),
                            },
                            t,
                        );
                    }
                    return;
                }
                self.binary_cache.insert(app);
                self.spawn_worker(ctx, spec, trace);
                for (s, t) in waiters {
                    self.spawn_worker(ctx, s, t);
                }
            }
        }
    }

    /// Starts a worker, downloading its app's binary only if this machine
    /// has not fetched it yet (one download per app per machine — the
    /// local package cache every production agent keeps).
    fn start_or_download(&mut self, ctx: &mut Ctx<'_, Msg>, spec: WorkerSpec, trace: TraceId) {
        if self.binary_cache.contains(&spec.app) {
            self.spawn_worker(ctx, spec, trace);
            return;
        }
        match self.download_waiters.get_mut(&spec.app) {
            Some(waiters) => waiters.push((spec, trace)),
            None => {
                // First worker of this app here: fetch the binary; others
                // queue behind the same download.
                self.download_waiters.insert(spec.app, Vec::new());
                let size = spec.binary_mb;
                self.begin_download(ctx, size, PendingLaunch::Worker { spec, trace });
            }
        }
    }

    fn spawn_worker(&mut self, ctx: &mut Ctx<'_, Msg>, spec: WorkerSpec, trace: TraceId) {
        // The worker actor's `on_start` and the WorkerStarted reply both
        // belong to the job's causal chain.
        ctx.set_trace(trace);
        let launch = WorkerLaunch {
            spec: spec.clone(),
            machine: self.machine,
        };
        let actor = ctx.spawn(Some(self.m()), (self.worker_factory)(&launch));
        self.sandbox.create(spec.app, spec.worker);
        ctx.metrics()
            .gauge_add("fa.planned_mem_mb", spec.limit.memory_mb() as f64);
        ctx.metrics()
            .gauge_add("fa.planned_cpu_milli", spec.limit.cpu_milli() as f64);
        ctx.trace(TraceEvent::WorkerStarted {
            app: spec.app.0,
            worker: spec.worker.0,
            machine: self.m(),
        });
        ctx.send(
            spec.master,
            Msg::WorkerStarted {
                worker: spec.worker,
                actor,
                machine: self.machine,
            },
        );
        self.workers.insert(
            spec.worker,
            WorkerRt {
                spec,
                actor: Some(actor),
                trace,
            },
        );
        self.worker_starts += 1;
    }

    fn running_count(&self, app: AppId, unit: UnitId) -> u64 {
        let live = self
            .workers
            .values()
            .filter(|w| w.spec.app == app && w.spec.unit == unit)
            .count() as u64;
        let pending = self
            .pending
            .values()
            .filter(|p| match p {
                PendingLaunch::Worker { spec, .. } => spec.app == app && spec.unit == unit,
                _ => false,
            })
            .count() as u64;
        let waiting = self
            .download_waiters
            .get(&app)
            .map(|v| v.iter().filter(|(s, _)| s.unit == unit).count() as u64)
            .unwrap_or(0);
        live + pending + waiting
    }

    /// Removes a worker and records its `worker_exited` event. Returns the
    /// trace the worker was launched under so callers can tag follow-up
    /// messages (every removal path funnels through here).
    fn drop_worker(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        worker: WorkerId,
        kill_actor: bool,
        reason: &'static str,
    ) -> TraceId {
        if let Some(rt) = self.workers.remove(&worker) {
            self.worker_exits += 1;
            if let (true, Some(actor)) = (kill_actor, rt.actor) {
                ctx.kill(actor);
            }
            self.sandbox.destroy(worker);
            ctx.metrics()
                .gauge_add("fa.planned_mem_mb", -(rt.spec.limit.memory_mb() as f64));
            ctx.metrics()
                .gauge_add("fa.planned_cpu_milli", -(rt.spec.limit.cpu_milli() as f64));
            ctx.trace_as(
                rt.trace,
                TraceEvent::WorkerExited {
                    app: rt.spec.app.0,
                    worker: worker.0,
                    machine: self.m(),
                    reason,
                },
            );
            rt.trace
        } else {
            TraceId::NONE
        }
    }

    // ------------------------------------------------------------------
    // Enforcement
    // ------------------------------------------------------------------

    /// Resource-capacity ensurance after a capacity decrease: warn the AM,
    /// then (on the grace timer) kill newest workers of the app until the
    /// envelope holds.
    fn check_capacity(&mut self, ctx: &mut Ctx<'_, Msg>, app: AppId) {
        let mut over = ResourceVec::ZERO;
        let mut any_over = false;
        let units: Vec<UnitId> = self
            .workers
            .values()
            .filter(|w| w.spec.app == app)
            .map(|w| w.spec.unit)
            .collect();
        for unit in units {
            let allowed = self.envelope.allowed(app, unit);
            let running = self.running_count(app, unit);
            if running > allowed {
                any_over = true;
                if let Some(size) = self.envelope.unit_size(app, unit) {
                    over.add_scaled(size, running - allowed);
                }
            }
        }
        if any_over {
            // Warn whoever masters this app's workers (any of them).
            if let Some(w) = self.workers.values().find(|w| w.spec.app == app) {
                ctx.send(
                    w.spec.master,
                    Msg::CapacityWarning {
                        app,
                        machine: self.machine,
                        over,
                    },
                );
            }
            ctx.timer(self.cfg.capacity_grace, GRACE_BASE + app.0 as u64);
        }
    }

    fn enforce_capacity(&mut self, ctx: &mut Ctx<'_, Msg>, app: AppId) {
        // Grace expired: "when the resource capacity decreases and
        // application master does not choose one process to stop, FuxiAgent
        // will kill one process of this application compulsorily."
        loop {
            let victim = {
                let mut per_unit: BTreeMap<UnitId, Vec<WorkerId>> = BTreeMap::new();
                for (id, w) in &self.workers {
                    if w.spec.app == app {
                        per_unit.entry(w.spec.unit).or_default().push(*id);
                    }
                }
                let mut v = None;
                for (unit, mut ids) in per_unit {
                    let allowed = self.envelope.allowed(app, unit);
                    if (ids.len() as u64) > allowed {
                        ids.sort();
                        v = ids.pop(); // newest (highest id) goes first
                        break;
                    }
                }
                v
            };
            let Some(worker) = victim else { break };
            ctx.metrics().count("fa.capacity_kills", 1);
            let master = self.workers[&worker].spec.master;
            let trace = self.drop_worker(ctx, worker, true, "killed");
            ctx.send_traced(
                master,
                Msg::WorkerExited {
                    app,
                    worker,
                    machine: self.machine,
                    reason: FailReason::Killed,
                },
                trace,
            );
        }
    }

    fn sweep(&mut self, ctx: &mut Ctx<'_, Msg>) {
        // 1) Process liveness: restart crashed workers, report dead JMs.
        let crashed: Vec<WorkerId> = self
            .workers
            .iter()
            .filter(|(_, w)| w.actor.map(|a| !ctx.alive(a)).unwrap_or(true))
            .map(|(&id, _)| id)
            .collect();
        for worker in crashed {
            let spec = self.workers[&worker].spec.clone();
            let trace = self.drop_worker(ctx, worker, false, "crashed");
            ctx.metrics().count("fa.worker_crashes", 1);
            if self.cfg.restart_crashed_workers && ctx.launch_ok(self.m()) {
                // Restart in place; the master learns the new address from
                // the WorkerStarted it is about to receive.
                self.spawn_worker(ctx, spec, trace);
            } else {
                ctx.send_traced(
                    spec.master,
                    Msg::WorkerExited {
                        app: spec.app,
                        worker,
                        machine: self.machine,
                        reason: FailReason::Crashed,
                    },
                    trace,
                );
            }
        }
        // spawn_worker leaves the last restarted worker's trace ambient;
        // the sweeps below tag their sends explicitly.
        ctx.set_trace(TraceId::NONE);
        let dead_jms: Vec<AppId> = self
            .jms
            .iter()
            .filter(|(_, (a, _, _))| !ctx.alive(*a))
            .map(|(&app, _)| app)
            .collect();
        for app in dead_jms {
            let (_, job, res) = self.jms.remove(&app).unwrap();
            ctx.metrics()
                .gauge_add("fa.planned_mem_mb", -(res.memory_mb() as f64));
            ctx.metrics()
                .gauge_add("fa.planned_cpu_milli", -(res.cpu_milli() as f64));
            if let Some(fm) = self.fm {
                ctx.send_traced(
                    fm,
                    Msg::AppMasterExited {
                        app,
                        machine: self.machine,
                    },
                    TraceId::from_job(job.0),
                );
            }
        }
        // 2) Overload: kill the worst offender until load is acceptable.
        loop {
            let procs: Vec<ProcUsage> = self
                .workers
                .values()
                .map(|w| proc_usage(&w.spec))
                .collect();
            let mut usage = ResourceVec::ZERO;
            for p in &procs {
                usage.add(&p.usage());
            }
            if self.total.max_physical_load(&usage) <= self.cfg.overload_threshold {
                break;
            }
            let Some(victim) = pick_overload_victim(&procs) else {
                break;
            };
            ctx.metrics().count("fa.overload_kills", 1);
            let spec = self.workers[&victim].spec.clone();
            let trace = self.drop_worker(ctx, victim, true, "killed");
            ctx.send_traced(
                spec.master,
                Msg::WorkerExited {
                    app: spec.app,
                    worker: victim,
                    machine: self.machine,
                    reason: FailReason::Killed,
                },
                trace,
            );
        }
    }

    // ------------------------------------------------------------------
    // Failover adoption
    // ------------------------------------------------------------------

    /// A restarted agent adopts processes already running on its machine
    /// ("existing running tasks will be adopted rather than being killed").
    fn adopt(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let mut adopted_apps: Vec<(AppId, ActorId)> = Vec::new();
        for (actor, meta) in ctx.procs_on(self.m()) {
            let Some(meta) = ProcMeta::decode(&meta) else {
                continue;
            };
            match meta {
                ProcMeta::Worker {
                    app,
                    worker,
                    unit,
                    limit,
                    master,
                    usage_factor,
                } => {
                    let master = ActorId(master);
                    self.workers.insert(
                        worker,
                        WorkerRt {
                            spec: WorkerSpec {
                                app,
                                worker,
                                unit,
                                limit: limit.clone(),
                                binary_mb: 0.0,
                                master,
                                usage_factor,
                            },
                            actor: Some(actor),
                            // Adopted from a pre-restart agent: the launch
                            // trace did not survive the process boundary.
                            trace: TraceId::NONE,
                        },
                    );
                    self.sandbox.create(app, worker);
                    ctx.metrics()
                        .gauge_add("fa.planned_mem_mb", limit.memory_mb() as f64);
                    ctx.metrics()
                        .gauge_add("fa.planned_cpu_milli", limit.cpu_milli() as f64);
                    adopted_apps.push((app, master));
                }
                ProcMeta::JobMaster { app, job, resource } => {
                    ctx.metrics()
                        .gauge_add("fa.planned_mem_mb", resource.memory_mb() as f64);
                    ctx.metrics()
                        .gauge_add("fa.planned_cpu_milli", resource.cpu_milli() as f64);
                    self.jms.insert(app, (actor, job, resource));
                }
            }
        }
        if !self.workers.is_empty() {
            ctx.metrics().count("fa.adopted_workers", self.workers.len() as u64);
        }
        // Reconcile with each app's master ("then requests the full worker
        // lists from each corresponding application master").
        adopted_apps.sort();
        adopted_apps.dedup();
        for (app, master) in adopted_apps {
            ctx.send(
                master,
                Msg::WorkerListQuery {
                    app,
                    machine: self.machine,
                },
            );
        }
    }
}

fn proc_usage(spec: &WorkerSpec) -> ProcUsage {
    ProcUsage {
        worker: spec.worker,
        limit: spec.limit.clone(),
        usage_factor: spec.usage_factor,
    }
}

impl Actor<Msg> for FuxiAgent {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.naming
            .register(&format!("agent/{}", self.machine), ctx.id());
        self.adopt(ctx);
        self.fm = self.naming.master();
        if let Some(fm) = self.fm {
            ctx.send(
                fm,
                Msg::AgentHello {
                    machine: self.machine,
                    total: self.total.clone(),
                },
            );
        }
        ctx.timer(self.cfg.heartbeat_interval, TIMER_HB);
        ctx.timer(self.cfg.sweep_interval, TIMER_SWEEP);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: ActorId, msg: Msg) {
        match msg {
            Msg::StartAppMaster { app, job, desc } => {
                if !ctx.launch_ok(self.m()) {
                    self.launch_failures_since_hb += 1;
                    if let Some(fm) = self.fm {
                        ctx.send(
                            fm,
                            Msg::AppMasterStartFailed {
                                app,
                                reason: "machine cannot launch processes".into(),
                            },
                        );
                    }
                    return;
                }
                let size = desc.master_package_mb;
                self.begin_download(
                    ctx,
                    size,
                    PendingLaunch::Master {
                        launch: MasterLaunch {
                            app,
                            job,
                            desc,
                            machine: self.machine,
                        },
                        trace: ctx.trace_id(),
                    },
                );
            }
            Msg::StartWorker { spec } => {
                // The request carries the job's trace on its envelope; pin
                // it now — the launch may detour through a download flow.
                let trace = ctx.trace_id();
                // Resource capacity ensurance: only start within the envelope.
                let allowed = self.envelope.allowed(spec.app, spec.unit);
                let running = self.running_count(spec.app, spec.unit);
                if running >= allowed {
                    // The grant notification may still be in flight; park
                    // and retry before declaring failure.
                    ctx.metrics().count("fa.start_parked_capacity", 1);
                    if self.parked.is_empty() {
                        ctx.timer(SimDuration::from_millis(500), TIMER_PARKED);
                    }
                    self.parked.push((spec, 0, trace));
                    return;
                }
                if !ctx.launch_ok(self.m()) {
                    self.launch_failures_since_hb += 1;
                    ctx.metrics().count("fa.worker_launch_failed", 1);
                    ctx.send(
                        spec.master,
                        Msg::WorkerStartFailed {
                            worker: spec.worker,
                            machine: self.machine,
                            reason: "machine cannot launch processes".into(),
                        },
                    );
                    return;
                }
                self.start_or_download(ctx, spec, trace);
            }
            Msg::StopWorker { app, worker } => {
                if let Some(waiters) = self.download_waiters.get_mut(&app) {
                    waiters.retain(|(s, _)| s.worker != worker);
                }
                self.parked.retain(|(s, _, _)| s.worker != worker);
                self.drop_worker(ctx, worker, true, "stopped");
            }
            Msg::CapacityNotify { changes } => {
                for c in changes {
                    self.envelope.apply(c.app, c.unit, c.unit_resource, c.delta);
                    if c.delta < 0 {
                        self.check_capacity(ctx, c.app);
                    }
                }
            }
            Msg::AgentCapacitySnapshot { allocations } => {
                self.envelope.replace(allocations);
            }
            Msg::WorkerListReply {
                app,
                machine: _,
                workers,
            } => {
                // Kill adopted workers the master no longer expects.
                let expected: Vec<WorkerId> = workers.iter().map(|&(w, _)| w).collect();
                let stale: Vec<WorkerId> = self
                    .workers
                    .iter()
                    .filter(|(id, w)| w.spec.app == app && !expected.contains(id))
                    .map(|(&id, _)| id)
                    .collect();
                for w in stale {
                    ctx.metrics().count("fa.stale_workers_killed", 1);
                    self.drop_worker(ctx, w, true, "stale");
                }
            }
            Msg::FlowDone { tag, failed } => self.finish_download(ctx, tag, failed),
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        match tag {
            TIMER_HB => {
                self.resolve_master(ctx);
                let health = self.health(ctx);
                let load = health.load;
                if let Some(fm) = self.fm {
                    ctx.send(
                        fm,
                        Msg::AgentHeartbeat {
                            machine: self.machine,
                            health,
                        },
                    );
                }
                if self.cfg.report_metrics {
                    self.send_metrics_report(ctx, load);
                }
                self.beats += 1;
                if self.beats.is_multiple_of(ENVELOPE_REFRESH_BEATS) {
                    // Periodic envelope repair: the master answers with an
                    // authoritative AgentCapacitySnapshot.
                    self.send_allocation_report(ctx);
                }
                ctx.timer(self.cfg.heartbeat_interval, TIMER_HB);
            }
            TIMER_SWEEP => {
                self.sweep(ctx);
                ctx.timer(self.cfg.sweep_interval, TIMER_SWEEP);
            }
            TIMER_PARKED => {
                let parked = std::mem::take(&mut self.parked);
                for (spec, attempts, trace) in parked {
                    let allowed = self.envelope.allowed(spec.app, spec.unit);
                    let running = self.running_count(spec.app, spec.unit);
                    if running < allowed {
                        if ctx.launch_ok(self.m()) {
                            self.start_or_download(ctx, spec, trace);
                        } else {
                            self.launch_failures_since_hb += 1;
                            ctx.send_traced(
                                spec.master,
                                Msg::WorkerStartFailed {
                                    worker: spec.worker,
                                    machine: self.machine,
                                    reason: "machine cannot launch processes".into(),
                                },
                                trace,
                            );
                        }
                    } else if attempts >= 3 {
                        ctx.metrics().count("fa.start_rejected_capacity", 1);
                        ctx.send_traced(
                            spec.master,
                            Msg::WorkerStartFailed {
                                worker: spec.worker,
                                machine: self.machine,
                                reason: "insufficient granted capacity".into(),
                            },
                            trace,
                        );
                    } else {
                        self.parked.push((spec, attempts + 1, trace));
                    }
                }
                if !self.parked.is_empty() {
                    ctx.timer(SimDuration::from_millis(500), TIMER_PARKED);
                }
            }
            t if t >= GRACE_BASE => {
                let app = AppId((t - GRACE_BASE) as u32);
                self.enforce_capacity(ctx, app);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuxi_sim::{Actor as SimActor, SimTime, World, WorldConfig};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Sink actor standing in for the FuxiMaster / application master.
    struct Sink {
        log: Rc<RefCell<Vec<Msg>>>,
    }
    impl SimActor<Msg> for Sink {
        fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: ActorId, msg: Msg) {
            self.log.borrow_mut().push(msg);
        }
    }

    /// Inert worker actor the factory produces.
    struct NopWorker;
    impl SimActor<Msg> for NopWorker {
        fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: ActorId, _: Msg) {}
    }

    fn factories() -> (MasterFactory, WorkerFactory) {
        let mf: MasterFactory = Arc::new(|_launch| Box::new(NopWorker));
        let wf: WorkerFactory = Arc::new(|_launch| Box::new(NopWorker));
        (mf, wf)
    }

    struct Harness {
        world: World<Msg>,
        agent: ActorId,
        master_log: Rc<RefCell<Vec<Msg>>>,
        am: ActorId,
        am_log: Rc<RefCell<Vec<Msg>>>,
    }

    fn setup() -> Harness {
        let mut world: World<Msg> = World::new(WorldConfig::uniform(4, 2, 3));
        let naming = NameRegistry::new();
        let master_log = Rc::new(RefCell::new(Vec::new()));
        let fm = world.spawn(None, Box::new(Sink { log: master_log.clone() }));
        naming.register(fuxi_apsara::naming::FUXI_MASTER, fm);
        let am_log = Rc::new(RefCell::new(Vec::new()));
        let am = world.spawn(None, Box::new(Sink { log: am_log.clone() }));
        let (mf, wf) = factories();
        let agent = world.spawn(
            Some(1),
            Box::new(FuxiAgent::new(
                MachineId(1),
                ResourceVec::cores_mb(12, 96 * 1024),
                AgentConfig::default(),
                naming,
                mf,
                wf,
            )),
        );
        Harness {
            world,
            agent,
            master_log,
            am,
            am_log,
        }
    }

    fn spec(h: &Harness, worker: u64, usage_factor: f64) -> WorkerSpec {
        WorkerSpec {
            app: AppId(1),
            worker: WorkerId(worker),
            unit: UnitId(0),
            limit: ResourceVec::new(2000, 8192),
            binary_mb: 10.0,
            master: h.am,
            usage_factor,
        }
    }

    fn capacity_change(count: i64) -> fuxi_proto::CapacityChange {
        fuxi_proto::CapacityChange {
            app: AppId(1),
            unit: UnitId(0),
            unit_resource: ResourceVec::new(2000, 8192),
            delta: count,
        }
    }

    fn grant_capacity(h: &mut Harness, count: i64) {
        h.world.send_external(
            h.agent,
            Msg::CapacityNotify { changes: vec![capacity_change(count)] },
        );
    }

    #[test]
    fn agent_reports_in_and_heartbeats() {
        let mut h = setup();
        h.world.run_until(SimTime::from_secs(10));
        let log = h.master_log.borrow();
        assert!(log.iter().any(|m| matches!(m, Msg::AgentHello { machine: MachineId(1), .. })));
        let beats = log
            .iter()
            .filter(|m| matches!(m, Msg::AgentHeartbeat { .. }))
            .count();
        assert!(beats >= 4, "2s heartbeats over 10s: {beats}");
    }

    #[test]
    fn capacity_ensurance_starts_only_within_envelope() {
        let mut h = setup();
        grant_capacity(&mut h, 1);
        h.world.send_external(h.agent, Msg::StartWorker { spec: spec(&h, 1, 0.4) });
        h.world.send_external(h.agent, Msg::StartWorker { spec: spec(&h, 2, 0.4) });
        h.world.run_until(SimTime::from_secs(10));
        let log = h.am_log.borrow();
        let started = log
            .iter()
            .filter(|m| matches!(m, Msg::WorkerStarted { .. }))
            .count();
        let failed = log
            .iter()
            .filter(|m| matches!(m, Msg::WorkerStartFailed { .. }))
            .count();
        assert_eq!(started, 1, "only one container granted");
        assert_eq!(failed, 1, "the second is rejected after park retries");
    }

    #[test]
    fn parked_start_succeeds_when_capacity_arrives_late() {
        let mut h = setup();
        // StartWorker beats the CapacityNotify (the FM→AM→FA race).
        h.world.send_external(h.agent, Msg::StartWorker { spec: spec(&h, 1, 0.4) });
        h.world.at(SimTime::from_millis(400), |_w| {});
        let agent = h.agent;
        h.world.at(SimTime::from_millis(400), move |w| {
            w.send_external(
                agent,
                Msg::CapacityNotify { changes: vec![capacity_change(1)] },
            );
        });
        h.world.run_until(SimTime::from_secs(10));
        let log = h.am_log.borrow();
        assert!(
            log.iter().any(|m| matches!(m, Msg::WorkerStarted { worker: WorkerId(1), .. })),
            "parked request retried and succeeded: {log:?}"
        );
    }

    #[test]
    fn launch_failure_reported_when_machine_broken() {
        let mut h = setup();
        h.world.set_launch_ok(1, false);
        grant_capacity(&mut h, 1);
        h.world.send_external(h.agent, Msg::StartWorker { spec: spec(&h, 1, 0.4) });
        h.world.run_until(SimTime::from_secs(5));
        assert!(h
            .am_log
            .borrow()
            .iter()
            .any(|m| matches!(m, Msg::WorkerStartFailed { .. })));
        // The sickness shows up in heartbeat health telemetry.
        let log = h.master_log.borrow();
        let sick = log.iter().any(|m| match m {
            Msg::AgentHeartbeat { health, .. } => {
                health.recent_launch_failures > 0 || health.disk_ok_ratio < 1.0
            }
            _ => false,
        });
        assert!(sick, "health report reflects launch failures");
    }

    #[test]
    fn overload_kills_worst_offender() {
        let mut h = setup();
        grant_capacity(&mut h, 6);
        // 6 workers × {2c, 8GB} limits on a 12c/96GB machine; usage factor
        // 1.2 → 14.4 cores used > 1.05 × 12: overloaded.
        for i in 1..=6 {
            h.world
                .send_external(h.agent, Msg::StartWorker { spec: spec(&h, i, 1.2) });
        }
        h.world.run_until(SimTime::from_secs(15));
        let log = h.am_log.borrow();
        let killed = log
            .iter()
            .filter(|m| matches!(m, Msg::WorkerExited { reason: FailReason::Killed, .. }))
            .count();
        assert!(killed >= 1, "overload policy killed someone");
        assert_eq!(
            h.world.metrics().counter("fa.overload_kills"),
            killed as u64
        );
    }

    #[test]
    fn capacity_decrease_enforced_after_grace() {
        let mut h = setup();
        grant_capacity(&mut h, 2);
        h.world.send_external(h.agent, Msg::StartWorker { spec: spec(&h, 1, 0.4) });
        h.world.send_external(h.agent, Msg::StartWorker { spec: spec(&h, 2, 0.4) });
        h.world.run_until(SimTime::from_secs(5));
        // FuxiMaster revokes one container; the AM (our sink) ignores the
        // warning, so the agent kills one worker after the grace period.
        grant_capacity(&mut h, -1);
        h.world.run_until(SimTime::from_secs(15));
        let log = h.am_log.borrow();
        assert!(log.iter().any(|m| matches!(m, Msg::CapacityWarning { .. })),
            "AM was warned first");
        assert!(
            log.iter()
                .any(|m| matches!(m, Msg::WorkerExited { reason: FailReason::Killed, .. })),
            "compulsory kill after grace: {log:?}"
        );
        assert_eq!(h.world.metrics().counter("fa.capacity_kills"), 1);
    }

    #[test]
    fn binary_cache_downloads_once_per_app() {
        let mut h = setup();
        grant_capacity(&mut h, 4);
        for i in 1..=4 {
            h.world
                .send_external(h.agent, Msg::StartWorker { spec: spec(&h, i, 0.4) });
        }
        h.world.run_until(SimTime::from_secs(10));
        let started = h
            .am_log
            .borrow()
            .iter()
            .filter(|m| matches!(m, Msg::WorkerStarted { .. }))
            .count();
        assert_eq!(started, 4);
        // One flow for the shared binary (plus none for the cached starts).
        assert_eq!(h.world.metrics().counter("flow.started"), 1);
    }
}
