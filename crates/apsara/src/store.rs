//! Reliable checkpoint store.
//!
//! Backed by Pangu in production; modelled as always-available shared state
//! here. FuxiMaster's hard-state checkpoints ("only hard states such as job
//! description and cluster-level machine blacklist are recorded by a
//! light-weighted checkpoint") and JobMaster snapshots live in it and
//! survive any actor or machine failure.
//!
//! Write/read counters are kept so experiments can verify the *lightweight*
//! claim — checkpoints happen only on job submit/stop, snapshots only on
//! instance status change.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
/// Checkpointstore.
pub struct CheckpointStore {
    data: BTreeMap<String, Vec<u8>>,
    writes: u64,
    reads: u64,
    bytes_written: u64,
}

impl CheckpointStore {
    /// Put.
    pub fn put(&mut self, key: &str, value: Vec<u8>) {
        self.writes += 1;
        self.bytes_written += value.len() as u64;
        self.data.insert(key.to_owned(), value);
    }

    /// Get.
    pub fn get(&mut self, key: &str) -> Option<Vec<u8>> {
        self.reads += 1;
        self.data.get(key).cloned()
    }

    /// Delete.
    pub fn delete(&mut self, key: &str) {
        self.data.remove(key);
    }

    /// Contains.
    pub fn contains(&self, key: &str) -> bool {
        self.data.contains_key(key)
    }

    /// Keys with a given prefix (e.g. all job checkpoints).
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        self.data
            .keys()
            .filter(|k| k.starts_with(prefix))
            .cloned()
            .collect()
    }

    /// Writes.
    pub fn writes(&self) -> u64 {
        self.writes
    }

    /// Reads.
    pub fn reads(&self) -> u64 {
        self.reads
    }

    /// Bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Full snapshot of all entries (seeds a peer's replica at handshake).
    pub fn dump(&self) -> Vec<(String, Vec<u8>)> {
        self.data
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

/// Observer invoked on every *local* mutation of the store:
/// `(key, Some(bytes))` for a put, `(key, None)` for a delete. The node
/// supervisor installs one to replicate checkpoints to peers, so a
/// standby master in another process can rebuild from them on takeover.
pub type StoreWatcher = Box<dyn Fn(&str, Option<&[u8]>) + Send>;

/// Cloneable handle to a shared [`CheckpointStore`]. `Arc<Mutex>`-backed
/// so one handle serves the kernel and the live runtime alike.
#[derive(Clone, Default)]
pub struct StoreHandle {
    inner: Arc<Mutex<CheckpointStore>>,
    watcher: Arc<Mutex<Option<StoreWatcher>>>,
}

impl std::fmt::Debug for StoreHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreHandle")
            .field("inner", &*self.inner.lock().unwrap())
            .finish_non_exhaustive()
    }
}

impl StoreHandle {
    /// Creates a new instance with the given configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Put.
    pub fn put(&self, key: &str, value: Vec<u8>) {
        self.inner.lock().unwrap().put(key, value.clone());
        self.notify(key, Some(&value));
    }

    /// Put json.
    pub fn put_json<T: serde::Serialize>(&self, key: &str, value: &T) {
        let bytes = serde_json::to_vec(value).expect("checkpoint serialization");
        self.put(key, bytes);
    }

    /// Get.
    pub fn get(&self, key: &str) -> Option<Vec<u8>> {
        self.inner.lock().unwrap().get(key)
    }

    /// Get json.
    pub fn get_json<T: serde::de::DeserializeOwned>(&self, key: &str) -> Option<T> {
        self.get(key)
            .and_then(|bytes| serde_json::from_slice(&bytes).ok())
    }

    /// Delete.
    pub fn delete(&self, key: &str) {
        self.inner.lock().unwrap().delete(key);
        self.notify(key, None);
    }

    /// Installs the replication watcher fired on local mutations.
    pub fn set_watcher(&self, watcher: StoreWatcher) {
        *self.watcher.lock().unwrap() = Some(watcher);
    }

    /// Applies an update received from a peer process without firing the
    /// watcher (replicated writes must not echo back onto the wire).
    pub fn apply_remote(&self, key: &str, value: Option<Vec<u8>>) {
        let mut store = self.inner.lock().unwrap();
        match value {
            Some(v) => store.put(key, v),
            None => store.delete(key),
        }
    }

    /// Full snapshot of all entries (seeds a peer's replica at handshake).
    pub fn dump(&self) -> Vec<(String, Vec<u8>)> {
        self.inner.lock().unwrap().dump()
    }

    fn notify(&self, key: &str, value: Option<&[u8]>) {
        let watcher = self.watcher.lock().unwrap();
        if let Some(w) = watcher.as_ref() {
            w(key, value);
        }
    }

    /// Contains.
    pub fn contains(&self, key: &str) -> bool {
        self.inner.lock().unwrap().contains(key)
    }

    /// Keys with prefix.
    pub fn keys_with_prefix(&self, prefix: &str) -> Vec<String> {
        self.inner.lock().unwrap().keys_with_prefix(prefix)
    }

    /// Writes.
    pub fn writes(&self) -> u64 {
        self.inner.lock().unwrap().writes()
    }

    /// Reads.
    pub fn reads(&self) -> u64 {
        self.inner.lock().unwrap().reads()
    }

    /// Bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.inner.lock().unwrap().bytes_written()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    #[test]
    fn put_get_delete() {
        let s = StoreHandle::new();
        assert_eq!(s.get("a"), None);
        s.put("a", vec![1, 2]);
        assert_eq!(s.get("a"), Some(vec![1, 2]));
        assert!(s.contains("a"));
        s.delete("a");
        assert!(!s.contains("a"));
    }

    #[test]
    fn json_roundtrip() {
        #[derive(Serialize, Deserialize, PartialEq, Debug)]
        struct Ck {
            jobs: Vec<u32>,
        }
        let s = StoreHandle::new();
        s.put_json("ck", &Ck { jobs: vec![1, 2, 3] });
        let back: Ck = s.get_json("ck").unwrap();
        assert_eq!(back, Ck { jobs: vec![1, 2, 3] });
        assert!(s.get_json::<Ck>("missing").is_none());
    }

    #[test]
    fn prefix_listing_and_counters() {
        let s = StoreHandle::new();
        s.put("job/1", vec![0]);
        s.put("job/2", vec![0; 10]);
        s.put("blacklist", vec![0]);
        assert_eq!(s.keys_with_prefix("job/"), vec!["job/1", "job/2"]);
        assert_eq!(s.writes(), 3);
        assert_eq!(s.bytes_written(), 12);
    }

    #[test]
    fn handles_share_state() {
        let a = StoreHandle::new();
        let b = a.clone();
        a.put("k", vec![9]);
        assert_eq!(b.get("k"), Some(vec![9]));
    }
}
