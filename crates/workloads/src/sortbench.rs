//! GraySort / PetaSort benchmark jobs (§5.3, Table 4).
//!
//! A two-phase external sort: map instances read input chunks (locally when
//! scheduling permits), partition and spill; reduce instances shuffle-fetch
//! from every map machine, merge and write. All I/O is data-driven through
//! the flow model, so disk and NIC contention — the real determinants of
//! sort throughput — are simulated rather than assumed.

use fuxi_job::desc::{Endpoint, JobDesc, PipeDesc, TaskDesc};
use std::collections::BTreeMap;

/// Sort benchmark parameters.
#[derive(Debug, Clone)]
pub struct SortParams {
    /// Total data to sort, GB.
    pub total_gb: f64,
    /// Input chunk size, MB (one map instance per chunk group).
    pub chunk_mb: f64,
    /// Map instances.
    pub maps: u32,
    /// Reduce (partition) instances.
    pub reduces: u32,
    /// In-memory processing rate per instance, MB/s.
    pub compute_mb_per_s: f64,
    /// Worker containers per task (bounded by cluster slots).
    pub max_workers: u32,
    /// Instance resources.
    pub cpu: f64,
    /// Memory per instance, MB.
    pub memory_mb: u64,
    /// Worker binary size.
    pub binary_mb: f64,
    /// Concurrent shuffle fetches per reduce instance.
    pub fetch_fanout: u32,
    /// Name of the pre-created input file in Pangu.
    pub input_file: String,
    /// DFS path the final output is written to.
    pub output_file: String,
}

impl SortParams {
    /// The paper's GraySort run: 100 TB over 5,000 nodes, scaled by
    /// `scale` ∈ (0, 1] for smaller clusters (data and parallelism shrink
    /// together, preserving per-node load).
    pub fn graysort(scale: f64) -> SortParams {
        let scale = scale.clamp(0.001, 1.0);
        let total_gb = 100_000.0 * scale;
        // ~512 MB of input per map instance: 200k maps at full scale.
        let maps = ((total_gb * 1024.0 / 512.0).round() as u32).max(4);
        // ~20 GB per reduce: 5,000 reduces at full scale.
        let reduces = ((total_gb / 20.0).round() as u32).max(2);
        SortParams {
            total_gb,
            chunk_mb: 256.0,
            maps,
            reduces,
            compute_mb_per_s: 400.0,
            max_workers: 0,
            cpu: 1.0,
            memory_mb: 4096,
            binary_mb: 400.0,
            fetch_fanout: 8,
            input_file: "graysort/input".to_owned(),
            output_file: "pangu://graysort/output".to_owned(),
        }
    }

    /// Re-derives the map count for a different split size (the record
    /// Hadoop runs used coarse multi-GB splits to amortize per-task
    /// container overheads — the fair configuration for the baseline).
    pub fn with_split_mb(mut self, split_mb: f64) -> SortParams {
        self.maps = ((self.total_gb * 1024.0 / split_mb).round() as u32).max(2);
        self
    }

    /// Per map input mb.
    pub fn per_map_input_mb(&self) -> f64 {
        self.total_gb * 1024.0 / self.maps as f64
    }

    /// Per reduce output mb.
    pub fn per_reduce_output_mb(&self) -> f64 {
        self.total_gb * 1024.0 / self.reduces as f64
    }
}

/// Builds the sort job description. The input file must exist in Pangu
/// before submission (chunked at `chunk_mb`).
pub fn graysort_job(p: &SortParams) -> JobDesc {
    let map = TaskDesc {
        executable: "bin/sort_map".to_owned(),
        instances: p.maps,
        cpu: p.cpu,
        memory_mb: p.memory_mb,
        duration_s: 0.0,
        duration_jitter: 0.0,
        // Spill equals input: each map writes its partitioned runs.
        output_mb_per_instance: p.per_map_input_mb(),
        data_driven: true,
        compute_mb_per_s: p.compute_mb_per_s,
        max_workers: p.max_workers,
        binary_mb: p.binary_mb,
        fetch_fanout: p.fetch_fanout,
        ..TaskDesc::synthetic(p.maps, 0.0)
    };
    let reduce = TaskDesc {
        executable: "bin/sort_reduce".to_owned(),
        instances: p.reduces,
        cpu: p.cpu,
        memory_mb: p.memory_mb,
        duration_s: 0.0,
        duration_jitter: 0.0,
        output_mb_per_instance: p.per_reduce_output_mb(),
        data_driven: true,
        compute_mb_per_s: p.compute_mb_per_s,
        max_workers: p.max_workers,
        binary_mb: p.binary_mb,
        fetch_fanout: p.fetch_fanout,
        ..TaskDesc::synthetic(p.reduces, 0.0)
    };
    let mut tasks = BTreeMap::new();
    tasks.insert("sort_map".to_owned(), map);
    tasks.insert("sort_reduce".to_owned(), reduce);
    JobDesc {
        tasks,
        pipes: vec![
            PipeDesc {
                source: Endpoint {
                    file_pattern: Some(format!("pangu://{}", p.input_file)),
                    access_point: None,
                },
                destination: Endpoint {
                    access_point: Some("sort_map:input".into()),
                    file_pattern: None,
                },
            },
            PipeDesc {
                source: Endpoint {
                    access_point: Some("sort_map:spill".into()),
                    file_pattern: None,
                },
                destination: Endpoint {
                    access_point: Some("sort_reduce:fetch".into()),
                    file_pattern: None,
                },
            },
            PipeDesc {
                source: Endpoint {
                    access_point: Some("sort_reduce:output".into()),
                    file_pattern: None,
                },
                destination: Endpoint {
                    file_pattern: Some(p.output_file.clone()),
                    access_point: None,
                },
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuxi_job::dag::TaskGraph;

    #[test]
    fn graysort_full_scale_matches_paper_shape() {
        let p = SortParams::graysort(1.0);
        assert!((p.total_gb - 100_000.0).abs() < 1.0);
        assert_eq!(p.maps, 200_000);
        assert_eq!(p.reduces, 5_000);
        assert!((p.per_map_input_mb() - 512.0).abs() < 1.0);
        assert!((p.per_reduce_output_mb() - 20_480.0).abs() < 1.0);
    }

    #[test]
    fn scaled_graysort_preserves_per_instance_load() {
        let p = SortParams::graysort(0.01);
        assert!((p.per_map_input_mb() - 512.0).abs() < 2.0);
        assert!((p.per_reduce_output_mb() - 20_480.0).abs() < 50.0);
    }

    #[test]
    fn job_description_is_a_valid_two_stage_dag() {
        let p = SortParams::graysort(0.01);
        let d = graysort_job(&p);
        let g = TaskGraph::build(&d).unwrap();
        let map = g.by_name("sort_map").unwrap();
        let red = g.by_name("sort_reduce").unwrap();
        assert_eq!(g.task(red).upstream, vec![map]);
        assert!(d.tasks["sort_map"].data_driven);
        assert!(d.tasks["sort_reduce"].data_driven);
        assert_eq!(g.task(map).input_files, vec!["pangu://graysort/input"]);
    }

    #[test]
    fn volumes_conserve_data() {
        let p = SortParams::graysort(0.1);
        let d = graysort_job(&p);
        let map_out = d.tasks["sort_map"].output_mb_per_instance * p.maps as f64;
        let red_out = d.tasks["sort_reduce"].output_mb_per_instance * p.reduces as f64;
        let total_mb = p.total_gb * 1024.0;
        assert!((map_out - total_mb).abs() / total_mb < 0.01);
        assert!((red_out - total_mb).abs() / total_mb < 0.01);
    }
}
