#![warn(missing_docs)]
//! # fuxi-rt
//!
//! A live multi-threaded runtime that runs the *unchanged* production
//! actors — FuxiMaster, FuxiAgent, JobMaster, TaskWorker, the Apsara
//! services — on OS threads with real clocks. The deterministic kernel in
//! `fuxi-sim` answers "is the protocol correct"; this crate answers "does
//! the same code hold up under real concurrency and wall-clock time".
//!
//! * [`runtime`] — [`runtime::LiveRuntime`]: thread-per-actor execution,
//!   bounded mailboxes, a hashed timer wheel and wall-clock flow engine
//!   on a dedicated clock thread;
//! * [`cluster`] — [`cluster::LiveCluster`]: the full Fuxi stack wired
//!   exactly like the simulated harness, driven by the same config;
//! * [`scrape`] — an HTTP endpoint (`/metrics` Prometheus text, `/json`)
//!   serving the live cluster view;
//! * [`mailbox`], [`timer`] — the underlying building blocks;
//! * [`transport`] — the versioned, framed deployment transport (HELLO
//!   handshake, typed version rejection, TCP | in-proc channel).

pub mod cluster;
pub mod mailbox;
pub mod runtime;
pub mod scrape;
pub mod timer;
pub mod transport;

pub use cluster::LiveCluster;
pub use mailbox::{MailboxGauges, PushOutcome};
pub use runtime::{LiveRuntime, RuntimeConfig};
pub use timer::TimerWheel;
pub use transport::{ChannelTransport, Frame, TcpTransport, Transport, TransportListener};
