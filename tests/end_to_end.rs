//! End-to-end integration: jobs run through the full stack — client →
//! FuxiMaster → FuxiAgent → JobMaster → TaskWorkers — on the simulated
//! cluster.

use fuxi::cluster::{Cluster, ClusterConfig, SubmitOpts};
use fuxi::proto::Priority;
use fuxi::sim::SimTime;
use fuxi::workloads::mapreduce::{wordcount_job, MapReduceParams};

fn small_cluster(seed: u64) -> Cluster {
    Cluster::new(ClusterConfig {
        n_machines: 10,
        rack_size: 5,
        seed,
        ..ClusterConfig::default()
    })
}

fn small_job(maps: u32, reduces: u32, dur: f64) -> fuxi::job::JobDesc {
    wordcount_job(&MapReduceParams {
        maps,
        reduces,
        map_duration_s: dur,
        reduce_duration_s: dur,
        jitter: 0.1,
        binary_mb: 50.0,
        ..Default::default()
    })
}

#[test]
fn single_job_runs_to_completion() {
    let mut c = small_cluster(11);
    let job = c.submit(&small_job(8, 2, 5.0), &SubmitOpts::default());
    let done = c.run_until_job_done(job, SimTime::from_secs(600));
    let (ok, at) = done.expect("job must finish within 600 simulated seconds");
    assert!(ok, "job must succeed");
    assert!(at > 5.0, "two 5s stages plus overheads take real time: {at}");
    // All containers are returned: nothing remains planned.
    let m = c.world.metrics();
    assert!(m.counter("fm.jobs_finished") == 1);
    assert!(m.counter("jm.instances_finished") >= 10);
}

#[test]
fn multiple_concurrent_jobs_all_finish() {
    let mut c = small_cluster(12);
    let jobs: Vec<_> = (0..5)
        .map(|i| c.submit(&small_job(6 + i, 2, 4.0), &SubmitOpts::default()))
        .collect();
    let n = c.run_until_n_done(jobs.len(), SimTime::from_secs(900));
    assert_eq!(n, jobs.len(), "all 5 jobs finish");
    for j in jobs {
        assert_eq!(c.job_done(j).map(|(ok, _)| ok), Some(true));
    }
}

#[test]
fn diamond_dag_executes_in_waves() {
    use fuxi::job::desc::{Endpoint, JobDesc, PipeDesc, TaskDesc};
    use std::collections::BTreeMap;
    let mut tasks = BTreeMap::new();
    for (name, n) in [("T1", 4u32), ("T2", 2), ("T3", 2), ("T4", 2)] {
        let mut t = TaskDesc::synthetic(n, 3.0);
        t.output_mb_per_instance = 1.0;
        t.binary_mb = 50.0;
        tasks.insert(name.to_owned(), t);
    }
    let ap = |s: &str| Endpoint {
        access_point: Some(s.into()),
        file_pattern: None,
    };
    let desc = JobDesc {
        tasks,
        pipes: vec![
            PipeDesc { source: ap("T1:a"), destination: ap("T2:a") },
            PipeDesc { source: ap("T1:b"), destination: ap("T3:a") },
            PipeDesc { source: ap("T2:b"), destination: ap("T4:a") },
            PipeDesc { source: ap("T3:b"), destination: ap("T4:b") },
        ],
    };
    let mut c = small_cluster(13);
    let job = c.submit(&desc, &SubmitOpts::default());
    let (ok, _) = c
        .run_until_job_done(job, SimTime::from_secs(900))
        .expect("diamond finishes");
    assert!(ok);
    assert_eq!(c.world.metrics().counter("jm.tasks_finished"), 4);
}

#[test]
fn data_driven_job_reads_from_pangu() {
    let mut c = small_cluster(14);
    // 1 GB input in 64 MB chunks, replicated 3×.
    c.pangu.create("logs/day1", 1024.0, 64.0, 3, &c.topo);
    let desc = wordcount_job(&MapReduceParams {
        maps: 8,
        reduces: 2,
        map_duration_s: 1.0,
        reduce_duration_s: 1.0,
        jitter: 0.0,
        map_output_mb: 16.0,
        input_pattern: Some("pangu://logs/*".into()),
        output_file: Some("pangu://wc-out".into()),
        data_driven: true,
        binary_mb: 50.0,
        ..Default::default()
    });
    let job = c.submit(&desc, &SubmitOpts::default());
    let (ok, _) = c
        .run_until_job_done(job, SimTime::from_secs(1200))
        .expect("data-driven job finishes");
    assert!(ok);
    // The declared output now exists in the DFS.
    assert!(c.pangu.file("wc-out").is_some());
    assert!(c.world.metrics().counter("flow.started") > 0, "real flows moved data");
}

#[test]
fn priority_job_queues_ahead_under_contention() {
    // Saturate a tiny cluster with a low-priority job, then submit a
    // high-priority one: it must finish even though the cluster was full.
    let mut c = small_cluster(15);
    let big = small_job(200, 1, 30.0);
    let _bg = c.submit(
        &big,
        &SubmitOpts {
            priority: Priority(5000),
            ..Default::default()
        },
    );
    c.run_for(fuxi::sim::SimDuration::from_secs(30));
    let hi = c.submit(
        &small_job(10, 2, 3.0),
        &SubmitOpts {
            priority: Priority(10),
            ..Default::default()
        },
    );
    let done = c.run_until_job_done(hi, SimTime::from_secs(900));
    assert_eq!(done.map(|(ok, _)| ok), Some(true), "high priority job completes");
}
