//! Simulated time: microsecond-resolution, monotone, 64-bit.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant in simulated time, microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Zero.
    pub const ZERO: SimTime = SimTime(0);
    /// Far future; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// From secs.
    pub fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// From secs f64.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s * 1e6).round() as u64)
    }

    /// From millis.
    pub fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// From micros.
    pub fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// As secs f64.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As micros.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Saturating difference `self - earlier`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// Zero.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From secs.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// From secs f64.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s * 1e6).round() as u64)
    }

    /// From millis.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// From micros.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// As secs f64.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// As micros.
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Mul f64.
    pub fn mul_f64(self, k: f64) -> Self {
        SimDuration((self.0 as f64 * k).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, d: SimDuration) {
        self.0 = self.0.saturating_add(d.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, other: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs_f64(0.5).as_micros(), 500_000);
        assert!((SimDuration::from_secs(1).as_secs_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_saturates() {
        let t = SimTime::from_secs(1) + SimDuration::from_secs(2);
        assert_eq!(t, SimTime::from_secs(3));
        assert_eq!(SimTime::ZERO - SimTime::from_secs(5), SimDuration::ZERO);
        assert_eq!(
            SimTime::from_secs(5).since(SimTime::from_secs(2)),
            SimDuration::from_secs(3)
        );
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimDuration::from_secs(10).mul_f64(0.25), SimDuration::from_secs_f64(2.5));
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
    }
}
