#![warn(missing_docs)]
//! # fuxi-obs
//!
//! The structured observability layer of the Fuxi reproduction: typed,
//! allocation-free **trace events** with causal **trace IDs**, **span
//! timing** for the scheduler decision path, a per-actor **flight
//! recorder** (fixed-size ring of recent events, dumped on faults), and
//! **exporters** (JSONL event log, Chrome/Perfetto `trace_event` JSON).
//!
//! The paper's headline claims are behavioural — failover transparency
//! (§4, Table 3), message overhead (Table 2), flat decision latency under
//! saturation (Figure 9). Counters can report them only as after-the-fact
//! aggregates; this crate makes them *reconstructable*: a `trace_id` is
//! minted when a job is submitted and propagated along every causally
//! downstream message (the simulation kernel's delivery envelope carries
//! it), so "what happened to job J across the FM failover at t=310 s" is a
//! filter over one event stream.
//!
//! This crate is dependency-free and knows nothing about the simulator or
//! the protocol: identifiers are raw integers, times are `f64` seconds.
//! `fuxi-sim` owns a [`Tracer`] per world and threads it through actor
//! contexts.

pub mod export;
pub mod recorder;
pub mod slo;
pub mod trace;
pub mod view;
pub mod window;

pub use recorder::{FlightDump, FlightRing, Tracer, TracerConfig};
pub use slo::{SloAlert, SloRuleKind, SloRules, SloWatchdog};
pub use trace::{SpanKind, SpanRecord, TraceEvent, TraceId, TraceRecord};
pub use view::{
    AgentReport, ClusterView, JobReport, MasterRollup, MetricsHub, MetricsPlaneConfig,
    MetricsReport,
};
pub use window::{WindowAgg, WindowRing};
