//! Cluster topology: the machine / rack / cluster hierarchy that resource
//! requests are expressed against (paper Section 3.2.2: "Resources can fall
//! into categories of three-level-tree hierarchy: machine, rack and
//! cluster").

use crate::ids::{MachineId, RackId};
use crate::resource::ResourceVec;
use serde::{Deserialize, Serialize};

/// The locality level of a resource request entry or a waiting-queue node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Locality {
    /// A specific machine ("computation at best happens where data resides").
    Machine(MachineId),
    /// Any machine in a given rack ("at least within the same network switch").
    Rack(RackId),
    /// Any machine in the cluster.
    Cluster,
}

/// Hardware description of one machine. Defaults reproduce the paper's
/// testbed nodes (Section 5): 2×2.20 GHz 6-core Xeon E5-2430, 96 GB memory,
/// 12×2 TB disks, two gigabit Ethernet ports.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Schedulable resource capacity.
    pub resources: ResourceVec,
    /// Aggregate sequential disk bandwidth, MB/s (12 spindles ≈ 100 MB/s each).
    pub disk_bw_mbps: f64,
    /// Network bandwidth per direction, MB/s (2×1 GbE ≈ 250 MB/s).
    pub net_bw_mbps: f64,
}

impl Default for MachineSpec {
    fn default() -> Self {
        Self {
            resources: ResourceVec::cores_mb(12, 96 * 1024),
            disk_bw_mbps: 1200.0,
            net_bw_mbps: 250.0,
        }
    }
}

/// Immutable cluster shape: which machines exist and which rack each belongs
/// to. Capacity *changes* (node death, blacklisting) are tracked by the
/// scheduler, not here.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    /// `machine_rack[m]` = rack of machine `m`.
    machine_rack: Vec<RackId>,
    /// `rack_machines[r]` = machines in rack `r`, ascending.
    rack_machines: Vec<Vec<MachineId>>,
    /// Per-machine hardware. Index = machine id.
    specs: Vec<MachineSpec>,
}

impl Topology {
    /// N machines.
    pub fn n_machines(&self) -> usize {
        self.machine_rack.len()
    }

    /// N racks.
    pub fn n_racks(&self) -> usize {
        self.rack_machines.len()
    }

    #[inline]
    /// Rack of.
    pub fn rack_of(&self, m: MachineId) -> RackId {
        self.machine_rack[m.0 as usize]
    }

    /// Machines in rack.
    pub fn machines_in_rack(&self, r: RackId) -> &[MachineId] {
        &self.rack_machines[r.0 as usize]
    }

    #[inline]
    /// Worker launch specification.
    pub fn spec(&self, m: MachineId) -> &MachineSpec {
        &self.specs[m.0 as usize]
    }

    /// Machines involved.
    pub fn machines(&self) -> impl Iterator<Item = MachineId> + '_ {
        (0..self.machine_rack.len() as u32).map(MachineId)
    }

    /// Racks.
    pub fn racks(&self) -> impl Iterator<Item = RackId> + '_ {
        (0..self.rack_machines.len() as u32).map(RackId)
    }

    /// Sum of schedulable capacity over all machines.
    pub fn total_resources(&self) -> ResourceVec {
        let mut total = ResourceVec::ZERO;
        for s in &self.specs {
            total.add(&s.resources);
        }
        total
    }

    /// `true` when both machines are in the same rack (drives the network
    /// latency model).
    pub fn same_rack(&self, a: MachineId, b: MachineId) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }
}

/// Builds a regular topology: `racks × machines_per_rack` identical machines.
/// Heterogeneous clusters can be described with [`TopologyBuilder::add_rack`].
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    racks: Vec<Vec<MachineSpec>>,
}

impl TopologyBuilder {
    /// Creates a new instance with the given configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n_racks` racks of `machines_per_rack` machines with `spec` each.
    pub fn uniform(mut self, n_racks: usize, machines_per_rack: usize, spec: MachineSpec) -> Self {
        for _ in 0..n_racks {
            self.racks.push(vec![spec.clone(); machines_per_rack]);
        }
        self
    }

    /// Adds one rack with explicitly-specified machines.
    pub fn add_rack(mut self, machines: Vec<MachineSpec>) -> Self {
        self.racks.push(machines);
        self
    }

    /// Build.
    pub fn build(self) -> Topology {
        let mut machine_rack = Vec::new();
        let mut rack_machines = Vec::new();
        let mut specs = Vec::new();
        for (r, rack) in self.racks.into_iter().enumerate() {
            let mut ids = Vec::with_capacity(rack.len());
            for spec in rack {
                let m = MachineId(machine_rack.len() as u32);
                machine_rack.push(RackId(r as u32));
                specs.push(spec);
                ids.push(m);
            }
            rack_machines.push(ids);
        }
        Topology {
            machine_rack,
            rack_machines,
            specs,
        }
    }
}

/// Convenience: the paper's 5,000-node testbed shape (Section 5), `scale` in
/// (0, 1] shrinks it proportionally for laptop-sized runs.
pub fn paper_testbed(scale: f64) -> Topology {
    let racks = ((100.0 * scale).round() as usize).max(1);
    TopologyBuilder::new()
        .uniform(racks, 50, MachineSpec::default())
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_topology_shape() {
        let t = TopologyBuilder::new()
            .uniform(4, 10, MachineSpec::default())
            .build();
        assert_eq!(t.n_machines(), 40);
        assert_eq!(t.n_racks(), 4);
        assert_eq!(t.rack_of(MachineId(0)), RackId(0));
        assert_eq!(t.rack_of(MachineId(39)), RackId(3));
        assert_eq!(t.machines_in_rack(RackId(1)).len(), 10);
        assert!(t.same_rack(MachineId(10), MachineId(19)));
        assert!(!t.same_rack(MachineId(9), MachineId(10)));
    }

    #[test]
    fn heterogeneous_racks() {
        let small = MachineSpec {
            resources: ResourceVec::cores_mb(4, 8 * 1024),
            ..MachineSpec::default()
        };
        let t = TopologyBuilder::new()
            .add_rack(vec![MachineSpec::default(); 2])
            .add_rack(vec![small.clone(); 3])
            .build();
        assert_eq!(t.n_machines(), 5);
        assert_eq!(t.spec(MachineId(3)).resources, small.resources);
    }

    #[test]
    fn total_resources_sums_machines() {
        let t = TopologyBuilder::new()
            .uniform(2, 3, MachineSpec::default())
            .build();
        let total = t.total_resources();
        assert_eq!(total.cpu_milli(), 6 * 12 * 1000);
        assert_eq!(total.memory_mb(), 6 * 96 * 1024);
    }

    #[test]
    fn paper_testbed_scales() {
        let full = paper_testbed(1.0);
        assert_eq!(full.n_machines(), 5000);
        let tiny = paper_testbed(0.01);
        assert_eq!(tiny.n_machines(), 50);
    }
}
