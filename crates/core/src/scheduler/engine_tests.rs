//! Engine behaviour tests, including reconstructions of the paper's
//! Figure 3 (incremental scheduling walkthrough) and Figure 5 (locality
//! tree), plus preemption, node failure and failover-rebuild scenarios.

use super::engine::{Engine, EngineConfig, EngineEvent, RevokeReason};
use crate::quota::{QuotaGroup, QuotaManager};
use fuxi_proto::request::{RequestDelta, RequestState, ScheduleUnitDef};
use fuxi_proto::topology::{MachineSpec, Topology, TopologyBuilder};
use fuxi_proto::{AppId, MachineId, Priority, QuotaGroupId, RackId, ResourceVec, UnitId};
use std::collections::BTreeSet;

fn small_topo() -> Topology {
    // 2 racks × 3 machines, each {12 cores, 96 GB}.
    TopologyBuilder::new()
        .uniform(2, 3, MachineSpec::default())
        .build()
}

fn engine() -> Engine {
    Engine::new(small_topo(), EngineConfig::default(), QuotaManager::new())
}

fn unit(id: u32, prio: u16, cpu: u64, mem: u64) -> ScheduleUnitDef {
    ScheduleUnitDef::new(UnitId(id), Priority(prio), ResourceVec::new(cpu, mem))
}

fn grants_of(events: &[EngineEvent]) -> Vec<(AppId, MachineId, u64)> {
    events
        .iter()
        .filter_map(|e| match e {
            EngineEvent::Grant {
                app,
                machine,
                count,
                ..
            } => Some((*app, *machine, *count)),
            _ => None,
        })
        .collect()
}

fn total_granted(events: &[EngineEvent], app: AppId) -> u64 {
    grants_of(events)
        .iter()
        .filter(|(a, _, _)| *a == app)
        .map(|(_, _, c)| c)
        .sum()
}

#[test]
fn simple_cluster_request_is_fully_granted() {
    let mut e = engine();
    e.attach_app(AppId(1), QuotaGroupId(0), vec![unit(0, 1000, 1000, 2048)]);
    e.apply_deltas(AppId(1), &[RequestDelta::cluster(UnitId(0), 10)]);
    let ev = e.drain_events();
    assert_eq!(total_granted(&ev, AppId(1)), 10);
    assert_eq!(e.unit_outstanding(AppId(1), UnitId(0)), 0);
    assert_eq!(e.unit_granted_total(AppId(1), UnitId(0)), 10);
    assert_eq!(e.planned().cpu_milli(), 10_000);
}

#[test]
fn machine_hint_is_honored_first() {
    let mut e = engine();
    e.attach_app(AppId(1), QuotaGroupId(0), vec![unit(0, 1000, 1000, 2048)]);
    // Figure 3 step 1: {M1 * 2, C * 10}, max 10.
    e.apply_deltas(
        AppId(1),
        &[RequestDelta {
            unit: UnitId(0),
            machine: vec![(MachineId(1), 2)],
            rack: vec![],
            cluster: 10,
            avoid_add: vec![],
            avoid_remove: vec![],
        }],
    );
    let ev = e.drain_events();
    let on_m1: u64 = grants_of(&ev)
        .iter()
        .filter(|(_, m, _)| *m == MachineId(1))
        .map(|(_, _, c)| c)
        .sum();
    assert!(on_m1 >= 2, "at least the hinted 2 units on m1, got {on_m1}");
    assert_eq!(total_granted(&ev, AppId(1)), 10, "total capped at cluster want");
}

#[test]
fn unsatisfied_demand_queues_and_grants_on_free_up() {
    let mut e = engine();
    // Tiny cluster: only 6 × 12 cores; units of 6 cores → 12 fit total.
    e.attach_app(AppId(1), QuotaGroupId(0), vec![unit(0, 1000, 6000, 1024)]);
    e.apply_deltas(AppId(1), &[RequestDelta::cluster(UnitId(0), 12)]);
    assert_eq!(e.unit_outstanding(AppId(1), UnitId(0)), 0);
    // Second app wants 4 more: nothing free -> queues.
    e.attach_app(AppId(2), QuotaGroupId(0), vec![unit(0, 1000, 6000, 1024)]);
    e.apply_deltas(AppId(2), &[RequestDelta::cluster(UnitId(0), 4)]);
    assert_eq!(e.unit_outstanding(AppId(2), UnitId(0)), 4);
    assert!(e.waiting_entries() > 0);
    e.drain_events();
    // App1 returns 2 on some machine -> app2 gets them automatically
    // ("FuxiMaster will automatically insert the request into the
    //  scheduler's waiting queue ... additional units granted subsequently").
    let (_, m, _, _) = e.app_grants(AppId(1))[0].clone();
    e.return_grant(AppId(1), UnitId(0), m, 2);
    let ev = e.drain_events();
    assert_eq!(total_granted(&ev, AppId(2)), 2);
    assert_eq!(e.unit_outstanding(AppId(2), UnitId(0)), 2);
}

#[test]
fn figure3_walkthrough() {
    // ScheduleUnit A1 = {1 cpu, 2 GB}; A2 = {2 cpu, 5 GB} on a cluster with
    // 3 relevant machines, sized so A1's request cannot be fully satisfied
    // (Figure 3 leaves 2 units waiting). m0/m1: 4 cores; m2: 8 cores.
    let small = MachineSpec {
        resources: ResourceVec::cores_mb(4, 30 * 1024),
        ..MachineSpec::default()
    };
    let big = MachineSpec {
        resources: ResourceVec::cores_mb(8, 30 * 1024),
        ..MachineSpec::default()
    };
    let topo = TopologyBuilder::new()
        .add_rack(vec![small.clone(), small, big])
        .build();
    // Figure 3 shows plain waiting-queue behaviour, not preemption.
    let cfg = EngineConfig {
        enable_priority_preemption: false,
        enable_quota_preemption: false,
        ..EngineConfig::default()
    };
    let mut e = Engine::new(topo, cfg, QuotaManager::new());
    // AppMaster2 already holds resources on M3 (machine index 2).
    e.attach_app(AppId(2), QuotaGroupId(0), vec![unit(0, 1000, 2000, 5120)]);
    e.apply_deltas(
        AppId(2),
        &[RequestDelta {
            unit: UnitId(0),
            machine: vec![(MachineId(2), 4)],
            rack: vec![],
            cluster: 4,
            avoid_add: vec![],
            avoid_remove: vec![],
        }],
    );
    e.drain_events();
    assert_eq!(e.unit_granted_total(AppId(2), UnitId(0)), 4);

    // Step 1-2: AppMaster1 applies for {M1*2, C*10} of {1cpu, 2GB}.
    e.attach_app(AppId(1), QuotaGroupId(0), vec![unit(0, 900, 1000, 2048)]);
    e.apply_deltas(
        AppId(1),
        &[RequestDelta {
            unit: UnitId(0),
            machine: vec![(MachineId(0), 2)],
            rack: vec![],
            cluster: 10,
            avoid_add: vec![],
            avoid_remove: vec![],
        }],
    );
    let granted_now = e.unit_granted_total(AppId(1), UnitId(0));
    let ev = e.drain_events();
    assert_eq!(granted_now, 8, "m0+m1 hold 8 one-core units, m2 is full");
    assert_eq!(total_granted(&ev, AppId(1)), granted_now);
    assert_eq!(e.unit_outstanding(AppId(1), UnitId(0)), 2);

    // Step 3-4: AppMaster2 returns 1 unit on M3; FuxiMaster automatically
    // assigns the freed space to waiting AppMaster1 (its unit is smaller).
    e.return_grant(AppId(2), UnitId(0), MachineId(2), 1);
    let ev = e.drain_events();
    let to_app1_on_m3: u64 = grants_of(&ev)
        .iter()
        .filter(|(a, m, _)| *a == AppId(1) && *m == MachineId(2))
        .map(|(_, _, c)| c)
        .sum();
    assert_eq!(to_app1_on_m3, 2, "one {{2c,5g}} return fits two {{1c,2g}} units");
}

#[test]
fn figure5_locality_precedence_on_free_up() {
    let mut e = engine();
    let big = unit(0, 1000, 6000, 48 * 1024); // half a machine
    // Fill machine 0 completely with app 9.
    e.attach_app(AppId(9), QuotaGroupId(0), vec![big.clone()]);
    e.apply_deltas(
        AppId(9),
        &[RequestDelta {
            unit: UnitId(0),
            machine: vec![(MachineId(0), 2)],
            rack: vec![],
            cluster: 2,
            avoid_add: vec![],
            avoid_remove: vec![],
        }],
    );
    // Fill the rest of the cluster so waiters actually wait.
    e.attach_app(AppId(8), QuotaGroupId(0), vec![big.clone()]);
    e.apply_deltas(AppId(8), &[RequestDelta::cluster(UnitId(0), 10)]);
    assert_eq!(e.unit_outstanding(AppId(8), UnitId(0)), 0);
    // Same priority: app2 waits on cluster (submitted first), app1 waits on
    // machine 0 (submitted later). Machine waiter must win the free-up.
    e.attach_app(AppId(2), QuotaGroupId(0), vec![big.clone()]);
    e.apply_deltas(AppId(2), &[RequestDelta::cluster(UnitId(0), 1)]);
    e.attach_app(AppId(1), QuotaGroupId(0), vec![big.clone()]);
    e.apply_deltas(AppId(1), &[RequestDelta::machine(UnitId(0), MachineId(0), 1)]);
    assert_eq!(e.unit_outstanding(AppId(1), UnitId(0)), 1);
    assert_eq!(e.unit_outstanding(AppId(2), UnitId(0)), 1);
    e.drain_events();
    e.return_grant(AppId(9), UnitId(0), MachineId(0), 1);
    let ev = e.drain_events();
    assert_eq!(grants_of(&ev), vec![(AppId(1), MachineId(0), 1)]);
    // The next free-up on m0 goes to the cluster waiter.
    e.return_grant(AppId(9), UnitId(0), MachineId(0), 1);
    let ev = e.drain_events();
    assert_eq!(grants_of(&ev), vec![(AppId(2), MachineId(0), 1)]);
}

#[test]
fn priority_beats_locality_on_free_up() {
    // Preemption off: this test is about queue ordering, not eviction.
    let cfg = EngineConfig {
        enable_priority_preemption: false,
        enable_quota_preemption: false,
        ..EngineConfig::default()
    };
    let mut e = Engine::new(small_topo(), cfg, QuotaManager::new());
    let big = unit(0, 1000, 6000, 48 * 1024);
    e.attach_app(AppId(9), QuotaGroupId(0), vec![big.clone()]);
    e.apply_deltas(AppId(9), &[RequestDelta::cluster(UnitId(0), 12)]);
    e.drain_events();
    // app1 waits on machine 0 at P1000; app2 waits on cluster at P1 (urgent).
    e.attach_app(AppId(1), QuotaGroupId(0), vec![big.clone()]);
    e.apply_deltas(AppId(1), &[RequestDelta::machine(UnitId(0), MachineId(0), 1)]);
    e.attach_app(AppId(2), QuotaGroupId(0), vec![unit(0, 1, 6000, 48 * 1024)]);
    // Disable preemption effects for this test by requesting after filling.
    let mut cfgless = RequestDelta::cluster(UnitId(0), 1);
    cfgless.unit = UnitId(0);
    e.apply_deltas(AppId(2), &[cfgless]);
    e.drain_events();
    e.return_grant(AppId(9), UnitId(0), MachineId(0), 1);
    let ev = e.drain_events();
    let g = grants_of(&ev);
    assert_eq!(g.first().map(|(a, _, _)| *a), Some(AppId(2)), "{g:?}");
}

#[test]
fn avoid_list_is_respected() {
    let mut e = engine();
    e.attach_app(AppId(1), QuotaGroupId(0), vec![unit(0, 1000, 6000, 48 * 1024)]);
    // Avoid every machine except m4: all grants must land on m4.
    let avoid: Vec<MachineId> = (0..6).filter(|&i| i != 4).map(MachineId).collect();
    e.apply_deltas(
        AppId(1),
        &[RequestDelta {
            unit: UnitId(0),
            machine: vec![],
            rack: vec![],
            cluster: 2,
            avoid_add: avoid,
            avoid_remove: vec![],
        }],
    );
    let ev = e.drain_events();
    for (_, m, _) in grants_of(&ev) {
        assert_eq!(m, MachineId(4));
    }
    assert_eq!(e.unit_granted_total(AppId(1), UnitId(0)), 2);
}

#[test]
fn rack_hint_prefers_rack_machines() {
    let mut e = engine();
    e.attach_app(AppId(1), QuotaGroupId(0), vec![unit(0, 1000, 1000, 2048)]);
    // Rack 1 = machines 3, 4, 5.
    e.apply_deltas(
        AppId(1),
        &[RequestDelta {
            unit: UnitId(0),
            machine: vec![],
            rack: vec![(RackId(1), 5)],
            cluster: 5,
            avoid_add: vec![],
            avoid_remove: vec![],
        }],
    );
    let ev = e.drain_events();
    for (_, m, _) in grants_of(&ev) {
        assert!(m.0 >= 3, "grant {m} must be in rack 1");
    }
    assert_eq!(e.unit_granted_total(AppId(1), UnitId(0)), 5);
}

#[test]
fn node_down_revokes_and_reschedules_elsewhere() {
    let mut e = engine();
    e.attach_app(AppId(1), QuotaGroupId(0), vec![unit(0, 1000, 1000, 2048)]);
    e.apply_deltas(AppId(1), &[RequestDelta::machine(UnitId(0), MachineId(2), 3)]);
    assert_eq!(e.unit_granted_total(AppId(1), UnitId(0)), 3);
    e.drain_events();
    e.node_down(MachineId(2));
    let ev = e.drain_events();
    let revokes: Vec<_> = ev
        .iter()
        .filter(|e| matches!(e, EngineEvent::Revoke { reason: RevokeReason::NodeDown, .. }))
        .collect();
    assert_eq!(revokes.len(), 1);
    // Demand was re-added at cluster level and granted elsewhere.
    assert_eq!(e.unit_granted_total(AppId(1), UnitId(0)), 3);
    assert!(e.app_grants(AppId(1)).iter().all(|(_, m, _, _)| *m != MachineId(2)));
    // Machine 2 takes no new grants while down.
    e.apply_deltas(AppId(1), &[RequestDelta::machine(UnitId(0), MachineId(2), 1)]);
    assert_eq!(e.unit_outstanding(AppId(1), UnitId(0)), 0, "granted elsewhere");
    // And comes back with node_up.
    e.node_up(MachineId(2), ResourceVec::cores_mb(12, 96 * 1024));
    assert_eq!(e.free_on(MachineId(2)).cpu_milli(), 12_000);
}

#[test]
fn priority_preemption_evicts_least_urgent() {
    let mut e = engine();
    let big = unit(0, 2000, 6000, 48 * 1024); // P2000, half machine
    e.attach_app(AppId(1), QuotaGroupId(0), vec![big]);
    e.apply_deltas(AppId(1), &[RequestDelta::cluster(UnitId(0), 12)]);
    assert_eq!(e.unit_granted_total(AppId(1), UnitId(0)), 12, "cluster full");
    e.drain_events();
    // Urgent app arrives: P10.
    e.attach_app(AppId(2), QuotaGroupId(0), vec![unit(0, 10, 6000, 48 * 1024)]);
    e.apply_deltas(AppId(2), &[RequestDelta::cluster(UnitId(0), 2)]);
    let ev = e.drain_events();
    let preempted: u64 = ev
        .iter()
        .filter_map(|e| match e {
            EngineEvent::Revoke {
                app: AppId(1),
                count,
                reason: RevokeReason::Preempted,
                ..
            } => Some(*count),
            _ => None,
        })
        .sum();
    assert_eq!(preempted, 2);
    assert_eq!(e.unit_granted_total(AppId(2), UnitId(0)), 2);
    assert_eq!(e.unit_granted_total(AppId(1), UnitId(0)), 10);
    // Victim demand re-queued at cluster level.
    assert_eq!(e.unit_outstanding(AppId(1), UnitId(0)), 2);
}

#[test]
fn priority_preemption_requires_strictly_lower_victim() {
    let mut e = engine();
    let u = unit(0, 1000, 6000, 48 * 1024);
    e.attach_app(AppId(1), QuotaGroupId(0), vec![u.clone()]);
    e.apply_deltas(AppId(1), &[RequestDelta::cluster(UnitId(0), 12)]);
    e.drain_events();
    // Same priority: no preemption, the request waits.
    e.attach_app(AppId(2), QuotaGroupId(0), vec![u]);
    e.apply_deltas(AppId(2), &[RequestDelta::cluster(UnitId(0), 1)]);
    let ev = e.drain_events();
    assert!(ev.iter().all(|e| !matches!(e, EngineEvent::Revoke { .. })));
    assert_eq!(e.unit_outstanding(AppId(2), UnitId(0)), 1);
}

#[test]
fn quota_preemption_reclaims_excess_for_deficit_group() {
    let mut quotas = QuotaManager::new();
    // Two groups, each guaranteed half the 6-machine cluster's CPU.
    quotas.define(
        QuotaGroupId(1),
        QuotaGroup {
            min: ResourceVec::cores_mb(36, 288 * 1024),
            max: None,
        },
    );
    quotas.define(
        QuotaGroupId(2),
        QuotaGroup {
            min: ResourceVec::cores_mb(36, 288 * 1024),
            max: None,
        },
    );
    let mut e = Engine::new(small_topo(), EngineConfig::default(), quotas);
    // Group 1's app greedily takes the whole cluster (work conserving).
    let u = unit(0, 1000, 6000, 48 * 1024);
    e.attach_app(AppId(1), QuotaGroupId(1), vec![u.clone()]);
    e.apply_deltas(AppId(1), &[RequestDelta::cluster(UnitId(0), 12)]);
    assert_eq!(e.unit_granted_total(AppId(1), UnitId(0)), 12);
    e.drain_events();
    // Group 2's app (same priority) claims its guaranteed minimum.
    e.attach_app(AppId(2), QuotaGroupId(2), vec![u]);
    e.apply_deltas(AppId(2), &[RequestDelta::cluster(UnitId(0), 4)]);
    let ev = e.drain_events();
    let preempted: u64 = ev
        .iter()
        .filter_map(|e| match e {
            EngineEvent::Revoke {
                count,
                reason: RevokeReason::Preempted,
                ..
            } => Some(*count),
            _ => None,
        })
        .sum();
    assert_eq!(preempted, 4);
    assert_eq!(e.unit_granted_total(AppId(2), UnitId(0)), 4);
}

#[test]
fn quota_max_caps_grants() {
    let mut quotas = QuotaManager::new();
    quotas.define(
        QuotaGroupId(1),
        QuotaGroup {
            min: ResourceVec::ZERO,
            max: Some(ResourceVec::cores_mb(3, 999_999)),
        },
    );
    let mut e = Engine::new(small_topo(), EngineConfig::default(), quotas);
    e.attach_app(AppId(1), QuotaGroupId(1), vec![unit(0, 1000, 1000, 1024)]);
    e.apply_deltas(AppId(1), &[RequestDelta::cluster(UnitId(0), 10)]);
    assert_eq!(e.unit_granted_total(AppId(1), UnitId(0)), 3, "capped at 3 cores");
    assert_eq!(e.unit_outstanding(AppId(1), UnitId(0)), 7);
}

#[test]
fn detach_frees_everything_and_feeds_waiters() {
    let mut e = engine();
    let u = unit(0, 1000, 6000, 48 * 1024);
    e.attach_app(AppId(1), QuotaGroupId(0), vec![u.clone()]);
    e.apply_deltas(AppId(1), &[RequestDelta::cluster(UnitId(0), 12)]);
    e.attach_app(AppId(2), QuotaGroupId(0), vec![u]);
    e.apply_deltas(AppId(2), &[RequestDelta::cluster(UnitId(0), 5)]);
    assert_eq!(e.unit_outstanding(AppId(2), UnitId(0)), 5);
    e.drain_events();
    e.detach_app(AppId(1));
    let ev = e.drain_events();
    assert_eq!(total_granted(&ev, AppId(2)), 5);
    assert!(!e.has_app(AppId(1)));
    assert!(e.planned().cpu_milli() > 0);
    e.detach_app(AppId(2));
    assert!(e.planned().is_zero(), "all usage accounted back");
}

#[test]
fn grant_fixed_places_master_and_respects_avoid() {
    let mut e = engine();
    let res = ResourceVec::cores_mb(1, 2048);
    let mut avoid = BTreeSet::new();
    for i in 0..5 {
        avoid.insert(MachineId(i));
    }
    let m = e.grant_fixed(AppId(7), res.clone(), &avoid).unwrap();
    assert_eq!(m, MachineId(5));
    let ev = e.drain_events();
    assert_eq!(ev.len(), 1);
    assert!(matches!(ev[0], EngineEvent::Grant { app: AppId(7), count: 1, .. }));
    // Fills up: with everything avoided, no placement.
    for i in 0..6 {
        avoid.insert(MachineId(i));
    }
    assert!(e.grant_fixed(AppId(7), res, &avoid).is_none());
}

#[test]
fn rebuild_adoption_reconstructs_allocation() {
    let mut e = engine();
    e.pause();
    let res = ResourceVec::new(1000, 2048);
    // Agents report: app1 holds 3 on m0, 2 on m1 (Figure 7).
    e.adopt_allocation(AppId(1), UnitId(0), res.clone(), MachineId(0), 3);
    e.adopt_allocation(AppId(1), UnitId(0), res.clone(), MachineId(1), 2);
    // AM re-sends its request state: wants 5 more anywhere.
    let mut st = RequestState::new(unit(0, 1000, 1000, 2048));
    st.wants.add_cluster(5);
    e.full_request_sync(AppId(1), QuotaGroupId(0), vec![unit(0, 1000, 1000, 2048)], vec![st]);
    assert!(e.is_paused());
    assert_eq!(e.unit_granted_total(AppId(1), UnitId(0)), 5);
    assert_eq!(e.drain_events().len(), 0, "no decisions during rebuild");
    e.resume();
    let ev = e.drain_events();
    assert_eq!(total_granted(&ev, AppId(1)), 5, "queued demand satisfied after resume");
    assert_eq!(e.unit_granted_total(AppId(1), UnitId(0)), 10);
    // Free pool must reflect adopted allocations: 96GB*6 - 10*2GB… check m0.
    let free_m0 = e.free_on(MachineId(0));
    assert!(free_m0.cpu_milli() <= 12_000 - 3_000);
}

#[test]
fn full_sync_replaces_wants_idempotently() {
    let mut e = engine();
    e.attach_app(AppId(1), QuotaGroupId(0), vec![unit(0, 1000, 1000, 2048)]);
    e.apply_deltas(AppId(1), &[RequestDelta::cluster(UnitId(0), 4)]);
    e.drain_events();
    // AM's authoritative state says: 4 granted (it has them) and 0 wanted.
    let st = RequestState::new(unit(0, 1000, 1000, 2048));
    e.full_request_sync(AppId(1), QuotaGroupId(0), vec![unit(0, 1000, 1000, 2048)], vec![st.clone()]);
    assert_eq!(e.unit_outstanding(AppId(1), UnitId(0)), 0);
    assert_eq!(e.unit_granted_total(AppId(1), UnitId(0)), 4, "grants preserved");
    // Applying the same sync again changes nothing.
    e.full_request_sync(AppId(1), QuotaGroupId(0), vec![unit(0, 1000, 1000, 2048)], vec![st]);
    assert_eq!(e.unit_granted_total(AppId(1), UnitId(0)), 4);
    assert_eq!(e.drain_events().len(), 0);
}

#[test]
fn return_more_than_held_is_clamped() {
    let mut e = engine();
    e.attach_app(AppId(1), QuotaGroupId(0), vec![unit(0, 1000, 1000, 2048)]);
    e.apply_deltas(AppId(1), &[RequestDelta::machine(UnitId(0), MachineId(0), 2)]);
    e.drain_events();
    e.return_grant(AppId(1), UnitId(0), MachineId(0), 99);
    assert_eq!(e.unit_granted_total(AppId(1), UnitId(0)), 0);
    assert!(e.planned().is_zero());
    // Double return is a no-op.
    e.return_grant(AppId(1), UnitId(0), MachineId(0), 1);
    assert!(e.planned().is_zero());
}

#[test]
fn multiple_units_with_distinct_priorities() {
    let mut e = engine();
    e.attach_app(
        AppId(1),
        QuotaGroupId(0),
        vec![unit(0, 500, 1000, 2048), unit(1, 2000, 2000, 4096)],
    );
    e.apply_deltas(
        AppId(1),
        &[
            RequestDelta::cluster(UnitId(0), 3),
            RequestDelta::cluster(UnitId(1), 2),
        ],
    );
    assert_eq!(e.unit_granted_total(AppId(1), UnitId(0)), 3);
    assert_eq!(e.unit_granted_total(AppId(1), UnitId(1)), 2);
    let rows = e.app_grants(AppId(1));
    let units: BTreeSet<UnitId> = rows.iter().map(|(u, _, _, _)| *u).collect();
    assert_eq!(units.len(), 2);
}

#[test]
fn planned_gauge_tracks_grant_and_revoke() {
    let mut e = engine();
    e.attach_app(AppId(1), QuotaGroupId(0), vec![unit(0, 1000, 1000, 2048)]);
    e.apply_deltas(AppId(1), &[RequestDelta::cluster(UnitId(0), 6)]);
    assert_eq!(e.planned().memory_mb(), 6 * 2048);
    e.node_down(MachineId(0));
    // Revoked demand re-granted elsewhere; planned stays at 6 units.
    assert_eq!(e.planned().memory_mb(), 6 * 2048);
    e.detach_app(AppId(1));
    assert!(e.planned().is_zero());
}

#[test]
fn virtual_resource_limits_per_node_concurrency() {
    // The paper's ASort example (§3.2.1): "if we only allow 5 concurrent
    // computing processes to be run on the same node, we can configure each
    // node to only contain 5 virtual resource" and have each process
    // request one 'ASortResource'.
    use fuxi_proto::resource::VirtualResourceRegistry;
    let mut reg = VirtualResourceRegistry::new();
    let asort = reg.intern("ASortResource");
    let spec = MachineSpec {
        resources: ResourceVec::cores_mb(12, 96 * 1024).with_virtual(asort, 5),
        ..MachineSpec::default()
    };
    let topo = TopologyBuilder::new().uniform(1, 3, spec).build();
    let mut e = Engine::new(topo, EngineConfig::default(), QuotaManager::new());
    // Each ASort process: tiny physical footprint + 1 ASortResource.
    let unit_res = ResourceVec::new(100, 256).with_virtual(asort, 1);
    e.attach_app(
        AppId(1),
        QuotaGroupId(0),
        vec![ScheduleUnitDef::new(UnitId(0), Priority(1000), unit_res)],
    );
    e.apply_deltas(AppId(1), &[RequestDelta::cluster(UnitId(0), 100)]);
    // Physically hundreds would fit; the virtual dimension caps at 5/node.
    assert_eq!(e.unit_granted_total(AppId(1), UnitId(0)), 15);
    assert_eq!(e.unit_outstanding(AppId(1), UnitId(0)), 85);
    for m in 0..3 {
        let granted_here: u64 = e
            .app_grants(AppId(1))
            .iter()
            .filter(|(_, mm, _, _)| *mm == MachineId(m))
            .map(|(_, _, _, c)| c)
            .sum();
        assert_eq!(granted_here, 5, "exactly 5 concurrent on m{m}");
    }
    // Returning one frees a virtual slot that goes right back out.
    e.drain_events();
    e.return_grant(AppId(1), UnitId(0), MachineId(0), 2);
    let ev = e.drain_events();
    assert_eq!(total_granted(&ev, AppId(1)), 2, "virtual slots turn over");
}

#[test]
fn place_master_preempts_on_a_packed_cluster() {
    let mut e = engine();
    // Fill the cluster completely with a low-priority app.
    e.attach_app(AppId(1), QuotaGroupId(0), vec![unit(0, 3000, 6000, 48 * 1024)]);
    e.apply_deltas(AppId(1), &[RequestDelta::cluster(UnitId(0), 12)]);
    assert_eq!(e.unit_granted_total(AppId(1), UnitId(0)), 12);
    e.drain_events();
    // A new job's master must still be placeable.
    let placed = e.place_master(
        AppId(2),
        ResourceVec::cores_mb(1, 2048),
        &BTreeSet::new(),
    );
    assert!(placed.is_some(), "master placement preempts a workload container");
    let ev = e.drain_events();
    assert!(ev.iter().any(|x| matches!(
        x,
        EngineEvent::Revoke { app: AppId(1), reason: RevokeReason::Preempted, .. }
    )));
    // The preempted demand is re-queued for app1.
    assert_eq!(e.unit_outstanding(AppId(1), UnitId(0)), 1);
}
