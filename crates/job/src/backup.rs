//! The backup-instance (speculative execution) scheme (paper §4.3.2).
//!
//! "There are three criteria for the backup instance schemes. Firstly, the
//! majority of total instances (e.g., 90%) have finished ... Secondly, the
//! long tail instance must have already run for several times longer than
//! the average instance running time estimated from the finished instances.
//! Finally ... to distinguish [input-skew] instances from the long tail,
//! users should also specify a normal running time."

use fuxi_sim::SimTime;

/// Backup-instance policy parameters.
#[derive(Debug, Clone)]
pub struct BackupConfig {
    /// Criterion 1: fraction of instances that must have finished.
    pub finished_quorum: f64,
    /// Criterion 2: elapsed must exceed `slowdown × avg_finished_runtime`.
    pub slowdown: f64,
    /// Maximum simultaneous backup attempts per instance.
    pub max_backups: u32,
    /// Master switch.
    pub enabled: bool,
}

impl Default for BackupConfig {
    fn default() -> Self {
        Self {
            finished_quorum: 0.9,
            slowdown: 2.0,
            max_backups: 1,
            enabled: true,
        }
    }
}

/// Online mean of finished-instance runtimes.
#[derive(Debug, Clone, Default)]
pub struct RuntimeStats {
    sum_s: f64,
    count: u64,
}

impl RuntimeStats {
    /// Record.
    pub fn record(&mut self, runtime_s: f64) {
        self.sum_s += runtime_s;
        self.count += 1;
    }

    /// Number of containers.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean s.
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_s / self.count as f64
        }
    }
}

/// Applies the paper's three criteria to one running instance.
///
/// * `finished` / `total` — task-level completion state (criterion 1);
/// * `stats` — runtimes of finished instances (criterion 2);
/// * `normal_time_s` — the user-declared normal runtime; 0 disables the
///   gate (criterion 3);
/// * `existing_backups` — attempts already racing for this instance.
#[allow(clippy::too_many_arguments)]
pub fn should_backup(
    cfg: &BackupConfig,
    now: SimTime,
    started: SimTime,
    finished: u64,
    total: u64,
    stats: &RuntimeStats,
    normal_time_s: f64,
    existing_backups: u32,
) -> bool {
    if !cfg.enabled || total == 0 || stats.count() == 0 {
        return false;
    }
    if existing_backups >= cfg.max_backups {
        return false;
    }
    // Criterion 1: quorum finished, so the average is meaningful.
    if (finished as f64) < cfg.finished_quorum * total as f64 {
        return false;
    }
    let elapsed = now.since(started).as_secs_f64();
    // Criterion 2: several times the estimated average.
    if elapsed <= cfg.slowdown * stats.mean_s() {
        return false;
    }
    // Criterion 3: beyond what the user calls normal (skew filter).
    if normal_time_s > 0.0 && elapsed <= normal_time_s {
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(mean: f64, n: u64) -> RuntimeStats {
        let mut s = RuntimeStats::default();
        for _ in 0..n {
            s.record(mean);
        }
        s
    }

    fn base_check(now_s: f64, started_s: f64, finished: u64) -> bool {
        should_backup(
            &BackupConfig::default(),
            SimTime::from_secs_f64(now_s),
            SimTime::from_secs_f64(started_s),
            finished,
            100,
            &stats(10.0, finished),
            0.0,
            0,
        )
    }

    #[test]
    fn fires_for_genuine_straggler() {
        // 95/100 done, avg 10 s, this one has run 50 s.
        assert!(base_check(60.0, 10.0, 95));
    }

    #[test]
    fn quorum_gate() {
        // Only 50/100 done: no backup however slow.
        assert!(!base_check(60.0, 10.0, 50));
    }

    #[test]
    fn slowdown_gate() {
        // 95/100 done but elapsed (15 s) < 2 × avg (20 s).
        assert!(!base_check(25.0, 10.0, 95));
        // Exactly at the boundary is still "not slower than".
        assert!(!base_check(30.0, 10.0, 95));
        assert!(base_check(30.1, 10.0, 95));
    }

    #[test]
    fn normal_time_gate_filters_skew() {
        let cfg = BackupConfig::default();
        let args = |normal: f64| {
            should_backup(
                &cfg,
                SimTime::from_secs(60),
                SimTime::from_secs(10),
                95,
                100,
                &stats(10.0, 95),
                normal,
                0,
            )
        };
        assert!(args(0.0), "gate disabled");
        assert!(!args(120.0), "user says 120 s is normal: skew, not straggler");
        assert!(args(40.0), "50 s elapsed > 40 s normal");
    }

    #[test]
    fn backup_cap_and_disable() {
        let mut cfg = BackupConfig::default();
        let check = |cfg: &BackupConfig, existing| {
            should_backup(
                cfg,
                SimTime::from_secs(60),
                SimTime::from_secs(10),
                95,
                100,
                &stats(10.0, 95),
                0.0,
                existing,
            )
        };
        assert!(check(&cfg, 0));
        assert!(!check(&cfg, 1), "max one backup by default");
        cfg.enabled = false;
        assert!(!check(&cfg, 0));
    }

    #[test]
    fn no_backup_without_finished_samples() {
        assert!(!should_backup(
            &BackupConfig::default(),
            SimTime::from_secs(100),
            SimTime::ZERO,
            0,
            0,
            &RuntimeStats::default(),
            0.0,
            0,
        ));
    }

    #[test]
    fn runtime_stats_mean() {
        let mut s = RuntimeStats::default();
        assert_eq!(s.mean_s(), 0.0);
        s.record(10.0);
        s.record(20.0);
        assert!((s.mean_s() - 15.0).abs() < 1e-12);
        assert_eq!(s.count(), 2);
    }
}
