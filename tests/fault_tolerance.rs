//! Fault-tolerance integration tests: every §4.3 mechanism exercised
//! end-to-end — FuxiMaster hot-standby failover, JobMaster snapshot
//! recovery, FuxiAgent worker adoption, node death, launch failures and
//! straggler backups.

use fuxi::cluster::{Cluster, ClusterConfig, SubmitOpts};
use fuxi::sim::{Fault, SimDuration, SimTime};
use fuxi::workloads::mapreduce::{wordcount_job, MapReduceParams};

fn cluster(seed: u64, machines: usize, standby: bool) -> Cluster {
    Cluster::new(ClusterConfig {
        n_machines: machines,
        rack_size: 5,
        seed,
        standby_master: standby,
        ..ClusterConfig::default()
    })
}

fn job(maps: u32, reduces: u32, dur: f64) -> fuxi::job::JobDesc {
    wordcount_job(&MapReduceParams {
        maps,
        reduces,
        map_duration_s: dur,
        reduce_duration_s: dur,
        jitter: 0.1,
        binary_mb: 50.0,
        ..Default::default()
    })
}

#[test]
fn master_failover_is_user_transparent() {
    let mut c = cluster(21, 10, true);
    let j = c.submit(&job(20, 4, 20.0), &SubmitOpts::default());
    // Let it get going, then kill the primary mid-flight.
    c.run_for(SimDuration::from_secs(15));
    assert!(c.job_done(j).is_none(), "job still running at kill time");
    c.kill_primary_master();
    let done = c.run_until_job_done(j, SimTime::from_secs(1200));
    let (ok, _) = done.expect("job survives master failover");
    assert!(ok);
    let m = c.world.metrics();
    assert_eq!(m.counter("fm.became_primary"), 2, "standby took over");
    assert_eq!(m.counter("fm.rebuild_done"), 1, "soft state was rebuilt");
    assert_eq!(m.counter("lock.lease_expired"), 1, "takeover via lease expiry");
}

#[test]
fn master_failover_preserves_running_workers() {
    let mut c = cluster(22, 10, true);
    // Long instances: if failover killed workers, the job would take far
    // longer than one instance duration.
    let j = c.submit(&job(16, 2, 60.0), &SubmitOpts::default());
    c.run_for(SimDuration::from_secs(30));
    c.kill_primary_master();
    let (ok, at) = c
        .run_until_job_done(j, SimTime::from_secs(2000))
        .expect("finishes");
    assert!(ok);
    // Two ~60s waves + startup + failover stall; generous bound that still
    // fails if running instances had been restarted from scratch repeatedly.
    assert!(at < 400.0, "failover must not restart the work: took {at}s");
    assert_eq!(c.world.metrics().counter("jm.recoveries"), 0, "JobMaster never died");
}

#[test]
fn jobmaster_failover_recovers_from_snapshot() {
    let mut c = cluster(23, 10, false);
    let j = c.submit(&job(20, 4, 30.0), &SubmitOpts::default());
    c.run_for(SimDuration::from_secs(25));
    let (_m, jm_actor) = c.find_jobmaster(j).expect("JobMaster is running somewhere");
    c.world.kill_actor(jm_actor);
    let (ok, _) = c
        .run_until_job_done(j, SimTime::from_secs(2000))
        .expect("job survives JobMaster crash");
    assert!(ok);
    let m = c.world.metrics();
    assert_eq!(m.counter("fm.jm_restarts"), 1, "FuxiMaster restarted the JobMaster");
    assert_eq!(m.counter("jm.recoveries"), 1, "snapshot recovery ran");
    assert!(m.counter("jm.recovery_done") >= 1);
}

#[test]
fn agent_failover_adopts_running_workers() {
    let mut c = cluster(24, 6, false);
    let j = c.submit(&job(12, 2, 40.0), &SubmitOpts::default());
    c.run_for(SimDuration::from_secs(25));
    // Kill every agent process whose machine hosts workers but NOT the
    // JobMaster (so only worker adoption is in play), then respawn.
    let jm_machine = c.find_jobmaster(j).map(|(m, _)| m);
    let candidates: Vec<_> = c
        .topo
        .machines()
        .filter(|&m| Some(m) != jm_machine && !c.workers_on(m).is_empty())
        .take(2)
        .collect();
    assert!(!candidates.is_empty(), "some machine hosts workers");
    for m in &candidates {
        c.kill_agent(*m);
    }
    c.run_for(SimDuration::from_secs(2));
    for m in &candidates {
        let before: Vec<_> = c.workers_on(*m);
        assert!(!before.is_empty(), "workers survive their agent's death");
        c.respawn_agent(*m);
    }
    let (ok, _) = c
        .run_until_job_done(j, SimTime::from_secs(2000))
        .expect("job survives agent failover");
    assert!(ok);
    assert!(
        c.world.metrics().counter("fa.adopted_workers") >= 1,
        "restarted agent adopted running processes"
    );
}

#[test]
fn node_down_revokes_and_reschedules() {
    let mut c = cluster(25, 10, false);
    let j = c.submit(&job(20, 4, 30.0), &SubmitOpts::default());
    c.run_for(SimDuration::from_secs(20));
    // Take down two worker-bearing machines (not the JobMaster's).
    let jm_machine = c.find_jobmaster(j).map(|(m, _)| m);
    let victims: Vec<_> = c
        .topo
        .machines()
        .filter(|&m| Some(m) != jm_machine && !c.workers_on(m).is_empty())
        .take(2)
        .collect();
    assert_eq!(victims.len(), 2);
    for m in &victims {
        c.world.kill_machine(m.0);
    }
    let (ok, _) = c
        .run_until_job_done(j, SimTime::from_secs(2000))
        .expect("job survives node death");
    assert!(ok);
    let m = c.world.metrics();
    assert!(m.counter("fm.machines_excluded") >= 2, "heartbeat timeouts detected");
}

#[test]
fn launch_failures_are_routed_around() {
    let mut c = cluster(26, 6, false);
    // One machine cannot launch processes at all (PartialWorkerFailure).
    c.world.set_launch_ok(2, false);
    let j = c.submit(&job(16, 2, 5.0), &SubmitOpts::default());
    let (ok, _) = c
        .run_until_job_done(j, SimTime::from_secs(1500))
        .expect("job completes despite a broken machine");
    assert!(ok);
    let m = c.world.metrics();
    // Either the job never landed there, or it failed and re-routed.
    if m.counter("fa.worker_launch_failed") > 0 {
        assert!(m.counter("jm.worker_start_failures") > 0);
    }
}

#[test]
fn slow_machine_triggers_backup_instances() {
    let mut c = cluster(27, 10, false);
    // A crawling machine makes any instance landing there a straggler.
    // Tiny binaries ensure its workers come up with the first wave (a slow
    // machine also downloads slowly, and container reuse would otherwise
    // route around it before anything lands there).
    c.world.set_machine_speed(3, 0.05);
    let desc = wordcount_job(&MapReduceParams {
        maps: 50,
        reduces: 1,
        map_duration_s: 10.0,
        reduce_duration_s: 10.0,
        jitter: 0.05,
        binary_mb: 1.0,
        ..Default::default()
    });
    let j = c.submit(&desc, &SubmitOpts::default());
    let (ok, at) = c
        .run_until_job_done(j, SimTime::from_secs(3000))
        .expect("job completes despite the slow machine");
    assert!(ok);
    let m = c.world.metrics();
    // A 10s instance at 5% speed runs 200s; the backup path must beat that
    // or at minimum have fired.
    assert!(
        m.counter("jm.backups_launched") >= 1,
        "backup instances fired (job took {at}s)"
    );
}

#[test]
fn fault_plan_injection_end_to_end() {
    use fuxi::cluster::{fault_plan, FaultRatios};
    let mut c = cluster(28, 20, false);
    let j = c.submit(&job(40, 8, 20.0), &SubmitOpts::default());
    c.run_for(SimDuration::from_secs(10));
    let exclude = c
        .find_jobmaster(j)
        .map(|(m, _)| std::iter::once(m.0).collect())
        .unwrap_or_default();
    let plan = fault_plan(
        20,
        FaultRatios::five_percent(),
        SimTime::from_secs(15),
        SimTime::from_secs(60),
        99,
        &exclude,
    );
    assert!(!plan.is_empty());
    plan.install(&mut c.world);
    let (ok, _) = c
        .run_until_job_done(j, SimTime::from_secs(3000))
        .expect("job completes under the Table 3 fault mix");
    assert!(ok);
}

#[test]
fn lossy_network_is_repaired_by_full_syncs() {
    use fuxi::sim::NetConfig;
    let mut c = Cluster::new(ClusterConfig {
        n_machines: 8,
        rack_size: 4,
        seed: 29,
        net: NetConfig::chaotic(0.02, 0.0),
        ..ClusterConfig::default()
    });
    let _j = c.submit(&job(12, 2, 5.0), &SubmitOpts::default());
    // Assert completion at the master (the one-shot JobFinished→client
    // notification itself has no retry and may legitimately be the dropped
    // message; the paper's guarantee is that *execution* completes).
    let finished = c.run_until_counter("fm.jobs_finished", 1, SimTime::from_secs(3000));
    assert_eq!(finished, 1, "job completes over a 2%-loss network");
}

#[test]
fn scripted_fuximaster_kill_via_fault_plan() {
    let mut c = cluster(30, 10, true);
    let j = c.submit(&job(16, 2, 25.0), &SubmitOpts::default());
    c.run_for(SimDuration::from_secs(5));
    let fm = c.current_master().expect("primary elected");
    fuxi::sim::failure::apply(&mut c.world, &Fault::KillActor(fm));
    let (ok, _) = c
        .run_until_job_done(j, SimTime::from_secs(2000))
        .expect("job survives scripted master kill");
    assert!(ok);
    assert_eq!(c.world.metrics().counter("fault.kill_actor"), 1);
}
