//! `fuxi-node` — run one node of a multi-process Fuxi cluster.
//!
//! The standard 4-node layout (see `DeployTopology::distributed`):
//!
//! ```text
//! fuxi-node --index 0 --listen 127.0.0.1:7700 --machines 20   # hub: lock + client
//! fuxi-node --index 1 --hub 127.0.0.1:7700    --machines 20   # master A
//! fuxi-node --index 2 --hub 127.0.0.1:7700    --machines 20   # master B (standby)
//! fuxi-node --index 3 --hub 127.0.0.1:7700    --machines 20   # agent fleet
//! ```
//!
//! Every process must be started with the same `--machines`/`--seed` so
//! they compute identical topologies (actor addressing is derived from
//! the topology, not negotiated).

use fuxi_cluster::{ClusterConfig, DeployTopology};
use fuxi_node::LiveNode;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: fuxi-node --index N [--listen ADDR | --hub ADDR] \
         [--machines N] [--seed N] [--metrics ADDR]"
    );
    std::process::exit(2);
}

fn main() {
    let mut index: Option<usize> = None;
    let mut listen: Option<String> = None;
    let mut hub: Option<String> = None;
    let mut machines = 20usize;
    let mut seed = 1u64;
    let mut metrics: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--index" => index = val().parse().ok(),
            "--listen" => listen = Some(val()),
            "--hub" => hub = Some(val()),
            "--machines" => machines = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = val().parse().unwrap_or_else(|_| usage()),
            "--metrics" => metrics = Some(val()),
            _ => usage(),
        }
    }
    let Some(index) = index else { usage() };

    let cfg = ClusterConfig {
        n_machines: machines,
        seed,
        ..ClusterConfig::default()
    };
    let hub_spec = listen.clone().unwrap_or_else(|| "127.0.0.1:7700".to_owned());
    let deploy = DeployTopology::distributed(cfg, &hub_spec);
    if index >= deploy.nodes.len() {
        eprintln!(
            "fuxi-node: index {index} out of range (topology has {} nodes)",
            deploy.nodes.len()
        );
        std::process::exit(2);
    }

    let addr_override = if index == deploy.hub_index() {
        listen.as_deref()
    } else {
        Some(hub.as_deref().unwrap_or_else(|| usage()))
    };
    let node = match LiveNode::boot(deploy, index, addr_override) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("fuxi-node: boot failed: {e}");
            std::process::exit(1);
        }
    };
    let name = &node.deploy.nodes[index].name;
    if let Some(addr) = node.hub_addr() {
        println!("fuxi-node[{index} {name}]: listening on {addr}");
    } else {
        println!("fuxi-node[{index} {name}]: dialing hub");
    }
    if let Some(maddr) = metrics {
        match node.serve_metrics(&maddr) {
            Ok(bound) => println!("fuxi-node[{index} {name}]: metrics on http://{bound}/metrics"),
            Err(e) => eprintln!("fuxi-node[{index} {name}]: metrics bind failed: {e}"),
        }
    }

    // The node runs until killed; all work happens on actor/supervisor
    // threads. Print a liveness line occasionally so operators see state.
    loop {
        std::thread::sleep(Duration::from_secs(30));
        let master = node
            .current_master()
            .map(|m| m.to_string())
            .unwrap_or_else(|| "-".to_owned());
        println!("fuxi-node[{index} {name}]: up; master={master}");
    }
}
