#![warn(missing_docs)]
//! # fuxi-workloads
//!
//! Workload and trace generators for the paper's evaluation (Section 5):
//!
//! * [`mapreduce`] — WordCount / Terasort job-description builders (the two
//!   applications of the synthetic workload experiment, §5.2.1);
//! * [`synthetic`] — the 1,000-concurrent-jobs mix with (map, reduce)
//!   sizes {(10,10), (100,10), (100,100), (1k,100), (1k,1k), (10k,5k)}
//!   evenly distributed and durations between 10 s and 10 min;
//! * [`sortbench`] — GraySort / PetaSort data-driven sort jobs (§5.3,
//!   Table 4);
//! * [`trace`] — a synthetic production-trace generator calibrated to the
//!   Table 1 statistics (91,990 jobs, 42M instances).

pub mod mapreduce;
pub mod sortbench;
pub mod synthetic;
pub mod trace;

pub use mapreduce::{terasort_job, wordcount_job, MapReduceParams};
pub use sortbench::{graysort_job, SortParams};
pub use synthetic::{SyntheticMix, SyntheticSpec};
pub use trace::{TraceConfig, TraceStats};
