//! Criterion: multi-dimensional resource vector operations (every grant
//! decision runs several of these).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use fuxi_proto::{ResourceVec, VirtualResourceId};

fn bench(c: &mut Criterion) {
    let machine = ResourceVec::cores_mb(24, 96 * 1024)
        .with_virtual(VirtualResourceId(0), 5)
        .with_virtual(VirtualResourceId(1), 10);
    let unit = ResourceVec::new(500, 2048).with_virtual(VirtualResourceId(0), 1);
    let physical_unit = ResourceVec::new(500, 2048);

    c.bench_function("resvec_fits_in_7dim", |b| {
        b.iter(|| black_box(unit.fits_in(black_box(&machine))))
    });

    c.bench_function("resvec_times_fitting_physical", |b| {
        b.iter(|| black_box(physical_unit.times_fitting_in(black_box(&machine))))
    });

    c.bench_function("resvec_take_and_give", |b| {
        let mut free = machine.clone();
        b.iter(|| {
            free.sub_scaled(black_box(&unit), 3);
            free.add_scaled(black_box(&unit), 3);
        })
    });

    c.bench_function("resvec_total_sum_5000", |b| {
        let pool: Vec<ResourceVec> = (0..5000).map(|_| machine.clone()).collect();
        b.iter(|| {
            let mut t = ResourceVec::ZERO;
            for v in &pool {
                t.add(v);
            }
            black_box(t)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
