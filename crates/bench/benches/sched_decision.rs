//! Criterion: end-to-end scheduling decisions on a 5,000-machine engine —
//! the Figure 9 micro-benchmark. "When {2CPU, 10GB} of resource frees up on
//! machine A, we only need to make a decision on which application in
//! machine A's waiting queue should get this resource."
//!
//! The `*_indexed` / `*_naive` pairs run the same workload with the
//! hierarchical fit index on vs. `reference_mode` (flat scans, the
//! pre-index behaviour) to measure the index's speedup directly.

use criterion::{criterion_group, criterion_main, Criterion};
use fuxi_bench::scenarios;
use fuxi_core::quota::QuotaManager;
use fuxi_core::scheduler::{Engine, EngineConfig};
use fuxi_proto::request::{RequestDelta, ScheduleUnitDef};
use fuxi_proto::topology::{MachineSpec, TopologyBuilder};
use fuxi_proto::{AppId, MachineId, Priority, QuotaGroupId, ResourceVec, UnitId};

fn bench(c: &mut Criterion) {
    c.bench_function("fig9_free_up_decision_5000_machines", |b| {
        // The hot path: one container returns on a machine, the waiting
        // queue (1,000+ entries) is consulted, a grant goes out. App 0 is
        // the most urgent waiter, so the freed container always comes back
        // to it on the same machine — a stable measurable cycle where every
        // iteration performs one real decision.
        let mut e = scenarios::saturated_engine(100, 50, false);
        let mut i = 0u32;
        b.iter(|| {
            let m = MachineId(i % 5000);
            i += 1;
            e.return_grant(AppId(0), UnitId(0), m, 1);
            let events = e.drain_events();
            debug_assert!(!events.is_empty() || e.unit_granted_total(AppId(0), UnitId(0)) > 0);
            std::hint::black_box(events);
        });
    });

    c.bench_function("fig9_request_delta_apply", |b| {
        let mut e = scenarios::saturated_engine(100, 50, false);
        let mut i = 0u32;
        b.iter(|| {
            let app = AppId(i % 1000);
            i += 1;
            // An incremental ±1 demand adjustment from one app.
            e.apply_deltas(app, &[RequestDelta::cluster(UnitId(0), 1)]);
            e.apply_deltas(app, &[RequestDelta::cluster(UnitId(0), -1)]);
            e.drain_events();
        });
    });

    // Fragmented saturation: every machine keeps 8 stranded CPU cores free
    // (memory exhausted), so all 5,000 machines are nonempty but the unit
    // fits nowhere. A demand bump forces a full cluster-level placement
    // attempt: the naive scan walks its whole `max_cluster_scan` budget;
    // the fit index rejects at the cluster root.
    for (name, reference) in [
        ("fig9_fragmented_delta_5000_machines_indexed", false),
        ("fig9_fragmented_delta_5000_machines_naive", true),
    ] {
        c.bench_function(name, |b| {
            let mut e = scenarios::fragmented_engine(100, 50, reference);
            let mut i = 0u32;
            b.iter(|| {
                let app = AppId(1 + i % 999);
                i += 1;
                e.apply_deltas(app, &[RequestDelta::cluster(UnitId(0), 1)]);
                e.apply_deltas(app, &[RequestDelta::cluster(UnitId(0), -1)]);
                e.drain_events();
            });
        });
    }

    // Free-up on the fragmented cluster: one container returns, making that
    // machine schedulable among 5,000 nonempty ones. The 2503 stride is
    // coprime with 5000, so frees land all over the cluster relative to the
    // rotating cursor (as in production) rather than right at it. The index
    // prunes whole racks of stranded-CPU machines; the naive scan pays a
    // per-machine fit check for each.
    for (name, reference) in [
        ("fig9_fragmented_free_up_indexed", false),
        ("fig9_fragmented_free_up_naive", true),
    ] {
        c.bench_function(name, |b| {
            let mut e = scenarios::fragmented_engine(100, 50, reference);
            let mut i = 0u64;
            b.iter(|| {
                let m = MachineId(((i * 2503) % 5000) as u32);
                i += 1;
                e.return_grant(AppId(0), UnitId(0), m, 1);
                std::hint::black_box(e.drain_events());
            });
        });
    }

    c.bench_function("grant_fixed_master_placement", |b| {
        // Master placement on a busy-but-not-full cluster (the realistic
        // admission case): place, then release, so every iteration does a
        // real scan + grant.
        let topo = TopologyBuilder::new()
            .uniform(100, 50, MachineSpec {
                resources: ResourceVec::cores_mb(24, 96 * 1024),
                ..MachineSpec::default()
            })
            .build();
        let mut e = Engine::new(topo, EngineConfig::default(), QuotaManager::new());
        let unit = ResourceVec::new(500, 2048);
        for a in 0..1000u32 {
            e.attach_app(
                AppId(a),
                QuotaGroupId(0),
                vec![ScheduleUnitDef::new(UnitId(0), Priority(1000), unit.clone())],
            );
            // ~90% full: headroom remains for master placement.
            e.apply_deltas(AppId(a), &[RequestDelta::cluster(UnitId(0), 216)]);
        }
        e.drain_events();
        let res = ResourceVec::cores_mb(1, 2048);
        let avoid = Default::default();
        let mut a = 10_000u32;
        b.iter(|| {
            a += 1;
            let m = e
                .grant_fixed(AppId(a), res.clone(), &avoid)
                .expect("headroom exists");
            e.return_grant(AppId(a), fuxi_core::scheduler::MASTER_UNIT, m, 1);
            e.drain_events();
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
