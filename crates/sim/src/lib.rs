#![warn(missing_docs)]
//! # fuxi-sim
//!
//! A deterministic discrete-event simulator that stands in for the paper's
//! 5,000-node production testbed. Components of the Fuxi reproduction
//! (FuxiMaster, FuxiAgents, JobMasters, TaskWorkers, the Apsara lock
//! service) run as **actors** placed on simulated **machines**, exchanging
//! messages through a latency-modelled network, performing disk/network I/O
//! through a fair-share **flow model**, and failing on command through the
//! **fault injector**.
//!
//! Design notes:
//!
//! * Single-threaded and fully deterministic for a given seed: events are
//!   ordered by `(time, sequence)`, randomness comes from one seeded
//!   [`rand::rngs::SmallRng`]. Every experiment in the paper's evaluation is
//!   reproducible bit-for-bit.
//! * The kernel is generic over the message type `M`; `fuxi-proto` supplies
//!   the concrete protocol enum. The only kernel-imposed requirement is
//!   [`KernelMsg`], which lets the flow subsystem construct completion
//!   messages.
//! * Scheduler code under test runs *natively* inside actor handlers, so
//!   wall-clock measurements of scheduling decisions (paper Figure 9) time
//!   the real implementation, not a model of it.

pub mod actor;
pub mod event;
pub mod failure;
pub mod flow;
pub mod metrics;
pub mod net;
pub mod time;
pub mod world;

pub use actor::{Actor, ActorId, Ctx, LiveCtxOps};
pub use event::{KernelMsg, QueueKernel};
pub use fuxi_obs as obs;
pub use fuxi_obs::{SpanKind, TraceEvent, TraceId, Tracer, TracerConfig};
pub use failure::{Fault, FaultPlan};
pub use flow::{FlowDone, FlowKind, FlowNet, FlowSpec};
pub use metrics::{Histogram, Metrics, WindowedHistogram};
pub use net::NetConfig;
pub use time::{SimDuration, SimTime};
pub use world::{MachineConfig, World, WorldConfig};
