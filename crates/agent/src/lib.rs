#![warn(missing_docs)]
//! # fuxi-agent — FuxiAgent
//!
//! The per-node daemon (paper Section 2.2): "a single FuxiAgent will run on
//! each machine, mainly serving two-folded roles. The first is to collect
//! local information and status periodically, and report them to FuxiMaster
//! ... The second one is to ensure application processes to execute
//! normally with the aid of process monitor, environment protection and
//! process isolation."
//!
//! * [`agent`] — the agent actor: worker/JobMaster lifecycle, binary
//!   download, heartbeats, failover adoption.
//! * [`enforce`] — the isolation policies: resource-capacity ensurance,
//!   the Cgroup-style overload kill rule, and sandbox bookkeeping.
//!
//! Because application masters and workers are defined by higher layers
//! (the job framework), the agent launches them through injected
//! *factories* — the simulation counterpart of exec'ing a downloaded
//! binary.

pub mod agent;
pub mod enforce;

pub use agent::{AgentConfig, FuxiAgent, MasterFactory, MasterLaunch, WorkerFactory, WorkerLaunch};
pub use enforce::{pick_overload_victim, Envelope, Sandbox};

use fuxi_proto::{AppId, JobId, ResourceVec, UnitId, WorkerId};
use serde::{Deserialize, Serialize};

/// Metadata a process registers in its machine's process table (the
/// simulation's `/proc`). A restarted agent reads these to adopt running
/// processes ("during its failover, FuxiAgent firstly collects running
/// processes started previously").
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum ProcMeta {
    /// Worker.
    Worker {
        /// Application id.
        app: AppId,
        /// Worker id.
        worker: WorkerId,
        /// ScheduleUnit id.
        unit: UnitId,
        /// Resource limit enforced by the agent.
        limit: ResourceVec,
        /// Actor id of the worker's master (raw).
        master: u32,
        /// Fraction of the limit the process actually consumes.
        usage_factor: f64,
    },
    /// Job master.
    JobMaster {
        /// Application id.
        app: AppId,
        /// Job id.
        job: JobId,
        /// Resource amount.
        resource: ResourceVec,
    },
}

impl ProcMeta {
    /// Encode.
    pub fn encode(&self) -> Vec<u8> {
        serde_json::to_vec(self).expect("procmeta encodes")
    }

    /// Decode.
    pub fn decode(bytes: &[u8]) -> Option<ProcMeta> {
        serde_json::from_slice(bytes).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn procmeta_roundtrip() {
        let m = ProcMeta::Worker {
            app: AppId(1),
            worker: WorkerId(2),
            unit: UnitId(3),
            limit: ResourceVec::new(500, 2048),
            master: 77,
            usage_factor: 0.4,
        };
        assert_eq!(ProcMeta::decode(&m.encode()), Some(m));
        let j = ProcMeta::JobMaster {
            app: AppId(1),
            job: JobId(9),
            resource: ResourceVec::cores_mb(1, 2048),
        };
        assert_eq!(ProcMeta::decode(&j.encode()), Some(j));
        assert_eq!(ProcMeta::decode(b"garbage"), None);
    }
}
