//! Experiment drivers: the §5.2 synthetic-load loop and §5.4 fault plans.

use crate::harness::{Cluster, SubmitOpts};
use fuxi_proto::JobId;
use fuxi_sim::{Fault, FaultPlan, SimDuration, SimTime};
use fuxi_workloads::synthetic::SyntheticMix;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// The Table 3 fault mix, as fractions of the machine count. The paper's
/// 300-node experiment used NodeDown 2, PartialWorkerFailure 2,
/// SlowMachine 11 for the 5% scenario and 2/4/23 for 10%.
#[derive(Debug, Clone, Copy)]
pub struct FaultRatios {
    /// Fraction of machines to halt.
    pub node_down: f64,
    /// The partial worker.
    pub partial_worker: f64,
    /// Fraction of machines to slow down.
    pub slow_machine: f64,
}

impl FaultRatios {
    /// Table 3's 5% column (fractions of 300 nodes).
    pub fn five_percent() -> Self {
        Self {
            node_down: 2.0 / 300.0,
            partial_worker: 2.0 / 300.0,
            slow_machine: 11.0 / 300.0,
        }
    }

    /// Table 3's 10% column.
    pub fn ten_percent() -> Self {
        Self {
            node_down: 2.0 / 300.0,
            partial_worker: 4.0 / 300.0,
            slow_machine: 23.0 / 300.0,
        }
    }

    /// Total fraction.
    pub fn total_fraction(&self) -> f64 {
        self.node_down + self.partial_worker + self.slow_machine
    }
}

/// Builds a Table 3 fault plan over `n_machines` machines: faults are
/// injected at random times within `(start, end)` on distinct random
/// machines (excluding `exclude`, e.g. the machine hosting the JobMaster).
pub fn fault_plan(
    n_machines: usize,
    ratios: FaultRatios,
    start: SimTime,
    end: SimTime,
    seed: u64,
    exclude: &BTreeSet<u32>,
) -> FaultPlan {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut candidates: Vec<u32> = (0..n_machines as u32)
        .filter(|m| !exclude.contains(m))
        .collect();
    candidates.shuffle(&mut rng);
    let count = |f: f64| ((f * n_machines as f64).round() as usize).max(1);
    let n_down = count(ratios.node_down);
    let n_partial = count(ratios.partial_worker);
    let n_slow = count(ratios.slow_machine);
    let span = end.as_micros().saturating_sub(start.as_micros()).max(1);
    let t_at = |rng: &mut SmallRng| {
        use rand::Rng;
        SimTime(start.as_micros() + rng.gen_range(0..span))
    };
    let mut plan = FaultPlan::new();
    let mut it = candidates.into_iter();
    for _ in 0..n_down {
        if let Some(m) = it.next() {
            plan.add(t_at(&mut rng), Fault::NodeDown(m));
        }
    }
    for _ in 0..n_partial {
        if let Some(m) = it.next() {
            plan.add(
                t_at(&mut rng),
                Fault::PartialWorkerFailure {
                    machine: m,
                    active: true,
                },
            );
        }
    }
    for _ in 0..n_slow {
        if let Some(m) = it.next() {
            plan.add(
                t_at(&mut rng),
                Fault::SlowMachine {
                    machine: m,
                    factor: 0.3,
                },
            );
        }
    }
    plan
}

/// Result of one synthetic-load run (§5.2).
#[derive(Debug, Clone, Default)]
pub struct SyntheticRunStats {
    /// The jobs submitted.
    pub jobs_submitted: usize,
    /// The jobs finished.
    pub jobs_finished: usize,
    /// The job runtimes s.
    pub job_runtimes_s: Vec<f64>,
}

impl SyntheticRunStats {
    /// Mean runtime s.
    pub fn mean_runtime_s(&self) -> f64 {
        if self.job_runtimes_s.is_empty() {
            0.0
        } else {
            self.job_runtimes_s.iter().sum::<f64>() / self.job_runtimes_s.len() as f64
        }
    }
}

/// Drives the §5.2 experiment: keeps `concurrent` jobs running until
/// `duration` of simulated time passes ("we keep 1,000 jobs concurrently
/// running by starting a new job when one job finishes").
pub fn run_synthetic(
    cluster: &mut Cluster,
    mix: &mut SyntheticMix,
    concurrent: usize,
    duration: SimDuration,
) -> SyntheticRunStats {
    let deadline = cluster.world.now() + duration;
    let mut stats = SyntheticRunStats::default();
    let mut live: Vec<JobId> = Vec::new();
    let opts = SubmitOpts::default();
    for _ in 0..concurrent {
        let spec = mix.next_job();
        live.push(cluster.submit(&spec.desc, &opts));
        stats.jobs_submitted += 1;
    }
    loop {
        let target = stats.jobs_finished + 1;
        let reached = cluster.run_until_n_done(target, deadline);
        // Replace every newly finished job.
        let mut still_live = Vec::with_capacity(live.len());
        for job in live.drain(..) {
            match cluster.job_done(job) {
                Some((_ok, at)) => {
                    let submitted = cluster
                        .job_state(job)
                        .map(|s| s.submitted_s)
                        .unwrap_or(0.0);
                    stats.job_runtimes_s.push(at - submitted);
                    stats.jobs_finished += 1;
                    if cluster.world.now() < deadline {
                        let spec = mix.next_job();
                        still_live.push(cluster.submit(&spec.desc, &opts));
                        stats.jobs_submitted += 1;
                    }
                }
                None => still_live.push(job),
            }
        }
        live = still_live;
        if cluster.world.now() >= deadline || reached < target {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_match_table3() {
        let five = FaultRatios::five_percent();
        assert!((five.total_fraction() - 0.05).abs() < 0.0001);
        let ten = FaultRatios::ten_percent();
        assert!((ten.total_fraction() - 29.0 / 300.0).abs() < 0.0001);
    }

    #[test]
    fn fault_plan_counts_scale_with_machines() {
        let plan = fault_plan(
            300,
            FaultRatios::five_percent(),
            SimTime::from_secs(10),
            SimTime::from_secs(100),
            1,
            &BTreeSet::new(),
        );
        // Paper's 5% column on 300 nodes: 2 + 2 + 11 = 15 faults.
        assert_eq!(plan.len(), 15);
        let downs = plan
            .events()
            .iter()
            .filter(|(_, f)| matches!(f, Fault::NodeDown(_)))
            .count();
        assert_eq!(downs, 2);
        // All inside the window.
        for (t, _) in plan.events() {
            assert!(*t >= SimTime::from_secs(10) && *t <= SimTime::from_secs(100));
        }
    }

    #[test]
    fn fault_plan_respects_exclusions_and_distinct_machines() {
        let exclude: BTreeSet<u32> = (0..250).collect();
        let plan = fault_plan(
            300,
            FaultRatios::ten_percent(),
            SimTime::from_secs(0),
            SimTime::from_secs(10),
            2,
            &exclude,
        );
        let mut machines = Vec::new();
        for (_, f) in plan.events() {
            let m = match f {
                Fault::NodeDown(m) => *m,
                Fault::PartialWorkerFailure { machine, .. } => *machine,
                Fault::SlowMachine { machine, .. } => *machine,
                _ => continue,
            };
            assert!(m >= 250, "excluded machine {m} must not be picked");
            machines.push(m);
        }
        let n = machines.len();
        machines.sort_unstable();
        machines.dedup();
        assert_eq!(machines.len(), n, "faults land on distinct machines");
    }
}
