//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a compact serialization framework with the same *import surface* the
//! codebase uses (`serde::{Serialize, Deserialize}`, `serde::de::
//! DeserializeOwned`, `#[derive(Serialize, Deserialize)]` with the handful
//! of `#[serde(...)]` attributes present in the tree), but a much simpler
//! data model: values serialize to an owned [`Value`] tree and deserialize
//! from one. `serde_json` (also vendored) renders that tree to JSON text
//! and parses it back.
//!
//! Representation choices mirror real serde's external JSON conventions
//! where the repo depends on them (newtype structs are transparent, unit
//! enum variants are strings, data-carrying variants are single-key
//! objects). Maps with non-string keys serialize as arrays of `[k, v]`
//! pairs — the repo only round-trips those, never hand-writes them.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// The serialized form: a JSON-shaped value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / `None`.
    Null,
    /// Boolean.
    Bool(bool),
    /// Unsigned integer (exact, full u64 range).
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the object fields, if this is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrows the array elements, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrows the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field of an object by key.
    pub fn get_field<'a>(&'a self, key: &str) -> Option<&'a Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// Serializes `self`.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from `v`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Serialization half under its serde path.
pub mod ser {
    pub use crate::Serialize;
}

/// Deserialization half under its serde path.
pub mod de {
    pub use crate::{DeError, Deserialize};

    /// Owned deserialization — with this crate's owned value model, every
    /// `Deserialize` type qualifies.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! uint_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: u64 = match *v {
                    Value::UInt(n) => n,
                    Value::Int(n) if n >= 0 => n as u64,
                    Value::Float(f) if f >= 0.0 && f.fract() == 0.0 => f as u64,
                    ref other => {
                        return Err(DeError::custom(format_args!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format_args!("integer {n} out of range")))
            }
        }
    )*};
}

uint_impl!(u8, u16, u32, u64, usize);

macro_rules! int_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::UInt(n as u64)
                } else {
                    Value::Int(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) => i64::try_from(n)
                        .map_err(|_| DeError::custom(format_args!("integer {n} out of range")))?,
                    Value::Float(f) if f.fract() == 0.0 => f as i64,
                    ref other => {
                        return Err(DeError::custom(format_args!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(format_args!("integer {n} out of range")))
            }
        }
    )*};
}

int_impl!(i8, i16, i32, i64, isize);

macro_rules! float_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::Float(f) => Ok(f as $t),
                    Value::UInt(n) => Ok(n as $t),
                    Value::Int(n) => Ok(n as $t),
                    ref other => Err(DeError::custom(format_args!(
                        "expected number, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

float_impl!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format_args!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::custom("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(()),
            other => Err(DeError::custom(format_args!("expected null, got {other:?}"))),
        }
    }
}

// ---------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! tuple_impl {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| DeError::custom("expected tuple array"))?;
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                if a.len() != LEN {
                    return Err(DeError::custom(format_args!(
                        "expected array of length {LEN}, got {}", a.len()
                    )));
                }
                Ok(($($name::from_value(&a[$idx])?,)+))
            }
        }
    )*};
}

tuple_impl! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Renders map entries the way real serde's JSON convention does: maps whose
/// keys serialize to strings become objects, any other key type becomes an
/// array of `[k, v]` pairs.
fn map_to_value<'a>(entries: impl Iterator<Item = (Value, &'a dyn ErasedSerialize)>) -> Value {
    let pairs: Vec<(Value, Value)> = entries.map(|(k, v)| (k, v.to_value_dyn())).collect();
    if pairs.iter().all(|(k, _)| matches!(k, Value::Str(_))) {
        Value::Object(
            pairs
                .into_iter()
                .map(|(k, v)| match k {
                    Value::Str(s) => (s, v),
                    _ => unreachable!(),
                })
                .collect(),
        )
    } else {
        Value::Array(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Array(vec![k, v]))
                .collect(),
        )
    }
}

/// Object-safe serialization hook for [`map_to_value`].
trait ErasedSerialize {
    fn to_value_dyn(&self) -> Value;
}

impl<T: Serialize> ErasedSerialize for T {
    fn to_value_dyn(&self) -> Value {
        self.to_value()
    }
}

/// Reads map entries from either representation accepted by [`map_to_value`].
fn map_entries<K: Deserialize, V: Deserialize>(v: &Value) -> Result<Vec<(K, V)>, DeError> {
    match v {
        Value::Object(o) => o
            .iter()
            .map(|(k, val)| Ok((K::from_value(&Value::Str(k.clone()))?, V::from_value(val)?)))
            .collect(),
        Value::Array(a) => a.iter().map(<(K, V)>::from_value).collect(),
        other => Err(DeError::custom(format_args!(
            "expected map (object or pair array), got {other:?}"
        ))),
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter().map(|(k, v)| (k.to_value(), v as &dyn ErasedSerialize)))
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(map_entries::<K, V>(v)?.into_iter().collect())
    }
}

impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter().map(|(k, v)| (k.to_value(), v as &dyn ErasedSerialize)))
    }
}

impl<K, V, S> Deserialize for HashMap<K, V, S>
where
    K: Deserialize + std::hash::Hash + Eq,
    V: Deserialize,
    S: std::hash::BuildHasher + Default,
{
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(map_entries::<K, V>(v)?.into_iter().collect())
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom("expected set array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn u64_is_exact_beyond_f64() {
        let big = u64::MAX - 1;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
    }

    #[test]
    fn collections_roundtrip() {
        let mut m = BTreeMap::new();
        m.insert(3u32, "x".to_string());
        m.insert(9, "y".to_string());
        let back: BTreeMap<u32, String> = Deserialize::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);

        let s: BTreeSet<i32> = [-1, 4].into_iter().collect();
        let back: BTreeSet<i32> = Deserialize::from_value(&s.to_value()).unwrap();
        assert_eq!(back, s);

        let t = (1u32, -2i64, 0.5f64);
        let back: (u32, i64, f64) = Deserialize::from_value(&t.to_value()).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn wrong_shape_errors() {
        assert!(u32::from_value(&Value::Str("no".into())).is_err());
        assert!(<(u32, u32)>::from_value(&Value::Array(vec![Value::UInt(1)])).is_err());
        assert!(u8::from_value(&Value::UInt(300)).is_err());
    }
}
