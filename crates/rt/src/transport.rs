//! Optional TCP loopback transport (`tcp-loopback` feature).
//!
//! Length-prefixed frames over `std::net` sockets, so two live runtimes
//! (or a runtime and an external driver) can exchange messages across a
//! real socket instead of an in-process channel. Std-only by design — the
//! codec is a trait the caller implements, keeping this crate free of
//! serialization dependencies.
//!
//! Frame format: a big-endian `u32` payload length, then the payload.
//! A zero-length frame is valid (an encoded empty message).

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};

/// Maximum accepted frame size (guards against a corrupt length prefix).
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Encodes messages to bytes and back; implemented by the embedding
/// application for its message type.
pub trait WireCodec {
    /// The message type carried over the wire.
    type Msg;
    /// Serializes `msg`.
    fn encode(&self, msg: &Self::Msg) -> Vec<u8>;
    /// Deserializes a frame; `None` on malformed input.
    fn decode(&self, bytes: &[u8]) -> Option<Self::Msg>;
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidInput, "frame too large"));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. `Ok(None)` on clean EOF at a frame
/// boundary; an error mid-frame is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too large"));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// A connected frame channel: send/receive typed messages through a codec.
pub struct FrameConn<C: WireCodec> {
    stream: TcpStream,
    codec: C,
}

impl<C: WireCodec> FrameConn<C> {
    /// Wraps an established stream.
    pub fn new(stream: TcpStream, codec: C) -> Self {
        FrameConn { stream, codec }
    }

    /// Connects to a listening peer.
    pub fn connect(addr: impl ToSocketAddrs, codec: C) -> io::Result<Self> {
        Ok(FrameConn {
            stream: TcpStream::connect(addr)?,
            codec,
        })
    }

    /// Sends one message as one frame.
    pub fn send(&mut self, msg: &C::Msg) -> io::Result<()> {
        write_frame(&mut self.stream, &self.codec.encode(msg))
    }

    /// Receives the next message; `Ok(None)` on clean EOF.
    pub fn recv(&mut self) -> io::Result<Option<C::Msg>> {
        loop {
            match read_frame(&mut self.stream)? {
                None => return Ok(None),
                Some(payload) => {
                    // Skip undecodable frames rather than tearing the
                    // connection down; peers may speak newer dialects.
                    if let Some(msg) = self.codec.decode(&payload) {
                        return Ok(Some(msg));
                    }
                }
            }
        }
    }
}

/// Binds a loopback listener on an OS-assigned port; returns the listener
/// and its bound address.
pub fn loopback_listener() -> io::Result<(TcpListener, std::net::SocketAddr)> {
    let listener = TcpListener::bind(("127.0.0.1", 0))?;
    let addr = listener.local_addr()?;
    Ok((listener, addr))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test codec: `u64` counter + string payload, hand-packed.
    struct TestCodec;

    impl WireCodec for TestCodec {
        type Msg = (u64, String);
        fn encode(&self, msg: &(u64, String)) -> Vec<u8> {
            let mut out = msg.0.to_be_bytes().to_vec();
            out.extend_from_slice(msg.1.as_bytes());
            out
        }
        fn decode(&self, bytes: &[u8]) -> Option<(u64, String)> {
            if bytes.len() < 8 {
                return None;
            }
            let n = u64::from_be_bytes(bytes[..8].try_into().ok()?);
            let s = std::str::from_utf8(&bytes[8..]).ok()?.to_owned();
            Some((n, s))
        }
    }

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"world").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"world");
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn oversized_frame_rejected() {
        let mut buf = (MAX_FRAME + 1).to_be_bytes().to_vec();
        buf.extend_from_slice(&[0; 16]);
        let mut r = &buf[..];
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn loopback_conn_exchanges_typed_messages() {
        let (listener, addr) = loopback_listener().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut conn = FrameConn::new(stream, TestCodec);
            let mut got = Vec::new();
            while let Some(msg) = conn.recv().unwrap() {
                conn.send(&(msg.0 + 1, format!("ack:{}", msg.1))).unwrap();
                got.push(msg);
            }
            got
        });
        let mut client = FrameConn::connect(addr, TestCodec).unwrap();
        for i in 0..10u64 {
            client.send(&(i, format!("m{i}"))).unwrap();
            let (n, s) = client.recv().unwrap().unwrap();
            assert_eq!(n, i + 1);
            assert_eq!(s, format!("ack:m{i}"));
        }
        drop(client);
        let got = server.join().unwrap();
        assert_eq!(got.len(), 10);
        // Per-connection FIFO: frames arrive in send order.
        assert!(got.windows(2).all(|w| w[0].0 + 1 == w[1].0));
    }
}
