//! Hard/soft state separation and the FuxiMaster checkpoint (paper §4.3.1).
//!
//! "In order to reduce the overhead of state bookkeeping and accelerate
//! state restoration, we separate the states into hard states and soft
//! states. Only hard states such as job description and cluster-level
//! machine blacklist are recorded by a light-weighted checkpoint. The
//! checkpoint is conducted only when the job is submitted or stopped. The
//! soft states are collected from all FuxiAgents and application masters at
//! runtime during FuxiMaster failover."
//!
//! Everything else — grants, wants, free pools, locality-tree contents — is
//! *soft*: reconstructed from `AgentAllocationReport` and
//! `FullRequestSync` messages during rebuild (Figure 7).

use fuxi_apsara::StoreHandle;
use fuxi_proto::msg::AppDescription;
use fuxi_proto::{AppId, JobId, Priority, QuotaGroupId, ResourceVec};
use fuxi_sim::ActorId;
use serde::{Deserialize, Serialize};

/// Serializable form of an [`AppDescription`].
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct AppDescRecord {
    /// Application type tag.
    pub app_type: String,
    /// Quota group the job bills against.
    pub quota_group: u32,
    /// Scheduling priority.
    pub priority: u16,
    /// The master cpu milli.
    pub master_cpu_milli: u64,
    /// The master memory mb.
    pub master_memory_mb: u64,
    /// Master binary package size, MB.
    pub master_package_mb: f64,
    /// Application-specific payload (JSON for DAG jobs).
    pub payload: String,
}

impl From<&AppDescription> for AppDescRecord {
    fn from(d: &AppDescription) -> Self {
        Self {
            app_type: d.app_type.clone(),
            quota_group: d.quota_group.0,
            priority: d.priority.0,
            master_cpu_milli: d.master_resource.cpu_milli(),
            master_memory_mb: d.master_resource.memory_mb(),
            master_package_mb: d.master_package_mb,
            payload: d.payload.clone(),
        }
    }
}

impl AppDescRecord {
    /// To description.
    pub fn to_description(&self) -> AppDescription {
        AppDescription {
            app_type: self.app_type.clone(),
            quota_group: QuotaGroupId(self.quota_group),
            priority: Priority(self.priority),
            master_resource: ResourceVec::new(self.master_cpu_milli, self.master_memory_mb),
            master_package_mb: self.master_package_mb,
            payload: self.payload.clone(),
        }
    }
}

/// One running job as the checkpoint remembers it.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct JobRecord {
    /// Job id.
    pub job: u32,
    /// Application id.
    pub app: u32,
    /// Submitting client's actor address.
    pub client: u32,
    /// Task description.
    pub desc: AppDescRecord,
}

impl JobRecord {
    /// Job id.
    pub fn job_id(&self) -> JobId {
        JobId(self.job)
    }

    /// App id.
    pub fn app_id(&self) -> AppId {
        AppId(self.app)
    }

    /// Client actor.
    pub fn client_actor(&self) -> ActorId {
        ActorId(self.client)
    }
}

/// The FuxiMaster hard state: the complete checkpoint.
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq)]
pub struct HardState {
    /// Number of jobs to generate.
    pub jobs: Vec<JobRecord>,
    /// `(machine, reason-tag)` pairs from the cluster blacklist.
    pub blacklist: Vec<(u32, u8)>,
    /// Id allocators, so restarts never reuse an app/job id.
    pub next_app: u32,
}

const KEY: &str = "fuxi-master/hard-state";

impl HardState {
    /// Writes the checkpoint ("conducted only when the job is submitted or
    /// stopped" — the caller controls frequency; this is one write).
    pub fn save(&self, store: &StoreHandle) {
        store.put_json(KEY, self);
    }

    /// Loads the checkpoint; a missing checkpoint is an empty cold start.
    pub fn load(store: &StoreHandle) -> HardState {
        store.get_json(KEY).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record() -> JobRecord {
        JobRecord {
            job: 3,
            app: 7,
            client: 42,
            desc: AppDescRecord::from(&AppDescription {
                payload: "{\"Tasks\":{}}".to_owned(),
                ..AppDescription::default()
            }),
        }
    }

    #[test]
    fn desc_record_roundtrip() {
        let d = AppDescription {
            app_type: "fuxi_job".into(),
            quota_group: QuotaGroupId(3),
            priority: Priority(7),
            master_resource: ResourceVec::new(1500, 4096),
            master_package_mb: 250.0,
            payload: "x".into(),
        };
        let rec = AppDescRecord::from(&d);
        assert_eq!(rec.to_description(), d);
    }

    #[test]
    fn save_load_roundtrip() {
        let store = StoreHandle::new();
        let hs = HardState {
            jobs: vec![record()],
            blacklist: vec![(5, 2)],
            next_app: 8,
        };
        hs.save(&store);
        let back = HardState::load(&store);
        assert_eq!(back, hs);
        assert_eq!(back.jobs[0].app_id(), AppId(7));
        assert_eq!(back.jobs[0].client_actor(), ActorId(42));
    }

    #[test]
    fn missing_checkpoint_is_cold_start() {
        let store = StoreHandle::new();
        let hs = HardState::load(&store);
        assert!(hs.jobs.is_empty());
        assert_eq!(hs.next_app, 0);
    }

    #[test]
    fn checkpoint_is_lightweight() {
        // The hard state must not balloon with cluster size: it carries only
        // job descriptions and the blacklist, never per-machine soft state.
        let store = StoreHandle::new();
        let hs = HardState {
            jobs: vec![record(); 10],
            blacklist: vec![(1, 0)],
            next_app: 11,
        };
        hs.save(&store);
        assert!(store.bytes_written() < 10_000, "10 jobs ≈ a few KB");
    }
}
