//! Metrics recording: counters, time series and log-bucketed histograms.
//!
//! Every experiment binary reads its table/figure data out of the world's
//! [`Metrics`] sink after the run.

use std::collections::HashMap;

/// A log-bucketed latency/size histogram with exact count/sum/min/max.
/// Buckets are powers of `2^(1/4)` (≈19% wide), giving percentile estimates
/// within a few percent across nine orders of magnitude — plenty for the
/// paper's "average 0.88 ms, peak below 3 ms" style of claims.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

const BUCKETS: usize = 160; // covers [1e-9, ~1e3) with 4 buckets per octave
const SCALE: f64 = 4.0; // buckets per doubling

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates a new instance with the given configuration.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_of(v: f64) -> usize {
        if v <= 1e-9 {
            return 0;
        }
        let idx = ((v / 1e-9).log2() * SCALE).floor() as isize;
        idx.clamp(0, BUCKETS as isize - 1) as usize
    }

    /// Lower bound of bucket `i`.
    fn bucket_value(i: usize) -> f64 {
        1e-9 * 2f64.powf(i as f64 / SCALE)
    }

    /// Record.
    pub fn record(&mut self, v: f64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of containers.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Min.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Max.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Approximate quantile `q` in [0, 1]: linearly interpolated within the
    /// winning bucket (assuming a uniform distribution inside it), rather
    /// than returning the bucket's upper bound — the latter biased every
    /// estimate upward by up to one full ≈19%-wide bucket.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= target {
                let lo = Self::bucket_value(i);
                let hi = Self::bucket_value(i + 1);
                // Rank position inside this bucket, in (0, 1].
                let frac = (target - seen) as f64 / c as f64;
                return (lo + frac * (hi - lo)).min(self.max).max(self.min);
            }
            seen += c;
        }
        self.max
    }

    /// Merge.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The per-world metrics sink.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: HashMap<String, u64>,
    gauges: HashMap<String, f64>,
    series: HashMap<String, Vec<(f64, f64)>>,
    histograms: HashMap<String, Histogram>,
}

impl Metrics {
    /// Creates a new instance with the given configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments counter `name` by `by`.
    pub fn count(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += by;
    }

    /// Counter.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Adds `delta` (may be negative) to gauge `name`. Gauges let many
    /// actors maintain one cluster-wide quantity (e.g. the paper's
    /// `AM_obtained` / `FA_planned` curves) that a sampler turns into a
    /// series.
    pub fn gauge_add(&mut self, name: &str, delta: f64) {
        *self.gauges.entry(name.to_owned()).or_insert(0.0) += delta;
    }

    /// Gauge.
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Appends `(t_seconds, value)` to time series `name`.
    pub fn push_series(&mut self, name: &str, t_s: f64, v: f64) {
        self.series.entry(name.to_owned()).or_default().push((t_s, v));
    }

    /// Series.
    pub fn series(&self, name: &str) -> &[(f64, f64)] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Series names.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Records `v` into histogram `name`.
    pub fn record(&mut self, name: &str, v: f64) {
        self.histograms.entry(name.to_owned()).or_default().record(v);
    }

    /// Histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Time-weighted mean of a series: the trapezoid integral of `v` over
    /// `t` divided by the covered span. Unlike the unweighted mean, bursts
    /// of dense sampling don't over-weight the sampled value.
    pub fn series_mean(&self, name: &str) -> f64 {
        let s = self.series(name);
        match s.len() {
            0 => 0.0,
            1 => s[0].1,
            _ => {
                let span = s[s.len() - 1].0 - s[0].0;
                if span <= 0.0 {
                    // Degenerate: all points share one timestamp.
                    return self.series_mean_unweighted(name);
                }
                let area: f64 = s
                    .windows(2)
                    .map(|w| 0.5 * (w[0].1 + w[1].1) * (w[1].0 - w[0].0))
                    .sum();
                area / span
            }
        }
    }

    /// Mean of a series' values ignoring sample spacing (the pre-existing
    /// behaviour; kept for consumers that sample on a strict cadence).
    pub fn series_mean_unweighted(&self, name: &str) -> f64 {
        let s = self.series(name);
        if s.is_empty() {
            0.0
        } else {
            s.iter().map(|&(_, v)| v).sum::<f64>() / s.len() as f64
        }
    }

    /// Counters.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Sets gauge `name` to an absolute value (sampled quantities like
    /// mailbox depths, where deltas from many writers make no sense).
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        self.gauges.insert(name.to_owned(), v);
    }

    /// Sets gauge `name` to `v` if `v` exceeds the current value — a
    /// high-water mark across many reporting threads.
    pub fn gauge_max(&mut self, name: &str, v: f64) {
        let g = self.gauges.entry(name.to_owned()).or_insert(f64::NEG_INFINITY);
        if v > *g {
            *g = v;
        }
    }

    /// Merges another sink into this one: counters and gauges add,
    /// histograms merge bucket-wise, series concatenate (re-sorted by
    /// time so exports stay monotone). The live runtime gives every actor
    /// thread its own `Metrics` and folds them together at shutdown.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, &v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, &v) in &other.gauges {
            *self.gauges.entry(k.clone()).or_insert(0.0) += v;
        }
        for (k, pts) in &other.series {
            let s = self.series.entry(k.clone()).or_default();
            s.extend_from_slice(pts);
            s.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// A deterministic JSON snapshot of every counter, gauge, and histogram
    /// (count/mean/min/max/p50/p95/p99), keys sorted. Series are summarised
    /// by length and time-weighted mean rather than dumped point-by-point.
    pub fn snapshot_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("{\"counters\":{");
        let mut keys: Vec<&String> = self.counters.keys().collect();
        keys.sort();
        for (i, k) in keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", k, self.counters[*k]);
        }
        out.push_str("},\"gauges\":{");
        let mut keys: Vec<&String> = self.gauges.keys().collect();
        keys.sort();
        for (i, k) in keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", k, self.gauges[*k]);
        }
        out.push_str("},\"histograms\":{");
        let mut keys: Vec<&String> = self.histograms.keys().collect();
        keys.sort();
        for (i, k) in keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let h = &self.histograms[*k];
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"mean\":{:.9},\"min\":{:.9},\"max\":{:.9},\"p50\":{:.9},\"p95\":{:.9},\"p99\":{:.9}}}",
                k,
                h.count(),
                h.mean(),
                h.min(),
                h.max(),
                h.quantile(0.5),
                h.quantile(0.95),
                h.quantile(0.99)
            );
        }
        out.push_str("},\"series\":{");
        let mut keys: Vec<&String> = self.series.keys().collect();
        keys.sort();
        for (i, k) in keys.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"points\":{},\"mean\":{:.9}}}",
                k,
                self.series[*k].len(),
                self.series_mean(k)
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.count("msgs", 1);
        m.count("msgs", 2);
        assert_eq!(m.counter("msgs"), 3);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn series_append_and_mean() {
        let mut m = Metrics::new();
        m.push_series("util", 0.0, 10.0);
        m.push_series("util", 1.0, 20.0);
        assert_eq!(m.series("util").len(), 2);
        assert!((m.series_mean("util") - 15.0).abs() < 1e-12);
        assert!((m.series_mean_unweighted("util") - 15.0).abs() < 1e-12);
    }

    #[test]
    fn series_mean_is_time_weighted() {
        let mut m = Metrics::new();
        // v=0 for 10 s, then a burst of v=100 samples within 1 s: the
        // unweighted mean is dragged to ~75, the trapezoid mean stays low.
        m.push_series("u", 0.0, 0.0);
        m.push_series("u", 10.0, 0.0);
        m.push_series("u", 10.5, 100.0);
        m.push_series("u", 11.0, 100.0);
        let w = m.series_mean("u");
        let uw = m.series_mean_unweighted("u");
        assert!((uw - 50.0).abs() < 1e-9, "unweighted = {uw}");
        // Integral: 0*10 + 50*0.5 + 100*0.5 = 75 over 11 s ≈ 6.82.
        assert!((w - 75.0 / 11.0).abs() < 1e-9, "weighted = {w}");
    }

    #[test]
    fn series_mean_degenerate_cases() {
        let mut m = Metrics::new();
        assert_eq!(m.series_mean("none"), 0.0);
        m.push_series("one", 3.0, 42.0);
        assert_eq!(m.series_mean("one"), 42.0);
        m.push_series("same_t", 1.0, 10.0);
        m.push_series("same_t", 1.0, 30.0);
        assert!((m.series_mean("same_t") - 20.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_basic_stats() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 2.5).abs() < 1e-12);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 4.0);
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-3); // 1ms .. 1s
        }
        let p50 = h.quantile(0.5);
        assert!(p50 > 0.4 && p50 < 0.65, "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 > 0.9 && p99 <= 1.01, "p99 = {p99}");
        assert!(h.quantile(1.0) <= 1.0 + 1e-9);
    }

    #[test]
    fn histogram_merge_combines_counts() {
        let mut a = Histogram::new();
        a.record(0.001);
        let mut b = Histogram::new();
        b.record(0.1);
        b.record(0.2);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 0.2);
        assert_eq!(a.min(), 0.001);
    }

    #[test]
    fn merge_combines_all_sinks() {
        let mut a = Metrics::new();
        a.count("msgs", 2);
        a.gauge_add("g", 1.0);
        a.record("lat", 0.001);
        a.push_series("s", 1.0, 10.0);
        let mut b = Metrics::new();
        b.count("msgs", 3);
        b.count("only_b", 1);
        b.gauge_add("g", 0.5);
        b.record("lat", 0.002);
        b.push_series("s", 0.5, 5.0);
        a.merge(&b);
        assert_eq!(a.counter("msgs"), 5);
        assert_eq!(a.counter("only_b"), 1);
        assert!((a.gauge("g") - 1.5).abs() < 1e-12);
        assert_eq!(a.histogram("lat").unwrap().count(), 2);
        // Series re-sorted by time after concatenation.
        assert_eq!(a.series("s"), &[(0.5, 5.0), (1.0, 10.0)]);
    }

    #[test]
    fn gauge_set_and_max() {
        let mut m = Metrics::new();
        m.gauge_set("depth", 7.0);
        m.gauge_set("depth", 3.0);
        assert_eq!(m.gauge("depth"), 3.0);
        m.gauge_max("hwm", 5.0);
        m.gauge_max("hwm", 2.0);
        assert_eq!(m.gauge("hwm"), 5.0);
    }

    #[test]
    fn metrics_histogram_via_record() {
        let mut m = Metrics::new();
        m.record("lat", 0.5);
        m.record("lat", 1.5);
        assert_eq!(m.histogram("lat").unwrap().count(), 2);
        assert!(m.histogram("none").is_none());
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn snapshot_json_is_deterministic_and_complete() {
        let mut m = Metrics::new();
        m.count("b", 2);
        m.count("a", 1);
        m.gauge_add("g", 1.5);
        m.record("lat", 0.001);
        m.push_series("s", 0.0, 1.0);
        m.push_series("s", 1.0, 3.0);
        let j = m.snapshot_json();
        assert_eq!(j, m.snapshot_json(), "snapshot must be deterministic");
        // Keys sorted: "a" before "b".
        let ia = j.find("\"a\":1").unwrap();
        let ib = j.find("\"b\":2").unwrap();
        assert!(ia < ib);
        assert!(j.contains("\"lat\":{\"count\":1"));
        assert!(j.contains("\"s\":{\"points\":2,\"mean\":2.000000000"));
    }

    /// Exact sample quantile with the same rank convention as
    /// `Histogram::quantile` (ceil(q*n), 1-based).
    fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
        let n = sorted.len();
        let rank = (q.clamp(0.0, 1.0) * n as f64).ceil().max(1.0) as usize;
        sorted[rank.min(n) - 1]
    }

    // Property test: for random samples and random q, the interpolated
    // histogram quantile stays within one ~19% bucket of the exact sample
    // quantile — both land in the same bucket by construction, so the ratio
    // is bounded by one bucket width (2^(1/4) ≈ 1.19) in either direction.
    use proptest::prelude::*;
    proptest! {
        #[test]
        fn quantile_interpolation_tracks_exact_quantiles(
            vals in prop::collection::vec(1e-6f64..10.0f64, 1..200),
            q in 0.0f64..1.0f64,
        ) {
            let mut h = Histogram::new();
            for &v in &vals {
                h.record(v);
            }
            let mut sorted = vals.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let exact = exact_quantile(&sorted, q);
            let est = h.quantile(q);
            prop_assert!(
                est / exact > 1.0 / 1.20 && est / exact < 1.20,
                "q={} exact={} est={}", q, exact, est
            );
        }
    }

    #[test]
    fn quantile_interpolates_below_bucket_upper_bound() {
        // All mass in one bucket: the old implementation returned the
        // bucket's upper bound for every q; interpolation must spread
        // estimates across the bucket and bound them by the true extremes.
        let mut h = Histogram::new();
        for _ in 0..1000 {
            h.record(0.00100);
        }
        for q in [0.01, 0.5, 0.99] {
            let v = h.quantile(q);
            assert!((v - 0.001).abs() < 1e-12, "q={q} -> {v}");
        }
    }
}
