//! `trace_dump` — reconstructs causal timelines from a fuxi-obs JSONL
//! export (as written by `table3_faults --trace-out <dir>` or any run
//! with `ClusterConfig.obs` enabled).
//!
//! Usage:
//!   trace_dump <trace.jsonl> [--job <id>] [--failover] [--max-events <n>]
//!
//! With no mode flag it prints the run summary, the failover timeline,
//! and every per-job lifecycle (events elided past `--max-events`,
//! default 30). `--job <id>` prints one job's full lifecycle;
//! `--failover` prints only the failover timeline.

use fuxi_bench::tracetool::{
    failover_timeline, job_lifecycles, render_failover, render_job, span_summary, TraceLog,
};

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let mut path: Option<String> = None;
    let mut only_job: Option<u64> = None;
    let mut only_failover = false;
    let mut max_events = 30usize;
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--job" => {
                only_job = argv.get(i + 1).and_then(|v| v.parse().ok());
                i += 2;
            }
            "--failover" => {
                only_failover = true;
                i += 1;
            }
            "--max-events" => {
                max_events = argv
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(max_events);
                i += 2;
            }
            other => {
                if path.is_none() && !other.starts_with("--") {
                    path = Some(other.to_owned());
                } else {
                    eprintln!("ignoring unknown argument {other}");
                }
                i += 1;
            }
        }
    }
    let Some(path) = path else {
        eprintln!("usage: trace_dump <trace.jsonl> [--job <id>] [--failover] [--max-events <n>]");
        std::process::exit(2);
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let log = match TraceLog::parse(&text) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("parse error in {path}: {e}");
            std::process::exit(2);
        }
    };

    let jobs = job_lifecycles(&log);
    println!(
        "{}: {} events, {} spans, {} flight dumps, {} traced jobs",
        path,
        log.events.len(),
        log.spans.len(),
        log.dumps.len(),
        jobs.len()
    );

    if let Some(id) = only_job {
        match jobs.iter().find(|lc| lc.job == Some(id)) {
            Some(lc) => print!("\n{}", render_job(&log, lc, usize::MAX)),
            None => {
                eprintln!("no trace for job {id}");
                std::process::exit(1);
            }
        }
        return;
    }

    println!("\n--- failover timeline ---");
    print!("{}", render_failover(&failover_timeline(&log)));
    if only_failover {
        return;
    }

    let spans = span_summary(&log);
    if !spans.is_empty() {
        println!("\n--- span medians (wall clock) ---");
        for (kind, (n, median)) in &spans {
            println!("  {kind:<16} n={n:<8} median={:.3} us", median * 1e6);
        }
    }

    println!("\n--- job lifecycles ---");
    for lc in &jobs {
        print!("\n{}", render_job(&log, lc, max_events));
    }
}
