//! The message-latency model.
//!
//! Latency is sampled by locality class (same machine / same rack / cross
//! rack), with uniform jitter. Optional drop and duplication probabilities
//! exercise the incremental protocol's idempotency and full-sync repair
//! paths ("we must ensure the idempotency of the handling of duplicated
//! delta messages, which could happen as a result of temporary communication
//! failure", Section 3.1).

use crate::time::SimDuration;
use rand::rngs::SmallRng;
use rand::Rng;

/// Configuration of the network model.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Latency between actors on the same machine, microseconds (min, max).
    pub local_us: (u64, u64),
    /// Latency within one rack (one switch hop).
    pub same_rack_us: (u64, u64),
    /// Latency across racks (core switch).
    pub cross_rack_us: (u64, u64),
    /// Probability a message is silently dropped (chaos testing only).
    pub drop_prob: f64,
    /// Probability a message is delivered twice (chaos testing only).
    pub dup_prob: f64,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            local_us: (20, 80),
            same_rack_us: (100, 300),
            cross_rack_us: (300, 800),
            drop_prob: 0.0,
            dup_prob: 0.0,
        }
    }
}

impl NetConfig {
    /// A lossy network for protocol chaos tests.
    pub fn chaotic(drop_prob: f64, dup_prob: f64) -> Self {
        Self {
            drop_prob,
            dup_prob,
            ..Self::default()
        }
    }

    /// Samples one message latency for the given locality relationship.
    pub fn sample_latency(
        &self,
        rng: &mut SmallRng,
        same_machine: bool,
        same_rack: bool,
    ) -> SimDuration {
        let (lo, hi) = if same_machine {
            self.local_us
        } else if same_rack {
            self.same_rack_us
        } else {
            self.cross_rack_us
        };
        let us = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
        SimDuration::from_micros(us)
    }

    /// Rolls the drop die.
    pub fn dropped(&self, rng: &mut SmallRng) -> bool {
        self.drop_prob > 0.0 && rng.gen_bool(self.drop_prob.clamp(0.0, 1.0))
    }

    /// Rolls the duplication die.
    pub fn duplicated(&self, rng: &mut SmallRng) -> bool {
        self.dup_prob > 0.0 && rng.gen_bool(self.dup_prob.clamp(0.0, 1.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn latency_classes_are_ordered() {
        let cfg = NetConfig::default();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..200 {
            let local = cfg.sample_latency(&mut rng, true, true);
            let rack = cfg.sample_latency(&mut rng, false, true);
            let cross = cfg.sample_latency(&mut rng, false, false);
            assert!(local.as_micros() <= cfg.local_us.1);
            assert!(rack.as_micros() >= cfg.same_rack_us.0);
            assert!(cross.as_micros() >= cfg.cross_rack_us.0);
        }
    }

    #[test]
    fn default_network_is_reliable() {
        let cfg = NetConfig::default();
        let mut rng = SmallRng::seed_from_u64(1);
        assert!(!(0..1000).any(|_| cfg.dropped(&mut rng)));
        assert!(!(0..1000).any(|_| cfg.duplicated(&mut rng)));
    }

    #[test]
    fn chaotic_network_drops_roughly_at_rate() {
        let cfg = NetConfig::chaotic(0.5, 0.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let drops = (0..10_000).filter(|_| cfg.dropped(&mut rng)).count();
        assert!((4_000..6_000).contains(&drops), "drops = {drops}");
    }
}
