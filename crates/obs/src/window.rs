//! Fixed-width windowed time-series: the storage format of the live
//! metrics plane.
//!
//! A [`WindowRing`] aggregates observations into fixed-width time windows
//! (1 s by default) and retains the most recent `retain` windows (60 by
//! default) in a ring buffer, plus running totals over the whole stream.
//! Windows are keyed by their **absolute** index `floor(t / width)`, not by
//! a ring position, which makes [`WindowRing::merge`] associative and
//! commutative: merging per-thread rings in any order yields the same ring
//! as recording the interleaved stream into a single ring (the property the
//! metrics-plane proptests pin down). That in turn is what lets `fuxi-rt`
//! flush per-thread metrics into the shared view periodically instead of
//! only at shutdown.
//!
//! Everything here is plain-`std` and dependency-free so the same types
//! serve the deterministic simulator (sim seconds) and the live runtime
//! (wall seconds since the runtime epoch).

/// Default window width, seconds.
pub const DEFAULT_WINDOW_S: f64 = 1.0;
/// Default number of windows retained (one minute at 1 s windows).
pub const DEFAULT_RETAIN: usize = 60;

/// Aggregates of all observations that landed in one window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowAgg {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values (the windowed *counter* reading).
    pub sum: f64,
    /// Smallest observed value.
    pub min: f64,
    /// Largest observed value.
    pub max: f64,
    /// Most recent observed value (the windowed *gauge* reading).
    pub last: f64,
    /// Timestamp of `last`. Ties resolve to the larger value so merge
    /// stays commutative even for same-instant observations.
    pub last_t: f64,
}

impl Default for WindowAgg {
    fn default() -> Self {
        WindowAgg {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            last: 0.0,
            last_t: f64::NEG_INFINITY,
        }
    }
}

impl WindowAgg {
    /// Folds one observation in.
    pub fn observe(&mut self, t_s: f64, v: f64) {
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        if (t_s, v) >= (self.last_t, self.last) {
            self.last_t = t_s;
            self.last = v;
        }
    }

    /// Combines two aggregates of the same window. Commutative and
    /// associative: `last` is resolved by lexicographic `(last_t, last)`
    /// maximum rather than call order.
    pub fn merge(&mut self, other: &WindowAgg) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        if (other.last_t, other.last) >= (self.last_t, self.last) {
            self.last_t = other.last_t;
            self.last = other.last;
        }
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// A ring of the most recent `retain` windows plus running stream totals.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRing {
    width_s: f64,
    retain: usize,
    /// Highest absolute window index observed so far (`None` when empty).
    head: Option<i64>,
    /// `slots[idx.rem_euclid(retain)]` holds the aggregate for absolute
    /// window `idx` iff the stored index matches; stale entries are
    /// ignored and lazily overwritten.
    slots: Vec<(i64, WindowAgg)>,
    /// Observations ever recorded (including ones older than retention).
    pub total_count: u64,
    /// Sum of every value ever recorded.
    pub total_sum: f64,
}

impl Default for WindowRing {
    fn default() -> Self {
        WindowRing::new(DEFAULT_WINDOW_S, DEFAULT_RETAIN)
    }
}

impl WindowRing {
    /// Ring with the given window width (seconds) and retention count.
    pub fn new(width_s: f64, retain: usize) -> WindowRing {
        let retain = retain.max(1);
        WindowRing {
            width_s: if width_s > 0.0 { width_s } else { DEFAULT_WINDOW_S },
            retain,
            head: None,
            slots: vec![(i64::MIN, WindowAgg::default()); retain],
            total_count: 0,
            total_sum: 0.0,
        }
    }

    /// Window width, seconds.
    pub fn width_s(&self) -> f64 {
        self.width_s
    }

    /// Absolute window index of timestamp `t_s`.
    pub fn index_of(&self, t_s: f64) -> i64 {
        (t_s / self.width_s).floor() as i64
    }

    fn slot_mut(&mut self, idx: i64) -> &mut WindowAgg {
        let retain = self.retain as i64;
        let pos = idx.rem_euclid(retain) as usize;
        let slot = &mut self.slots[pos];
        if slot.0 != idx {
            *slot = (idx, WindowAgg::default());
        }
        &mut slot.1
    }

    /// Records one observation at time `t_s`. Observations older than the
    /// retention horizon still count toward the stream totals but are not
    /// assigned a window.
    pub fn observe(&mut self, t_s: f64, v: f64) {
        self.total_count += 1;
        self.total_sum += v;
        let idx = self.index_of(t_s);
        let head = self.head.map_or(idx, |h| h.max(idx));
        self.head = Some(head);
        if idx > head - self.retain as i64 {
            self.slot_mut(idx).observe(t_s, v);
        }
    }

    /// Merges another ring recorded with the same width/retention.
    /// Associative and commutative; see the module docs.
    pub fn merge(&mut self, other: &WindowRing) {
        debug_assert_eq!(self.width_s, other.width_s, "window width mismatch");
        self.total_count += other.total_count;
        self.total_sum += other.total_sum;
        let head = match (self.head, other.head) {
            (Some(a), Some(b)) => a.max(b),
            (a, b) => match a.or(b) {
                Some(h) => h,
                None => return,
            },
        };
        self.head = Some(head);
        let horizon = head - self.retain as i64;
        for &(idx, ref agg) in &other.slots {
            if idx != i64::MIN && idx > horizon && agg.count > 0 {
                self.slot_mut(idx).merge(agg);
            }
        }
        // Invalidate own windows that fell out of retention when `other`
        // advanced the head past them.
        for slot in &mut self.slots {
            if slot.0 != i64::MIN && slot.0 <= horizon {
                *slot = (i64::MIN, WindowAgg::default());
            }
        }
    }

    /// Populated windows within retention, ascending by absolute index.
    pub fn windows(&self) -> Vec<(i64, WindowAgg)> {
        let Some(head) = self.head else { return Vec::new() };
        let horizon = head - self.retain as i64;
        let mut out: Vec<(i64, WindowAgg)> = self
            .slots
            .iter()
            .filter(|(idx, agg)| *idx != i64::MIN && *idx > horizon && agg.count > 0)
            .cloned()
            .collect();
        out.sort_by_key(|(idx, _)| *idx);
        out
    }

    /// The aggregate for the window containing `t_s`, if populated.
    pub fn window_at(&self, t_s: f64) -> Option<&WindowAgg> {
        let idx = self.index_of(t_s);
        let slot = &self.slots[idx.rem_euclid(self.retain as i64) as usize];
        (slot.0 == idx && slot.1.count > 0).then_some(&slot.1)
    }

    /// Event rate per second over the retained **complete** windows — the
    /// window containing `now_s` is excluded since it is still filling.
    /// Counter-style rings (`observe` with deltas) get events/sec; returns
    /// 0 when no complete window is populated.
    pub fn rate_per_sec(&self, now_s: f64) -> f64 {
        let cur = self.index_of(now_s);
        let ws = self.windows();
        let complete: Vec<&(i64, WindowAgg)> = ws.iter().filter(|(i, _)| *i < cur).collect();
        if complete.is_empty() {
            return 0.0;
        }
        // Span from the oldest complete window to `cur` so idle (empty)
        // windows dilute the rate instead of being skipped.
        let span = (cur - complete[0].0) as f64 * self.width_s;
        let sum: f64 = complete.iter().map(|(_, a)| a.sum).sum();
        sum / span.max(self.width_s)
    }

    /// Most recent gauge reading within retention (`last` of the newest
    /// populated window).
    pub fn latest(&self) -> Option<f64> {
        self.windows().last().map(|(_, a)| a.last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_keyed_by_absolute_index() {
        let mut r = WindowRing::new(1.0, 4);
        r.observe(0.5, 10.0);
        r.observe(1.5, 20.0);
        r.observe(1.9, 30.0);
        let ws = r.windows();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].0, 0);
        assert_eq!(ws[1].0, 1);
        assert_eq!(ws[1].1.sum, 50.0);
        assert_eq!(ws[1].1.last, 30.0);
        assert_eq!(ws[1].1.min, 20.0);
    }

    #[test]
    fn old_windows_fall_out_of_retention() {
        let mut r = WindowRing::new(1.0, 3);
        r.observe(0.5, 1.0);
        r.observe(10.5, 1.0);
        let ws = r.windows();
        assert_eq!(ws.len(), 1, "window 0 must be evicted by window 10");
        assert_eq!(ws[0].0, 10);
        assert_eq!(r.total_count, 2, "totals still count evicted data");
    }

    #[test]
    fn merge_matches_single_stream() {
        let obs = [(0.2, 1.0), (0.9, 2.0), (1.1, 3.0), (2.7, 4.0), (2.8, 5.0)];
        let mut single = WindowRing::new(1.0, 8);
        for &(t, v) in &obs {
            single.observe(t, v);
        }
        let mut a = WindowRing::new(1.0, 8);
        let mut b = WindowRing::new(1.0, 8);
        for (i, &(t, v)) in obs.iter().enumerate() {
            if i % 2 == 0 { a.observe(t, v) } else { b.observe(t, v) }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        assert_eq!(ab.windows(), single.windows());
        assert_eq!(ba.windows(), single.windows());
        assert_eq!(ab.total_count, single.total_count);
    }

    #[test]
    fn merge_far_apart_heads_is_order_independent() {
        let mut old = WindowRing::new(1.0, 4);
        old.observe(0.5, 1.0);
        let mut new = WindowRing::new(1.0, 4);
        new.observe(100.5, 2.0);
        let mut a = old.clone();
        a.merge(&new);
        let mut b = new.clone();
        b.merge(&old);
        assert_eq!(a.windows(), b.windows());
        assert_eq!(a.windows().len(), 1, "stale window must drop either way");
        assert_eq!(a.total_count, 2);
    }

    #[test]
    fn rate_excludes_current_window() {
        let mut r = WindowRing::new(1.0, 60);
        for i in 0..10 {
            r.observe(i as f64 + 0.5, 5.0); // 5 events/s for 10s
        }
        let rate = r.rate_per_sec(9.5); // window 9 still filling
        assert!((rate - 5.0).abs() < 1e-9, "rate {rate}");
        assert_eq!(r.latest(), Some(5.0));
    }
}
