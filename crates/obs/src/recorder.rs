//! The [`Tracer`]: event log, span sink, and per-actor flight recorder.

use std::collections::HashMap;

use crate::trace::{SpanKind, SpanRecord, TraceEvent, TraceId, TraceRecord};

/// Tracer tuning knobs.
#[derive(Debug, Clone)]
pub struct TracerConfig {
    /// Master switch. When `false` every record call is a no-op branch.
    pub enabled: bool,
    /// Keep the full event log (`records`) for export. The flight rings
    /// are kept regardless — they are bounded.
    pub log_events: bool,
    /// Capacity of each actor's flight ring.
    pub ring_capacity: usize,
    /// A flight dump fires when at least this many distinct machines go
    /// down within [`TracerConfig::storm_window_s`].
    pub storm_threshold: usize,
    /// Sliding window for node-down storm detection, seconds.
    pub storm_window_s: f64,
}

impl Default for TracerConfig {
    fn default() -> Self {
        TracerConfig {
            enabled: true,
            log_events: true,
            ring_capacity: 256,
            storm_threshold: 3,
            storm_window_s: 10.0,
        }
    }
}

/// Fixed-capacity ring of the most recent [`TraceRecord`]s for one actor.
#[derive(Debug, Clone)]
pub struct FlightRing {
    buf: Vec<TraceRecord>,
    head: usize,
    cap: usize,
}

impl FlightRing {
    /// New empty ring holding at most `cap` records.
    pub fn new(cap: usize) -> FlightRing {
        FlightRing {
            buf: Vec::with_capacity(cap.min(64)),
            head: 0,
            cap: cap.max(1),
        }
    }

    /// Records one event, evicting the oldest when full.
    pub fn push(&mut self, rec: TraceRecord) {
        if self.buf.len() < self.cap {
            self.buf.push(rec);
        } else {
            self.buf[self.head] = rec;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Number of records currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf[self.head..].iter().chain(self.buf[..self.head].iter())
    }
}

/// A flight-recorder dump: the frozen contents of every actor's ring at
/// the moment a trigger fired.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// Simulated time of the trigger, seconds.
    pub t_s: f64,
    /// What fired it ("master_failover", "node_down_storm", "invariant").
    pub reason: &'static str,
    /// Ring contents per actor, oldest-first, sorted by actor id.
    pub rings: Vec<(u32, Vec<TraceRecord>)>,
}

impl FlightDump {
    /// Total events across all dumped rings.
    pub fn total_events(&self) -> usize {
        self.rings.iter().map(|(_, r)| r.len()).sum()
    }
}

/// Per-world tracer. Owned by the simulation kernel; actors reach it
/// through their context. All methods are cheap no-ops when disabled.
#[derive(Debug, Default)]
pub struct Tracer {
    cfg: TracerConfig,
    /// Full event log (only when `cfg.log_events`).
    pub records: Vec<TraceRecord>,
    /// Completed spans.
    pub spans: Vec<SpanRecord>,
    /// Flight dumps captured so far.
    pub dumps: Vec<FlightDump>,
    rings: HashMap<u32, FlightRing>,
    /// Recent node-down times for storm detection: (t_s, machine).
    recent_downs: Vec<(f64, u32)>,
}

impl Tracer {
    /// Tracer with the given config.
    pub fn new(cfg: TracerConfig) -> Tracer {
        Tracer {
            cfg,
            records: Vec::new(),
            spans: Vec::new(),
            dumps: Vec::new(),
            rings: HashMap::new(),
            recent_downs: Vec::new(),
        }
    }

    /// Whether recording is on at all.
    pub fn enabled(&self) -> bool {
        self.cfg.enabled
    }

    /// The active config.
    pub fn config(&self) -> &TracerConfig {
        &self.cfg
    }

    /// Records one event from `actor` at sim time `t_s` under `trace`.
    /// Also feeds the actor's flight ring and the storm detector.
    pub fn record(&mut self, t_s: f64, actor: u32, trace: TraceId, event: TraceEvent) {
        if !self.cfg.enabled {
            return;
        }
        let rec = TraceRecord {
            t_s,
            actor,
            trace,
            event,
        };
        let cap = self.cfg.ring_capacity;
        self.rings
            .entry(actor)
            .or_insert_with(|| FlightRing::new(cap))
            .push(rec);
        if self.cfg.log_events {
            self.records.push(rec);
        }
        if let TraceEvent::NodeDown { machine } = event {
            self.note_node_down(t_s, machine);
        }
    }

    /// Records a completed span.
    pub fn span(&mut self, t_s: f64, actor: u32, trace: TraceId, kind: SpanKind, wall_s: f64) {
        if !self.cfg.enabled {
            return;
        }
        self.spans.push(SpanRecord {
            t_s,
            actor,
            trace,
            kind,
            wall_s,
        });
    }

    fn note_node_down(&mut self, t_s: f64, machine: u32) {
        let horizon = t_s - self.cfg.storm_window_s;
        self.recent_downs.retain(|&(t, _)| t >= horizon);
        if !self.recent_downs.iter().any(|&(_, m)| m == machine) {
            self.recent_downs.push((t_s, machine));
        }
        if self.recent_downs.len() >= self.cfg.storm_threshold {
            self.dump(t_s, "node_down_storm");
            self.recent_downs.clear();
        }
    }

    /// Freezes every actor's ring into a [`FlightDump`] and records a
    /// `FlightDumped` marker event (visible in exports).
    pub fn dump(&mut self, t_s: f64, reason: &'static str) {
        if !self.cfg.enabled {
            return;
        }
        let mut rings: Vec<(u32, Vec<TraceRecord>)> = self
            .rings
            .iter()
            .filter(|(_, r)| !r.is_empty())
            .map(|(&a, r)| (a, r.iter().copied().collect()))
            .collect();
        rings.sort_by_key(|&(a, _)| a);
        let dump = FlightDump { t_s, reason, rings };
        let total = dump.total_events() as u32;
        self.dumps.push(dump);
        self.record(
            t_s,
            u32::MAX,
            TraceId::NONE,
            TraceEvent::FlightDumped {
                reason,
                events: total,
            },
        );
    }

    /// The flight ring of `actor`, if it has recorded anything.
    pub fn ring(&self, actor: u32) -> Option<&FlightRing> {
        self.rings.get(&actor)
    }

    /// Folds another tracer's output into this one. The live runtime gives
    /// every actor thread its own tracer and merges them at shutdown:
    /// events, spans, and dumps concatenate and re-sort by timestamp so
    /// the combined export reads as one time-ordered stream. Flight rings
    /// are not merged — a thread's ring history is only meaningful inside
    /// the dumps it already froze.
    pub fn absorb(&mut self, other: Tracer) {
        self.records.extend(other.records);
        self.spans.extend(other.spans);
        self.dumps.extend(other.dumps);
        let by_t = |a: f64, b: f64| a.partial_cmp(&b).unwrap_or(std::cmp::Ordering::Equal);
        self.records.sort_by(|a, b| by_t(a.t_s, b.t_s));
        self.spans.sort_by(|a, b| by_t(a.t_s, b.t_s));
        self.dumps.sort_by(|a, b| by_t(a.t_s, b.t_s));
    }

    /// All records carrying `trace`, in recording order. Requires
    /// `log_events`.
    pub fn by_trace(&self, trace: TraceId) -> impl Iterator<Item = &TraceRecord> {
        self.records.iter().filter(move |r| r.trace == trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(machine: u32) -> TraceEvent {
        TraceEvent::NodeDown { machine }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut r = FlightRing::new(3);
        for i in 0..5u32 {
            r.push(TraceRecord {
                t_s: i as f64,
                actor: 1,
                trace: TraceId::NONE,
                event: ev(i),
            });
        }
        let times: Vec<f64> = r.iter().map(|x| x.t_s).collect();
        assert_eq!(times, vec![2.0, 3.0, 4.0]);
    }

    #[test]
    fn storm_triggers_dump() {
        let mut t = Tracer::new(TracerConfig {
            storm_threshold: 3,
            storm_window_s: 10.0,
            ..TracerConfig::default()
        });
        t.record(1.0, 7, TraceId::NONE, ev(1));
        t.record(2.0, 7, TraceId::NONE, ev(2));
        assert!(t.dumps.is_empty());
        t.record(3.0, 7, TraceId::NONE, ev(3));
        assert_eq!(t.dumps.len(), 1);
        assert_eq!(t.dumps[0].reason, "node_down_storm");
        assert!(t.dumps[0].total_events() >= 3);
        // Marker event was appended to the log.
        assert!(matches!(
            t.records.last().unwrap().event,
            TraceEvent::FlightDumped { .. }
        ));
    }

    #[test]
    fn storm_window_slides() {
        let mut t = Tracer::new(TracerConfig {
            storm_threshold: 3,
            storm_window_s: 10.0,
            ..TracerConfig::default()
        });
        t.record(1.0, 7, TraceId::NONE, ev(1));
        t.record(20.0, 7, TraceId::NONE, ev(2));
        t.record(21.0, 7, TraceId::NONE, ev(3));
        assert!(t.dumps.is_empty(), "downs outside the window must not count");
        t.record(22.0, 7, TraceId::NONE, ev(4));
        assert_eq!(t.dumps.len(), 1);
    }

    #[test]
    fn repeated_same_machine_is_one_down() {
        let mut t = Tracer::new(TracerConfig {
            storm_threshold: 2,
            ..TracerConfig::default()
        });
        t.record(1.0, 7, TraceId::NONE, ev(5));
        t.record(1.5, 7, TraceId::NONE, ev(5));
        assert!(t.dumps.is_empty(), "one machine flapping is not a storm");
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = Tracer::new(TracerConfig {
            enabled: false,
            ..TracerConfig::default()
        });
        t.record(1.0, 1, TraceId::from_job(0), ev(1));
        t.span(1.0, 1, TraceId::NONE, SpanKind::SchedDecision, 1e-6);
        t.dump(1.0, "invariant");
        assert!(t.records.is_empty() && t.spans.is_empty() && t.dumps.is_empty());
    }

    #[test]
    fn by_trace_filters() {
        let mut t = Tracer::new(TracerConfig::default());
        t.record(1.0, 1, TraceId::from_job(1), ev(1));
        t.record(2.0, 1, TraceId::from_job(2), ev(2));
        t.record(3.0, 2, TraceId::from_job(1), ev(3));
        assert_eq!(t.by_trace(TraceId::from_job(1)).count(), 2);
    }
}
