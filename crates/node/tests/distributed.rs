//! Multi-node cluster tests over real TCP (all nodes in one test process,
//! each with its own runtime, connected through the hub's listener — the
//! same code paths `bench_live --distributed` runs across OS processes).

use fuxi_cluster::{ClusterConfig, DeployTopology, SubmitOpts};
use fuxi_node::LiveNode;
use fuxi_sim::SimDuration;
use fuxi_workloads::mapreduce::{wordcount_job, MapReduceParams};
use std::time::{Duration, Instant};

fn test_config(seed: u64) -> ClusterConfig {
    let mut cfg = ClusterConfig {
        n_machines: 6,
        rack_size: 3,
        seed,
        ..ClusterConfig::default()
    };
    // Tight failover clocks so the test stays fast: 1.5 s lease, 0.5 s
    // keepalive (well under the lease as the master config requires).
    cfg.master.lease_ttl = SimDuration::from_secs_f64(1.5);
    cfg.master.keepalive_interval = SimDuration::from_secs_f64(0.5);
    cfg
}

fn small_job(i: usize) -> fuxi_job::JobDesc {
    wordcount_job(&MapReduceParams {
        maps: 2,
        reduces: 1,
        map_duration_s: 0.05,
        reduce_duration_s: 0.05,
        jitter: 0.1,
        max_workers: 2,
        binary_mb: 1.0,
        map_output_mb: 0.2,
        output_file: Some(format!("pangu://dist/out-{i}")),
        ..Default::default()
    })
}

/// Boots the standard 4-node topology in-process: hub (lock + client),
/// master A, master B, agent fleet. Returns (hub, leaves).
fn boot_cluster(seed: u64) -> (LiveNode, Vec<LiveNode>) {
    let deploy = DeployTopology::distributed(test_config(seed), "127.0.0.1:0");
    let hub = LiveNode::boot(deploy.clone(), 0, None).expect("hub boots");
    let addr = hub.hub_addr().expect("hub bound").to_string();
    let leaves: Vec<LiveNode> = (1..deploy.nodes.len())
        .map(|i| LiveNode::boot(deploy.clone(), i, Some(&addr)).expect("leaf boots"))
        .collect();
    assert!(
        hub.wait_connected(leaves.len() as u32, Duration::from_secs(10)),
        "leaves failed to connect"
    );
    (hub, leaves)
}

fn wait_master(hub: &LiveNode, timeout: Duration) -> fuxi_sim::ActorId {
    let start = Instant::now();
    while start.elapsed() < timeout {
        if let Some(m) = hub.current_master() {
            return m;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("no master elected within {timeout:?}");
}

#[test]
fn distributed_cluster_completes_jobs_across_process_windows() {
    let (mut hub, _leaves) = boot_cluster(11);
    let master = wait_master(&hub, Duration::from_secs(10));
    // The elected master lives in a master node's id window, not the hub's.
    assert!(
        master.node_index() == 1 || master.node_index() == 2,
        "master {master:?} not in a master window"
    );
    const JOBS: usize = 8;
    for i in 0..JOBS {
        hub.submit(&small_job(i), &SubmitOpts::default());
    }
    let done = hub.wait_n_done(JOBS, Duration::from_secs(60));
    assert_eq!(done, JOBS, "jobs stalled in distributed mode");
    assert!(hub.all_jobs().iter().all(|(_, s)| s.done.as_ref().unwrap().0));
    assert_eq!(hub.duplicate_finishes(), 0);
}

#[test]
fn severed_agent_link_reconnects_and_reregisters_within_backoff_budget() {
    let (mut hub, leaves) = boot_cluster(12);
    wait_master(&hub, Duration::from_secs(10));
    let agents = &leaves[2]; // node 3: the agent fleet
    const JOBS: usize = 10;
    for i in 0..JOBS {
        hub.submit(&small_job(i), &SubmitOpts::default());
    }
    // Let some work start flowing, then kill the TCP peer mid-heartbeat.
    hub.wait_n_done(2, Duration::from_secs(30));
    agents.sever_link();
    // Backoff budget: base 50 ms, cap 2 s — reconnect must land well
    // inside a few seconds.
    let start = Instant::now();
    while agents.reconnects() == 0 && start.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        agents.reconnects() >= 1,
        "agent node did not reconnect within the backoff budget"
    );
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "reconnect took {:?}, over the backoff budget",
        start.elapsed()
    );
    // Re-registered agents keep heartbeating and the cluster drains every
    // job exactly once — no lost and no duplicated completions.
    let done = hub.wait_n_done(JOBS, Duration::from_secs(90));
    assert_eq!(done, JOBS, "jobs lost after reconnect");
    assert!(hub.all_jobs().iter().all(|(_, s)| s.done.as_ref().unwrap().0));
    assert_eq!(hub.duplicate_finishes(), 0, "duplicate allocations leaked");
}

#[test]
fn master_kill_fails_over_to_standby_in_other_process_window() {
    let (mut hub, leaves) = boot_cluster(13);
    let first = wait_master(&hub, Duration::from_secs(10));
    let victim_node = first.node_index() as usize;
    assert!(victim_node == 1 || victim_node == 2);
    const JOBS: usize = 8;
    for i in 0..JOBS {
        hub.submit(&small_job(i), &SubmitOpts::default());
    }
    hub.wait_n_done(2, Duration::from_secs(30));

    // Kill the primary's actor and hard-close its node's link: the
    // in-process equivalent of SIGKILLing that OS process.
    let victim = &leaves[victim_node - 1];
    victim.rt.kill_actor(first);
    victim.sever_link();

    // The lease (1.5 s) must lapse and the standby take over.
    let start = Instant::now();
    let mut second = hub.current_master();
    while start.elapsed() < Duration::from_secs(15) {
        second = hub.current_master();
        if second.is_some_and(|m| m != first) {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let second = second.expect("a master re-registered");
    assert_ne!(second, first, "standby never took over");
    assert_ne!(
        second.node_index(),
        first.node_index(),
        "new master should live in the other master process"
    );
    let done = hub.wait_n_done(JOBS, Duration::from_secs(90));
    assert_eq!(done, JOBS, "jobs lost across master failover");
    assert_eq!(hub.duplicate_finishes(), 0);
}
