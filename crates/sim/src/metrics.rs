//! Metrics recording: counters, time series and log-bucketed histograms.
//!
//! Every experiment binary reads its table/figure data out of the world's
//! [`Metrics`] sink after the run.

use std::collections::HashMap;

/// A log-bucketed latency/size histogram with exact count/sum/min/max.
/// Buckets are powers of `2^(1/4)` (≈19% wide), giving percentile estimates
/// within a few percent across nine orders of magnitude — plenty for the
/// paper's "average 0.88 ms, peak below 3 ms" style of claims.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

const BUCKETS: usize = 160; // covers [1e-9, ~1e3) with 4 buckets per octave
const SCALE: f64 = 4.0; // buckets per doubling

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates a new instance with the given configuration.
    pub fn new() -> Self {
        Self {
            buckets: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    fn bucket_of(v: f64) -> usize {
        if v <= 1e-9 {
            return 0;
        }
        let idx = ((v / 1e-9).log2() * SCALE).floor() as isize;
        idx.clamp(0, BUCKETS as isize - 1) as usize
    }

    /// Lower bound of bucket `i`.
    fn bucket_value(i: usize) -> f64 {
        1e-9 * 2f64.powf(i as f64 / SCALE)
    }

    /// Record.
    pub fn record(&mut self, v: f64) {
        self.buckets[Self::bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of containers.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Min.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Max.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Approximate quantile `q` in [0, 1].
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(i + 1).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Merge.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// The per-world metrics sink.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: HashMap<String, u64>,
    gauges: HashMap<String, f64>,
    series: HashMap<String, Vec<(f64, f64)>>,
    histograms: HashMap<String, Histogram>,
}

impl Metrics {
    /// Creates a new instance with the given configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments counter `name` by `by`.
    pub fn count(&mut self, name: &str, by: u64) {
        match self.counters.get_mut(name) {
            Some(c) => *c += by,
            None => {
                self.counters.insert(name.to_owned(), by);
            }
        }
    }

    /// Counter.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Adds `delta` (may be negative) to gauge `name`. Gauges let many
    /// actors maintain one cluster-wide quantity (e.g. the paper's
    /// `AM_obtained` / `FA_planned` curves) that a sampler turns into a
    /// series.
    pub fn gauge_add(&mut self, name: &str, delta: f64) {
        match self.gauges.get_mut(name) {
            Some(g) => *g += delta,
            None => {
                self.gauges.insert(name.to_owned(), delta);
            }
        }
    }

    /// Gauge.
    pub fn gauge(&self, name: &str) -> f64 {
        self.gauges.get(name).copied().unwrap_or(0.0)
    }

    /// Appends `(t_seconds, value)` to time series `name`.
    pub fn push_series(&mut self, name: &str, t_s: f64, v: f64) {
        match self.series.get_mut(name) {
            Some(s) => s.push((t_s, v)),
            None => {
                self.series.insert(name.to_owned(), vec![(t_s, v)]);
            }
        }
    }

    /// Series.
    pub fn series(&self, name: &str) -> &[(f64, f64)] {
        self.series.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Series names.
    pub fn series_names(&self) -> impl Iterator<Item = &str> {
        self.series.keys().map(String::as_str)
    }

    /// Records `v` into histogram `name`.
    pub fn record(&mut self, name: &str, v: f64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.record(v),
            None => {
                let mut h = Histogram::new();
                h.record(v);
                self.histograms.insert(name.to_owned(), h);
            }
        }
    }

    /// Histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Mean of a series' values (time-unweighted).
    pub fn series_mean(&self, name: &str) -> f64 {
        let s = self.series(name);
        if s.is_empty() {
            0.0
        } else {
            s.iter().map(|&(_, v)| v).sum::<f64>() / s.len() as f64
        }
    }

    /// Counters.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.count("msgs", 1);
        m.count("msgs", 2);
        assert_eq!(m.counter("msgs"), 3);
        assert_eq!(m.counter("absent"), 0);
    }

    #[test]
    fn series_append_and_mean() {
        let mut m = Metrics::new();
        m.push_series("util", 0.0, 10.0);
        m.push_series("util", 1.0, 20.0);
        assert_eq!(m.series("util").len(), 2);
        assert!((m.series_mean("util") - 15.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_basic_stats() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert!((h.mean() - 2.5).abs() < 1e-12);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 4.0);
    }

    #[test]
    fn histogram_quantiles_are_close() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.record(i as f64 * 1e-3); // 1ms .. 1s
        }
        let p50 = h.quantile(0.5);
        assert!(p50 > 0.4 && p50 < 0.65, "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!(p99 > 0.9 && p99 <= 1.01, "p99 = {p99}");
        assert!(h.quantile(1.0) <= 1.0 + 1e-9);
    }

    #[test]
    fn histogram_merge_combines_counts() {
        let mut a = Histogram::new();
        a.record(0.001);
        let mut b = Histogram::new();
        b.record(0.1);
        b.record(0.2);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.max(), 0.2);
        assert_eq!(a.min(), 0.001);
    }

    #[test]
    fn metrics_histogram_via_record() {
        let mut m = Metrics::new();
        m.record("lat", 0.5);
        m.record("lat", 1.5);
        assert_eq!(m.histogram("lat").unwrap().count(), 2);
        assert!(m.histogram("none").is_none());
    }

    #[test]
    fn empty_histogram_is_sane() {
        let h = Histogram::new();
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
    }
}
