//! # fuxi-bench
//!
//! Experiment binaries regenerating every table and figure of the paper's
//! evaluation (Section 5), plus criterion micro-benchmarks of the
//! scheduler hot paths. See DESIGN.md's experiment index for the mapping.
//!
//! All binaries accept `--scale <f>` (cluster/data scale relative to the
//! paper's 5,000-node testbed; defaults keep runs laptop-sized),
//! `--duration <s>` where applicable, and `--seed <n>`.

use fuxi_cluster::{Cluster, ClusterConfig};
use fuxi_proto::topology::MachineSpec;
use fuxi_proto::ResourceVec;
use fuxi_sim::SimDuration;
use fuxi_workloads::synthetic::SyntheticMix;

pub mod tracetool;

/// Common CLI arguments.
#[derive(Debug, Clone)]
pub struct Args {
    pub scale: f64,
    pub duration_s: u64,
    pub seed: u64,
    /// `--trace-out <dir>`: export the observability stream (JSONL event
    /// log, Chrome trace, metrics snapshot) of the run into a directory.
    pub trace_out: Option<String>,
}

impl Args {
    /// Parses `--scale`, `--duration`, `--seed` with the given defaults.
    pub fn parse(default_scale: f64, default_duration_s: u64) -> Args {
        let mut args = Args {
            scale: default_scale,
            duration_s: default_duration_s,
            seed: 2014,
            trace_out: None,
        };
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--scale" => {
                    args.scale = argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(args.scale);
                    i += 2;
                }
                "--duration" => {
                    args.duration_s = argv
                        .get(i + 1)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(args.duration_s);
                    i += 2;
                }
                "--seed" => {
                    args.seed = argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(args.seed);
                    i += 2;
                }
                "--full" => {
                    args.scale = 1.0;
                    i += 1;
                }
                "--trace-out" => {
                    args.trace_out = argv.get(i + 1).cloned();
                    i += 2;
                }
                // Mode flags consumed by individual binaries.
                "--petasort" => {
                    i += 1;
                }
                other => {
                    eprintln!("ignoring unknown argument {other}");
                    i += 1;
                }
            }
        }
        args
    }
}

/// Warns when timing-sensitive experiments run without optimizations.
pub fn warn_if_debug() {
    #[cfg(debug_assertions)]
    eprintln!(
        "WARNING: debug build — wall-clock scheduling times (Figure 9) are \
         only meaningful with --release"
    );
}

/// The paper's testbed node for the synthetic experiment: 2×2.20 GHz 6-core
/// Xeon E5-2430 with hyper-threading (24 hardware threads — Figure 10(b)'s
/// CPU axis tops out near 120k cores over 5,000 nodes) and 96 GB memory.
pub fn synthetic_machine_spec() -> MachineSpec {
    MachineSpec {
        resources: ResourceVec::cores_mb(24, 96 * 1024),
        ..MachineSpec::default()
    }
}

/// Outcome of the §5.2 synthetic-workload experiment.
pub struct SyntheticOutcome {
    pub cluster: Cluster,
    pub stats: fuxi_cluster::SyntheticRunStats,
    pub machines: usize,
    pub concurrent: usize,
    pub duration_s: u64,
}

/// Runs the §5.2 experiment: `5000×scale` machines, `1000×scale`
/// concurrent jobs from the paper's WordCount/Terasort mix, for
/// `duration_s` of simulated time. Instance counts are unscaled so the
/// demand-to-capacity ratio matches the paper.
pub fn run_synthetic_experiment(args: &Args) -> SyntheticOutcome {
    run_synthetic_experiment_with_obs(args, fuxi_sim::TracerConfig::default())
}

/// [`run_synthetic_experiment`] with an explicit tracer configuration —
/// `bench_snapshot` runs the experiment twice (tracing on / off) to bound
/// the observability overhead on the Figure 9 decision path.
pub fn run_synthetic_experiment_with_obs(
    args: &Args,
    obs: fuxi_sim::TracerConfig,
) -> SyntheticOutcome {
    let machines = ((5000.0 * args.scale).round() as usize).max(20);
    let concurrent = ((1000.0 * args.scale).round() as usize).max(4);
    let mut cluster = Cluster::new(ClusterConfig {
        n_machines: machines,
        rack_size: 50,
        machine_spec: synthetic_machine_spec(),
        seed: args.seed,
        obs,
        ..ClusterConfig::default()
    });
    // Large jobs saturate the scaled cluster exactly as in the paper; cap
    // the per-job worker count so thousands of jobs share the cluster.
    let mut mix = SyntheticMix::new(args.seed, 1.0);
    let stats = fuxi_cluster::scenario::run_synthetic(
        &mut cluster,
        &mut mix,
        concurrent,
        SimDuration::from_secs(args.duration_s),
    );
    SyntheticOutcome {
        cluster,
        stats,
        machines,
        concurrent,
        duration_s: args.duration_s,
    }
}

/// Formats a paper-vs-measured row.
pub fn row(label: &str, paper: &str, measured: &str) -> Vec<String> {
    vec![label.to_owned(), paper.to_owned(), measured.to_owned()]
}

/// Shared engine setups for the Figure 9 scheduling micro-benchmarks, used
/// by both the criterion benches and the `bench_snapshot` baseline binary.
pub mod scenarios {
    use fuxi_core::quota::QuotaManager;
    use fuxi_core::scheduler::{Engine, EngineConfig};
    use fuxi_proto::request::{RequestDelta, ScheduleUnitDef};
    use fuxi_proto::topology::{MachineSpec, TopologyBuilder};
    use fuxi_proto::{AppId, Priority, QuotaGroupId, ResourceVec, UnitId};

    /// The benchmark schedule unit: {0.5 CPU, 2 GB} — the paper's
    /// "{2CPU, 10GB} frees up" example scaled to pack 48 per machine.
    pub fn sched_unit() -> ResourceVec {
        ResourceVec::new(500, 2048)
    }

    fn build(n_racks: usize, per_rack: usize, cores: u64, reference: bool) -> Engine {
        let topo = TopologyBuilder::new()
            .uniform(n_racks, per_rack, MachineSpec {
                resources: ResourceVec::cores_mb(cores, 96 * 1024),
                ..MachineSpec::default()
            })
            .build();
        // Preemption off: these benches time the waiting-queue decision, and
        // app 0's urgency would otherwise evict the whole cluster at setup.
        let cfg = EngineConfig {
            enable_priority_preemption: false,
            enable_quota_preemption: false,
            reference_mode: reference,
            ..EngineConfig::default()
        };
        let mut e = Engine::new(topo, cfg, QuotaManager::new());
        let unit = sched_unit();
        let machines = (n_racks * per_rack) as u64;
        // Demand = 2× the 48-units-per-machine capacity, spread over 1,000
        // apps; app 0 is the most urgent waiter with unbounded demand.
        let per_app = (machines * 48 * 2 / 1000).max(1);
        for a in 0..1000u32 {
            let prio = if a == 0 { Priority(1) } else { Priority(1000) };
            e.attach_app(
                AppId(a),
                QuotaGroupId(0),
                vec![ScheduleUnitDef::new(UnitId(0), prio, unit.clone())],
            );
            let want = if a == 0 { 1_000_000 } else { per_app as i64 };
            e.apply_deltas(AppId(a), &[RequestDelta::cluster(UnitId(0), want)]);
        }
        e.drain_events();
        e
    }

    /// Exactly-full cluster: 24-core/96 GB machines where 48 × {0.5 CPU,
    /// 2 GB} units exhaust CPU and memory simultaneously. Every machine ends
    /// with zero free in both dimensions; the hot path is the return →
    /// decide → grant cycle.
    pub fn saturated_engine(n_racks: usize, per_rack: usize, reference: bool) -> Engine {
        build(n_racks, per_rack, 24, reference)
    }

    /// Fragmented saturation: 32-core/96 GB machines where memory exhausts
    /// after 48 units, stranding 8 CPU cores free on every machine. All
    /// machines stay nonempty but the unit never fits anywhere — the
    /// worst case for a naive free-machine scan (it walks its full
    /// `max_cluster_scan` budget and finds nothing) and the best case for
    /// the hierarchical fit index (one root rejection).
    pub fn fragmented_engine(n_racks: usize, per_rack: usize, reference: bool) -> Engine {
        build(n_racks, per_rack, 32, reference)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_experiment_smoke() {
        // A tiny run must produce scheduling-time samples and utilization
        // series — the raw material of Fig 9 / Fig 10 / Table 2.
        let args = Args {
            scale: 0.005, // 25 machines, 5 concurrent jobs
            duration_s: 120,
            seed: 7,
            trace_out: None,
        };
        let out = run_synthetic_experiment(&args);
        let m = out.cluster.world.metrics();
        assert!(m.histogram("fm.sched_s").map(|h| h.count()).unwrap_or(0) > 10);
        assert!(!m.series("fm.planned_mem_mb").is_empty());
        assert!(!m.series("am.obtained_mem_mb").is_empty());
        assert!(out.stats.jobs_submitted >= 5);
    }
}
