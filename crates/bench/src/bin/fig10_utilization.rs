//! Regenerates **Figure 10** — planned memory and CPU usage when 1,000
//! jobs are simultaneously launched: the four curves FM_total, FM_planned,
//! AM_obtained, FA_planned and their steady-state utilization percentages.
//!
//! Run: `cargo run --release -p fuxi-bench --bin fig10_utilization -- [--scale 0.04] [--duration 900]`

use fuxi_cluster::report::{print_table, series_mean_window, sparkline};

fn main() {
    let args = fuxi_bench::Args::parse(0.04, 600);
    println!(
        "Synthetic workload: scale {} → {} machines, {} concurrent jobs, {}s simulated",
        args.scale,
        ((5000.0 * args.scale) as usize).max(20),
        ((1000.0 * args.scale) as usize).max(4),
        args.duration_s
    );
    let out = fuxi_bench::run_synthetic_experiment(&args);
    let m = out.cluster.world.metrics();
    // Steady state: skip the ramp-up third.
    let t_end = args.duration_s as f64;
    let (w0, w1) = (t_end / 3.0, t_end);
    let total_mem = series_mean_window(m, "fm.total_mem_mb", w0, w1);
    let planned_mem = series_mean_window(m, "fm.planned_mem_mb", w0, w1);
    let obtained_mem = series_mean_window(m, "am.obtained_mem_mb", w0, w1);
    let fa_mem = series_mean_window(m, "fa.planned_mem_mb", w0, w1);
    let total_cpu = series_mean_window(m, "fm.total_cpu_milli", w0, w1);
    let planned_cpu = series_mean_window(m, "fm.planned_cpu_milli", w0, w1);
    let obtained_cpu = series_mean_window(m, "am.obtained_cpu_milli", w0, w1);
    let fa_cpu = series_mean_window(m, "fa.planned_cpu_milli", w0, w1);
    let pct = |x: f64, t: f64| if t > 0.0 { 100.0 * x / t } else { 0.0 };
    print_table(
        "Figure 10(a): memory utilization (steady-state means)",
        &["curve", "paper", "measured"],
        &[
            fuxi_bench::row(
                "FM_total",
                "442 TB (100%)",
                &format!("{:.1} TB (100%)", total_mem / 1024.0 / 1024.0),
            ),
            fuxi_bench::row(
                "FM_planned",
                "429.3 TB (97.1%)",
                &format!(
                    "{:.1} TB ({:.1}%)",
                    planned_mem / 1024.0 / 1024.0,
                    pct(planned_mem, total_mem)
                ),
            ),
            fuxi_bench::row(
                "AM_obtained",
                "424.6 TB (95.9%)",
                &format!(
                    "{:.1} TB ({:.1}%)",
                    obtained_mem / 1024.0 / 1024.0,
                    pct(obtained_mem, total_mem)
                ),
            ),
            fuxi_bench::row(
                "FA_planned",
                "421.5 TB (95.2%)",
                &format!(
                    "{:.1} TB ({:.1}%)",
                    fa_mem / 1024.0 / 1024.0,
                    pct(fa_mem, total_mem)
                ),
            ),
        ],
    );
    print_table(
        "Figure 10(b): CPU utilization (steady-state means)",
        &["curve", "paper", "measured"],
        &[
            fuxi_bench::row(
                "FM_total",
                "~120k cores (100%)",
                &format!("{:.1}k cores (100%)", total_cpu / 1e3 / 1e3),
            ),
            fuxi_bench::row(
                "FM_planned",
                "92.3%",
                &format!("{:.1}%", pct(planned_cpu, total_cpu)),
            ),
            fuxi_bench::row(
                "AM_obtained",
                "91.3%",
                &format!("{:.1}%", pct(obtained_cpu, total_cpu)),
            ),
            fuxi_bench::row(
                "FA_planned",
                "-",
                &format!("{:.1}%", pct(fa_cpu, total_cpu)),
            ),
        ],
    );
    println!("\nmemory curves over time:");
    for name in [
        "fm.total_mem_mb",
        "fm.planned_mem_mb",
        "am.obtained_mem_mb",
        "fa.planned_mem_mb",
    ] {
        println!("  {:22} {}", name, sparkline(m.series(name), 70));
    }
    println!(
        "\nShape claims reproduced: FM_planned ≳ AM_obtained ≳ FA_planned, all\n\
         within a few percent of FM_total once the cluster saturates — the gaps\n\
         are grant-propagation and worker-start delays, exactly the paper's\n\
         reading (\"gaps among these curves can be regarded as the overheads\n\
         of master's ability to process requests\")."
    );
}
