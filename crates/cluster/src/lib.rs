#![warn(missing_docs)]
//! # fuxi-cluster
//!
//! The end-to-end harness: builds a simulated cluster (lock service,
//! FuxiMaster pair, one FuxiAgent per machine, a client), wires the
//! JobMaster/TaskWorker factories, and offers experiment drivers for the
//! paper's evaluation scenarios.
//!
//! * [`harness`] — [`harness::Cluster`]: construction, job submission,
//!   run-loop helpers, failover and fault controls;
//! * [`scenario`] — the §5.2 synthetic-load driver and §5.4 fault plans;
//! * [`report`] — table/series printers used by the experiment binaries.

pub mod deploy;
pub mod harness;
pub mod report;
pub mod scenario;

pub use deploy::{ActorGroup, DeployTopology, NodeRole, NodeSpec, PlacedActor};
pub use harness::{Cluster, ClusterConfig, JobState, SubmitOpts};
pub use scenario::{fault_plan, FaultRatios, SyntheticRunStats};
