//! The FuxiMaster scheduling engine (paper Section 3).
//!
//! Split into:
//! * [`free_pool`] — per-machine available resources with a rotating scan
//!   cursor for load-balanced cluster-level grants;
//! * [`locality_tree`] — the machine/rack/cluster waiting queues ("these
//!   queues on machine, rack and cluster constitute a locality tree");
//! * [`engine`] — the incremental scheduler tying them together;
//! * [`preemption`] — quota and priority preemption (Section 3.4).

pub mod engine;
#[cfg(test)]
mod engine_tests;
pub mod free_pool;
pub mod locality_tree;
pub mod preemption;

pub use engine::{Engine, EngineConfig, EngineEvent, RevokeReason, MASTER_UNIT};
pub use free_pool::FreePool;
pub use locality_tree::{LocalityTree, QueueKey};
