//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a compact randomized property-testing harness with the same surface the
//! test suites use: the `proptest! { #[test] fn name(x in strategy) {..} }`
//! macro, `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`,
//! integer/float range strategies, tuple strategies, `prop::collection::vec`
//! and `prop_map`.
//!
//! Differences from real proptest: no shrinking (a failing case prints its
//! fully generated inputs and the deterministic seed instead) and a
//! deterministic per-test seed so CI failures reproduce exactly. Case count
//! defaults to 256; override with `PROPTEST_CASES`.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Error type carried by `prop_assert*` failures.
pub type TestCaseError = String;

/// Result type of one property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A generator of random values (simplified `proptest::strategy::Strategy`).
pub trait Strategy {
    /// Generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates one of the values with equal probability (simplified
    /// `prop_oneof`; used via [`Union`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn StrategyObj<Value = T>>);

trait StrategyObj {
    type Value;
    fn generate_obj(&self, rng: &mut SmallRng) -> Self::Value;
}

impl<S: Strategy> StrategyObj for S {
    type Value = S::Value;
    fn generate_obj(&self, rng: &mut SmallRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut SmallRng) -> T {
        self.0.generate_obj(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Strategy for core::ops::Range<char> {
    type Value = char;
    fn generate(&self, rng: &mut SmallRng) -> char {
        let (lo, hi) = (self.start as u32, self.end as u32);
        char::from_u32(rng.gen_range(lo..hi)).unwrap_or(self.start)
    }
}

/// `bool` strategy: fair coin.
#[derive(Debug, Clone, Copy)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;
    fn generate(&self, rng: &mut SmallRng) -> bool {
        rng.gen_bool(0.5)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::*;

    /// Vec strategy: `len` drawn from `size`, elements from `element`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    /// Sizes accepted by [`vec`].
    pub trait IntoSizeRange {
        /// `(min, max_exclusive)`.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), self.end().saturating_add(1))
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    /// `prop::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max_exclusive) = size.bounds();
        assert!(min < max_exclusive, "empty size range");
        VecStrategy {
            element,
            min,
            max_exclusive,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.min..self.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Number of cases per property (default 256, env `PROPTEST_CASES`).
pub fn cases() -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(256)
}

/// Drives one property: draws `cases()` inputs from `strat` and runs `f` on
/// each; panics with the seed and the generated inputs on the first failure.
pub fn run_property<S>(name: &str, strat: S, f: impl Fn(S::Value) -> TestCaseResult)
where
    S: Strategy,
    S::Value: Debug + Clone,
{
    // Deterministic per-test seed: failures reproduce run-to-run.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    for case in 0..cases() {
        let value = strat.generate(&mut rng);
        let shown = value.clone();
        let outcome = catch_unwind(AssertUnwindSafe(|| f(value)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(msg)) => panic!(
                "property '{name}' failed at case {case} (seed {seed:#x}):\n  {msg}\n  input: {shown:?}"
            ),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panic".to_owned());
                panic!(
                    "property '{name}' panicked at case {case} (seed {seed:#x}):\n  {msg}\n  input: {shown:?}"
                );
            }
        }
    }
}

/// Defines property tests. Same surface as proptest's macro for the form
/// `proptest! { #[test] fn name(x in strategy, ...) { body } }`.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident ( $($bind:pat_param in $strat:expr),+ $(,)? ) $body:block)+) => {
        $(
            // The `#[test]` attribute arrives through `$meta`, exactly as
            // written at the call site (real proptest requires it too).
            $(#[$meta])*
            fn $name() {
                $crate::run_property(
                    stringify!($name),
                    ( $($strat,)+ ),
                    |( $($bind,)+ )| -> $crate::TestCaseResult {
                        $body
                        Ok(())
                    },
                );
            }
        )+
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "msg {}", args…)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err(format!("assertion failed: {}", stringify!($cond)));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err(format!($($fmt)+));
        }
    };
}

/// `prop_assert_eq!(a, b)`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            ));
        }
    }};
}

/// `prop_assert_ne!(a, b)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                a
            ));
        }
    }};
}

/// Everything the tests import.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, BoxedStrategy, Just, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 0u32..10, y in -5i64..=5) {
            prop_assert!(x < 10);
            prop_assert!((-5..=5).contains(&y), "y out of range: {}", y);
        }

        #[test]
        fn vec_and_map_compose(
            v in prop::collection::vec((0u8..3, 0u16..100).prop_map(|(a, b)| a as u32 + b as u32), 1..20),
        ) {
            prop_assert!(!v.is_empty());
            prop_assert!(v.len() < 20);
            for x in &v {
                prop_assert!(*x < 103);
            }
        }

        #[test]
        fn mut_bindings_work(mut v in prop::collection::vec(0u32..5, 0..4)) {
            v.push(99);
            prop_assert_eq!(*v.last().unwrap(), 99);
            prop_assert_ne!(v.len(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "property 'failing' failed")]
    fn failures_report_inputs() {
        crate::run_property("failing", 0u32..10, |x| {
            crate::prop_assert!(x > 100, "x was {}", x);
            Ok(())
        });
    }
}
