//! The TaskWorker actor: a container process that registers with its
//! master and executes a stream of instances (container reuse,
//! Section 3.2.3: "once an application master receives a grant, it
//! explicitly controls its life-cycle and may reuse the container to run
//! multiple tasks").

use fuxi_agent::ProcMeta;
use fuxi_proto::msg::WorkerSpec;
use fuxi_proto::{
    AppId, FailReason, InstanceId, InstanceOutcome, InstanceWork, MachineId, Msg, UnitId, WorkerId,
};
use fuxi_sim::{Actor, ActorId, Ctx, FlowKind, FlowSpec, SimDuration, SimTime, TraceId};

/// Worker tuning.
#[derive(Debug, Clone)]
pub struct WorkerConfig {
    /// Progress-report cadence ("all TaskWorkers will periodically report
    /// their status including execution progresses").
    pub report_interval: SimDuration,
    /// Per-launch process startup cost (binary load, JVM/sandbox init)
    /// charged before the worker registers with its master. Zero by
    /// default; the container-reuse ablation sets it to expose the cost
    /// a launch-per-task (YARN-style) policy pays on every instance.
    pub startup_overhead_s: f64,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        Self {
            report_interval: SimDuration::from_secs(10),
            startup_overhead_s: 0.0,
        }
    }
}

const TIMER_REPORT: u64 = 1;
/// Fires once when a configured process-startup overhead elapses.
const TIMER_STARTUP: u64 = 2;
/// Compute/write completion timers carry the execution generation in the
/// low bits so stale timers from an aborted instance are ignored.
const TIMER_COMPUTE_BASE: u64 = 1 << 32;
const TIMER_WRITE_BASE: u64 = 2 << 32;

#[derive(Debug)]
enum Phase {
    /// Fetching remote/local inputs: remaining reads and in-flight count.
    Fetching { remaining: Vec<(MachineId, f64)>, active: u32 },
    Computing,
    Writing,
}

#[derive(Debug)]
struct Exec {
    instance: InstanceId,
    attempt: u32,
    work: InstanceWork,
    started: SimTime,
    phase: Phase,
}

/// Worker actor address.
pub struct TaskWorker {
    app: AppId,
    worker: WorkerId,
    unit: UnitId,
    limit: fuxi_proto::ResourceVec,
    usage_factor: f64,
    master: ActorId,
    cfg: WorkerConfig,
    current: Option<Exec>,
    /// Bumped on every assignment/abort; embedded in timers and flow tags.
    generation: u64,
    /// Last result, re-sent on report ticks until a new assignment
    /// implicitly acknowledges it (repairs lossy-network drops).
    unacked: Option<Msg>,
    ever_assigned: bool,
    /// The job's causal trace, captured at spawn (the agent launches the
    /// worker under it); re-pinned on timers so completion reports that
    /// fire from compute/flow timers stay on the chain.
    trace: TraceId,
}

impl TaskWorker {
    /// From spec.
    pub fn from_spec(spec: &WorkerSpec, cfg: WorkerConfig) -> Self {
        Self {
            app: spec.app,
            worker: spec.worker,
            unit: spec.unit,
            limit: spec.limit.clone(),
            usage_factor: spec.usage_factor,
            master: spec.master,
            cfg,
            current: None,
            generation: 0,
            unacked: None,
            ever_assigned: false,
            trace: TraceId::NONE,
        }
    }

    fn machine(&self, ctx: &Ctx<'_, Msg>) -> u32 {
        ctx.self_machine().expect("workers are placed on machines")
    }

    fn begin(&mut self, ctx: &mut Ctx<'_, Msg>, instance: InstanceId, attempt: u32, work: InstanceWork) {
        self.generation += 1;
        let my_machine = self.machine(ctx);
        let use_flows = work.use_flows && !work.reads.is_empty();
        let exec = Exec {
            instance,
            attempt,
            work: work.clone(),
            started: ctx.now(),
            phase: if use_flows {
                Phase::Fetching {
                    remaining: work.reads.clone(),
                    active: 0,
                }
            } else {
                Phase::Computing
            },
        };
        self.current = Some(exec);
        if use_flows {
            self.pump_fetches(ctx, my_machine);
        } else {
            // Synthetic mode: everything is folded into compute time.
            self.arm_compute(ctx);
        }
    }

    fn arm_compute(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let speed = ctx.machine_speed(self.machine(ctx)).max(1e-3);
        let exec = self.current.as_mut().expect("executing");
        exec.phase = Phase::Computing;
        let d = SimDuration::from_secs_f64(exec.work.compute_s / speed);
        ctx.timer(d, TIMER_COMPUTE_BASE | self.generation);
    }

    fn pump_fetches(&mut self, ctx: &mut Ctx<'_, Msg>, my_machine: u32) {
        let gen = self.generation;
        let Some(exec) = self.current.as_mut() else {
            return;
        };
        let fanout = exec.work.fetch_fanout.max(1);
        let mut to_start = Vec::new();
        if let Phase::Fetching { remaining, active } = &mut exec.phase {
            while *active < fanout {
                let Some((src, size_mb)) = remaining.pop() else {
                    break;
                };
                *active += 1;
                to_start.push((src, size_mb));
            }
            if to_start.is_empty() && *active == 0 {
                // Nothing left to fetch: move on to compute.
                self.arm_compute(ctx);
                return;
            }
        }
        for (src, size_mb) in to_start {
            let kind = if src.0 == my_machine {
                ctx.metrics().count("worker.local_reads", 1);
                FlowKind::DiskRead { machine: my_machine }
            } else {
                ctx.metrics().count("worker.remote_reads", 1);
                FlowKind::RemoteRead {
                    src: src.0,
                    dst: my_machine,
                }
            };
            ctx.start_flow(FlowSpec {
                kind,
                size_mb,
                tag: gen,
            });
        }
    }

    fn finish(&mut self, ctx: &mut Ctx<'_, Msg>, outcome: InstanceOutcome) {
        let Some(exec) = self.current.take() else {
            return;
        };
        self.generation += 1; // invalidate stale timers/flows
        ctx.cancel_own_flows();
        let runtime = ctx.now().since(exec.started).as_secs_f64();
        let msg = Msg::InstanceFinished {
            worker: self.worker,
            instance: exec.instance,
            attempt: exec.attempt,
            outcome,
            runtime_s: runtime,
        };
        self.unacked = Some(msg.clone());
        ctx.send(self.master, msg);
    }

    fn progress(&self, now: SimTime) -> f64 {
        let Some(exec) = &self.current else {
            return 0.0;
        };
        let elapsed = now.since(exec.started).as_secs_f64();
        let expected = exec.work.compute_s.max(0.001);
        (elapsed / expected).min(0.99)
    }
}

impl TaskWorker {
    /// The process is up: appear in the machine's process table (so a
    /// restarted agent can adopt this worker, Section 4.3.1) and register
    /// with the master.
    fn come_online(&mut self, ctx: &mut Ctx<'_, Msg>) {
        let meta = ProcMeta::Worker {
            app: self.app,
            worker: self.worker,
            unit: self.unit,
            limit: self.limit.clone(),
            master: self.master.0,
            usage_factor: self.usage_factor,
        };
        ctx.register_proc(meta.encode());
        let machine = MachineId(self.machine(ctx));
        ctx.send(
            self.master,
            Msg::WorkerRegister {
                app: self.app,
                worker: self.worker,
                machine,
            },
        );
        ctx.timer(self.cfg.report_interval, TIMER_REPORT);
    }
}

impl Actor<Msg> for TaskWorker {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
        self.trace = ctx.trace_id();
        if self.cfg.startup_overhead_s > 0.0 {
            // Charge process startup before the worker becomes visible:
            // registration (and hence the first assignment) waits it out.
            let speed = ctx.machine_speed(self.machine(ctx)).max(1e-3);
            let d = SimDuration::from_secs_f64(self.cfg.startup_overhead_s / speed);
            ctx.timer(d, TIMER_STARTUP);
        } else {
            self.come_online(ctx);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, from: ActorId, msg: Msg) {
        if self.trace.is_some() {
            ctx.set_trace(self.trace);
        }
        match msg {
            Msg::AssignInstance {
                instance,
                attempt,
                work,
            } => {
                // A new assignment acknowledges any previous result.
                self.unacked = None;
                self.ever_assigned = true;
                if self.current.is_some() {
                    // Already busy (stale assignment after a race): refuse.
                    ctx.send(
                        self.master,
                        Msg::InstanceFinished {
                            worker: self.worker,
                            instance,
                            attempt,
                            outcome: InstanceOutcome::Failed(FailReason::Killed),
                            runtime_s: 0.0,
                        },
                    );
                    return;
                }
                self.begin(ctx, instance, attempt, work);
            }
            Msg::KillInstance { instance, attempt } => {
                let matches = self
                    .current
                    .as_ref()
                    .map(|e| e.instance == instance && e.attempt == attempt)
                    .unwrap_or(false);
                if matches {
                    self.finish(ctx, InstanceOutcome::Failed(FailReason::Killed));
                }
            }
            Msg::WorkerExit => {
                ctx.kill_self();
            }
            Msg::WorkerStatusQuery => {
                let running = self
                    .current
                    .as_ref()
                    .map(|e| (e.instance, e.attempt, self.progress(ctx.now())));
                let machine = MachineId(self.machine(ctx));
                ctx.send(
                    from,
                    Msg::WorkerStatusReply {
                        app: self.app,
                        worker: self.worker,
                        machine,
                        running,
                    },
                );
                // A status query comes from a restarted JobMaster: report
                // there from now on.
                self.master = from;
            }
            Msg::FlowDone { tag, failed } => {
                if tag != self.generation {
                    return; // stale flow from an aborted instance
                }
                if failed {
                    self.finish(ctx, InstanceOutcome::Failed(FailReason::IoError));
                    return;
                }
                let my_machine = self.machine(ctx);
                let mut all_fetched = false;
                let mut write_done = false;
                match self.current.as_mut().map(|e| &mut e.phase) {
                    Some(Phase::Fetching { remaining, active }) => {
                        *active -= 1;
                        if remaining.is_empty() && *active == 0 {
                            all_fetched = true;
                        }
                    }
                    Some(Phase::Writing) => write_done = true,
                    _ => {}
                }
                if write_done {
                    self.finish(ctx, InstanceOutcome::Success);
                } else if all_fetched {
                    self.arm_compute(ctx);
                } else {
                    self.pump_fetches(ctx, my_machine);
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Msg>, tag: u64) {
        if self.trace.is_some() {
            ctx.set_trace(self.trace);
        }
        match tag {
            TIMER_STARTUP => {
                ctx.metrics().count("worker.startups_charged", 1);
                self.come_online(ctx);
            }
            TIMER_REPORT => {
                if let Some(exec) = &self.current {
                    let p = self.progress(ctx.now());
                    ctx.send(
                        self.master,
                        Msg::InstanceReport {
                            worker: self.worker,
                            instance: exec.instance,
                            attempt: exec.attempt,
                            progress: p,
                        },
                    );
                } else if let Some(msg) = self.unacked.clone() {
                    // The result may have been lost in transit; repeat it
                    // (the master handles duplicates idempotently).
                    ctx.send(self.master, msg);
                } else if !self.ever_assigned {
                    // Registration may have been lost; repeat it.
                    let machine = MachineId(self.machine(ctx));
                    ctx.send(
                        self.master,
                        Msg::WorkerRegister {
                            app: self.app,
                            worker: self.worker,
                            machine,
                        },
                    );
                }
                ctx.timer(self.cfg.report_interval, TIMER_REPORT);
            }
            t if t & TIMER_COMPUTE_BASE != 0 && (t & 0xFFFF_FFFF) == (self.generation & 0xFFFF_FFFF) => {
                // Compute finished; write output if modelled, else done.
                let (use_flows, write_mb) = self
                    .current
                    .as_ref()
                    .map(|e| (e.work.use_flows, e.work.write_mb))
                    .unwrap_or((false, 0.0));
                if use_flows && write_mb > 0.0 {
                    let m = self.machine(ctx);
                    if let Some(e) = self.current.as_mut() {
                        e.phase = Phase::Writing;
                    }
                    ctx.start_flow(FlowSpec {
                        kind: FlowKind::DiskWrite { machine: m },
                        size_mb: write_mb,
                        tag: self.generation,
                    });
                    // Also arm a no-op guard? Not needed: FlowDone drives it.
                    let _ = TIMER_WRITE_BASE;
                } else {
                    self.finish(ctx, InstanceOutcome::Success);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuxi_proto::ResourceVec;
    use fuxi_sim::{World, WorldConfig};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// Shared `(time, message)` log of everything a master hears.
    type MsgLog = Rc<RefCell<Vec<(f64, Msg)>>>;

    /// Records everything a master would hear from its worker.
    struct StubMaster {
        log: MsgLog,
    }
    impl Actor<Msg> for StubMaster {
        fn on_message(&mut self, ctx: &mut Ctx<'_, Msg>, _from: ActorId, msg: Msg) {
            self.log.borrow_mut().push((ctx.now().as_secs_f64(), msg));
        }
    }

    fn setup() -> (World<Msg>, ActorId, ActorId, MsgLog) {
        let mut w: World<Msg> = World::new(WorldConfig::uniform(4, 2, 5));
        let log = Rc::new(RefCell::new(Vec::new()));
        let master = w.spawn(Some(0), Box::new(StubMaster { log: log.clone() }));
        let spec = WorkerSpec {
            app: AppId(1),
            worker: WorkerId(7),
            unit: UnitId(0),
            limit: ResourceVec::new(500, 2048),
            binary_mb: 0.0,
            master,
            usage_factor: 0.4,
        };
        let worker = w.spawn(
            Some(2),
            Box::new(TaskWorker::from_spec(&spec, WorkerConfig::default())),
        );
        (w, worker, master, log)
    }

    /// First-delivery view of results (the worker re-sends unacked results
    /// on report ticks until a new assignment acknowledges them, so a stub
    /// master that never reassigns sees duplicates — dedupe here).
    fn finished(log: &[(f64, Msg)]) -> Vec<(f64, InstanceId, u32, InstanceOutcome)> {
        let mut seen = std::collections::BTreeSet::new();
        log.iter()
            .filter_map(|(t, m)| match m {
                Msg::InstanceFinished {
                    instance,
                    attempt,
                    outcome,
                    ..
                } if seen.insert((*instance, *attempt)) => {
                    Some((*t, *instance, *attempt, *outcome))
                }
                _ => None,
            })
            .collect()
    }

    #[test]
    fn registers_then_executes_synthetic_instance() {
        let (mut w, worker, _master, log) = setup();
        w.run_until(fuxi_sim::SimTime::from_secs(1));
        assert!(
            log.borrow()
                .iter()
                .any(|(_, m)| matches!(m, Msg::WorkerRegister { worker: WorkerId(7), .. })),
            "worker registers on start"
        );
        w.send_external(
            worker,
            Msg::AssignInstance {
                instance: InstanceId::new(fuxi_proto::TaskId(0), 3),
                attempt: 0,
                work: InstanceWork {
                    compute_s: 10.0,
                    ..Default::default()
                },
            },
        );
        w.run_until(fuxi_sim::SimTime::from_secs(30));
        let fin = finished(&log.borrow());
        assert_eq!(fin.len(), 1);
        assert_eq!(fin[0].1.index, 3);
        assert!(matches!(fin[0].3, InstanceOutcome::Success));
        assert!((fin[0].0 - 11.0).abs() < 1.5, "ran ~10s: {}", fin[0].0);
    }

    #[test]
    fn slow_machine_stretches_compute() {
        let (mut w, worker, _master, log) = setup();
        w.set_machine_speed(2, 0.5);
        w.send_external(
            worker,
            Msg::AssignInstance {
                instance: InstanceId::new(fuxi_proto::TaskId(0), 0),
                attempt: 0,
                work: InstanceWork {
                    compute_s: 10.0,
                    ..Default::default()
                },
            },
        );
        w.run_until(fuxi_sim::SimTime::from_secs(60));
        let fin = finished(&log.borrow());
        assert_eq!(fin.len(), 1);
        assert!((fin[0].0 - 21.0).abs() < 2.0, "10s at half speed: {}", fin[0].0);
    }

    #[test]
    fn kill_instance_aborts_and_reports_killed() {
        let (mut w, worker, _master, log) = setup();
        let inst = InstanceId::new(fuxi_proto::TaskId(0), 0);
        w.send_external(
            worker,
            Msg::AssignInstance {
                instance: inst,
                attempt: 2,
                work: InstanceWork {
                    compute_s: 100.0,
                    ..Default::default()
                },
            },
        );
        w.at(fuxi_sim::SimTime::from_secs(5), move |w| {
            w.send_external(worker, Msg::KillInstance { instance: inst, attempt: 2 });
        });
        w.run_until(fuxi_sim::SimTime::from_secs(20));
        let fin = finished(&log.borrow());
        assert_eq!(fin.len(), 1);
        assert!(matches!(
            fin[0].3,
            InstanceOutcome::Failed(FailReason::Killed)
        ));
        assert!(fin[0].0 < 7.0, "aborted at ~5s, not 100s");
    }

    #[test]
    fn stale_kill_for_other_attempt_is_ignored() {
        let (mut w, worker, _master, log) = setup();
        let inst = InstanceId::new(fuxi_proto::TaskId(0), 0);
        w.send_external(
            worker,
            Msg::AssignInstance {
                instance: inst,
                attempt: 1,
                work: InstanceWork {
                    compute_s: 5.0,
                    ..Default::default()
                },
            },
        );
        // Kill names attempt 0 — must not touch the running attempt 1.
        w.send_external(worker, Msg::KillInstance { instance: inst, attempt: 0 });
        w.run_until(fuxi_sim::SimTime::from_secs(20));
        let fin = finished(&log.borrow());
        assert_eq!(fin.len(), 1);
        assert!(matches!(fin[0].3, InstanceOutcome::Success));
    }

    #[test]
    fn data_driven_instance_moves_real_flows() {
        let (mut w, worker, _master, log) = setup();
        w.send_external(
            worker,
            Msg::AssignInstance {
                instance: InstanceId::new(fuxi_proto::TaskId(0), 0),
                attempt: 0,
                work: InstanceWork {
                    compute_s: 1.0,
                    reads: vec![(MachineId(1), 250.0), (MachineId(2), 1200.0)],
                    write_mb: 1200.0,
                    use_flows: true,
                    fetch_fanout: 4,
                },
            },
        );
        w.run_until(fuxi_sim::SimTime::from_secs(60));
        let fin = finished(&log.borrow());
        assert_eq!(fin.len(), 1);
        assert!(matches!(fin[0].3, InstanceOutcome::Success));
        // remote 250MB at 250MB/s NIC ≈ 1s; local 1200MB disk ≈ 1s;
        // compute 1s; write 1200MB ≈ 1s → ≥ 3s total, well under 60.
        assert!(fin[0].0 > 2.0 && fin[0].0 < 20.0, "t = {}", fin[0].0);
        assert!(w.metrics().counter("flow.started") >= 3);
    }

    #[test]
    fn source_machine_death_fails_instance_with_io_error() {
        let (mut w, worker, _master, log) = setup();
        w.send_external(
            worker,
            Msg::AssignInstance {
                instance: InstanceId::new(fuxi_proto::TaskId(0), 0),
                attempt: 0,
                work: InstanceWork {
                    compute_s: 1.0,
                    reads: vec![(MachineId(1), 100_000.0)],
                    write_mb: 0.0,
                    use_flows: true,
                    fetch_fanout: 2,
                },
            },
        );
        w.at(fuxi_sim::SimTime::from_secs(5), |w| w.kill_machine(1));
        w.run_until(fuxi_sim::SimTime::from_secs(30));
        let fin = finished(&log.borrow());
        assert_eq!(fin.len(), 1);
        assert!(matches!(
            fin[0].3,
            InstanceOutcome::Failed(FailReason::IoError)
        ));
    }

    #[test]
    fn status_query_reports_running_instance_and_rehomes() {
        let (mut w, worker, _master, _log) = setup();
        w.send_external(
            worker,
            Msg::AssignInstance {
                instance: InstanceId::new(fuxi_proto::TaskId(0), 9),
                attempt: 1,
                work: InstanceWork {
                    compute_s: 100.0,
                    ..Default::default()
                },
            },
        );
        w.run_until(fuxi_sim::SimTime::from_secs(10));
        // A "restarted JobMaster" queries the worker and must receive the
        // running attempt (the worker rehomes its reporting to the asker).
        struct AskingMaster {
            target: ActorId,
            log: Rc<RefCell<Vec<Msg>>>,
        }
        impl Actor<Msg> for AskingMaster {
            fn on_start(&mut self, ctx: &mut Ctx<'_, Msg>) {
                ctx.send(self.target, Msg::WorkerStatusQuery);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, Msg>, _: ActorId, msg: Msg) {
                self.log.borrow_mut().push(msg);
            }
        }
        let replies = Rc::new(RefCell::new(Vec::new()));
        w.spawn(
            Some(1),
            Box::new(AskingMaster {
                target: worker,
                log: replies.clone(),
            }),
        );
        w.run_until(fuxi_sim::SimTime::from_secs(15));
        let replies = replies.borrow();
        let reply = replies
            .iter()
            .find_map(|m| match m {
                Msg::WorkerStatusReply { running, .. } => Some(*running),
                _ => None,
            })
            .expect("worker answers status queries");
        let (inst, attempt, progress) = reply.expect("instance is running");
        assert_eq!(inst.index, 9);
        assert_eq!(attempt, 1);
        assert!(progress > 0.0 && progress < 1.0);
    }
}
