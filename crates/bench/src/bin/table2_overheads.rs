//! Regenerates **Table 2** — scheduling overheads when 1,000 simultaneous
//! jobs are launched: JobMaster start overhead, worker start overhead
//! (dominated by the 400 MB binary download) and instance running overhead.
//!
//! Run: `cargo run --release -p fuxi-bench --bin table2_overheads -- [--scale 0.04] [--duration 900]`

use fuxi_cluster::report::print_table;

fn main() {
    let args = fuxi_bench::Args::parse(0.04, 1800);
    let out = fuxi_bench::run_synthetic_experiment(&args);
    let m = out.cluster.world.metrics();
    let mean = |name: &str| m.histogram(name).map(|h| h.mean()).unwrap_or(0.0);
    let job_runtime = if out.stats.job_runtimes_s.is_empty() {
        0.0
    } else {
        out.stats.job_runtimes_s.iter().sum::<f64>() / out.stats.job_runtimes_s.len() as f64
    };
    let jm_start = mean("fm.jm_start_overhead_s");
    let worker_start = mean("am.worker_start_overhead_s");
    let inst_overhead = mean("am.instance_overhead_s");
    print_table(
        "Table 2: scheduling overhead with simultaneous jobs",
        &["type", "paper avg (s)", "measured avg (s)"],
        &[
            fuxi_bench::row("Job Running Time", "359.89", &format!("{job_runtime:.2}")),
            fuxi_bench::row("JobMaster Start Overhead", "1.91", &format!("{jm_start:.2}")),
            fuxi_bench::row("Worker Start Overhead", "11.84", &format!("{worker_start:.2}")),
            fuxi_bench::row("Instance Running Overhead", "0.33", &format!("{inst_overhead:.3}")),
        ],
    );
    let total_overhead_pct = if job_runtime > 0.0 {
        100.0 * (jm_start + worker_start + inst_overhead) / job_runtime
    } else {
        0.0
    };
    println!(
        "\njobs finished: {} of {} submitted",
        out.stats.jobs_finished, out.stats.jobs_submitted
    );
    println!(
        "total overhead relative to job runtime: paper 3.9% | measured {total_overhead_pct:.1}%"
    );
    println!(
        "\nShape claims reproduced: worker start dominates (binary download over\n\
         a contended network), JobMaster start is a couple of seconds (placement\n\
         + package fetch + attach), instance dispatch overhead is sub-second."
    );
}
