//! The incremental scheduling engine (paper Sections 3.1–3.3).
//!
//! "With the locality tree based incremental scheduling, only the changed
//! part will be calculated. For example, when {2CPU, 10GB} of resource frees
//! up on machine A, we only need to make a decision on which application in
//! machine A's waiting queue should get this resource."
//!
//! The engine is a pure data structure: the [`crate::master::FuxiMaster`]
//! actor feeds it protocol events and drains [`EngineEvent`]s to turn into
//! wire messages. Keeping it synchronous and simulator-free means criterion
//! benches and the Figure 9 measurement time the real decision path.

use crate::quota::QuotaManager;
use crate::scheduler::free_pool::FreePool;
use crate::scheduler::locality_tree::{Level, LocalityTree, QueueKey};
use fuxi_proto::request::{RequestDelta, RequestState, ScheduleUnitDef, WantLevels};
use fuxi_proto::topology::Topology;
use fuxi_proto::{AppId, MachineId, Priority, QuotaGroupId, RackId, ResourceVec, UnitId};
use std::collections::{BTreeMap, BTreeSet};

/// Reserved unit id under which application-master processes themselves are
/// accounted (they occupy resources like any other container).
pub const MASTER_UNIT: UnitId = UnitId(u32::MAX);

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Cap on machines scanned per cluster-level satisfy attempt; the scan
    /// cursor rotates so successive attempts cover different machines.
    pub max_cluster_scan: usize,
    /// Cap on queue candidates examined per machine free-up event.
    pub max_candidates: usize,
    /// Enable preemption of lower-priority apps when the cluster is full.
    pub enable_priority_preemption: bool,
    /// Enable preemption of over-quota groups in favour of deficit groups.
    pub enable_quota_preemption: bool,
    /// Upper bound on containers revoked per preemption attempt.
    pub max_preemptions_per_attempt: u64,
    /// Naive reference mode for differential testing and benchmarking: the
    /// free pool's hierarchical fit index is bypassed (every rack is
    /// descended) and machine-down handling re-derives victims by scanning
    /// all apps instead of the reverse allocation index. Decisions must be
    /// bit-identical to the indexed engine; only the cost differs.
    pub reference_mode: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            max_cluster_scan: 2048,
            max_candidates: 256,
            enable_priority_preemption: true,
            enable_quota_preemption: true,
            max_preemptions_per_attempt: 64,
            reference_mode: false,
        }
    }
}

/// Why a grant was revoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RevokeReason {
    /// The machine died or timed out.
    NodeDown,
    /// Preempted for quota or priority (Section 3.4).
    Preempted,
    /// The application detached/was stopped; agents must release.
    AppStopped,
}

/// Scheduling decisions produced by the engine, to be turned into
/// `GrantUpdate` / `CapacityNotify` messages by the master actor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineEvent {
    /// Grant.
    Grant {
        /// Application id.
        app: AppId,
        /// ScheduleUnit id.
        unit: UnitId,
        /// Machine index.
        machine: MachineId,
        /// Number of containers.
        count: u64,
    },
    /// Revoke.
    Revoke {
        /// Application id.
        app: AppId,
        /// ScheduleUnit id.
        unit: UnitId,
        /// Machine index.
        machine: MachineId,
        /// Number of containers.
        count: u64,
        /// Why it happened.
        reason: RevokeReason,
    },
}

#[derive(Debug)]
pub(crate) struct UnitEntry {
    pub def: ScheduleUnitDef,
    pub wants: WantLevels,
    pub avoid: BTreeSet<MachineId>,
    pub granted: BTreeMap<MachineId, u64>,
    pub total_granted: u64,
    pub submit_seq: u64,
    queued_machines: BTreeSet<MachineId>,
    queued_racks: BTreeSet<RackId>,
    queued_cluster: bool,
}

impl UnitEntry {
    fn new(def: ScheduleUnitDef, submit_seq: u64) -> Self {
        Self {
            def,
            wants: WantLevels::default(),
            avoid: BTreeSet::new(),
            granted: BTreeMap::new(),
            total_granted: 0,
            submit_seq,
            queued_machines: BTreeSet::new(),
            queued_racks: BTreeSet::new(),
            queued_cluster: false,
        }
    }

    fn key(&self, app: AppId, unit: UnitId) -> QueueKey {
        QueueKey {
            priority: self.def.priority,
            seq: self.submit_seq,
            app,
            unit,
        }
    }
}

#[derive(Debug)]
pub(crate) struct AppEntry {
    pub group: QuotaGroupId,
    pub units: BTreeMap<UnitId, UnitEntry>,
}

/// The FuxiMaster scheduling engine.
pub struct Engine {
    topo: Topology,
    cfg: EngineConfig,
    pub(crate) free: FreePool,
    pub(crate) tree: LocalityTree,
    pub(crate) quotas: QuotaManager,
    pub(crate) apps: BTreeMap<AppId, AppEntry>,
    next_seq: u64,
    events: Vec<EngineEvent>,
    /// While true (failover rebuild) no scheduling decisions are made.
    paused: bool,
    /// Total currently granted, all apps (the paper's `FM_planned` gauge).
    planned: ResourceVec,
    /// Containers granted per priority, for cheap preemption pre-checks.
    pub(crate) granted_by_priority: BTreeMap<Priority, u64>,
    /// Reverse allocation index: per machine, every `(app, unit)` holding
    /// grants there and how many. Mirrors the per-unit `granted` maps so
    /// machine-down / blacklist / capacity events touch only the affected
    /// machine's allocations instead of scanning all apps × units.
    alloc_index: Vec<BTreeMap<(AppId, UnitId), u64>>,
    /// Reusable candidate buffer for the free-up path; capacity is retained
    /// across calls so steady-state scheduling allocates nothing.
    scratch_cands: Vec<(Level, QueueKey)>,
    /// Reusable machine buffer for cluster-level satisfy scans.
    scratch_machines: Vec<MachineId>,
}

impl Engine {
    /// Creates a new instance with the given configuration.
    pub fn new(topo: Topology, cfg: EngineConfig, quotas: QuotaManager) -> Self {
        let caps: Vec<ResourceVec> = topo
            .machines()
            .map(|m| topo.spec(m).resources.clone())
            .collect();
        let rack_of: Vec<RackId> = topo.machines().map(|m| topo.rack_of(m)).collect();
        let n_machines = caps.len();
        let mut free = FreePool::with_racks(caps, rack_of);
        free.set_pruning(!cfg.reference_mode);
        Self {
            free,
            alloc_index: vec![BTreeMap::new(); n_machines],
            tree: LocalityTree::new(),
            quotas,
            apps: BTreeMap::new(),
            next_seq: 0,
            events: Vec::new(),
            paused: false,
            planned: ResourceVec::ZERO,
            granted_by_priority: BTreeMap::new(),
            scratch_cands: Vec::new(),
            scratch_machines: Vec::new(),
            topo,
            cfg,
        }
    }

    /// Topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Config.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Quotas.
    pub fn quotas(&self) -> &QuotaManager {
        &self.quotas
    }

    /// Total schedulable capacity right now (`FM_total`).
    pub fn total_capacity(&self) -> ResourceVec {
        self.free.total_capacity()
    }

    /// Total currently granted (`FM_planned`).
    pub fn planned(&self) -> &ResourceVec {
        &self.planned
    }

    /// Waiting entries.
    pub fn waiting_entries(&self) -> usize {
        self.tree.total_entries()
    }

    /// Decisions made since the last drain.
    pub fn drain_events(&mut self) -> Vec<EngineEvent> {
        std::mem::take(&mut self.events)
    }

    /// Moves pending decisions into `out` (cleared first). Both buffers keep
    /// their capacity, so a caller reusing one `out` across calls makes
    /// event draining allocation-free — the hot-path variant of
    /// [`drain_events`](Self::drain_events).
    pub fn take_events_into(&mut self, out: &mut Vec<EngineEvent>) {
        out.clear();
        std::mem::swap(&mut self.events, out);
    }

    /// Is paused.
    pub fn is_paused(&self) -> bool {
        self.paused
    }

    /// Enters failover-rebuild mode: state mutations are accepted
    /// (adoptions, syncs) but no scheduling happens.
    pub fn pause(&mut self) {
        self.paused = true;
    }

    /// Leaves rebuild mode and runs a full scheduling pass over all queued
    /// demand (one-time O(apps) cost, as in a real failover).
    pub fn resume(&mut self) {
        self.paused = false;
        let keys: Vec<(AppId, UnitId)> = self
            .apps
            .iter()
            .flat_map(|(&a, e)| e.units.keys().map(move |&u| (a, u)))
            .collect();
        for (app, unit) in keys {
            self.try_satisfy(app, unit);
        }
    }

    // ------------------------------------------------------------------
    // Application lifecycle
    // ------------------------------------------------------------------

    /// Registers an application (idempotent; re-attach after failover keeps
    /// adopted state and merges new unit definitions).
    pub fn attach_app(&mut self, app: AppId, group: QuotaGroupId, units: Vec<ScheduleUnitDef>) {
        let seq = self.bump_seq();
        let entry = self.apps.entry(app).or_insert(AppEntry {
            group,
            units: BTreeMap::new(),
        });
        entry.group = group;
        for def in units {
            match entry.units.get_mut(&def.unit) {
                Some(u) => u.def = def,
                None => {
                    entry.units.insert(def.unit, UnitEntry::new(def, seq));
                }
            }
        }
    }

    /// Has app.
    pub fn has_app(&self, app: AppId) -> bool {
        self.apps.contains_key(&app)
    }

    /// App group.
    pub fn app_group(&self, app: AppId) -> Option<QuotaGroupId> {
        self.apps.get(&app).map(|e| e.group)
    }

    /// Removes an application, releasing every grant. Emits `Revoke`
    /// events with [`RevokeReason::AppStopped`] so agents update capacity;
    /// the (gone) AM is not notified.
    pub fn detach_app(&mut self, app: AppId) {
        let Some(entry) = self.apps.remove(&app) else {
            return;
        };
        let mut freed_machines = BTreeSet::new();
        for (unit_id, mut unit) in entry.units {
            self.unqueue_all(app, unit_id, &mut unit);
            for (&m, &count) in &unit.granted {
                self.alloc_index[m.0 as usize].remove(&(app, unit_id));
                self.free.give(m, &unit.def.resource, count);
                self.quotas.sub_usage(entry.group, &unit.def.resource, count);
                self.planned.sub_scaled(&unit.def.resource, count);
                *self
                    .granted_by_priority
                    .entry(unit.def.priority)
                    .or_insert(0) -= count.min(
                    *self
                        .granted_by_priority
                        .get(&unit.def.priority)
                        .unwrap_or(&0),
                );
                self.events.push(EngineEvent::Revoke {
                    app,
                    unit: unit_id,
                    machine: m,
                    count,
                    reason: RevokeReason::AppStopped,
                });
                freed_machines.insert(m);
            }
        }
        for m in freed_machines {
            self.schedule_machine(m);
        }
    }

    // ------------------------------------------------------------------
    // The incremental protocol surface
    // ------------------------------------------------------------------

    /// Applies request deltas from an application master and immediately
    /// tries to satisfy the updated demand.
    pub fn apply_deltas(&mut self, app: AppId, deltas: &[RequestDelta]) {
        let Some(entry) = self.apps.get_mut(&app) else {
            return;
        };
        let mut touched = BTreeSet::new();
        for d in deltas {
            let Some(unit) = entry.units.get_mut(&d.unit) else {
                continue;
            };
            let mut rs = RequestState {
                def: unit.def.clone(),
                wants: std::mem::take(&mut unit.wants),
                avoid: std::mem::take(&mut unit.avoid),
            };
            rs.apply(d);
            unit.wants = rs.wants;
            unit.avoid = rs.avoid;
            touched.insert(d.unit);
        }
        for unit in touched {
            self.try_satisfy(app, unit);
        }
    }

    /// Replaces an app's full request state (periodic safety sync and
    /// failover rebuild, Figure 7). Grants already on the books are kept.
    pub fn full_request_sync(
        &mut self,
        app: AppId,
        group: QuotaGroupId,
        units: Vec<ScheduleUnitDef>,
        states: Vec<RequestState>,
    ) {
        self.attach_app(app, group, units);
        let Some(entry) = self.apps.get_mut(&app) else {
            return;
        };
        let mut touched = Vec::new();
        for st in states {
            let unit_id = st.def.unit;
            let seq = entry
                .units
                .get(&unit_id)
                .map(|u| u.submit_seq)
                .unwrap_or(self.next_seq);
            let unit = entry
                .units
                .entry(unit_id)
                .or_insert_with(|| UnitEntry::new(st.def.clone(), seq));
            unit.def = st.def;
            unit.wants = st.wants;
            unit.avoid = st.avoid;
            touched.push(unit_id);
        }
        for unit_id in touched {
            // Queue membership may be stale after the wholesale replace.
            if let Some(entry) = self.apps.get_mut(&app) {
                if let Some(unit) = entry.units.get_mut(&unit_id) {
                    let mut u = std::mem::replace(unit, UnitEntry::new(
                        ScheduleUnitDef::new(unit_id, Priority::DEFAULT, ResourceVec::ZERO),
                        0,
                    ));
                    self.unqueue_all(app, unit_id, &mut u);
                    *self
                        .apps
                        .get_mut(&app)
                        .unwrap()
                        .units
                        .get_mut(&unit_id)
                        .unwrap() = u;
                }
            }
            self.try_satisfy(app, unit_id);
        }
    }

    /// The application master voluntarily returns `count` containers on `m`
    /// ("when some mappers finish, the application master returns the
    /// resource via the same protocol"). Demand is *not* re-added.
    pub fn return_grant(&mut self, app: AppId, unit: UnitId, m: MachineId, count: u64) {
        let Some(entry) = self.apps.get_mut(&app) else {
            return;
        };
        let group = entry.group;
        let Some(u) = entry.units.get_mut(&unit) else {
            return;
        };
        let held = u.granted.get(&m).copied().unwrap_or(0);
        let count = count.min(held);
        if count == 0 {
            return;
        }
        if held == count {
            u.granted.remove(&m);
        } else {
            u.granted.insert(m, held - count);
        }
        u.total_granted -= count;
        let res = u.def.resource.clone();
        let prio = u.def.priority;
        self.rindex_sub(m, app, unit, count);
        self.free.give(m, &res, count);
        self.quotas.sub_usage(group, &res, count);
        self.planned.sub_scaled(&res, count);
        if let Some(c) = self.granted_by_priority.get_mut(&prio) {
            *c = c.saturating_sub(count);
        }
        // The freed resources immediately turn over to waiting applications.
        self.schedule_machine(m);
    }

    // ------------------------------------------------------------------
    // Node lifecycle
    // ------------------------------------------------------------------

    /// Removes a machine from scheduling (heartbeat timeout or blacklist)
    /// and revokes every grant on it, re-adding the victims' demand at
    /// cluster level.
    pub fn node_down(&mut self, m: MachineId) {
        // Zero capacity; whatever was granted there is accounted below.
        let in_use = self.free.capacity(m).clone();
        self.free.set_capacity(m, ResourceVec::ZERO, &in_use);
        // The reverse index names the victims directly; the all-apps scan is
        // kept as the differential reference (same (app, unit) order: both
        // iterate sorted by app then unit).
        let revokes: Vec<(AppId, UnitId)> = if self.cfg.reference_mode {
            self.apps
                .iter()
                .flat_map(|(&app, entry)| {
                    entry
                        .units
                        .iter()
                        .filter(|(_, u)| u.granted.contains_key(&m))
                        .map(move |(&unit_id, _)| (app, unit_id))
                })
                .collect()
        } else {
            self.alloc_index[m.0 as usize].keys().copied().collect()
        };
        for (app, unit_id) in revokes {
            let group = self.apps[&app].group;
            let u = self
                .apps
                .get_mut(&app)
                .unwrap()
                .units
                .get_mut(&unit_id)
                .unwrap();
            let count = u.granted.remove(&m).unwrap_or(0);
            u.total_granted -= count;
            u.wants.revoked(count);
            let res = u.def.resource.clone();
            let prio = u.def.priority;
            self.alloc_index[m.0 as usize].remove(&(app, unit_id));
            self.quotas.sub_usage(group, &res, count);
            self.planned.sub_scaled(&res, count);
            if let Some(c) = self.granted_by_priority.get_mut(&prio) {
                *c = c.saturating_sub(count);
            }
            self.events.push(EngineEvent::Revoke {
                app,
                unit: unit_id,
                machine: m,
                count,
                reason: RevokeReason::NodeDown,
            });
            self.try_satisfy(app, unit_id);
        }
    }

    /// Marks a machine as not yet schedulable (capacity zero) without
    /// emitting revocations — used at master startup before agents report
    /// in ("it passively collects total free resources from each machine").
    pub fn deactivate_machine(&mut self, m: MachineId) {
        let in_use = self.free.capacity(m).clone();
        self.free.set_capacity(m, ResourceVec::ZERO, &in_use);
    }

    /// Returns a machine to scheduling with the given capacity. Free space
    /// is capacity minus whatever the books still show granted there (after
    /// a failover rebuild, adopted allocations are on the books and must
    /// not be double-counted regardless of message arrival order).
    pub fn node_up(&mut self, m: MachineId, capacity: ResourceVec) {
        let mut in_use = ResourceVec::ZERO;
        for (_, _, res, count) in self.allocations_on(m) {
            in_use.add_scaled(&res, count);
        }
        self.free.set_capacity(m, capacity, &in_use);
        self.schedule_machine(m);
    }

    /// Current schedulable capacity of a machine (zero while down/excluded).
    pub fn capacity_of(&self, m: MachineId) -> &ResourceVec {
        self.free.capacity(m)
    }

    /// Failover rebuild: adopt an allocation reported by an agent
    /// (Figure 7). Must be called while paused.
    pub fn adopt_allocation(
        &mut self,
        app: AppId,
        unit: UnitId,
        unit_res: ResourceVec,
        m: MachineId,
        count: u64,
    ) {
        debug_assert!(self.paused, "adoption happens during rebuild");
        let seq = self.bump_seq();
        let entry = self.apps.entry(app).or_insert(AppEntry {
            group: QuotaGroupId(0),
            units: BTreeMap::new(),
        });
        let group = entry.group;
        let u = entry.units.entry(unit).or_insert_with(|| {
            UnitEntry::new(
                ScheduleUnitDef::new(unit, Priority::DEFAULT, unit_res.clone()),
                seq,
            )
        });
        *u.granted.entry(m).or_insert(0) += count;
        u.total_granted += count;
        let prio = u.def.priority;
        self.rindex_add(m, app, unit, count);
        self.free.take(m, &unit_res, count.min(self.free.fits(m, &unit_res)));
        self.quotas.add_usage(group, &unit_res, count);
        self.planned.add_scaled(&unit_res, count);
        *self.granted_by_priority.entry(prio).or_insert(0) += count;
    }

    // ------------------------------------------------------------------
    // Placement of application masters
    // ------------------------------------------------------------------

    /// Allocates one container of `resource` for `app`'s master process on
    /// any machine with room, avoiding `avoid`. Returns the machine.
    pub fn grant_fixed(
        &mut self,
        app: AppId,
        resource: ResourceVec,
        avoid: &BTreeSet<MachineId>,
    ) -> Option<MachineId> {
        if self.paused {
            return None;
        }
        let candidate = self.free.first_fitting(&resource, avoid)?;
        let seq = self.bump_seq();
        let group = self.apps.get(&app).map(|e| e.group).unwrap_or(QuotaGroupId(0));
        let entry = self.apps.entry(app).or_insert(AppEntry {
            group,
            units: BTreeMap::new(),
        });
        let u = entry.units.entry(MASTER_UNIT).or_insert_with(|| {
            UnitEntry::new(
                ScheduleUnitDef::new(MASTER_UNIT, Priority::HIGHEST, resource.clone()),
                seq,
            )
        });
        *u.granted.entry(candidate).or_insert(0) += 1;
        u.total_granted += 1;
        self.rindex_add(candidate, app, MASTER_UNIT, 1);
        self.free.take(candidate, &resource, 1);
        self.free.advance_cursor(candidate);
        self.quotas.add_usage(group, &resource, 1);
        self.planned.add_scaled(&resource, 1);
        *self
            .granted_by_priority
            .entry(Priority::HIGHEST)
            .or_insert(0) += 1;
        self.events.push(EngineEvent::Grant {
            app,
            unit: MASTER_UNIT,
            machine: candidate,
            count: 1,
        });
        Some(candidate)
    }

    // ------------------------------------------------------------------
    // Core scheduling
    // ------------------------------------------------------------------

    fn bump_seq(&mut self) -> u64 {
        self.next_seq += 1;
        self.next_seq
    }

    /// Records `count` more containers of `(app, unit)` on `m` in the
    /// reverse allocation index.
    fn rindex_add(&mut self, m: MachineId, app: AppId, unit: UnitId, count: u64) {
        if count > 0 {
            *self.alloc_index[m.0 as usize].entry((app, unit)).or_insert(0) += count;
        }
    }

    /// Removes `count` containers of `(app, unit)` on `m` from the reverse
    /// allocation index, dropping the entry at zero.
    fn rindex_sub(&mut self, m: MachineId, app: AppId, unit: UnitId, count: u64) {
        let slot = &mut self.alloc_index[m.0 as usize];
        if let Some(c) = slot.get_mut(&(app, unit)) {
            *c = c.saturating_sub(count);
            if *c == 0 {
                slot.remove(&(app, unit));
            }
        }
    }

    /// Grants `count × unit` on `m` and performs all bookkeeping.
    fn grant_at(&mut self, app: AppId, unit_id: UnitId, m: MachineId, count: u64) {
        let entry = self.apps.get_mut(&app).expect("app exists");
        let group = entry.group;
        let u = entry.units.get_mut(&unit_id).expect("unit exists");
        let res = u.def.resource.clone();
        let prio = u.def.priority;
        self.free.take(m, &res, count);
        *u.granted.entry(m).or_insert(0) += count;
        u.total_granted += count;
        u.wants.satisfied_on(&self.topo, m, count);
        self.rindex_add(m, app, unit_id, count);
        self.quotas.add_usage(group, &res, count);
        self.planned.add_scaled(&res, count);
        *self.granted_by_priority.entry(prio).or_insert(0) += count;
        self.events.push(EngineEvent::Grant {
            app,
            unit: unit_id,
            machine: m,
            count,
        });
    }

    /// Revokes `count × unit` from `m`, re-adding the victim's demand at
    /// cluster level (preemption / blacklist migration).
    pub(crate) fn revoke_at(
        &mut self,
        app: AppId,
        unit_id: UnitId,
        m: MachineId,
        count: u64,
        reason: RevokeReason,
    ) {
        let Some(entry) = self.apps.get_mut(&app) else {
            return;
        };
        let group = entry.group;
        let Some(u) = entry.units.get_mut(&unit_id) else {
            return;
        };
        let held = u.granted.get(&m).copied().unwrap_or(0);
        let count = count.min(held);
        if count == 0 {
            return;
        }
        if held == count {
            u.granted.remove(&m);
        } else {
            u.granted.insert(m, held - count);
        }
        u.total_granted -= count;
        u.wants.revoked(count);
        let res = u.def.resource.clone();
        let prio = u.def.priority;
        self.rindex_sub(m, app, unit_id, count);
        self.free.give(m, &res, count);
        self.quotas.sub_usage(group, &res, count);
        self.planned.sub_scaled(&res, count);
        if let Some(c) = self.granted_by_priority.get_mut(&prio) {
            *c = c.saturating_sub(count);
        }
        self.events.push(EngineEvent::Revoke {
            app,
            unit: unit_id,
            machine: m,
            count,
            reason,
        });
        self.sync_queues(app, unit_id);
    }

    /// How many more containers of `unit` quota allows for `group`.
    fn quota_headroom(&self, group: QuotaGroupId, unit_res: &ResourceVec, want: u64) -> u64 {
        if self.quotas.within_max(group, unit_res, want) {
            return want;
        }
        // Binary search the largest admissible count below `want`.
        let (mut lo, mut hi) = (0u64, want);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if self.quotas.within_max(group, unit_res, mid) {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        lo
    }

    /// Attempts to satisfy a unit's outstanding wants from free resources:
    /// machine hints, then rack hints, then anywhere; queues the remainder
    /// in the locality tree; finally attempts preemption if enabled.
    pub fn try_satisfy(&mut self, app: AppId, unit_id: UnitId) {
        if self.paused {
            return;
        }
        let Some(entry) = self.apps.get(&app) else {
            return;
        };
        let group = entry.group;
        let Some(u) = entry.units.get(&unit_id) else {
            return;
        };
        let unit_res = u.def.resource.clone();
        if u.wants.cluster() > 0 && !unit_res.is_zero() {
            // Level 1: machine hints.
            let hinted: Vec<(MachineId, u64)> = u.wants.machines().collect();
            let avoid = u.avoid.clone();
            for (m, want_m) in hinted {
                if avoid.contains(&m) {
                    continue;
                }
                let total_want = self.unit_want(app, unit_id);
                if total_want == 0 {
                    break;
                }
                let can = want_m
                    .min(total_want)
                    .min(self.free.fits(m, &unit_res))
                    .min(self.quota_headroom(group, &unit_res, want_m.min(total_want)));
                if can > 0 {
                    self.grant_at(app, unit_id, m, can);
                }
            }
            // Level 2: rack hints.
            let rack_hints: Vec<(RackId, u64)> = self
                .apps[&app].units[&unit_id]
                .wants
                .racks()
                .collect();
            for (r, _) in rack_hints {
                // Rack-level aggregate check: skip racks where no machine
                // can hold even one unit (no-op in reference mode).
                if !self.free.rack_can_fit(r, &unit_res) {
                    continue;
                }
                let machines: Vec<MachineId> = self.topo.machines_in_rack(r).to_vec();
                for m in machines {
                    let want_r = self.apps[&app].units[&unit_id].wants.at_rack(r);
                    if want_r == 0 {
                        break;
                    }
                    if avoid.contains(&m) {
                        continue;
                    }
                    let total_want = self.unit_want(app, unit_id);
                    let can = want_r
                        .min(total_want)
                        .min(self.free.fits(m, &unit_res))
                        .min(self.quota_headroom(group, &unit_res, want_r.min(total_want)));
                    if can > 0 {
                        self.grant_at(app, unit_id, m, can);
                    }
                }
            }
            // Level 3: anywhere in the cluster, rotating-cursor scan.
            // First pass spreads the grant across machines (the paper's
            // load-balance consideration: "instances are scheduled to
            // available workers uniformly"); a second pass greedily places
            // any remainder so capacity is never left stranded.
            //
            // The fit index answers the saturated-cluster case at the root
            // in O(1) (no candidates, no scan) and skips racks where the
            // unit cannot fit; pruned racks still charge the scan budget so
            // rotation and truncation match the naive scan machine-for-
            // machine. Free space does not change while candidates are
            // collected — grants apply after both passes.
            let mut grants: BTreeMap<MachineId, u64> = BTreeMap::new();
            let mut last_granted: Option<MachineId> = None;
            let mut remaining = self.apps[&app].units[&unit_id].wants.cluster();
            remaining = remaining.min(self.quota_headroom(group, &unit_res, remaining));
            if remaining > 0 {
                let nonempty = self.free.nonempty_count().max(1) as u64;
                let per_machine_cap = remaining.div_ceil(nonempty).max(1);
                let mut candidates = std::mem::take(&mut self.scratch_machines);
                self.free
                    .scan_fitting(&unit_res, self.cfg.max_cluster_scan, &mut candidates);
                for pass in 0..2 {
                    if remaining == 0 {
                        break;
                    }
                    let cap = if pass == 0 { per_machine_cap } else { u64::MAX };
                    for &m in &candidates {
                        if remaining == 0 {
                            break;
                        }
                        if avoid.contains(&m) {
                            continue;
                        }
                        let already = grants.get(&m).copied().unwrap_or(0);
                        let fits = self.free.fits(m, &unit_res).saturating_sub(already);
                        let can = remaining.min(fits).min(cap.saturating_sub(already.min(cap)));
                        if can > 0 {
                            *grants.entry(m).or_insert(0) += can;
                            remaining -= can;
                            last_granted = Some(m);
                        }
                    }
                }
                self.scratch_machines = candidates;
            }
            if let Some(last) = last_granted {
                self.free.advance_cursor(last);
            }
            for (m, can) in grants {
                self.grant_at(app, unit_id, m, can);
            }
        }
        self.sync_queues(app, unit_id);
        // Preemption when demand remains and the free pool could not help.
        if self.unit_want(app, unit_id) > 0 {
            self.maybe_preempt(app, unit_id);
        }
    }

    fn unit_want(&self, app: AppId, unit: UnitId) -> u64 {
        self.apps
            .get(&app)
            .and_then(|e| e.units.get(&unit))
            .map(|u| u.wants.cluster())
            .unwrap_or(0)
    }

    /// Grant used by the preemption path (which lives in `preemption.rs`).
    pub(crate) fn grant_for_preemption(
        &mut self,
        app: AppId,
        unit_id: UnitId,
        m: MachineId,
        count: u64,
    ) {
        self.grant_at(app, unit_id, m, count);
        self.sync_queues(app, unit_id);
    }

    /// Re-derives the unit's queue membership from its current wants.
    pub(crate) fn sync_queues(&mut self, app: AppId, unit_id: UnitId) {
        let Some(entry) = self.apps.get_mut(&app) else {
            return;
        };
        let Some(u) = entry.units.get_mut(&unit_id) else {
            return;
        };
        let key = u.key(app, unit_id);
        let footprint = u.def.resource.clone();
        let active = u.wants.cluster() > 0;

        let want_machines: BTreeSet<MachineId> = if active {
            u.wants.machines().map(|(m, _)| m).collect()
        } else {
            BTreeSet::new()
        };
        let want_racks: BTreeSet<RackId> = if active {
            u.wants.racks().map(|(r, _)| r).collect()
        } else {
            BTreeSet::new()
        };
        let stale_machines: Vec<MachineId> =
            u.queued_machines.difference(&want_machines).copied().collect();
        let new_machines: Vec<MachineId> =
            want_machines.difference(&u.queued_machines).copied().collect();
        let stale_racks: Vec<RackId> = u.queued_racks.difference(&want_racks).copied().collect();
        let new_racks: Vec<RackId> = want_racks.difference(&u.queued_racks).copied().collect();
        let was_cluster = u.queued_cluster;
        u.queued_machines = want_machines;
        u.queued_racks = want_racks;
        u.queued_cluster = active;

        for m in stale_machines {
            self.tree.dequeue_machine(m, &key);
        }
        for m in new_machines {
            self.tree.enqueue_machine(m, key, &footprint);
        }
        for r in stale_racks {
            self.tree.dequeue_rack(r, &key);
        }
        for r in new_racks {
            self.tree.enqueue_rack(r, key, &footprint);
        }
        match (was_cluster, active) {
            (true, false) => self.tree.dequeue_cluster(&key),
            (false, true) => self.tree.enqueue_cluster(key, &footprint),
            _ => {}
        }
    }

    fn unqueue_all(&mut self, app: AppId, unit_id: UnitId, u: &mut UnitEntry) {
        let key = u.key(app, unit_id);
        for m in std::mem::take(&mut u.queued_machines) {
            self.tree.dequeue_machine(m, &key);
        }
        for r in std::mem::take(&mut u.queued_racks) {
            self.tree.dequeue_rack(r, &key);
        }
        if std::mem::take(&mut u.queued_cluster) {
            self.tree.dequeue_cluster(&key);
        }
    }

    /// The free-up path: resources became available on `m`; hand them to
    /// waiting applications ("when resources of one machine are returned by
    /// one application master, certain waiting application will be selected
    /// to get the released resources").
    pub fn schedule_machine(&mut self, m: MachineId) {
        if self.paused {
            return;
        }
        let rack = self.topo.rack_of(m);
        // The candidate buffer is taken out of `self` so the grant calls
        // below can borrow the engine mutably; it goes back (with its
        // capacity) on every exit path, so steady state allocates nothing.
        let mut cands = std::mem::take(&mut self.scratch_cands);
        'outer: loop {
            let free = self.free.free(m).clone();
            if free.is_zero() {
                break;
            }
            self.tree
                .candidates_into(m, rack, &free, self.cfg.max_candidates, &mut cands);
            if cands.is_empty() {
                break;
            }
            let mut granted_any = false;
            let mut recheck = false;
            for &(level, key) in &cands {
                // A grant shrank the free vector; if every queue feeding
                // this machine is now hopeless, no remaining candidate can
                // be granted: candidates still queued are bounded below by
                // their queue's min footprint (which no longer fits), and
                // candidates dequeued mid-walk by `sync_queues` have zero
                // remaining want at this level. Skipping them changes no
                // decision — the reference engine keeps the full walk to
                // prove exactly that.
                if recheck && !self.cfg.reference_mode {
                    if self.all_queues_hopeless(m, rack) {
                        break 'outer;
                    }
                    recheck = false;
                }
                let Some(entry) = self.apps.get(&key.app) else {
                    continue;
                };
                let group = entry.group;
                let Some(u) = entry.units.get(&key.unit) else {
                    continue;
                };
                if u.avoid.contains(&m) {
                    continue;
                }
                let level_want = match level {
                    Level::Machine => u.wants.at_machine(m),
                    Level::Rack => u.wants.at_rack(rack),
                    Level::Cluster => u.wants.cluster(),
                };
                let want = level_want.min(u.wants.cluster());
                if want == 0 {
                    continue;
                }
                let unit_res = u.def.resource.clone();
                let can = want
                    .min(self.free.fits(m, &unit_res))
                    .min(self.quota_headroom(group, &unit_res, want));
                if can == 0 {
                    continue;
                }
                self.grant_at(key.app, key.unit, m, can);
                self.sync_queues(key.app, key.unit);
                granted_any = true;
                if self.free.free(m).is_zero() {
                    break 'outer;
                }
                recheck = true;
            }
            if !granted_any {
                break;
            }
        }
        self.scratch_cands = cands;
    }

    /// True when the machine, rack and cluster queues are all hopeless for
    /// `m`'s current free vector (absent queues are trivially hopeless).
    fn all_queues_hopeless(&self, m: MachineId, rack: RackId) -> bool {
        let free = self.free.free(m);
        self.tree
            .machine_queue(m)
            .is_none_or(|q| q.hopeless_for(free))
            && self.tree.rack_queue(rack).is_none_or(|q| q.hopeless_for(free))
            && self.tree.cluster_queue().hopeless_for(free)
    }

    // ------------------------------------------------------------------
    // Introspection used by the master actor and experiments
    // ------------------------------------------------------------------

    /// Grants currently on the books for one app, as `(unit, machine,
    /// unit_resource, count)` rows.
    pub fn app_grants(&self, app: AppId) -> Vec<(UnitId, MachineId, ResourceVec, u64)> {
        let Some(entry) = self.apps.get(&app) else {
            return Vec::new();
        };
        entry
            .units
            .iter()
            .flat_map(|(&uid, u)| {
                u.granted
                    .iter()
                    .map(move |(&m, &c)| (uid, m, u.def.resource.clone(), c))
            })
            .collect()
    }

    /// Current allocations on one machine, as `(app, unit, unit_resource,
    /// count)` rows — what a restarted agent needs to rebuild enforcement
    /// state. Answered from the reverse allocation index in O(allocations
    /// on `m`); in reference mode the original O(apps × units) scan runs.
    pub fn allocations_on(&self, m: MachineId) -> Vec<(AppId, UnitId, ResourceVec, u64)> {
        if self.cfg.reference_mode {
            let mut out = Vec::new();
            for (&app, entry) in &self.apps {
                for (&uid, u) in &entry.units {
                    if let Some(&c) = u.granted.get(&m) {
                        if c > 0 {
                            out.push((app, uid, u.def.resource.clone(), c));
                        }
                    }
                }
            }
            return out;
        }
        self.alloc_index[m.0 as usize]
            .iter()
            .filter(|&(_, &c)| c > 0)
            .filter_map(|(&(app, uid), &c)| {
                let res = self.apps.get(&app)?.units.get(&uid)?.def.resource.clone();
                Some((app, uid, res, c))
            })
            .collect()
    }

    /// Test-support: rebuilds the reverse allocation index from the per-unit
    /// grant maps and asserts both views agree, then checks the free pool's
    /// fit-index invariants.
    #[doc(hidden)]
    pub fn assert_index_consistent(&self) {
        let mut rebuilt: BTreeMap<(u32, AppId, UnitId), u64> = BTreeMap::new();
        for (&app, entry) in &self.apps {
            for (&uid, u) in &entry.units {
                for (&m, &c) in &u.granted {
                    if c > 0 {
                        rebuilt.insert((m.0, app, uid), c);
                    }
                }
            }
        }
        let mut indexed: BTreeMap<(u32, AppId, UnitId), u64> = BTreeMap::new();
        for (mi, slot) in self.alloc_index.iter().enumerate() {
            for (&(app, uid), &c) in slot {
                assert!(c > 0, "reverse index retains zero-count entry");
                indexed.insert((mi as u32, app, uid), c);
            }
        }
        assert_eq!(rebuilt, indexed, "reverse allocation index out of sync");
        self.free.assert_index_consistent();
    }

    /// Resource size of one container of `(app, unit)`, if known.
    pub fn unit_resource(&self, app: AppId, unit: UnitId) -> Option<ResourceVec> {
        self.apps
            .get(&app)
            .and_then(|e| e.units.get(&unit))
            .map(|u| u.def.resource.clone())
    }

    /// Total containers granted to one unit.
    pub fn unit_granted_total(&self, app: AppId, unit: UnitId) -> u64 {
        self.apps
            .get(&app)
            .and_then(|e| e.units.get(&unit))
            .map(|u| u.total_granted)
            .unwrap_or(0)
    }

    /// Outstanding (unsatisfied) cluster-level want of one unit.
    pub fn unit_outstanding(&self, app: AppId, unit: UnitId) -> u64 {
        self.unit_want(app, unit)
    }

    /// Free resources on one machine (for tests and placement heuristics).
    pub fn free_on(&self, m: MachineId) -> &ResourceVec {
        self.free.free(m)
    }

    /// Apps count.
    pub fn apps_count(&self) -> usize {
        self.apps.len()
    }

    /// Free-pool fragmentation summary for the metrics plane:
    /// `(free_mem_mb, stranded_mem_mb, largest_free_mem_mb)` where
    /// *stranded* is free memory sitting on machines whose free share is
    /// below `probe_mem_mb` (too small to fit a standard container, so it
    /// exists but can't be granted as one). One O(machines) scan — called
    /// once per metrics window, not on the decision path.
    pub fn free_summary(&self, probe_mem_mb: u64) -> (u64, u64, u64) {
        let mut free = 0u64;
        let mut stranded = 0u64;
        let mut largest = 0u64;
        for i in 0..self.free.n_machines() {
            let mem = self.free.free(MachineId(i as u32)).memory_mb();
            free += mem;
            if mem < probe_mem_mb {
                stranded += mem;
            }
            largest = largest.max(mem);
        }
        (free, stranded, largest)
    }
}
