//! WordCount and Terasort job builders (the paper's synthetic workload
//! applications, §5.2.1: "we use WordCount and Terasort").

use fuxi_job::desc::{Endpoint, JobDesc, PipeDesc, TaskDesc};
use std::collections::BTreeMap;

/// Parameters shared by the MapReduce-shaped builders.
#[derive(Debug, Clone)]
pub struct MapReduceParams {
    /// Map instances.
    pub maps: u32,
    /// Reduce instances.
    pub reduces: u32,
    /// Mean instance duration, seconds.
    pub map_duration_s: f64,
    /// The reduce duration s.
    pub reduce_duration_s: f64,
    /// ±fraction jitter on durations.
    pub jitter: f64,
    /// Per-instance resources: the paper's synthetic experiment uses
    /// {0.5 CPU, 2 GB}.
    pub cpu: f64,
    /// Memory per instance, MB.
    pub memory_mb: u64,
    /// Map output feeding the shuffle, MB per map instance.
    pub map_output_mb: f64,
    /// Input file pattern (empty = purely synthetic durations).
    pub input_pattern: Option<String>,
    /// DFS path the final output is written to.
    pub output_file: Option<String>,
    /// Model I/O through the flow simulator.
    pub data_driven: bool,
    /// Worker containers per task (0 = one per instance).
    pub max_workers: u32,
    /// Worker binary size, MB (Table 2: ~400 MB).
    pub binary_mb: f64,
}

impl Default for MapReduceParams {
    fn default() -> Self {
        Self {
            maps: 100,
            reduces: 10,
            map_duration_s: 60.0,
            reduce_duration_s: 60.0,
            jitter: 0.2,
            cpu: 0.5,
            memory_mb: 2048,
            map_output_mb: 8.0,
            input_pattern: None,
            output_file: None,
            data_driven: false,
            max_workers: 0,
            binary_mb: 400.0,
        }
    }
}

fn two_stage(p: &MapReduceParams, map_name: &str, reduce_name: &str) -> JobDesc {
    let map = TaskDesc {
        executable: format!("bin/{map_name}"),
        instances: p.maps,
        cpu: p.cpu,
        memory_mb: p.memory_mb,
        duration_s: p.map_duration_s,
        duration_jitter: p.jitter,
        output_mb_per_instance: p.map_output_mb,
        data_driven: p.data_driven,
        max_workers: p.max_workers,
        binary_mb: p.binary_mb,
        ..TaskDesc::synthetic(p.maps, p.map_duration_s)
    };
    let reduce = TaskDesc {
        executable: format!("bin/{reduce_name}"),
        instances: p.reduces,
        cpu: p.cpu,
        memory_mb: p.memory_mb,
        duration_s: p.reduce_duration_s,
        duration_jitter: p.jitter,
        output_mb_per_instance: p.map_output_mb * p.maps as f64 / p.reduces.max(1) as f64,
        data_driven: p.data_driven,
        max_workers: p.max_workers,
        binary_mb: p.binary_mb,
        ..TaskDesc::synthetic(p.reduces, p.reduce_duration_s)
    };
    let mut tasks = BTreeMap::new();
    tasks.insert(map_name.to_owned(), map);
    tasks.insert(reduce_name.to_owned(), reduce);
    let mut pipes = vec![PipeDesc {
        source: Endpoint {
            access_point: Some(format!("{map_name}:shuffle")),
            file_pattern: None,
        },
        destination: Endpoint {
            access_point: Some(format!("{reduce_name}:shuffle")),
            file_pattern: None,
        },
    }];
    if let Some(input) = &p.input_pattern {
        pipes.insert(
            0,
            PipeDesc {
                source: Endpoint {
                    file_pattern: Some(input.clone()),
                    access_point: None,
                },
                destination: Endpoint {
                    access_point: Some(format!("{map_name}:input")),
                    file_pattern: None,
                },
            },
        );
    }
    if let Some(output) = &p.output_file {
        pipes.push(PipeDesc {
            source: Endpoint {
                access_point: Some(format!("{reduce_name}:output")),
                file_pattern: None,
            },
            destination: Endpoint {
                file_pattern: Some(output.clone()),
                access_point: None,
            },
        });
    }
    JobDesc { tasks, pipes }
}

/// A WordCount job: map (tokenize+count) → reduce (sum).
pub fn wordcount_job(p: &MapReduceParams) -> JobDesc {
    two_stage(p, "wc_map", "wc_reduce")
}

/// A Terasort job: map (sample+partition) → reduce (merge-sort+write).
pub fn terasort_job(p: &MapReduceParams) -> JobDesc {
    two_stage(p, "ts_map", "ts_reduce")
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuxi_job::dag::TaskGraph;

    #[test]
    fn wordcount_builds_valid_two_stage_dag() {
        let d = wordcount_job(&MapReduceParams::default());
        let g = TaskGraph::build(&d).unwrap();
        assert_eq!(g.len(), 2);
        let map = g.by_name("wc_map").unwrap();
        let red = g.by_name("wc_reduce").unwrap();
        assert_eq!(g.task(red).upstream, vec![map]);
    }

    #[test]
    fn input_output_pipes_attach() {
        let p = MapReduceParams {
            input_pattern: Some("pangu://logs/*".into()),
            output_file: Some("pangu://wc-out".into()),
            ..Default::default()
        };
        let d = terasort_job(&p);
        let g = TaskGraph::build(&d).unwrap();
        let map = g.by_name("ts_map").unwrap();
        let red = g.by_name("ts_reduce").unwrap();
        assert_eq!(g.task(map).input_files, vec!["pangu://logs/*"]);
        assert_eq!(g.task(red).output_files, vec!["pangu://wc-out"]);
    }

    #[test]
    fn json_round_trip_stays_valid() {
        let d = wordcount_job(&MapReduceParams::default());
        let d2 = JobDesc::parse(&d.to_json()).unwrap();
        assert_eq!(d, d2);
    }

    #[test]
    fn reduce_output_scales_with_shuffle_volume() {
        let p = MapReduceParams {
            maps: 100,
            reduces: 10,
            map_output_mb: 5.0,
            ..Default::default()
        };
        let d = wordcount_job(&p);
        assert!((d.tasks["wc_reduce"].output_mb_per_instance - 50.0).abs() < 1e-9);
    }
}
