//! Typed trace events and causal trace IDs.
//!
//! Events are a `Copy` enum — recording one is a ring-buffer write, no
//! heap allocation, no string formatting. Strings only appear at export
//! time.

use std::fmt;

/// Causal identifier minted at job submission and propagated along every
/// downstream message. `0` means "no causal context" (periodic timers,
/// infrastructure chatter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The absent trace (timer-driven and infrastructure activity).
    pub const NONE: TraceId = TraceId(0);

    /// The trace of job `job` (raw id). Deterministic — re-submitting the
    /// same job id after a failover continues the same causal chain, which
    /// is exactly what a forensic timeline wants.
    pub fn from_job(job: u32) -> TraceId {
        TraceId(1 + job as u64)
    }

    /// Inverse of [`TraceId::from_job`].
    pub fn job(self) -> Option<u32> {
        if self.0 == 0 {
            None
        } else {
            Some((self.0 - 1) as u32)
        }
    }

    /// `true` when a causal context is attached.
    pub fn is_some(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// One structured event. Field types are raw integers so the crate stays
/// dependency-free; the protocol layer converts its newtypes at call sites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// Client submission reached the FuxiMaster (trace minted here).
    JobSubmitted {
        /// Job id.
        job: u32,
        /// Application id the master assigned.
        app: u32,
    },
    /// FuxiMaster asked an agent to start the job's JobMaster.
    JmLaunchRequested {
        /// Application id.
        app: u32,
        /// Machine chosen for the JobMaster.
        machine: u32,
    },
    /// The JobMaster process is up.
    JmStarted {
        /// Application id.
        app: u32,
        /// Machine it runs on.
        machine: u32,
    },
    /// The JobMaster process exited (crash or machine death).
    JmExited {
        /// Application id.
        app: u32,
        /// Machine it ran on.
        machine: u32,
    },
    /// Scheduler granted containers.
    Grant {
        /// Application id.
        app: u32,
        /// ScheduleUnit id.
        unit: u32,
        /// Machine granted on.
        machine: u32,
        /// Containers granted.
        count: u64,
    },
    /// Scheduler revoked containers.
    Revoke {
        /// Application id.
        app: u32,
        /// ScheduleUnit id.
        unit: u32,
        /// Machine revoked on.
        machine: u32,
        /// Containers revoked.
        count: u64,
    },
    /// A batched request-delta flush applied to the engine.
    RequestApplied {
        /// Application id.
        app: u32,
        /// Number of per-unit deltas in the batch.
        deltas: u32,
    },
    /// An application master asked an agent to launch a worker.
    WorkerLaunchRequested {
        /// Application id.
        app: u32,
        /// Worker id.
        worker: u64,
        /// Machine asked to launch.
        machine: u32,
    },
    /// The worker process is up.
    WorkerStarted {
        /// Application id.
        app: u32,
        /// Worker id.
        worker: u64,
        /// Machine it runs on.
        machine: u32,
    },
    /// The worker process exited or was killed.
    WorkerExited {
        /// Application id.
        app: u32,
        /// Worker id.
        worker: u64,
        /// Machine it ran on.
        machine: u32,
        /// Why ("crashed", "killed", "launch_failed", ...).
        reason: &'static str,
    },
    /// An instance attempt was assigned to a worker.
    InstanceAssigned {
        /// Instance id.
        instance: u64,
        /// Attempt number.
        attempt: u32,
        /// Worker executing it.
        worker: u64,
    },
    /// An instance attempt reached a terminal state.
    InstanceFinished {
        /// Instance id.
        instance: u64,
        /// Attempt number.
        attempt: u32,
        /// Whether the attempt succeeded.
        ok: bool,
    },
    /// The job reached a terminal state at the FuxiMaster.
    JobFinished {
        /// Job id.
        job: u32,
        /// Application id.
        app: u32,
        /// Whether the job succeeded.
        success: bool,
    },
    /// A machine went down (kernel fault or heartbeat exclusion).
    NodeDown {
        /// Machine id.
        machine: u32,
    },
    /// A machine came (back) into the schedulable pool.
    NodeUp {
        /// Machine id.
        machine: u32,
    },
    /// A FuxiMaster won the election lock.
    MasterElected {
        /// The master's actor id.
        actor: u32,
        /// `true` when it inherited jobs from a previous primary (failover).
        failover: bool,
    },
    /// A primary lost its lease.
    MasterLockLost {
        /// The master's actor id.
        actor: u32,
    },
    /// Failover soft-state rebuild window opened.
    RebuildStarted {
        /// Jobs recovered from the hard-state checkpoint.
        jobs: u32,
    },
    /// Rebuild finished; scheduling resumed.
    RebuildDone {
        /// Applications whose soft state was re-collected.
        apps_seen: u32,
    },
    /// The flight recorder dumped (see [`crate::FlightDump`] for contents).
    FlightDumped {
        /// Why ("master_failover", "node_down_storm", "invariant", ...).
        reason: &'static str,
        /// Events captured across all dumped rings.
        events: u32,
    },
    /// An SLO watchdog rule crossed its threshold (either direction).
    SloAlert {
        /// Stable rule name (see [`crate::slo::SloRuleKind::name`]).
        rule: &'static str,
        /// `true` = breach began, `false` = breach cleared.
        raised: bool,
        /// Observed value at the transition (rule-specific unit).
        value: f32,
        /// Configured threshold.
        threshold: f32,
    },
}

impl TraceEvent {
    /// Stable event name used by the exporters and `trace_dump`.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::JobSubmitted { .. } => "job_submitted",
            TraceEvent::JmLaunchRequested { .. } => "jm_launch_requested",
            TraceEvent::JmStarted { .. } => "jm_started",
            TraceEvent::JmExited { .. } => "jm_exited",
            TraceEvent::Grant { .. } => "grant",
            TraceEvent::Revoke { .. } => "revoke",
            TraceEvent::RequestApplied { .. } => "request_applied",
            TraceEvent::WorkerLaunchRequested { .. } => "worker_launch_requested",
            TraceEvent::WorkerStarted { .. } => "worker_started",
            TraceEvent::WorkerExited { .. } => "worker_exited",
            TraceEvent::InstanceAssigned { .. } => "instance_assigned",
            TraceEvent::InstanceFinished { .. } => "instance_finished",
            TraceEvent::JobFinished { .. } => "job_finished",
            TraceEvent::NodeDown { .. } => "node_down",
            TraceEvent::NodeUp { .. } => "node_up",
            TraceEvent::MasterElected { .. } => "master_elected",
            TraceEvent::MasterLockLost { .. } => "master_lock_lost",
            TraceEvent::RebuildStarted { .. } => "rebuild_started",
            TraceEvent::RebuildDone { .. } => "rebuild_done",
            TraceEvent::FlightDumped { .. } => "flight_dumped",
            TraceEvent::SloAlert { .. } => "slo_alert",
        }
    }

    /// Appends the event's fields as JSON object members (`,"k":v...`) —
    /// shared by the JSONL and Chrome exporters.
    pub fn write_json_fields(&self, out: &mut String) {
        use std::fmt::Write;
        match *self {
            TraceEvent::JobSubmitted { job, app } => {
                let _ = write!(out, ",\"job\":{job},\"app\":{app}");
            }
            TraceEvent::JmLaunchRequested { app, machine }
            | TraceEvent::JmStarted { app, machine }
            | TraceEvent::JmExited { app, machine } => {
                let _ = write!(out, ",\"app\":{app},\"machine\":{machine}");
            }
            TraceEvent::Grant {
                app,
                unit,
                machine,
                count,
            }
            | TraceEvent::Revoke {
                app,
                unit,
                machine,
                count,
            } => {
                let _ = write!(
                    out,
                    ",\"app\":{app},\"unit\":{unit},\"machine\":{machine},\"count\":{count}"
                );
            }
            TraceEvent::RequestApplied { app, deltas } => {
                let _ = write!(out, ",\"app\":{app},\"deltas\":{deltas}");
            }
            TraceEvent::WorkerLaunchRequested { app, worker, machine }
            | TraceEvent::WorkerStarted { app, worker, machine } => {
                let _ = write!(out, ",\"app\":{app},\"worker\":{worker},\"machine\":{machine}");
            }
            TraceEvent::WorkerExited {
                app,
                worker,
                machine,
                reason,
            } => {
                let _ = write!(
                    out,
                    ",\"app\":{app},\"worker\":{worker},\"machine\":{machine},\"reason\":\"{reason}\""
                );
            }
            TraceEvent::InstanceAssigned {
                instance,
                attempt,
                worker,
            } => {
                let _ = write!(
                    out,
                    ",\"instance\":{instance},\"attempt\":{attempt},\"worker\":{worker}"
                );
            }
            TraceEvent::InstanceFinished {
                instance,
                attempt,
                ok,
            } => {
                let _ = write!(out, ",\"instance\":{instance},\"attempt\":{attempt},\"ok\":{ok}");
            }
            TraceEvent::JobFinished { job, app, success } => {
                let _ = write!(out, ",\"job\":{job},\"app\":{app},\"success\":{success}");
            }
            TraceEvent::NodeDown { machine } | TraceEvent::NodeUp { machine } => {
                let _ = write!(out, ",\"machine\":{machine}");
            }
            // "master", not "actor": the enclosing record line already has
            // a top-level "actor" key and JSON duplicates are undefined.
            TraceEvent::MasterElected { actor, failover } => {
                let _ = write!(out, ",\"master\":{actor},\"failover\":{failover}");
            }
            TraceEvent::MasterLockLost { actor } => {
                let _ = write!(out, ",\"master\":{actor}");
            }
            TraceEvent::RebuildStarted { jobs } => {
                let _ = write!(out, ",\"jobs\":{jobs}");
            }
            TraceEvent::RebuildDone { apps_seen } => {
                let _ = write!(out, ",\"apps_seen\":{apps_seen}");
            }
            TraceEvent::FlightDumped { reason, events } => {
                let _ = write!(out, ",\"reason\":\"{reason}\",\"events\":{events}");
            }
            TraceEvent::SloAlert {
                rule,
                raised,
                value,
                threshold,
            } => {
                let _ = write!(
                    out,
                    ",\"rule\":\"{rule}\",\"raised\":{raised},\"value\":{value},\"threshold\":{threshold}"
                );
            }
        }
    }
}

/// One recorded event: when, who, under which causal chain, what.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Simulated time, seconds.
    pub t_s: f64,
    /// Recording actor's id.
    pub actor: u32,
    /// Causal trace id (0 = none).
    pub trace: TraceId,
    /// What happened.
    pub event: TraceEvent,
}

/// What a timed span covers. Spans measure *wall-clock* cost of real
/// computation (the natively executing scheduler) at a *simulated*
/// timestamp — the pairing behind the paper's Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One scheduler decision pass (request delta, free-up, node event).
    SchedDecision,
    /// A batched request-delta flush.
    BatchFlush,
    /// A FuxiMaster message-handler invocation.
    MsgHandler,
    /// Failover soft-state rebuild.
    Rebuild,
    /// Hard-state checkpoint write.
    Checkpoint,
}

impl SpanKind {
    /// Stable span name used by the exporters and metrics sink.
    pub fn name(&self) -> &'static str {
        match self {
            SpanKind::SchedDecision => "sched_decision",
            SpanKind::BatchFlush => "batch_flush",
            SpanKind::MsgHandler => "msg_handler",
            SpanKind::Rebuild => "rebuild",
            SpanKind::Checkpoint => "checkpoint",
        }
    }
}

/// One completed span.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanRecord {
    /// Simulated time the span was recorded, seconds.
    pub t_s: f64,
    /// Recording actor's id.
    pub actor: u32,
    /// Causal trace id active when the span ran (0 = none).
    pub trace: TraceId,
    /// What it covers.
    pub kind: SpanKind,
    /// Measured wall-clock duration, seconds.
    pub wall_s: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_id_roundtrips_job() {
        assert_eq!(TraceId::from_job(0).job(), Some(0));
        assert_eq!(TraceId::from_job(41).job(), Some(41));
        assert_eq!(TraceId::NONE.job(), None);
        assert!(!TraceId::NONE.is_some());
        assert!(TraceId::from_job(0).is_some());
    }

    #[test]
    fn events_are_compact() {
        // The hot-path record must stay one cache line: no heap anywhere.
        assert!(std::mem::size_of::<TraceRecord>() <= 64);
    }

    #[test]
    fn json_fields_render() {
        let mut s = String::new();
        TraceEvent::Grant {
            app: 1,
            unit: 2,
            machine: 3,
            count: 4,
        }
        .write_json_fields(&mut s);
        assert_eq!(s, ",\"app\":1,\"unit\":2,\"machine\":3,\"count\":4");
        let mut s = String::new();
        TraceEvent::WorkerExited {
            app: 9,
            worker: 8,
            machine: 7,
            reason: "crashed",
        }
        .write_json_fields(&mut s);
        assert!(s.contains("\"reason\":\"crashed\""));
    }
}
