#![warn(missing_docs)]
//! # fuxi-job — the Fuxi DAG job framework
//!
//! The batch dataflow programming model of paper Section 4: JSON-described
//! DAG jobs ([`desc`], [`dag`]), the hierarchical JobMaster / TaskMaster /
//! TaskWorker scheduling model ([`job_master`], [`task_master`],
//! [`worker`]), user-transparent JobMaster failover via lightweight
//! snapshots ([`snapshot`]), the bottom-up multi-level blacklist
//! ([`blacklist`]), the backup-instance straggler scheme ([`backup`]), and
//! the Streamline shuffle-operator library ([`streamline`]).

pub mod backup;
pub mod blacklist;
pub mod dag;
pub mod desc;
pub mod job_master;
pub mod snapshot;
pub mod streamline;
pub mod task_master;
pub mod worker;

pub use backup::BackupConfig;
pub use blacklist::{JobBlacklist, JobBlacklistConfig};
pub use dag::TaskGraph;
pub use desc::{JobDesc, TaskDesc};
pub use job_master::{JobMaster, JobMasterConfig};
pub use snapshot::JobSnapshot;
pub use task_master::TaskMaster;
pub use worker::{TaskWorker, WorkerConfig};
