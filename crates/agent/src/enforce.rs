//! Process isolation policies (paper Section 2.2).
//!
//! "To achieve process isolation, we have adopted three schemes ...
//! Firstly, FuxiAgent will start processes for one application only if it
//! has obtained sufficient resource on this machine from FuxiMaster. We
//! call this procedure resource capacity ensurance. ... Secondly, each
//! process is configured with Cgroup soft and hard limit. When a machine
//! encounters with resource overload, one or more processes will be killed
//! ... One simple rule is to select the process whose real resource usage
//! exceeds its own resource usage most. Thirdly, sandbox is leveraged to
//! isolate different processes from invalid operations such as file
//! access. In fact, different root folders are created for each process."

use fuxi_proto::{AppId, ResourceVec, UnitId, WorkerId};
use std::collections::BTreeMap;

/// The per-app granted envelope on one machine: how many containers of each
/// unit size FuxiMaster says this app may run here. Counts can transiently
/// go negative when a revocation outruns a grant notification; enforcement
/// clamps at zero.
#[derive(Debug, Default)]
pub struct Envelope {
    per_unit: BTreeMap<(AppId, UnitId), (ResourceVec, i64)>,
}

impl Envelope {
    /// Creates a new instance with the given configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Applies a `CapacityNotify` delta.
    pub fn apply(&mut self, app: AppId, unit: UnitId, unit_res: ResourceVec, delta: i64) {
        let e = self
            .per_unit
            .entry((app, unit))
            .or_insert((unit_res.clone(), 0));
        e.0 = unit_res;
        e.1 += delta;
        if e.1 <= 0 && delta < 0 {
            // Keep zero entries so late grants still find the unit size.
            e.1 = e.1.max(0);
        }
    }

    /// Replaces the whole envelope (from `AgentCapacitySnapshot`).
    pub fn replace(&mut self, rows: Vec<(AppId, UnitId, ResourceVec, u64)>) {
        self.per_unit.clear();
        for (app, unit, res, count) in rows {
            self.per_unit.insert((app, unit), (res, count as i64));
        }
    }

    /// Containers of `(app, unit)` the envelope currently allows.
    pub fn allowed(&self, app: AppId, unit: UnitId) -> u64 {
        self.per_unit
            .get(&(app, unit))
            .map(|&(_, c)| c.max(0) as u64)
            .unwrap_or(0)
    }

    /// Snapshot for `AgentAllocationReport` during master failover.
    pub fn report(&self) -> Vec<(AppId, UnitId, ResourceVec, u64)> {
        self.per_unit
            .iter()
            .filter(|(_, &(_, c))| c > 0)
            .map(|(&(a, u), (res, c))| (a, u, res.clone(), *c as u64))
            .collect()
    }

    /// Unit resource size, if known.
    pub fn unit_size(&self, app: AppId, unit: UnitId) -> Option<&ResourceVec> {
        self.per_unit.get(&(app, unit)).map(|(res, _)| res)
    }
}

/// One running process as the overload policy sees it.
#[derive(Debug, Clone)]
pub struct ProcUsage {
    /// Worker id.
    pub worker: WorkerId,
    /// Resource limit enforced by the agent.
    pub limit: ResourceVec,
    /// Fraction of the limit the process actually consumes.
    pub usage_factor: f64,
}

impl ProcUsage {
    /// Actual consumption under the usage model.
    pub fn usage(&self) -> ResourceVec {
        ResourceVec::new(
            (self.limit.cpu_milli() as f64 * self.usage_factor) as u64,
            (self.limit.memory_mb() as f64 * self.usage_factor) as u64,
        )
    }

    /// How far beyond its own limit the process runs, in MB-equivalents
    /// (the kill-ranking metric: "the process whose real resource usage
    /// exceeds its own resource usage most").
    pub fn excess(&self) -> f64 {
        let u = self.usage();
        let over_cpu = u.cpu_milli() as f64 - self.limit.cpu_milli() as f64;
        let over_mem = u.memory_mb() as f64 - self.limit.memory_mb() as f64;
        over_cpu.max(0.0) + over_mem.max(0.0)
    }
}

/// Picks the process to kill when the machine is overloaded. Returns `None`
/// when no process exceeds its limit (then the machine is simply full, not
/// abused, and nothing is killed).
pub fn pick_overload_victim(procs: &[ProcUsage]) -> Option<WorkerId> {
    procs
        .iter()
        .filter(|p| p.excess() > 0.0)
        .max_by(|a, b| a.excess().partial_cmp(&b.excess()).unwrap())
        .map(|p| p.worker)
}

/// Sandbox bookkeeping: "different root folders are created for each
/// process preventing interference and resource access from others."
#[derive(Debug, Default)]
pub struct Sandbox {
    roots: BTreeMap<WorkerId, String>,
}

impl Sandbox {
    /// Create.
    pub fn create(&mut self, app: AppId, worker: WorkerId) -> &str {
        self.roots
            .entry(worker)
            .or_insert_with(|| format!("/fuxi/sandbox/{app}/{worker}"));
        &self.roots[&worker]
    }

    /// Destroy.
    pub fn destroy(&mut self, worker: WorkerId) {
        self.roots.remove(&worker);
    }

    /// Root.
    pub fn root(&self, worker: WorkerId) -> Option<&str> {
        self.roots.get(&worker).map(String::as_str)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.roots.len()
    }

    /// True when there are no entries.
    pub fn is_empty(&self) -> bool {
        self.roots.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn envelope_apply_and_allowed() {
        let mut env = Envelope::new();
        let res = ResourceVec::new(500, 2048);
        env.apply(AppId(1), UnitId(0), res.clone(), 3);
        assert_eq!(env.allowed(AppId(1), UnitId(0)), 3);
        env.apply(AppId(1), UnitId(0), res.clone(), -1);
        assert_eq!(env.allowed(AppId(1), UnitId(0)), 2);
        // Revocation outrunning grants clamps at zero, not negative.
        env.apply(AppId(1), UnitId(0), res.clone(), -10);
        assert_eq!(env.allowed(AppId(1), UnitId(0)), 0);
        assert_eq!(env.unit_size(AppId(1), UnitId(0)), Some(&res));
        assert_eq!(env.allowed(AppId(9), UnitId(0)), 0);
    }

    #[test]
    fn envelope_report_skips_zero_rows() {
        let mut env = Envelope::new();
        env.apply(AppId(1), UnitId(0), ResourceVec::new(1, 1), 2);
        env.apply(AppId(2), UnitId(0), ResourceVec::new(1, 1), 0);
        let rows = env.report();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, AppId(1));
    }

    #[test]
    fn envelope_replace_resets() {
        let mut env = Envelope::new();
        env.apply(AppId(1), UnitId(0), ResourceVec::new(1, 1), 5);
        env.replace(vec![(AppId(2), UnitId(1), ResourceVec::new(2, 2), 7)]);
        assert_eq!(env.allowed(AppId(1), UnitId(0)), 0);
        assert_eq!(env.allowed(AppId(2), UnitId(1)), 7);
    }

    #[test]
    fn overload_victim_is_worst_offender() {
        let procs = vec![
            ProcUsage {
                worker: WorkerId(1),
                limit: ResourceVec::new(1000, 1000),
                usage_factor: 0.9, // within limit
            },
            ProcUsage {
                worker: WorkerId(2),
                limit: ResourceVec::new(1000, 1000),
                usage_factor: 1.5, // 500+500 over
            },
            ProcUsage {
                worker: WorkerId(3),
                limit: ResourceVec::new(1000, 4000),
                usage_factor: 1.2, // 200+800 over
            },
        ];
        assert_eq!(pick_overload_victim(&procs), Some(WorkerId(3)));
    }

    #[test]
    fn no_victim_when_everyone_within_limits() {
        let procs = vec![ProcUsage {
            worker: WorkerId(1),
            limit: ResourceVec::new(1000, 1000),
            usage_factor: 1.0,
        }];
        assert_eq!(pick_overload_victim(&procs), None);
        assert_eq!(pick_overload_victim(&[]), None);
    }

    #[test]
    fn sandbox_roots_are_per_process() {
        let mut sb = Sandbox::default();
        let r1 = sb.create(AppId(1), WorkerId(1)).to_owned();
        let r2 = sb.create(AppId(1), WorkerId(2)).to_owned();
        assert_ne!(r1, r2);
        assert_eq!(sb.root(WorkerId(1)), Some(r1.as_str()));
        sb.destroy(WorkerId(1));
        assert_eq!(sb.root(WorkerId(1)), None);
        assert_eq!(sb.len(), 1);
    }
}
