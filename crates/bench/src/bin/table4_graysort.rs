//! Regenerates **Table 4** — the GraySort comparison: Fuxi's sort
//! throughput vs. a YARN/Hadoop-style baseline (per-task containers,
//! reclaim-on-completion) on the same simulated hardware.
//!
//! Both runs execute a real two-phase external sort through the flow-level
//! disk/NIC model; the paper's claim under test is the *ratio* (Fuxi won by
//! 66.5%), since absolute numbers depend on the hardware model.
//!
//! Run: `cargo run --release -p fuxi-bench --bin table4_graysort -- [--scale 0.01]`
//! Add `--petasort` for the §5.3 PetaSort run (1 PB over 2,800 nodes at
//! the chosen scale; paper: 6 hours, "comparable with Google's result in
//! 2008").

use fuxi_cluster::report::print_table;
use fuxi_cluster::{Cluster, ClusterConfig, SubmitOpts};
use fuxi_proto::topology::MachineSpec;
use fuxi_proto::ResourceVec;
use fuxi_sim::SimTime;
use fuxi_workloads::sortbench::{graysort_job, SortParams};

struct SortOutcome {
    seconds: f64,
    tb: f64,
}

fn run_sort(scale: f64, seed: u64, container_reuse: bool, machines: usize) -> SortOutcome {
    let jm = fuxi_job::JobMasterConfig {
        container_reuse,
        ..fuxi_job::JobMasterConfig::default()
    };
    let mut c = Cluster::new(ClusterConfig {
        n_machines: machines,
        rack_size: 50,
        machine_spec: MachineSpec {
            resources: ResourceVec::cores_mb(24, 96 * 1024),
            ..MachineSpec::default()
        },
        seed,
        jm,
        ..ClusterConfig::default()
    });
    let p = SortParams::graysort(scale);
    // Stage the input across the cluster (3-way replicated, 256 MB chunks).
    c.pangu.create(&p.input_file, p.total_gb * 1024.0, p.chunk_mb, 3, &c.topo);
    let desc = graysort_job(&p);
    let job = c.submit(&desc, &SubmitOpts::default());
    let done = c.run_until_job_done(job, SimTime::from_secs(200_000));
    let (ok, at) = done.expect("sort completes");
    assert!(ok, "sort must succeed");
    let submitted = c.job_state(job).map(|s| s.submitted_s).unwrap_or(0.0);
    SortOutcome {
        seconds: at - submitted,
        tb: p.total_gb / 1024.0,
    }
}

fn run_petasort(scale: f64, seed: u64) {
    // §5.3: "we also evaluate the PetaSort benchmark in a 2,800 nodes
    // cluster ... the uncompressed data size is 1 Petabyte. The elapsed
    // time is 6 hours."
    let machines = ((2800.0 * scale).round() as usize).max(20);
    let data_scale = 10.0 * scale; // 1 PB = 10× the GraySort volume
    let jm = fuxi_job::JobMasterConfig::default();
    let mut c = Cluster::new(ClusterConfig {
        n_machines: machines,
        rack_size: 50,
        machine_spec: MachineSpec {
            resources: ResourceVec::cores_mb(24, 96 * 1024),
            ..MachineSpec::default()
        },
        seed,
        jm,
        ..ClusterConfig::default()
    });
    let p = SortParams::graysort(data_scale.min(1.0));
    c.pangu.create(&p.input_file, p.total_gb * 1024.0, p.chunk_mb, 3, &c.topo);
    let job = c.submit(&graysort_job(&p), &SubmitOpts::default());
    println!(
        "PetaSort at scale {scale}: {:.1} TB over {} nodes...",
        p.total_gb / 1024.0,
        machines
    );
    let (ok, at) = c
        .run_until_job_done(job, SimTime::from_secs(400_000))
        .expect("petasort completes");
    assert!(ok);
    println!(
        "  sorted {:.1} TB in {:.0} s ({:.2} h) — paper: 1 PB in ~6 h on 2,800 nodes",
        p.total_gb / 1024.0,
        at,
        at / 3600.0
    );
}

fn main() {
    let args = fuxi_bench::Args::parse(0.01, 0);
    if std::env::args().any(|a| a == "--petasort") {
        run_petasort(args.scale, args.seed);
        return;
    }
    // Fuxi row: the paper's node count scaled; Yahoo row: 2,100 of 5,000
    // nodes scaled by the same factor (their 2012 record cluster).
    let fuxi_machines = ((5000.0 * args.scale).round() as usize).max(20);
    let yahoo_machines = ((2100.0 * args.scale).round() as usize).max(10);
    println!(
        "GraySort at scale {}: {:.2} TB over {} nodes (Fuxi) / {:.2} TB over {} nodes (baseline)",
        args.scale,
        100.0 * args.scale,
        fuxi_machines,
        100.0 * args.scale * (yahoo_machines as f64 / fuxi_machines as f64),
        yahoo_machines,
    );
    println!("running Fuxi sort...");
    let fuxi = run_sort(args.scale, args.seed, true, fuxi_machines);
    println!(
        "  done in {:.0} s ({:.3} TB/min)",
        fuxi.seconds,
        fuxi.tb / (fuxi.seconds / 60.0)
    );
    println!("running YARN/Hadoop-style baseline (no container reuse)...");
    // Baseline sorts proportionally less data on its smaller cluster so the
    // per-node load matches (as in the real record attempts).
    let base_scale = args.scale * yahoo_machines as f64 / fuxi_machines as f64;
    let baseline = run_sort(base_scale, args.seed + 1, false, yahoo_machines);
    println!(
        "  done in {:.0} s ({:.3} TB/min)",
        baseline.seconds,
        baseline.tb / (baseline.seconds / 60.0)
    );
    let fuxi_tpm = fuxi.tb / (fuxi.seconds / 60.0);
    let base_tpm = baseline.tb / (baseline.seconds / 60.0);
    print_table(
        "Table 4: GraySort result comparison",
        &["provenance", "paper", "measured (scaled)"],
        &[
            fuxi_bench::row(
                "Fuxi (5000 nodes)",
                "100 TB in 2538 s = 2.364 TB/min",
                &format!(
                    "{:.2} TB in {:.0} s = {:.3} TB/min",
                    fuxi.tb, fuxi.seconds, fuxi_tpm
                ),
            ),
            fuxi_bench::row(
                "Yahoo! Hadoop (2100 nodes)",
                "102.5 TB in 4328 s = 1.42 TB/min",
                &format!(
                    "{:.2} TB in {:.0} s = {:.3} TB/min",
                    baseline.tb, baseline.seconds, base_tpm
                ),
            ),
            fuxi_bench::row(
                "improvement",
                "66.5%",
                &format!("{:.1}%", 100.0 * (fuxi_tpm / base_tpm - 1.0)),
            ),
        ],
    );
    // Decompose the headline number: total improvement = cluster-size
    // ratio × per-node scheduler-efficiency gain. The paper's 66.5% mixes
    // both (Yahoo's tuned Hadoop was per-node *faster* on its disk-heavy
    // nodes); our reproduction holds hardware equal, so the decomposition
    // is the honest comparison.
    let node_ratio = fuxi_machines as f64 / yahoo_machines as f64;
    let per_node_gain = fuxi_tpm / base_tpm / node_ratio;
    println!(
        "\ndecomposition: total {:.2}× = cluster-size {:.2}× × per-node scheduler gain {:.2}×",
        fuxi_tpm / base_tpm,
        node_ratio,
        per_node_gain
    );
    println!(
        "\nShape claims under test: (1) Fuxi completes the sort end-to-end at\n\
         cluster scale and wins the headline TB/min (paper: +66.5%); (2) on\n\
         identical hardware, container reuse + event-driven scheduling beat\n\
         per-task containers per node (ours: {:.0}% per-node gain). Absolute\n\
         TB/min differs from the record runs — the flow model idealizes\n\
         disks and switches.",
        (per_node_gain - 1.0) * 100.0
    );
}
