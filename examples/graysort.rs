//! A pocket GraySort (paper §5.3): a data-driven two-phase external sort
//! where every byte moves through the simulated disks and NICs. Prints the
//! sort throughput the way the sortbenchmark.org results do.
//!
//! Run: `cargo run --release --example graysort`
//! (pass a scale factor to sort more, e.g. `-- 0.01` for 1 TB)

use fuxi::cluster::{Cluster, ClusterConfig, SubmitOpts};
use fuxi::proto::topology::MachineSpec;
use fuxi::proto::ResourceVec;
use fuxi::sim::SimTime;
use fuxi::workloads::sortbench::{graysort_job, SortParams};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.002); // 200 GB by default
    let machines = ((5000.0 * scale).round() as usize).max(10);
    let mut cluster = Cluster::new(ClusterConfig {
        n_machines: machines,
        rack_size: 50,
        machine_spec: MachineSpec {
            resources: ResourceVec::cores_mb(24, 96 * 1024),
            ..MachineSpec::default()
        },
        seed: 2013, // the year of the record
        ..ClusterConfig::default()
    });
    let params = SortParams::graysort(scale);
    println!(
        "GraySort: {:.2} TB over {} machines ({} map / {} reduce instances)",
        params.total_gb / 1024.0,
        machines,
        params.maps,
        params.reduces
    );
    cluster.pangu.create(
        &params.input_file,
        params.total_gb * 1024.0,
        params.chunk_mb,
        3,
        &cluster.topo,
    );
    let job = cluster.submit(&graysort_job(&params), &SubmitOpts::default());
    let (ok, at) = cluster
        .run_until_job_done(job, SimTime::from_secs(100_000))
        .expect("sort finishes");
    assert!(ok);
    let tb = params.total_gb / 1024.0;
    println!(
        "\nsorted {:.2} TB in {:.0} simulated seconds = {:.3} TB/min",
        tb,
        at,
        tb / (at / 60.0)
    );
    println!("paper, full scale: 100 TB in 2538 s = 2.364 TB/min on 5,000 nodes");
    let m = cluster.world.metrics();
    println!(
        "\nflows: {}   scheduler grants: {}   containers: {}",
        m.counter("flow.started"),
        m.counter("fm.grant_updates"),
        m.counter("jm.workers_requested"),
    );
}
