//! Multi-tenancy (paper §3.4): quota groups sharing one cluster.
//!
//! Group "production" is guaranteed half the cluster; group "adhoc" is
//! work-conserving and grabs everything while production is idle — then
//! gets preempted back to make room the moment production wakes up.
//!
//! Run: `cargo run --release --example multi_tenancy`

use fuxi::cluster::{Cluster, ClusterConfig, SubmitOpts};
use fuxi::core::master::MasterConfig;
use fuxi::core::quota::QuotaGroup;
use fuxi::proto::{Priority, QuotaGroupId, ResourceVec};
use fuxi::sim::{SimDuration, SimTime};
use fuxi::workloads::mapreduce::{wordcount_job, MapReduceParams};

fn main() {
    let n_machines = 12;
    // Guarantee each group half the cluster's resources.
    let half = ResourceVec::cores_mb(12 * n_machines as u64 / 2, 96 * 1024 * n_machines as u64 / 2);
    let master = MasterConfig {
        quota_groups: vec![
            (QuotaGroupId(1), QuotaGroup { min: half.clone(), max: None }), // production
            (QuotaGroupId(2), QuotaGroup { min: half, max: None }),         // adhoc
        ],
        ..MasterConfig::default()
    };
    let mut cluster = Cluster::new(ClusterConfig {
        n_machines,
        rack_size: 4,
        seed: 99,
        master,
        ..ClusterConfig::default()
    });

    // Ad-hoc analytics floods the idle cluster (work-conserving sharing).
    let adhoc = wordcount_job(&MapReduceParams {
        maps: 400,
        reduces: 10,
        map_duration_s: 60.0,
        reduce_duration_s: 10.0,
        jitter: 0.2,
        max_workers: 300,
        binary_mb: 60.0,
        ..Default::default()
    });
    let adhoc_job = cluster.submit(
        &adhoc,
        &SubmitOpts {
            quota_group: QuotaGroupId(2),
            priority: Priority(2000),
            ..Default::default()
        },
    );
    cluster.run_for(SimDuration::from_secs(40));
    println!(
        "t=40s  adhoc job {} using the whole idle cluster (planned: {} MB memory)",
        adhoc_job,
        cluster.world.metrics().gauge("fa.planned_mem_mb") as u64
    );

    // Production wakes up: its guaranteed minimum must be carved back out
    // via quota preemption.
    let production = wordcount_job(&MapReduceParams {
        maps: 100,
        reduces: 4,
        map_duration_s: 10.0,
        reduce_duration_s: 5.0,
        jitter: 0.1,
        max_workers: 100,
        binary_mb: 60.0,
        ..Default::default()
    });
    let prod_job = cluster.submit(
        &production,
        &SubmitOpts {
            quota_group: QuotaGroupId(1),
            priority: Priority(500),
            ..Default::default()
        },
    );
    println!("t=40s  production job {prod_job} submitted in the guaranteed group");

    let (ok, at) = cluster
        .run_until_job_done(prod_job, SimTime::from_secs(2000))
        .expect("production finishes");
    assert!(ok);
    println!("t={at:.0}s production job finished — preemption reclaimed its quota");

    let (ok2, at2) = cluster
        .run_until_job_done(adhoc_job, SimTime::from_secs(20_000))
        .expect("adhoc finishes eventually");
    println!(
        "t={:.0}s adhoc job {} (it kept whatever production didn't need)",
        at2,
        if ok2 { "finished" } else { "failed" }
    );
}
