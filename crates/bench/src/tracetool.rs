//! Offline reconstruction of causal timelines from the fuxi-obs JSONL
//! export. The `trace_dump` binary is a thin CLI over this module so the
//! parsing and reconstruction logic stays unit-testable: given the event
//! stream of a run, it rebuilds per-job lifecycles (submit → JM launch →
//! grants → workers → instances → finish, keyed by the causal trace id)
//! and the cluster-level failover timeline (elections, lock losses,
//! rebuild windows, node churn, flight dumps).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use serde_json::Value;

/// Extracts a number from any of the shim's numeric variants.
fn num(v: &Value) -> Option<f64> {
    match v {
        Value::UInt(u) => Some(*u as f64),
        Value::Int(i) => Some(*i as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// Extracts an unsigned integer (tolerating float-typed JSON numbers).
fn unum(v: &Value) -> Option<u64> {
    match v {
        Value::UInt(u) => Some(*u),
        Value::Int(i) if *i >= 0 => Some(*i as u64),
        Value::Float(f) if *f >= 0.0 => Some(*f as u64),
        _ => None,
    }
}

/// Timestamp of a line: sim exports use `t_s`; live-runtime exports
/// (`export_jsonl_wall`) carry wall-clock time instead — `wall_s` on
/// events, `t_wall_s` on spans and dumps (where `wall_s` is already the
/// span's measured duration). Either key lands in the same field so the
/// reconstruction below is timebase-agnostic.
fn timestamp(v: &Value, keys: &[&str]) -> f64 {
    keys.iter()
        .find_map(|k| v.get_field(k).and_then(num))
        .unwrap_or(0.0)
}

/// One `"kind":"event"` line.
#[derive(Debug, Clone)]
pub struct EventLine {
    pub t_s: f64,
    pub actor: u32,
    pub trace: u64,
    pub event: String,
    /// The full parsed object, for event-specific fields.
    pub value: Value,
}

impl EventLine {
    /// Looks up an event payload field as an unsigned integer.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        self.value.get_field(key).and_then(unum)
    }

    /// Looks up an event payload field as a string.
    pub fn field_str(&self, key: &str) -> Option<&str> {
        self.value.get_field(key).and_then(|v| v.as_str())
    }

    /// Looks up an event payload field as a bool.
    pub fn field_bool(&self, key: &str) -> Option<bool> {
        match self.value.get_field(key) {
            Some(Value::Bool(b)) => Some(*b),
            _ => None,
        }
    }

    /// Renders the event-specific payload (`k=v` pairs, envelope keys
    /// skipped) for human-readable timelines.
    pub fn detail(&self) -> String {
        const ENVELOPE: [&str; 6] = ["kind", "t_s", "wall_s", "actor", "trace", "event"];
        let mut out = String::new();
        if let Some(obj) = self.value.as_object() {
            for (k, v) in obj {
                if ENVELOPE.contains(&k.as_str()) {
                    continue;
                }
                if !out.is_empty() {
                    out.push(' ');
                }
                match v {
                    Value::Str(s) => {
                        let _ = write!(out, "{k}={s}");
                    }
                    Value::Bool(b) => {
                        let _ = write!(out, "{k}={b}");
                    }
                    other => match num(other) {
                        Some(n) if n.fract() == 0.0 => {
                            let _ = write!(out, "{k}={}", n as i64);
                        }
                        Some(n) => {
                            let _ = write!(out, "{k}={n}");
                        }
                        None => {
                            let _ = write!(out, "{k}=?");
                        }
                    },
                }
            }
        }
        out
    }
}

/// One `"kind":"span"` line.
#[derive(Debug, Clone)]
pub struct SpanLine {
    pub t_s: f64,
    pub actor: u32,
    pub trace: u64,
    pub span: String,
    pub wall_s: f64,
}

/// One `"kind":"dump"` line (flight-recorder dump), summarised.
#[derive(Debug, Clone)]
pub struct DumpLine {
    pub t_s: f64,
    pub reason: String,
    /// Actors whose rings were frozen into the dump.
    pub actors: Vec<u32>,
    /// Total events across all dumped rings.
    pub events: usize,
}

/// A fully parsed JSONL export.
#[derive(Debug, Default)]
pub struct TraceLog {
    pub events: Vec<EventLine>,
    pub spans: Vec<SpanLine>,
    pub dumps: Vec<DumpLine>,
}

impl TraceLog {
    /// Parses the JSONL text produced by `fuxi_obs::export::export_jsonl`.
    /// Unknown `kind`s are skipped (forward compatibility); malformed
    /// JSON is an error with the offending line number.
    pub fn parse(text: &str) -> Result<TraceLog, String> {
        let mut log = TraceLog::default();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = serde_json::value_from_str(line)
                .map_err(|e| format!("line {}: {e:?}", i + 1))?;
            let kind = v.get_field("kind").and_then(|k| k.as_str()).unwrap_or("");
            match kind {
                "event" => log.events.push(EventLine {
                    t_s: timestamp(&v, &["t_s", "wall_s"]),
                    actor: v.get_field("actor").and_then(unum).unwrap_or(0) as u32,
                    trace: v.get_field("trace").and_then(unum).unwrap_or(0),
                    event: v
                        .get_field("event")
                        .and_then(|e| e.as_str())
                        .unwrap_or("")
                        .to_owned(),
                    value: v,
                }),
                "span" => log.spans.push(SpanLine {
                    t_s: timestamp(&v, &["t_s", "t_wall_s"]),
                    actor: v.get_field("actor").and_then(unum).unwrap_or(0) as u32,
                    trace: v.get_field("trace").and_then(unum).unwrap_or(0),
                    span: v
                        .get_field("span")
                        .and_then(|s| s.as_str())
                        .unwrap_or("")
                        .to_owned(),
                    wall_s: v.get_field("wall_s").and_then(num).unwrap_or(0.0),
                }),
                "dump" => {
                    let mut actors = Vec::new();
                    let mut events = 0usize;
                    if let Some(rings) = v.get_field("rings").and_then(|r| r.as_array()) {
                        for ring in rings {
                            if let Some(a) = ring.get_field("actor").and_then(unum) {
                                actors.push(a as u32);
                            }
                            events += ring
                                .get_field("events")
                                .and_then(|e| e.as_array())
                                .map(|e| e.len())
                                .unwrap_or(0);
                        }
                    }
                    log.dumps.push(DumpLine {
                        t_s: timestamp(&v, &["t_s", "t_wall_s"]),
                        reason: v
                            .get_field("reason")
                            .and_then(|r| r.as_str())
                            .unwrap_or("")
                            .to_owned(),
                        actors,
                        events,
                    });
                }
                _ => {}
            }
        }
        Ok(log)
    }
}

/// The reconstructed lifecycle of one job, keyed by its causal trace id.
#[derive(Debug)]
pub struct JobLifecycle {
    pub trace: u64,
    /// Job id as named by `job_submitted` (`trace - 1` by the minting
    /// convention; taken from the event when present).
    pub job: Option<u64>,
    pub app: Option<u64>,
    /// Sim time of the first / last event on this trace.
    pub first_s: f64,
    pub last_s: f64,
    pub success: Option<bool>,
    /// Event counts by name — the shape of the lifecycle at a glance.
    pub counts: BTreeMap<String, usize>,
    /// Indices into `TraceLog::events`, in recording order.
    pub events: Vec<usize>,
}

/// Groups the event stream by trace id into per-job lifecycles. Events
/// on the null trace (id 0 — infrastructure not caused by any one job)
/// are excluded; use [`failover_timeline`] for those.
pub fn job_lifecycles(log: &TraceLog) -> Vec<JobLifecycle> {
    let mut by_trace: BTreeMap<u64, JobLifecycle> = BTreeMap::new();
    for (i, e) in log.events.iter().enumerate() {
        if e.trace == 0 || e.event == "flight_dumped" {
            continue;
        }
        let lc = by_trace.entry(e.trace).or_insert_with(|| JobLifecycle {
            trace: e.trace,
            job: None,
            app: None,
            first_s: e.t_s,
            last_s: e.t_s,
            success: None,
            counts: BTreeMap::new(),
            events: Vec::new(),
        });
        lc.first_s = lc.first_s.min(e.t_s);
        lc.last_s = lc.last_s.max(e.t_s);
        *lc.counts.entry(e.event.clone()).or_insert(0) += 1;
        lc.events.push(i);
        match e.event.as_str() {
            "job_submitted" => {
                lc.job = e.field_u64("job");
                lc.app = e.field_u64("app");
            }
            "job_finished" => {
                lc.job = lc.job.or_else(|| e.field_u64("job"));
                lc.app = lc.app.or_else(|| e.field_u64("app"));
                lc.success = e.field_bool("success");
            }
            _ => {
                if lc.app.is_none() {
                    lc.app = e.field_u64("app");
                }
            }
        }
    }
    by_trace.into_values().collect()
}

/// The cluster-level failover/fault timeline: every election, lock
/// loss, rebuild window, node transition, and flight dump, in time order.
#[derive(Debug, Default)]
pub struct FailoverTimeline {
    /// `(t_s, description)`, sorted by time.
    pub entries: Vec<(f64, String)>,
    pub elections: usize,
    /// Elections that inherited state from a previous primary.
    pub failovers: usize,
    /// `(started_s, done_s)` rebuild windows (`done_s = NaN` if the log
    /// ends mid-rebuild).
    pub rebuilds: Vec<(f64, f64)>,
    pub node_downs: usize,
    pub dumps: Vec<DumpLine>,
}

const INFRA_EVENTS: [&str; 7] = [
    "master_elected",
    "master_lock_lost",
    "rebuild_started",
    "rebuild_done",
    "node_down",
    "node_up",
    "flight_dumped",
];

/// Extracts the failover timeline from a parsed log.
pub fn failover_timeline(log: &TraceLog) -> FailoverTimeline {
    let mut ft = FailoverTimeline::default();
    let mut open_rebuild: Option<f64> = None;
    for e in &log.events {
        if !INFRA_EVENTS.contains(&e.event.as_str()) {
            continue;
        }
        match e.event.as_str() {
            "master_elected" => {
                ft.elections += 1;
                if e.field_bool("failover") == Some(true) {
                    ft.failovers += 1;
                }
            }
            "rebuild_started" => open_rebuild = Some(e.t_s),
            "rebuild_done" => {
                let start = open_rebuild.take().unwrap_or(e.t_s);
                ft.rebuilds.push((start, e.t_s));
            }
            "node_down" => ft.node_downs += 1,
            _ => {}
        }
        ft.entries.push((e.t_s, format!("{} {}", e.event, e.detail())));
    }
    if let Some(start) = open_rebuild {
        ft.rebuilds.push((start, f64::NAN));
    }
    for d in &log.dumps {
        ft.entries.push((
            d.t_s,
            format!(
                "FLIGHT DUMP reason={} ({} events across {} actors)",
                d.reason,
                d.events,
                d.actors.len()
            ),
        ));
        ft.dumps.push(d.clone());
    }
    ft.entries
        .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    ft
}

/// Per-span-kind summary: `(count, median wall seconds)`.
pub fn span_summary(log: &TraceLog) -> BTreeMap<String, (usize, f64)> {
    let mut by_kind: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    for s in &log.spans {
        by_kind.entry(s.span.clone()).or_default().push(s.wall_s);
    }
    by_kind
        .into_iter()
        .map(|(k, mut v)| {
            v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let median = v[v.len() / 2];
            (k, (v.len(), median))
        })
        .collect()
}

/// Renders one job's lifecycle as an indented timeline.
pub fn render_job(log: &TraceLog, lc: &JobLifecycle, max_events: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace {} (job {}, app {}): {} events over [{:.3}s, {:.3}s]{}",
        lc.trace,
        lc.job.map_or("?".into(), |j| j.to_string()),
        lc.app.map_or("?".into(), |a| a.to_string()),
        lc.events.len(),
        lc.first_s,
        lc.last_s,
        match lc.success {
            Some(true) => " — SUCCEEDED",
            Some(false) => " — FAILED",
            None => " — (no terminal event)",
        }
    );
    let shown = lc.events.len().min(max_events);
    for &i in lc.events.iter().take(shown) {
        let e = &log.events[i];
        let _ = writeln!(out, "  {:>12.6}s  actor {:<4} {} {}", e.t_s, e.actor, e.event, e.detail());
    }
    if shown < lc.events.len() {
        let _ = writeln!(out, "  ... {} more events elided", lc.events.len() - shown);
    }
    out
}

/// Renders the failover timeline.
pub fn render_failover(ft: &FailoverTimeline) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "elections: {} ({} failovers), rebuild windows: {}, node_down events: {}, flight dumps: {}",
        ft.elections,
        ft.failovers,
        ft.rebuilds.len(),
        ft.node_downs,
        ft.dumps.len()
    );
    for (start, done) in &ft.rebuilds {
        if done.is_nan() {
            let _ = writeln!(out, "  rebuild window: {start:.3}s -> (log ends mid-rebuild)");
        } else {
            let _ = writeln!(
                out,
                "  rebuild window: {start:.3}s -> {done:.3}s ({:.3}s)",
                done - start
            );
        }
    }
    for (t, line) in &ft.entries {
        let _ = writeln!(out, "  {t:>12.6}s  {line}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fuxi_sim::obs::export::export_jsonl;
    use fuxi_sim::obs::{TraceEvent, TraceId, Tracer, TracerConfig};
    use fuxi_sim::SpanKind;

    /// Builds a stream with the real exporter so the parser is tested
    /// against the actual wire format, not a hand-typed approximation.
    fn sample() -> String {
        let mut t = Tracer::new(TracerConfig::default());
        let tr = TraceId::from_job(7);
        t.record(1.0, 2, tr, TraceEvent::JobSubmitted { job: 7, app: 3 });
        t.record(
            1.5,
            2,
            tr,
            TraceEvent::Grant { app: 3, unit: 0, machine: 9, count: 4 },
        );
        t.record(
            2.0,
            5,
            tr,
            TraceEvent::WorkerStarted { app: 3, worker: 11, machine: 9 },
        );
        t.record(
            9.0,
            2,
            tr,
            TraceEvent::JobFinished { job: 7, app: 3, success: true },
        );
        t.record(3.0, 2, TraceId::NONE, TraceEvent::MasterLockLost { actor: 2 });
        t.record(
            3.5,
            4,
            TraceId::NONE,
            TraceEvent::MasterElected { actor: 4, failover: true },
        );
        t.record(3.6, 4, TraceId::NONE, TraceEvent::RebuildStarted { jobs: 1 });
        t.record(4.1, 4, TraceId::NONE, TraceEvent::RebuildDone { apps_seen: 1 });
        t.span(1.5, 2, tr, SpanKind::SchedDecision, 10e-6);
        t.span(1.6, 2, tr, SpanKind::SchedDecision, 30e-6);
        t.dump(3.5, "master_failover");
        export_jsonl(&t)
    }

    #[test]
    fn parses_real_export_format() {
        let log = TraceLog::parse(&sample()).unwrap();
        // 8 direct records + 1 FlightDumped marker appended by dump().
        assert_eq!(log.events.len(), 9);
        assert_eq!(log.spans.len(), 2);
        assert_eq!(log.dumps.len(), 1);
        assert_eq!(log.dumps[0].reason, "master_failover");
        assert!(log.dumps[0].events > 0);
        assert_eq!(log.events[1].field_u64("count"), Some(4));
    }

    #[test]
    fn reconstructs_job_lifecycle() {
        let log = TraceLog::parse(&sample()).unwrap();
        let jobs = job_lifecycles(&log);
        assert_eq!(jobs.len(), 1);
        let lc = &jobs[0];
        assert_eq!(lc.trace, 8); // from_job(7) = 8
        assert_eq!(lc.job, Some(7));
        assert_eq!(lc.app, Some(3));
        assert_eq!(lc.success, Some(true));
        assert_eq!(lc.counts["grant"], 1);
        assert_eq!(lc.counts["worker_started"], 1);
        assert!((lc.first_s - 1.0).abs() < 1e-9 && (lc.last_s - 9.0).abs() < 1e-9);
        let rendered = render_job(&log, lc, 100);
        assert!(rendered.contains("SUCCEEDED"));
        assert!(rendered.contains("worker_started"));
    }

    #[test]
    fn reconstructs_failover_timeline() {
        let log = TraceLog::parse(&sample()).unwrap();
        let ft = failover_timeline(&log);
        assert_eq!(ft.elections, 1);
        assert_eq!(ft.failovers, 1);
        assert_eq!(ft.rebuilds.len(), 1);
        assert!((ft.rebuilds[0].1 - ft.rebuilds[0].0 - 0.5).abs() < 1e-9);
        assert_eq!(ft.dumps.len(), 1);
        let rendered = render_failover(&ft);
        assert!(rendered.contains("master_elected master=4 failover=true"));
        assert!(rendered.contains("FLIGHT DUMP reason=master_failover"));
        // Entries are time-sorted.
        assert!(ft.entries.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn span_summary_medians() {
        let log = TraceLog::parse(&sample()).unwrap();
        let s = span_summary(&log);
        let (n, median) = s["sched_decision"];
        assert_eq!(n, 2);
        assert!((median - 30e-6).abs() < 1e-12);
    }

    #[test]
    fn parses_live_runtime_wall_export() {
        // The live runtime exports wall-clock timestamps: `wall_s` on
        // events, `t_wall_s` on spans/dumps. The parser must land them in
        // the same `t_s` field it fills from sim exports.
        let mut t = Tracer::new(TracerConfig::default());
        let tr = TraceId::from_job(7);
        t.record(1.25, 2, tr, TraceEvent::JobSubmitted { job: 7, app: 3 });
        t.record(
            4.5,
            2,
            tr,
            TraceEvent::JobFinished { job: 7, app: 3, success: true },
        );
        t.span(2.0, 2, tr, SpanKind::SchedDecision, 12e-6);
        t.dump(4.75, "live_probe");
        let text = fuxi_sim::obs::export::export_jsonl_wall(&t);
        assert!(!text.contains("\"t_s\""), "wall export must not carry sim time");

        let log = TraceLog::parse(&text).unwrap();
        assert_eq!(log.events.len(), 3); // 2 records + FlightDumped marker
        assert!((log.events[0].t_s - 1.25).abs() < 1e-6);
        assert!((log.spans[0].t_s - 2.0).abs() < 1e-6);
        assert!((log.spans[0].wall_s - 12e-6).abs() < 1e-12);
        assert!((log.dumps[0].t_s - 4.75).abs() < 1e-6);

        // Reconstruction works unchanged on the wall timebase.
        let jobs = job_lifecycles(&log);
        assert_eq!(jobs.len(), 1);
        assert_eq!(jobs[0].success, Some(true));
        assert!((jobs[0].first_s - 1.25).abs() < 1e-6);
        assert!((jobs[0].last_s - 4.5).abs() < 1e-6);
        // The wall timestamp is envelope, not payload detail.
        assert!(!log.events[0].detail().contains("wall_s"));
    }

    #[test]
    fn tolerates_blank_and_unknown_lines() {
        let text = "\n{\"kind\":\"mystery\",\"x\":1}\n\n";
        let log = TraceLog::parse(text).unwrap();
        assert!(log.events.is_empty() && log.spans.is_empty() && log.dumps.is_empty());
        assert!(TraceLog::parse("{not json").is_err());
    }
}
