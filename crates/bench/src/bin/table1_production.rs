//! Regenerates **Table 1** — statistics on a production cluster — from the
//! calibrated synthetic trace generator (the proprietary tracelog
//! substitution documented in DESIGN.md).
//!
//! Run: `cargo run --release -p fuxi-bench --bin table1_production`

use fuxi_cluster::report::print_table;
use fuxi_workloads::trace::TraceConfig;

fn main() {
    let args = fuxi_bench::Args::parse(1.0, 0);
    let cfg = TraceConfig {
        jobs: ((91_990.0 * args.scale) as u64).max(1_000),
        seed: args.seed,
        ..TraceConfig::default()
    };
    println!(
        "Generating synthetic production trace: {} jobs (paper: 91,990)...",
        cfg.jobs
    );
    let s = cfg.generate();
    print_table(
        "Table 1: statistics on a production cluster (paper vs. reproduced)",
        &["metric", "paper avg", "ours avg", "paper max", "ours max", "paper total", "ours total"],
        &[
            vec![
                "Instance Number".into(),
                "228/task".into(),
                format!("{:.0}/task", s.instances_avg_per_task),
                "99,937/task".into(),
                format!("{}/task", s.instances_max_per_task),
                "42,266,899".into(),
                format!("{}", s.instances_total),
            ],
            vec![
                "Worker Number".into(),
                "87.92/task".into(),
                format!("{:.2}/task", s.workers_avg_per_task),
                "4,636/task".into(),
                format!("{}/task", s.workers_max_per_task),
                "16,295,167".into(),
                format!("{}", s.workers_total),
            ],
            vec![
                "Task Number".into(),
                "2.0/job".into(),
                format!("{:.1}/job", s.tasks_avg_per_job),
                "150/job".into(),
                format!("{}/job", s.tasks_max_per_job),
                "185,444".into(),
                format!("{}", s.tasks_total),
            ],
        ],
    );
    println!("\njobs: paper 91,990 | ours {}", s.jobs);
    println!(
        "(totals scale with --scale; at --scale 1.0 they are directly comparable)"
    );
}
