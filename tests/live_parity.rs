//! Sim↔live parity: the same scenario — same config, same jobs, same
//! injected node death — run once under the deterministic kernel and once
//! under the live multi-threaded runtime (`fuxi-rt`) must converge to the
//! same terminal job outcomes. Timing differs by construction (virtual vs
//! wall clock), so the comparison is the order-insensitive set of
//! `(JobId, success)` pairs, not timestamps.

use fuxi::cluster::{Cluster, ClusterConfig, SubmitOpts};
use fuxi::job::JobDesc;
use fuxi::proto::{JobId, MachineId};
use fuxi::rt::LiveCluster;
use fuxi::sim::SimTime;
use fuxi::workloads::mapreduce::{wordcount_job, MapReduceParams};
use std::collections::BTreeSet;
use std::time::Duration;

const N_MACHINES: usize = 20;
const N_JOBS: usize = 50;
const SEED: u64 = 77;
/// Jobs finished before the node death is injected.
const DEATHS_AFTER_DONE: usize = 10;
/// The machine that dies; any worker/JobMaster placed there must be
/// rescheduled elsewhere for its job to finish.
const VICTIM: MachineId = MachineId(7);

fn scenario_config() -> ClusterConfig {
    ClusterConfig {
        n_machines: N_MACHINES,
        rack_size: 5,
        seed: SEED,
        ..ClusterConfig::default()
    }
}

fn scenario_job(i: usize) -> JobDesc {
    wordcount_job(&MapReduceParams {
        maps: 4,
        reduces: 1,
        map_duration_s: 0.05,
        reduce_duration_s: 0.05,
        jitter: 0.1,
        max_workers: 2,
        binary_mb: 2.0,
        map_output_mb: 0.5,
        output_file: Some(format!("pangu://parity/out-{i}")),
        ..Default::default()
    })
}

type Outcomes = BTreeSet<(JobId, bool)>;

fn outcomes(jobs: &[(JobId, fuxi::cluster::JobState)]) -> Outcomes {
    jobs.iter()
        .filter_map(|(j, s)| s.done.as_ref().map(|&(ok, _, _)| (*j, ok)))
        .collect()
}

fn run_sim() -> Outcomes {
    let mut c = Cluster::new(scenario_config());
    for i in 0..N_JOBS {
        c.submit(&scenario_job(i), &SubmitOpts::default());
    }
    // Let the pipeline warm up, then take a machine down mid-flight.
    let done = c.run_until_n_done(DEATHS_AFTER_DONE, SimTime::from_secs(3600));
    assert!(done >= DEATHS_AFTER_DONE, "sim warm-up stalled at {done}");
    c.world.kill_machine(VICTIM.0);
    let done = c.run_until_n_done(N_JOBS, SimTime::from_secs(7200));
    assert_eq!(done, N_JOBS, "sim run left jobs unfinished");
    outcomes(&c.all_jobs())
}

fn run_live() -> Outcomes {
    let mut c = LiveCluster::new(scenario_config());
    for i in 0..N_JOBS {
        c.submit(&scenario_job(i), &SubmitOpts::default());
    }
    let done = c.wait_n_done(DEATHS_AFTER_DONE, Duration::from_secs(60));
    assert!(done >= DEATHS_AFTER_DONE, "live warm-up stalled at {done}");
    c.kill_machine(VICTIM);
    let done = c.wait_n_done(N_JOBS, Duration::from_secs(120));
    let jobs = c.all_jobs();
    c.shutdown();
    assert_eq!(done, N_JOBS, "live run left jobs unfinished");
    outcomes(&jobs)
}

#[test]
fn live_and_sim_reach_identical_job_outcomes() {
    let sim = run_sim();
    let live = run_live();
    assert_eq!(sim.len(), N_JOBS);
    assert_eq!(
        sim, live,
        "sim and live terminal outcomes diverged:\n sim: {sim:?}\nlive: {live:?}"
    );
}
