#![warn(missing_docs)]
//! # fuxi-baseline
//!
//! The scheduler designs Fuxi is evaluated against (paper Sections 1, 6):
//!
//! * [`yarn`] — a YARN-like resource manager: heartbeat-driven container
//!   allocation, per-task containers reclaimed on completion, application
//!   masters re-asserting outstanding asks every heartbeat. Pairs with the
//!   job framework's `container_reuse = false` mode for end-to-end
//!   comparisons and with the engine-level ablation benches.
//! * [`hadoop1`] — a Hadoop-1.0-style JobTracker with the *linear* slot
//!   resource model ("still inherits the linear resource model as in
//!   Hadoop 1.0"): fixed map/reduce slots per node regardless of actual
//!   multi-dimensional demand.

pub mod hadoop1;
pub mod yarn;

pub use hadoop1::{Hadoop1Config, Hadoop1Scheduler, SlotKind};
pub use yarn::{YarnAllocation, YarnConfig, YarnScheduler};
