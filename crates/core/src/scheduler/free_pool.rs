//! The available-resource pool: per-machine free vectors plus the rotating
//! cursor used for load-balanced cluster-level scans ("load balance will
//! also be considered", Section 3.3).

use fuxi_proto::{MachineId, ResourceVec};
use std::collections::BTreeSet;

/// Per-machine free resources. Machines with zero schedulable capacity
/// (down, blacklisted) simply have empty capacity here.
#[derive(Debug, Default)]
pub struct FreePool {
    capacity: Vec<ResourceVec>,
    free: Vec<ResourceVec>,
    /// Machines with any free resource at all, for cluster-level scans.
    nonempty: BTreeSet<MachineId>,
    /// Rotating scan start so repeated cluster-level grants spread load.
    cursor: u32,
}

impl FreePool {
    /// Creates a new instance with the given configuration.
    pub fn new(capacities: Vec<ResourceVec>) -> Self {
        let mut pool = Self {
            free: capacities.clone(),
            capacity: capacities,
            nonempty: BTreeSet::new(),
            cursor: 0,
        };
        for (i, f) in pool.free.iter().enumerate() {
            if !f.is_zero() {
                pool.nonempty.insert(MachineId(i as u32));
            }
        }
        pool
    }

    /// N machines.
    pub fn n_machines(&self) -> usize {
        self.capacity.len()
    }

    /// Free.
    pub fn free(&self, m: MachineId) -> &ResourceVec {
        &self.free[m.0 as usize]
    }

    /// Capacity.
    pub fn capacity(&self, m: MachineId) -> &ResourceVec {
        &self.capacity[m.0 as usize]
    }

    /// How many copies of `unit` fit on `m` right now.
    pub fn fits(&self, m: MachineId, unit: &ResourceVec) -> u64 {
        let n = unit.times_fitting_in(self.free(m));
        if n == u64::MAX {
            0 // zero-sized units are never granted
        } else {
            n
        }
    }

    /// Takes `unit × count` from `m`. Panics in debug builds on underflow —
    /// callers must have checked `fits`.
    pub fn take(&mut self, m: MachineId, unit: &ResourceVec, count: u64) {
        debug_assert!(self.fits(m, unit) >= count, "free-pool underflow on {m}");
        let f = &mut self.free[m.0 as usize];
        f.sub_scaled(unit, count);
        if f.is_zero() {
            self.nonempty.remove(&m);
        }
    }

    /// Returns `unit × count` to `m` (clamped to capacity).
    pub fn give(&mut self, m: MachineId, unit: &ResourceVec, count: u64) {
        let f = &mut self.free[m.0 as usize];
        f.add_scaled(unit, count);
        let cap = &self.capacity[m.0 as usize];
        if !f.fits_in(cap) {
            // Capacity may have shrunk (node flap); clamp dimension-wise.
            let mut clamped = cap.clone();
            if f.cpu_milli() < clamped.cpu_milli() {
                clamped.set_cpu_milli(f.cpu_milli());
            }
            if f.memory_mb() < clamped.memory_mb() {
                clamped.set_memory_mb(f.memory_mb());
            }
            for (id, amt) in cap.virtuals() {
                clamped.set_virtual(id, amt.min(f.virtual_amount(id)));
            }
            *f = clamped;
        }
        if !f.is_zero() {
            self.nonempty.insert(m);
        }
    }

    /// Changes a machine's schedulable capacity (join, leave, blacklist,
    /// virtual-resource reconfiguration). `in_use` is what is currently
    /// granted there; free becomes `max(0, new_capacity - in_use)`.
    pub fn set_capacity(&mut self, m: MachineId, new_capacity: ResourceVec, in_use: &ResourceVec) {
        let mut free = new_capacity.clone();
        free.saturating_sub(in_use);
        self.capacity[m.0 as usize] = new_capacity;
        self.free[m.0 as usize] = free;
        if self.free[m.0 as usize].is_zero() {
            self.nonempty.remove(&m);
        } else {
            self.nonempty.insert(m);
        }
    }

    /// Iterates machines with free resources, starting after the rotating
    /// cursor and wrapping, visiting each at most once.
    pub fn scan_from_cursor(&self) -> impl Iterator<Item = MachineId> + '_ {
        let start = MachineId(self.cursor);
        self.nonempty
            .range(start..)
            .chain(self.nonempty.range(..start))
            .copied()
    }

    /// Advances the cursor past `m` so the next scan starts elsewhere.
    pub fn advance_cursor(&mut self, m: MachineId) {
        self.cursor = m.0.wrapping_add(1);
    }

    /// Nonempty count.
    pub fn nonempty_count(&self) -> usize {
        self.nonempty.len()
    }

    /// Total free resources over all machines (O(n): reporting only).
    pub fn total_free(&self) -> ResourceVec {
        let mut t = ResourceVec::ZERO;
        for f in &self.free {
            t.add(f);
        }
        t
    }

    /// Total schedulable capacity (O(n): reporting only).
    pub fn total_capacity(&self) -> ResourceVec {
        let mut t = ResourceVec::ZERO;
        for c in &self.capacity {
            t.add(c);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool3() -> FreePool {
        FreePool::new(vec![ResourceVec::cores_mb(12, 96 * 1024); 3])
    }

    #[test]
    fn take_and_give_roundtrip() {
        let mut p = pool3();
        let unit = ResourceVec::new(500, 2048);
        assert_eq!(p.fits(MachineId(0), &unit), 24);
        p.take(MachineId(0), &unit, 24);
        assert_eq!(p.fits(MachineId(0), &unit), 0);
        assert!(p.free(MachineId(0)).memory_mb() > 0, "cpu exhausted first");
        p.give(MachineId(0), &unit, 24);
        assert_eq!(p.fits(MachineId(0), &unit), 24);
    }

    #[test]
    fn nonempty_tracks_fully_drained_machines() {
        let mut p = FreePool::new(vec![ResourceVec::new(1000, 1000); 2]);
        let unit = ResourceVec::new(1000, 1000);
        assert_eq!(p.nonempty_count(), 2);
        p.take(MachineId(1), &unit, 1);
        assert_eq!(p.nonempty_count(), 1);
        assert_eq!(p.scan_from_cursor().collect::<Vec<_>>(), vec![MachineId(0)]);
        p.give(MachineId(1), &unit, 1);
        assert_eq!(p.nonempty_count(), 2);
    }

    #[test]
    fn cursor_rotates_scan_order() {
        let mut p = pool3();
        let first: Vec<MachineId> = p.scan_from_cursor().collect();
        assert_eq!(first, vec![MachineId(0), MachineId(1), MachineId(2)]);
        p.advance_cursor(MachineId(0));
        let second: Vec<MachineId> = p.scan_from_cursor().collect();
        assert_eq!(second, vec![MachineId(1), MachineId(2), MachineId(0)]);
        p.advance_cursor(MachineId(2));
        let third: Vec<MachineId> = p.scan_from_cursor().collect();
        assert_eq!(third, vec![MachineId(0), MachineId(1), MachineId(2)]);
    }

    #[test]
    fn set_capacity_to_zero_removes_machine() {
        let mut p = pool3();
        let unit = ResourceVec::new(500, 2048);
        p.take(MachineId(1), &unit, 4);
        let in_use = unit.scaled(4);
        p.set_capacity(MachineId(1), ResourceVec::ZERO, &in_use);
        assert_eq!(p.fits(MachineId(1), &unit), 0);
        assert_eq!(p.nonempty_count(), 2);
        // Bring it back with nothing in use.
        p.set_capacity(MachineId(1), ResourceVec::cores_mb(12, 96 * 1024), &ResourceVec::ZERO);
        assert_eq!(p.fits(MachineId(1), &unit), 24);
    }

    #[test]
    fn set_capacity_respects_in_use() {
        let mut p = pool3();
        let unit = ResourceVec::new(500, 2048);
        p.take(MachineId(0), &unit, 10);
        // Capacity shrinks below what is in use: free must be zero, not wrap.
        p.set_capacity(MachineId(0), unit.scaled(5), &unit.scaled(10));
        assert!(p.free(MachineId(0)).is_zero());
    }

    #[test]
    fn totals() {
        let mut p = pool3();
        let unit = ResourceVec::new(500, 2048);
        p.take(MachineId(2), &unit, 2);
        let free = p.total_free();
        let cap = p.total_capacity();
        assert_eq!(cap.cpu_milli(), 3 * 12_000);
        assert_eq!(free.cpu_milli(), 3 * 12_000 - 1000);
        assert_eq!(free.memory_mb(), cap.memory_mb() - 4096);
    }

    #[test]
    fn zero_sized_unit_never_fits() {
        let p = pool3();
        assert_eq!(p.fits(MachineId(0), &ResourceVec::ZERO), 0);
    }
}
