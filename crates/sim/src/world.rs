//! The world: machines, actors, the event loop, and fault operations.

use crate::actor::{Actor, ActorId, Ctx, CtxBackend};
use crate::event::{EventKind, EventQueue, KernelMsg, QueueKernel};
use crate::flow::{FlowDone, FlowNet, FlowSpec};
use crate::metrics::Metrics;
use crate::net::NetConfig;
use crate::time::{SimDuration, SimTime};
use fuxi_obs::{TraceEvent, TraceId, Tracer, TracerConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

/// Static description of one simulated machine.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Rack index.
    pub rack: u32,
    /// Aggregate disk bandwidth, MB/s.
    pub disk_bw_mbps: f64,
    /// NIC bandwidth per direction, MB/s.
    pub net_bw_mbps: f64,
}

/// World construction parameters.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Hardware description per machine.
    pub machines: Vec<MachineConfig>,
    /// Network latency/loss model.
    pub net: NetConfig,
    /// Deterministic RNG seed.
    pub seed: u64,
    /// Observability configuration (tracer, flight recorder).
    pub obs: TracerConfig,
    /// Which event-queue kernel to run on. `Calendar` is the default; the
    /// heap kernel is kept for differential testing — both produce the
    /// identical `(time, seq)` event stream.
    pub kernel: QueueKernel,
}

impl WorldConfig {
    /// A uniform cluster: `n` machines spread over racks of `rack_size`.
    pub fn uniform(n: usize, rack_size: usize, seed: u64) -> Self {
        let machines = (0..n)
            .map(|i| MachineConfig {
                rack: (i / rack_size.max(1)) as u32,
                disk_bw_mbps: 1200.0,
                net_bw_mbps: 250.0,
            })
            .collect();
        Self {
            machines,
            net: NetConfig::default(),
            seed,
            obs: TracerConfig::default(),
            kernel: QueueKernel::default(),
        }
    }
}

struct MachineState {
    rack: u32,
    up: bool,
    speed: f64,
    launch_ok: bool,
    /// Process table: live placed actors and their registered metadata.
    /// BTreeMap keeps kill-iteration deterministic.
    procs: BTreeMap<ActorId, Vec<u8>>,
}

#[derive(Clone, Copy)]
struct ActorMeta {
    alive: bool,
    machine: Option<u32>,
}

/// Everything in the world except the actor behaviours themselves; this
/// split lets a running actor borrow the core mutably through [`Ctx`].
pub struct WorldCore<M: KernelMsg> {
    pub(crate) time: SimTime,
    pub(crate) queue: EventQueue<M>,
    meta: Vec<ActorMeta>,
    machines: Vec<MachineState>,
    pub(crate) rng: SmallRng,
    /// Metrics sink shared by every actor.
    pub metrics: Metrics,
    net: NetConfig,
    flows: FlowNet,
    flows_dirty: bool,
    flow_tick_at: Option<SimTime>,
    spawn_queue: Vec<(ActorId, Box<dyn Actor<M>>, TraceId)>,
    kill_queue: Vec<ActorId>,
    /// Last scheduled delivery time per *source*: all sends from one actor
    /// deliver in send order, even across destinations. This is stronger
    /// than per-(from, to) channel FIFO and matches a single-threaded
    /// sender draining one outbound queue: the incremental protocol's
    /// "delivered and processed in the same order as generated" requirement
    /// (paper §3.1) holds for everything one component emits, so a service
    /// announcing "A lost the lock" before "B holds the lock" can never be
    /// observed in the opposite order, even by observers on different
    /// machines. Races between *different* sources remain.
    channel_clock: std::collections::HashMap<ActorId, SimTime>,
    /// The observability sink: typed trace events, spans, flight rings.
    pub tracer: Tracer,
    /// The causal trace of the message currently being dispatched; sends
    /// and trace events inherit it unless overridden via `Ctx`.
    pub(crate) current_trace: TraceId,
    /// Total events dispatched by [`World::step`]; the numerator of the
    /// end-to-end `sim_events_per_sec` throughput benchmark.
    events_processed: u64,
}

impl<M: KernelMsg> WorldCore<M> {
    pub(crate) fn machine_of(&self, id: ActorId) -> Option<u32> {
        self.meta
            .get(id.0 as usize)
            .filter(|m| m.alive)
            .and_then(|m| m.machine)
    }

    pub(crate) fn actor_alive(&self, id: ActorId) -> bool {
        self.meta.get(id.0 as usize).map(|m| m.alive).unwrap_or(false)
    }

    pub(crate) fn machine_up(&self, m: u32) -> bool {
        self.machines.get(m as usize).map(|s| s.up).unwrap_or(false)
    }

    pub(crate) fn machine_speed(&self, m: u32) -> f64 {
        self.machines.get(m as usize).map(|s| s.speed).unwrap_or(0.0)
    }

    pub(crate) fn launch_ok(&self, m: u32) -> bool {
        self.machines
            .get(m as usize)
            .map(|s| s.up && s.launch_ok)
            .unwrap_or(false)
    }

    pub(crate) fn rack_of(&self, m: u32) -> u32 {
        self.machines[m as usize].rack
    }

    pub(crate) fn n_machines(&self) -> usize {
        self.machines.len()
    }

    pub(crate) fn send_from(&mut self, from: ActorId, to: ActorId, msg: M) {
        self.send_from_after(from, to, msg, SimDuration::ZERO);
    }

    pub(crate) fn send_from_after(
        &mut self,
        from: ActorId,
        to: ActorId,
        msg: M,
        extra: SimDuration,
    ) {
        let trace = self.current_trace;
        self.send_from_traced(from, to, msg, extra, trace);
    }

    pub(crate) fn send_from_traced(
        &mut self,
        from: ActorId,
        to: ActorId,
        msg: M,
        extra: SimDuration,
        trace: TraceId,
    ) {
        self.metrics.count("net.sent", 1);
        if self.net.dropped(&mut self.rng) {
            self.metrics.count("net.dropped", 1);
            return;
        }
        let (same_machine, same_rack) = self.relation(from, to);
        let latency = self.net.sample_latency(&mut self.rng, same_machine, same_rack);
        let mut at = self.time + latency + extra;
        // Per-source FIFO: never deliver before an earlier send from the
        // same source (see `channel_clock`).
        let clock = self.channel_clock.entry(from).or_insert(SimTime::ZERO);
        if at <= *clock {
            at = *clock + SimDuration::from_micros(1);
        }
        *clock = at;
        // Bound channel-clock memory: entries older than any possible
        // in-flight latency can never constrain future sends.
        if self.channel_clock.len() > 1_000_000 {
            let horizon = SimTime(self.time.0.saturating_sub(10_000));
            self.channel_clock.retain(|_, &mut t| t >= horizon);
        }
        // Duplication must clone; to avoid a Clone bound on M we duplicate by
        // re-sampling latency for a second *logical* delivery only when the
        // message type opts in. Instead we model duplication at the receiver
        // protocol layer via SeqEnvelope tests; kernel-level dup would need
        // M: Clone. Drop-only chaos at this layer.
        let _ = self.net.duplicated(&mut self.rng);
        self.queue
            .push(at, EventKind::Deliver { to, from, msg, trace });
    }

    /// Records a trace event attributed to `actor` under the current trace.
    pub(crate) fn trace_event(&mut self, actor: ActorId, event: TraceEvent) {
        let trace = self.current_trace;
        self.trace_event_as(actor, trace, event);
    }

    pub(crate) fn trace_event_as(&mut self, actor: ActorId, trace: TraceId, event: TraceEvent) {
        let t_s = self.time.as_secs_f64();
        self.tracer.record(t_s, actor.0, trace, event);
    }

    fn relation(&self, a: ActorId, b: ActorId) -> (bool, bool) {
        match (self.machine_of_any(a), self.machine_of_any(b)) {
            (Some(ma), Some(mb)) => (ma == mb, self.rack_of(ma) == self.rack_of(mb)),
            // Placeless services are "one hop away": same-rack class.
            _ => (false, true),
        }
    }

    /// Machine of an actor even if it just died (for latency of in-flight
    /// sends during teardown).
    fn machine_of_any(&self, id: ActorId) -> Option<u32> {
        self.meta.get(id.0 as usize).and_then(|m| m.machine)
    }

    pub(crate) fn queue_spawn(
        &mut self,
        machine: Option<u32>,
        actor: Box<dyn Actor<M>>,
    ) -> ActorId {
        let id = ActorId(self.meta.len() as u32);
        self.meta.push(ActorMeta {
            alive: true,
            machine,
        });
        // The spawned actor's `on_start` runs under the trace active at
        // spawn time, so processes launched on behalf of a job inherit its
        // causal chain.
        self.spawn_queue.push((id, actor, self.current_trace));
        id
    }

    pub(crate) fn queue_kill(&mut self, id: ActorId) {
        if self.actor_alive(id) {
            self.meta[id.0 as usize].alive = false;
            self.kill_queue.push(id);
        }
    }

    pub(crate) fn register_proc(&mut self, id: ActorId, meta: Vec<u8>) {
        if let Some(m) = self.machine_of(id) {
            self.machines[m as usize].procs.insert(id, meta);
        }
    }

    pub(crate) fn procs_on(&self, m: u32) -> Vec<(ActorId, Vec<u8>)> {
        self.machines[m as usize]
            .procs
            .iter()
            .map(|(&id, meta)| (id, meta.clone()))
            .collect()
    }

    pub(crate) fn start_flow(&mut self, owner: ActorId, spec: FlowSpec) {
        self.metrics.count("flow.started", 1);
        if let Some(done) = self.flows.start(self.time, owner, spec) {
            self.deliver_flow_done(done);
        }
        self.flows_dirty = true;
    }

    pub(crate) fn cancel_flows_of(&mut self, owner: ActorId) {
        self.flows.cancel_owned_by(self.time, owner);
        self.flows_dirty = true;
    }

    fn deliver_flow_done(&mut self, done: FlowDone) {
        if self.actor_alive(done.owner) {
            self.queue.push(
                self.time,
                EventKind::Deliver {
                    to: done.owner,
                    from: done.owner,
                    msg: M::flow_done(done.tag, done.failed),
                    // Tick-driven completions have no dispatch context, so
                    // this is NONE; owners with a durable causal identity
                    // re-establish it via `Ctx::set_trace`.
                    trace: self.current_trace,
                },
            );
        }
    }
}

/// The complete simulated world.
pub struct World<M: KernelMsg> {
    core: WorldCore<M>,
    actors: Vec<Option<Box<dyn Actor<M>>>>,
}

impl<M: KernelMsg> World<M> {
    /// Creates a new instance with the given configuration.
    pub fn new(cfg: WorldConfig) -> Self {
        let machines: Vec<MachineState> = cfg
            .machines
            .iter()
            .map(|m| MachineState {
                rack: m.rack,
                up: true,
                speed: 1.0,
                launch_ok: true,
                procs: BTreeMap::new(),
            })
            .collect();
        let disk_bw = cfg.machines.iter().map(|m| m.disk_bw_mbps).collect();
        let net_bw = cfg.machines.iter().map(|m| m.net_bw_mbps).collect();
        Self {
            core: WorldCore {
                time: SimTime::ZERO,
                queue: EventQueue::with_kernel(cfg.kernel),
                meta: Vec::new(),
                machines,
                rng: SmallRng::seed_from_u64(cfg.seed),
                metrics: Metrics::new(),
                net: cfg.net,
                flows: FlowNet::new(disk_bw, net_bw),
                flows_dirty: false,
                flow_tick_at: None,
                spawn_queue: Vec::new(),
                kill_queue: Vec::new(),
                channel_clock: std::collections::HashMap::new(),
                tracer: Tracer::new(cfg.obs),
                current_trace: TraceId::NONE,
                events_processed: 0,
            },
            actors: Vec::new(),
        }
    }

    /// Now.
    pub fn now(&self) -> SimTime {
        self.core.time
    }

    /// Total events dispatched by [`World::step`] so far.
    pub fn events_processed(&self) -> u64 {
        self.core.events_processed
    }

    /// Metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }

    /// Metrics mut.
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.core.metrics
    }

    /// The world's trace/span/flight-recorder sink.
    pub fn tracer(&self) -> &Tracer {
        &self.core.tracer
    }

    /// Tracer mut (for exports and manual dumps from harnesses).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.core.tracer
    }

    /// N machines.
    pub fn n_machines(&self) -> usize {
        self.core.n_machines()
    }

    /// Machine up.
    pub fn machine_up(&self, m: u32) -> bool {
        self.core.machine_up(m)
    }

    /// Actor alive.
    pub fn actor_alive(&self, id: ActorId) -> bool {
        self.core.actor_alive(id)
    }

    /// Pending events.
    pub fn pending_events(&self) -> usize {
        self.core.queue.len()
    }

    /// Reads machine `m`'s process table (the simulation's `/proc`) from
    /// outside the event loop — used by harnesses and tests.
    pub fn procs_on(&self, m: u32) -> Vec<(ActorId, Vec<u8>)> {
        self.core.procs_on(m)
    }

    /// Spawns an actor from outside the event loop (world setup). `on_start`
    /// runs immediately.
    pub fn spawn(&mut self, machine: Option<u32>, actor: Box<dyn Actor<M>>) -> ActorId {
        let id = self.core.queue_spawn(machine, actor);
        self.drain_spawns_and_kills();
        id
    }

    /// Sends a message into the world from a synthetic external source.
    pub fn send_external(&mut self, to: ActorId, msg: M) {
        self.core.send_from(ActorId::NONE, to, msg);
    }

    /// Sends a message into the world from a synthetic external source,
    /// opening a causal trace that downstream handlers inherit.
    pub fn send_external_traced(&mut self, to: ActorId, msg: M, trace: TraceId) {
        self.core
            .send_from_traced(ActorId::NONE, to, msg, SimDuration::ZERO, trace);
    }

    /// Schedules a control closure to run at `time` (fault scripts, scenario
    /// steps).
    pub fn at(&mut self, time: SimTime, f: impl FnOnce(&mut World<M>) + 'static) {
        let t = time.max(self.core.time);
        self.core.queue.push(t, EventKind::Control(Box::new(f)));
    }

    /// Terminates an actor immediately.
    pub fn kill_actor(&mut self, id: ActorId) {
        self.core.queue_kill(id);
        self.drain_spawns_and_kills();
    }

    /// Takes machine `m` down: every actor placed on it dies, its process
    /// table clears, and all flows touching it fail (NodeDown fault).
    pub fn kill_machine(&mut self, m: u32) {
        self.core.machines[m as usize].up = false;
        let victims: Vec<ActorId> = self.core.machines[m as usize].procs.keys().copied().collect();
        // Also actors placed on m that never registered a proc entry.
        let unregistered: Vec<ActorId> = self
            .core
            .meta
            .iter()
            .enumerate()
            .filter(|(_, meta)| meta.alive && meta.machine == Some(m))
            .map(|(i, _)| ActorId(i as u32))
            .collect();
        for id in victims.into_iter().chain(unregistered) {
            self.core.queue_kill(id);
        }
        self.drain_spawns_and_kills();
        let fails = self.core.flows.fail_machine(self.core.time, m);
        for done in fails {
            self.core.deliver_flow_done(done);
        }
        self.core.flows_dirty = true;
        self.schedule_flow_tick();
        self.core.metrics.count("fault.node_down", 1);
        // Feeds the flight recorder's node-down storm detector.
        self.core
            .trace_event_as(ActorId::NONE, TraceId::NONE, TraceEvent::NodeDown { machine: m });
    }

    /// Brings machine `m` back up (empty: the harness respawns its agent).
    pub fn restart_machine(&mut self, m: u32) {
        let ms = &mut self.core.machines[m as usize];
        ms.up = true;
        ms.speed = 1.0;
        ms.launch_ok = true;
        ms.procs.clear();
        self.core.flows.set_speed(self.core.time, m, 1.0);
        self.core
            .trace_event_as(ActorId::NONE, TraceId::NONE, TraceEvent::NodeUp { machine: m });
    }

    /// Applies a SlowMachine fault: *compute* on `m` runs at `factor` (the
    /// paper mocked slowdown with sleep intervals in the worker program —
    /// a CPU-side fault). Disk/NIC capacity is a separate knob below.
    pub fn set_machine_speed(&mut self, m: u32, factor: f64) {
        self.core.machines[m as usize].speed = factor;
    }

    /// Degrades (or restores) machine `m`'s disk and NIC bandwidth — a
    /// sick-spindle / flaky-link fault, distinct from compute slowdown.
    pub fn set_machine_io_speed(&mut self, m: u32, factor: f64) {
        self.core.flows.set_speed(self.core.time, m, factor);
        self.core.flows_dirty = true;
        self.schedule_flow_tick();
    }

    /// Applies/clears a PartialWorkerFailure fault: worker launches on `m`
    /// fail while `ok` is false.
    pub fn set_launch_ok(&mut self, m: u32, ok: bool) {
        self.core.machines[m as usize].launch_ok = ok;
    }

    /// Runs one event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.core.queue.pop() else {
            return false;
        };
        debug_assert!(ev.time >= self.core.time, "time must be monotone");
        self.core.time = ev.time;
        self.core.events_processed += 1;
        match ev.kind {
            EventKind::Deliver { to, from, msg, trace } => {
                self.core.current_trace = trace;
                self.dispatch(to, |actor, ctx| actor.on_message(ctx, from, msg));
                self.core.current_trace = TraceId::NONE;
            }
            EventKind::Timer { actor, tag } => {
                // Timer-driven activity has no inherited causal context.
                self.core.current_trace = TraceId::NONE;
                self.dispatch(actor, |a, ctx| a.on_timer(ctx, tag));
            }
            EventKind::FlowTick => {
                self.core.current_trace = TraceId::NONE;
                if self.core.flow_tick_at == Some(self.core.time) {
                    self.core.flow_tick_at = None;
                }
                let done = self.core.flows.advance(self.core.time);
                for d in done {
                    self.core.deliver_flow_done(d);
                }
                self.core.flows_dirty = true;
            }
            EventKind::Control(f) => {
                f(self);
            }
        }
        self.drain_spawns_and_kills();
        if self.core.flows_dirty {
            self.core.flows_dirty = false;
            self.schedule_flow_tick();
        }
        true
    }

    fn dispatch(
        &mut self,
        id: ActorId,
        f: impl FnOnce(&mut dyn Actor<M>, &mut Ctx<'_, M>),
    ) {
        if !self.core.actor_alive(id) {
            self.core.metrics.count("net.to_dead", 1);
            return;
        }
        let slot = id.0 as usize;
        let Some(mut actor) = self.actors.get_mut(slot).and_then(Option::take) else {
            return;
        };
        {
            let mut ctx = Ctx {
                backend: CtxBackend::Sim(&mut self.core),
                self_id: id,
            };
            f(actor.as_mut(), &mut ctx);
        }
        // The handler may have killed its own actor; only restore if alive.
        if self.core.actor_alive(id) {
            self.actors[slot] = Some(actor);
        }
    }

    fn drain_spawns_and_kills(&mut self) {
        loop {
            // Kills first so a kill+respawn in one handler settles cleanly.
            while let Some(id) = self.core.kill_queue.pop() {
                let slot = id.0 as usize;
                if slot < self.actors.len() {
                    self.actors[slot] = None;
                }
                if let Some(m) = self.core.meta[slot].machine {
                    self.core.machines[m as usize].procs.remove(&id);
                }
                self.core.flows.cancel_owned_by(self.core.time, id);
                self.core.flows_dirty = true;
            }
            let Some((id, actor, trace)) = self.core.spawn_queue.pop() else {
                break;
            };
            let slot = id.0 as usize;
            if self.actors.len() <= slot {
                self.actors.resize_with(slot + 1, || None);
            }
            self.actors[slot] = Some(actor);
            // on_start may spawn/kill more; the outer loop drains those too.
            // It runs under the trace captured at spawn time.
            self.core.current_trace = trace;
            self.dispatch(id, |a, ctx| a.on_start(ctx));
            self.core.current_trace = TraceId::NONE;
        }
        if self.core.flows_dirty {
            self.core.flows_dirty = false;
            self.schedule_flow_tick();
        }
    }

    fn schedule_flow_tick(&mut self) {
        if let Some(next) = self.core.flows.next_completion() {
            let need = match self.core.flow_tick_at {
                Some(cur) => next < cur,
                None => true,
            };
            if need {
                self.core.flow_tick_at = Some(next);
                self.core.queue.push(next, EventKind::FlowTick);
            }
        }
    }

    /// Runs until simulated `deadline` (events at exactly `deadline` run).
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some(t) = self.core.queue.peek_time() {
            if t > deadline {
                break;
            }
            self.step();
        }
        self.core.time = self.core.time.max(deadline);
    }

    /// Runs for `d` more simulated time.
    pub fn run_for(&mut self, d: SimDuration) {
        let deadline = self.core.time + d;
        self.run_until(deadline);
    }

    /// Runs until `pred` returns true (checked after every event) or the
    /// deadline passes. Returns `true` if the predicate fired.
    pub fn run_until_cond(
        &mut self,
        deadline: SimTime,
        mut pred: impl FnMut(&World<M>) -> bool,
    ) -> bool {
        loop {
            if pred(self) {
                return true;
            }
            match self.core.queue.peek_time() {
                Some(t) if t <= deadline => {
                    self.step();
                }
                _ => return pred(self),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[derive(Debug, Clone, PartialEq)]
    enum TMsg {
        Ping(u32),
        Pong(u32),
        FlowDone { tag: u64, failed: bool },
    }

    impl KernelMsg for TMsg {
        fn flow_done(tag: u64, failed: bool) -> Self {
            TMsg::FlowDone { tag, failed }
        }
    }

    /// Replies Pong(n+1) to every Ping(n).
    struct Echo;
    impl Actor<TMsg> for Echo {
        fn on_message(&mut self, ctx: &mut Ctx<'_, TMsg>, from: ActorId, msg: TMsg) {
            if let TMsg::Ping(n) = msg {
                ctx.send(from, TMsg::Pong(n + 1));
            }
        }
    }

    /// Records everything it receives into a shared log.
    struct Recorder {
        log: Rc<RefCell<Vec<(f64, TMsg)>>>,
    }
    impl Actor<TMsg> for Recorder {
        fn on_message(&mut self, ctx: &mut Ctx<'_, TMsg>, _from: ActorId, msg: TMsg) {
            self.log.borrow_mut().push((ctx.now().as_secs_f64(), msg));
        }
    }

    fn world(n: usize) -> World<TMsg> {
        World::new(WorldConfig::uniform(n, 4, 42))
    }

    #[test]
    fn request_reply_roundtrip_with_latency() {
        let mut w = world(8);
        let echo = w.spawn(Some(0), Box::new(Echo));
        let log = Rc::new(RefCell::new(Vec::new()));
        struct Client {
            echo: ActorId,
            log: Rc<RefCell<Vec<(f64, TMsg)>>>,
        }
        impl Actor<TMsg> for Client {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TMsg>) {
                ctx.send(self.echo, TMsg::Ping(1));
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, TMsg>, _from: ActorId, msg: TMsg) {
                self.log.borrow_mut().push((ctx.now().as_secs_f64(), msg));
            }
        }
        w.spawn(
            Some(7),
            Box::new(Client {
                echo,
                log: log.clone(),
            }),
        );
        w.run_until(SimTime::from_secs(1));
        let log = log.borrow();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].1, TMsg::Pong(2));
        // Cross-rack roundtrip: two latencies in [300, 800]us.
        assert!(log[0].0 >= 600e-6 && log[0].0 <= 1700e-6, "t = {}", log[0].0);
    }

    #[test]
    fn same_seed_same_schedule() {
        let run = || {
            let mut w = world(8);
            let echo = w.spawn(Some(0), Box::new(Echo));
            let log = Rc::new(RefCell::new(Vec::new()));
            let rec = w.spawn(
                Some(5),
                Box::new(Recorder { log: log.clone() }),
            );
            for i in 0..20 {
                w.at(SimTime::from_millis(i * 10), move |w| {
                    w.send_external(echo, TMsg::Ping(i as u32));
                });
            }
            // echo replies go to NONE; also ping recorder directly
            for i in 0..20 {
                w.at(SimTime::from_millis(5 + i * 10), move |w| {
                    w.send_external(rec, TMsg::Ping(i as u32));
                });
            }
            w.run_until(SimTime::from_secs(2));
            let out = log.borrow().clone();
            out
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn timers_fire_in_order() {
        struct Timed {
            log: Rc<RefCell<Vec<u64>>>,
        }
        impl Actor<TMsg> for Timed {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TMsg>) {
                ctx.timer(SimDuration::from_millis(30), 3);
                ctx.timer(SimDuration::from_millis(10), 1);
                ctx.timer(SimDuration::from_millis(20), 2);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, TMsg>, _: ActorId, _: TMsg) {}
            fn on_timer(&mut self, _ctx: &mut Ctx<'_, TMsg>, tag: u64) {
                self.log.borrow_mut().push(tag);
            }
        }
        let mut w = world(2);
        let log = Rc::new(RefCell::new(Vec::new()));
        w.spawn(None, Box::new(Timed { log: log.clone() }));
        w.run_until(SimTime::from_secs(1));
        assert_eq!(*log.borrow(), vec![1, 2, 3]);
    }

    #[test]
    fn kill_machine_kills_placed_actors_and_drops_messages() {
        let mut w = world(4);
        let echo = w.spawn(Some(2), Box::new(Echo));
        assert!(w.actor_alive(echo));
        w.kill_machine(2);
        assert!(!w.actor_alive(echo));
        assert!(!w.machine_up(2));
        w.send_external(echo, TMsg::Ping(0));
        w.run_until(SimTime::from_secs(1));
        assert_eq!(w.metrics().counter("net.to_dead"), 1);
    }

    #[test]
    fn flow_completion_reaches_owner() {
        struct Io {
            log: Rc<RefCell<Vec<(f64, TMsg)>>>,
        }
        impl Actor<TMsg> for Io {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TMsg>) {
                ctx.start_flow(FlowSpec {
                    kind: crate::flow::FlowKind::DiskRead { machine: 1 },
                    size_mb: 1200.0, // exactly 1 second at 1200 MB/s
                    tag: 42,
                });
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, TMsg>, _: ActorId, msg: TMsg) {
                self.log.borrow_mut().push((ctx.now().as_secs_f64(), msg));
            }
        }
        let mut w = world(4);
        let log = Rc::new(RefCell::new(Vec::new()));
        w.spawn(Some(1), Box::new(Io { log: log.clone() }));
        w.run_until(SimTime::from_secs(5));
        let log = log.borrow();
        assert_eq!(log.len(), 1);
        assert_eq!(log[0].1, TMsg::FlowDone { tag: 42, failed: false });
        assert!((log[0].0 - 1.0).abs() < 1e-3, "t = {}", log[0].0);
    }

    #[test]
    fn flow_fails_when_machine_dies() {
        struct Io {
            log: Rc<RefCell<Vec<TMsg>>>,
        }
        impl Actor<TMsg> for Io {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TMsg>) {
                ctx.start_flow(FlowSpec {
                    kind: crate::flow::FlowKind::Transfer { src: 1, dst: 2 },
                    size_mb: 1e6,
                    tag: 9,
                });
            }
            fn on_message(&mut self, _: &mut Ctx<'_, TMsg>, _: ActorId, msg: TMsg) {
                self.log.borrow_mut().push(msg);
            }
        }
        let mut w = world(4);
        let log = Rc::new(RefCell::new(Vec::new()));
        // Owner on m3, transfer between m1 and m2; killing m2 fails the flow
        // but the owner survives to hear about it.
        w.spawn(Some(3), Box::new(Io { log: log.clone() }));
        w.at(SimTime::from_secs(1), |w| w.kill_machine(2));
        w.run_until(SimTime::from_secs(3));
        assert_eq!(*log.borrow(), vec![TMsg::FlowDone { tag: 9, failed: true }]);
    }

    #[test]
    fn spawned_actor_dies_with_self_kill() {
        struct OneShot;
        impl Actor<TMsg> for OneShot {
            fn on_message(&mut self, ctx: &mut Ctx<'_, TMsg>, _: ActorId, _: TMsg) {
                ctx.kill_self();
            }
        }
        let mut w = world(2);
        let a = w.spawn(Some(0), Box::new(OneShot));
        w.send_external(a, TMsg::Ping(0));
        w.run_until(SimTime::from_secs(1));
        assert!(!w.actor_alive(a));
    }

    #[test]
    fn proc_table_tracks_registration_and_death() {
        struct Proc;
        impl Actor<TMsg> for Proc {
            fn on_start(&mut self, ctx: &mut Ctx<'_, TMsg>) {
                ctx.register_proc(vec![1, 2, 3]);
            }
            fn on_message(&mut self, _: &mut Ctx<'_, TMsg>, _: ActorId, _: TMsg) {}
        }
        let mut w = world(2);
        let a = w.spawn(Some(1), Box::new(Proc));
        type ProcsOut = Rc<RefCell<Vec<(ActorId, Vec<u8>)>>>;
        struct Reader {
            out: ProcsOut,
        }
        impl Actor<TMsg> for Reader {
            fn on_message(&mut self, ctx: &mut Ctx<'_, TMsg>, _: ActorId, _: TMsg) {
                *self.out.borrow_mut() = ctx.procs_on(1);
            }
        }
        let out = Rc::new(RefCell::new(Vec::new()));
        let r = w.spawn(Some(1), Box::new(Reader { out: out.clone() }));
        w.send_external(r, TMsg::Ping(0));
        w.run_until(SimTime::from_secs(1));
        assert_eq!(*out.borrow(), vec![(a, vec![1, 2, 3])]);
        w.kill_actor(a);
        w.send_external(r, TMsg::Ping(0));
        w.run_until(SimTime::from_secs(2));
        assert!(out.borrow().is_empty(), "dead procs must be removed");
    }

    #[test]
    fn control_events_run_at_scheduled_time() {
        let mut w = world(2);
        let hit = Rc::new(RefCell::new(0.0));
        let h = hit.clone();
        w.at(SimTime::from_secs(3), move |w| {
            *h.borrow_mut() = w.now().as_secs_f64();
        });
        w.run_until(SimTime::from_secs(10));
        assert_eq!(*hit.borrow(), 3.0);
        assert_eq!(w.now(), SimTime::from_secs(10), "run_until advances clock");
    }

    #[test]
    fn run_until_cond_stops_early() {
        let mut w = world(2);
        for i in 1..100u64 {
            w.at(SimTime::from_secs(i), |_| {});
        }
        let fired = w.run_until_cond(SimTime::from_secs(1000), |w| {
            w.now() >= SimTime::from_secs(5)
        });
        assert!(fired);
        assert!(w.now() < SimTime::from_secs(7));
    }
}
