//! Synthetic production-trace generator calibrated to Table 1.
//!
//! The paper reports statistics of a tracelog from one production cluster:
//! 91,990 jobs, 185,444 tasks (avg 2.0 / max 150 per job), 42,266,899
//! instances (avg 228 / max 99,937 per task) scheduled onto 16,295,167
//! workers (avg 87.92 / max 4,636 per task). The proprietary tracelog is
//! not available, so this generator draws from heavy-tailed (log-normal)
//! distributions whose parameters were calibrated so the same summary
//! table emerges — the substitution documented in DESIGN.md.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generator parameters (defaults reproduce Table 1).
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Number of jobs to generate.
    pub jobs: u64,
    /// Deterministic RNG seed.
    pub seed: u64,
    /// Log-normal (μ, σ) of instances per task.
    pub inst_mu: f64,
    /// Log-normal σ of instances per task.
    pub inst_sigma: f64,
    /// The max instances per task.
    pub max_instances_per_task: u64,
    /// Geometric-ish tail for tasks per job.
    pub max_tasks_per_job: u32,
    /// Workers granted per instance, uniform range (container reuse means
    /// well below 1.0).
    pub workers_per_instance: (f64, f64),
    /// The max workers per task.
    pub max_workers_per_task: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        Self {
            jobs: 91_990,
            seed: 2014,
            // mean = exp(μ + σ²/2) ≈ 228 with a heavy tail.
            inst_mu: 3.43,
            inst_sigma: 1.95,
            max_instances_per_task: 99_937,
            max_tasks_per_job: 150,
            workers_per_instance: (0.25, 0.52),
            max_workers_per_task: 4_636,
        }
    }
}

/// One generated job shape.
#[derive(Debug, Clone)]
pub struct TraceJob {
    /// Tasks of the job.
    pub tasks: Vec<TraceTask>,
}

#[derive(Debug, Clone)]
/// Tracetask.
pub struct TraceTask {
    /// Per-instance runtime state.
    pub instances: u64,
    /// Worker containers assigned to this task.
    pub workers: u64,
}

/// Aggregate statistics in the shape of Table 1.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceStats {
    /// Number of jobs to generate.
    pub jobs: u64,
    /// Total tasks across all jobs.
    pub tasks_total: u64,
    /// The tasks avg per job.
    pub tasks_avg_per_job: f64,
    /// The tasks max per job.
    pub tasks_max_per_job: u64,
    /// The instances total.
    pub instances_total: u64,
    /// The instances avg per task.
    pub instances_avg_per_task: f64,
    /// The instances max per task.
    pub instances_max_per_task: u64,
    /// The workers total.
    pub workers_total: u64,
    /// The workers avg per task.
    pub workers_avg_per_task: f64,
    /// The workers max per task.
    pub workers_max_per_task: u64,
}

/// Standard-normal sample via Box–Muller (keeps us inside `rand` core).
fn std_normal(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl TraceConfig {
    fn sample_tasks_per_job(&self, rng: &mut SmallRng) -> u32 {
        // Most jobs are 1–2 tasks (geometric body); a rare uniform tail
        // reaches the 150-task pipelines the paper's max reports.
        if rng.gen_bool(0.002) {
            return rng.gen_range(10..=self.max_tasks_per_job);
        }
        let mut n = 1u32;
        while rng.gen_bool(0.47) && n < self.max_tasks_per_job {
            n += 1;
        }
        n
    }

    fn sample_instances(&self, rng: &mut SmallRng) -> u64 {
        let x = (self.inst_mu + self.inst_sigma * std_normal(rng)).exp();
        (x.round() as u64).clamp(1, self.max_instances_per_task)
    }

    fn sample_workers(&self, rng: &mut SmallRng, instances: u64) -> u64 {
        let (lo, hi) = self.workers_per_instance;
        let f = rng.gen_range(lo..hi);
        ((instances as f64 * f).ceil() as u64).clamp(1, self.max_workers_per_task.min(instances.max(1)))
    }

    /// Generates the full trace, streaming jobs through `f` (the trace is
    /// too large to always materialise).
    pub fn generate_with(&self, mut f: impl FnMut(&TraceJob)) -> TraceStats {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut stats = TraceStats {
            jobs: self.jobs,
            ..Default::default()
        };
        for _ in 0..self.jobs {
            let n_tasks = self.sample_tasks_per_job(&mut rng);
            let mut job = TraceJob {
                tasks: Vec::with_capacity(n_tasks as usize),
            };
            for _ in 0..n_tasks {
                let instances = self.sample_instances(&mut rng);
                let workers = self.sample_workers(&mut rng, instances);
                stats.instances_total += instances;
                stats.workers_total += workers;
                stats.instances_max_per_task = stats.instances_max_per_task.max(instances);
                stats.workers_max_per_task = stats.workers_max_per_task.max(workers);
                job.tasks.push(TraceTask { instances, workers });
            }
            stats.tasks_total += n_tasks as u64;
            stats.tasks_max_per_job = stats.tasks_max_per_job.max(n_tasks as u64);
            f(&job);
        }
        stats.tasks_avg_per_job = stats.tasks_total as f64 / stats.jobs.max(1) as f64;
        stats.instances_avg_per_task =
            stats.instances_total as f64 / stats.tasks_total.max(1) as f64;
        stats.workers_avg_per_task = stats.workers_total as f64 / stats.tasks_total.max(1) as f64;
        stats
    }

    /// Generates only the statistics.
    pub fn generate(&self) -> TraceStats {
        self.generate_with(|_| {})
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TraceConfig {
        TraceConfig {
            jobs: 20_000,
            ..Default::default()
        }
    }

    #[test]
    fn calibrated_to_table1_averages() {
        let s = small().generate();
        // Paper: 2.0 tasks/job, 228 instances/task, 87.92 workers/task.
        assert!((s.tasks_avg_per_job - 2.0).abs() < 0.25, "{}", s.tasks_avg_per_job);
        assert!(
            (s.instances_avg_per_task - 228.0).abs() < 80.0,
            "{}",
            s.instances_avg_per_task
        );
        assert!(
            (s.workers_avg_per_task - 87.9).abs() < 40.0,
            "{}",
            s.workers_avg_per_task
        );
    }

    #[test]
    fn maxima_respect_clamps() {
        let s = small().generate();
        assert!(s.instances_max_per_task <= 99_937);
        assert!(s.workers_max_per_task <= 4_636);
        assert!(s.tasks_max_per_job <= 150);
        // The heavy tail must actually reach large tasks.
        assert!(s.instances_max_per_task > 10_000, "{}", s.instances_max_per_task);
    }

    #[test]
    fn workers_never_exceed_instances() {
        let cfg = TraceConfig {
            jobs: 2_000,
            ..Default::default()
        };
        cfg.generate_with(|job| {
            for t in &job.tasks {
                assert!(t.workers <= t.instances.max(1));
                assert!(t.workers >= 1);
            }
        });
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small().generate();
        let b = small().generate();
        assert_eq!(a, b);
        let c = TraceConfig {
            seed: 1,
            ..small()
        }
        .generate();
        assert_ne!(a, c);
    }
}
