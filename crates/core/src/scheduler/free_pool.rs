//! The available-resource pool: per-machine free vectors plus the rotating
//! cursor used for load-balanced cluster-level scans ("load balance will
//! also be considered", Section 3.3).
//!
//! # Hierarchical fit index
//!
//! Cluster-level scans used to walk every machine with *any* free resource,
//! which is Θ(cluster) precisely when the cluster is saturated and nothing
//! fits — the worst possible place to spend time. The pool now keeps a
//! two-level aggregate mirroring the locality tree:
//!
//! * per rack: the component-wise **max** of member free vectors, and
//! * at the root: the component-wise max over rack aggregates.
//!
//! The max is a sound upper bound: if one unit does not fit in a rack's
//! aggregate, it fits on no machine in that rack, so the whole rack (or the
//! whole cluster) can be skipped in O(dimensions). False positives merely
//! cost a descent; they never change which machines are granted.
//!
//! Maintenance is incremental. `give` only widens the bound (component-wise
//! max with the new free vector, O(dimensions)). `take` and `set_capacity`
//! can shrink a member, so they may mark the rack (and root) *dirty*; the
//! exact bound is recomputed lazily the next time a scan consults that rack,
//! touching only its nonempty members. A saturated cluster therefore
//! converges to O(1) rejections at the root instead of Θ(cluster) scans.
//!
//! Dirtying itself is incremental: a shrink only dirties the rack when the
//! member *touched* the bound in a dimension it shrank — if the member was
//! strictly below the bound everywhere it shrank, the exact max cannot have
//! moved and the bound stays clean. Bounds therefore stay exact across the
//! common free→take turnover on non-peak machines.
//!
//! # Struct-of-arrays fast path
//!
//! The two physical dimensions of every machine's free vector are mirrored
//! in dense `free_cpu` / `free_mem` arrays. Scans test fits against these
//! with a branch-free `(cpu ok) & (mem ok)` compare over an 8-byte stride
//! instead of dereferencing the full `ResourceVec` (40-byte stride with a
//! heap pointer for virtuals). The `ResourceVec` vector remains the source
//! of truth for virtual dimensions and for callers that need full vectors.
//!
//! Scan-budget parity: pruned racks still charge their nonempty-machine
//! count against the caller's scan budget, so rotation fairness and
//! truncation points are identical to the naive scan — the index changes
//! *cost*, never *outcome*. `set_pruning(false)` disables the index checks
//! (same iteration order, no skipping) and is used by the differential
//! reference engine in tests and benchmarks.

use fuxi_proto::{MachineId, RackId, ResourceVec};
use std::collections::BTreeSet;

/// Per-rack slice of the fit index.
#[derive(Debug, Default)]
struct RackAgg {
    /// Machines in this rack (fixed at construction, ascending ids).
    members: Vec<MachineId>,
    /// Members with any free resource at all.
    nonempty: BTreeSet<MachineId>,
    /// Component-wise upper bound on member free vectors (exact when clean).
    max_free: ResourceVec,
    /// Set when a member's free vector shrank; bound may overestimate.
    dirty: bool,
}

impl RackAgg {
    /// Recomputes the exact bound from nonempty members and clears `dirty`.
    fn recompute(&mut self, free: &[ResourceVec]) {
        let mut mx = ResourceVec::ZERO;
        for &m in &self.nonempty {
            mx.max_with(&free[m.0 as usize]);
        }
        self.max_free = mx;
        self.dirty = false;
    }

    /// Sound fit test against this rack, lazily recomputing a dirty bound.
    fn can_fit(&mut self, free: &[ResourceVec], unit: &ResourceVec) -> bool {
        if !unit.fits_in(&self.max_free) {
            // Dirty bounds only ever overestimate, so a failed fit is final.
            return false;
        }
        if !self.dirty {
            return true;
        }
        self.recompute(free);
        unit.fits_in(&self.max_free)
    }
}

/// Per-machine free resources. Machines with zero schedulable capacity
/// (down, blacklisted) simply have empty capacity here.
#[derive(Debug, Default)]
pub struct FreePool {
    capacity: Vec<ResourceVec>,
    free: Vec<ResourceVec>,
    /// SoA mirror of `free`: physical CPU dimension (milli-cores).
    free_cpu: Vec<u64>,
    /// SoA mirror of `free`: physical memory dimension (MB).
    free_mem: Vec<u64>,
    /// Machine index → rack index (dense, fixed at construction).
    rack_of: Vec<u32>,
    racks: Vec<RackAgg>,
    /// Root of the fit index: component-wise max over rack bounds.
    cluster_max: ResourceVec,
    cluster_dirty: bool,
    /// Machines with any free resource, across all racks.
    nonempty_total: usize,
    /// Rotating scan start so repeated cluster-level grants spread load.
    cursor: u32,
    /// When false, aggregate checks are skipped (naive reference mode).
    pruning: bool,
}

impl FreePool {
    /// Creates a pool with every machine in one rack (tests, small setups).
    pub fn new(capacities: Vec<ResourceVec>) -> Self {
        let n = capacities.len();
        Self::with_racks(capacities, vec![RackId(0); n])
    }

    /// Creates a pool with the given machine → rack assignment; the fit
    /// index aggregates per rack.
    pub fn with_racks(capacities: Vec<ResourceVec>, rack_of: Vec<RackId>) -> Self {
        assert_eq!(capacities.len(), rack_of.len());
        let n_racks = rack_of.iter().map(|r| r.0 as usize + 1).max().unwrap_or(1);
        let mut racks: Vec<RackAgg> = (0..n_racks).map(|_| RackAgg::default()).collect();
        let mut cluster_max = ResourceVec::ZERO;
        let mut nonempty_total = 0;
        for (i, cap) in capacities.iter().enumerate() {
            let m = MachineId(i as u32);
            let rack = &mut racks[rack_of[i].0 as usize];
            rack.members.push(m);
            if !cap.is_zero() {
                rack.nonempty.insert(m);
                rack.max_free.max_with(cap);
                cluster_max.max_with(cap);
                nonempty_total += 1;
            }
        }
        Self {
            free_cpu: capacities.iter().map(|c| c.cpu_milli()).collect(),
            free_mem: capacities.iter().map(|c| c.memory_mb()).collect(),
            free: capacities.clone(),
            capacity: capacities,
            rack_of: rack_of.into_iter().map(|r| r.0).collect(),
            racks,
            cluster_max,
            cluster_dirty: false,
            nonempty_total,
            cursor: 0,
            pruning: true,
        }
    }

    /// Enables or disables the fit-index pruning. With pruning off the pool
    /// visits machines in exactly the same rotation order but never skips a
    /// rack — the naive reference behaviour used by differential tests.
    pub fn set_pruning(&mut self, enabled: bool) {
        self.pruning = enabled;
    }

    /// N machines.
    pub fn n_machines(&self) -> usize {
        self.capacity.len()
    }

    /// Free.
    pub fn free(&self, m: MachineId) -> &ResourceVec {
        &self.free[m.0 as usize]
    }

    /// Capacity.
    pub fn capacity(&self, m: MachineId) -> &ResourceVec {
        &self.capacity[m.0 as usize]
    }

    /// How many copies of `unit` fit on `m` right now.
    pub fn fits(&self, m: MachineId, unit: &ResourceVec) -> u64 {
        let n = unit.times_fitting_in(self.free(m));
        if n == u64::MAX {
            0 // zero-sized units are never granted
        } else {
            n
        }
    }

    /// True when shrinking `old` down to `new` can lower a rack bound that
    /// currently equals `bound`: some dimension both shrank and sat exactly
    /// at the bound. When false, the exact component-wise max is provably
    /// unchanged (every shrunk dimension had another member at the bound).
    fn shrink_touches_bound(old: &ResourceVec, new: &ResourceVec, bound: &ResourceVec) -> bool {
        if new.cpu_milli() < old.cpu_milli() && old.cpu_milli() == bound.cpu_milli() {
            return true;
        }
        if new.memory_mb() < old.memory_mb() && old.memory_mb() == bound.memory_mb() {
            return true;
        }
        old.virtuals().any(|(id, amt)| {
            new.virtual_amount(id) < amt && amt == bound.virtual_amount(id)
        })
    }

    /// Takes `unit × count` from `m`. Panics in debug builds on underflow —
    /// callers must have checked `fits`.
    pub fn take(&mut self, m: MachineId, unit: &ResourceVec, count: u64) {
        debug_assert!(self.fits(m, unit) >= count, "free-pool underflow on {m}");
        let i = m.0 as usize;
        let old = self.free[i].clone();
        let f = &mut self.free[i];
        f.sub_scaled(unit, count);
        self.free_cpu[i] = f.cpu_milli();
        self.free_mem[i] = f.memory_mb();
        let rack = &mut self.racks[self.rack_of[i] as usize];
        if f.is_zero() && rack.nonempty.remove(&m) {
            self.nonempty_total -= 1;
        }
        // The member shrank. Only if it sat *on* the bound in a dimension it
        // shrank can the exact max have moved; otherwise the bound stays
        // exact and no deferred recompute is ever owed for this take.
        if Self::shrink_touches_bound(&old, &self.free[i], &rack.max_free) {
            rack.dirty = true;
            self.cluster_dirty = true;
        }
    }

    /// Returns `unit × count` to `m` (clamped to capacity).
    pub fn give(&mut self, m: MachineId, unit: &ResourceVec, count: u64) {
        let i = m.0 as usize;
        let f = &mut self.free[i];
        f.add_scaled(unit, count);
        // Capacity may have shrunk since the grant (node flap): free space
        // must never exceed what the machine can actually schedule.
        f.clamp_to(&self.capacity[i]);
        self.free_cpu[i] = f.cpu_milli();
        self.free_mem[i] = f.memory_mb();
        let rack = &mut self.racks[self.rack_of[i] as usize];
        if !f.is_zero() {
            if rack.nonempty.insert(m) {
                self.nonempty_total += 1;
            }
            // Free only grew (free ≤ capacity is an invariant), so widening
            // the bounds keeps them sound without any recompute.
            rack.max_free.max_with(f);
            self.cluster_max.max_with(f);
        }
    }

    /// Changes a machine's schedulable capacity (join, leave, blacklist,
    /// virtual-resource reconfiguration). `in_use` is what is currently
    /// granted there; free becomes `max(0, new_capacity - in_use)`.
    pub fn set_capacity(&mut self, m: MachineId, new_capacity: ResourceVec, in_use: &ResourceVec) {
        let i = m.0 as usize;
        let mut free = new_capacity.clone();
        free.saturating_sub(in_use);
        self.capacity[i] = new_capacity;
        let rack = &mut self.racks[self.rack_of[i] as usize];
        if free.is_zero() {
            if rack.nonempty.remove(&m) {
                self.nonempty_total -= 1;
            }
        } else {
            if rack.nonempty.insert(m) {
                self.nonempty_total += 1;
            }
            rack.max_free.max_with(&free);
            self.cluster_max.max_with(&free);
        }
        // Growth was handled by widening above; only a shrink that touched
        // the (already-widened) bound can leave it overestimating.
        if Self::shrink_touches_bound(&self.free[i], &free, &rack.max_free) {
            rack.dirty = true;
            self.cluster_dirty = true;
        }
        self.free[i] = free;
        self.free_cpu[i] = self.free[i].cpu_milli();
        self.free_mem[i] = self.free[i].memory_mb();
    }

    /// Sound cluster-wide fit test via the index root: `false` means no
    /// machine anywhere can hold one `unit` — the O(1) rejection that
    /// replaces a Θ(cluster) scan on a saturated cluster.
    pub fn cluster_can_fit(&mut self, unit: &ResourceVec) -> bool {
        if !self.pruning {
            return true;
        }
        if unit.is_zero() {
            return false;
        }
        if !unit.fits_in(&self.cluster_max) {
            return false;
        }
        if !self.cluster_dirty {
            return true;
        }
        let mut mx = ResourceVec::ZERO;
        for rack in &mut self.racks {
            if rack.dirty {
                rack.recompute(&self.free);
            }
            mx.max_with(&rack.max_free);
        }
        self.cluster_max = mx;
        self.cluster_dirty = false;
        unit.fits_in(&self.cluster_max)
    }

    /// Sound per-rack fit test (used to gate rack-hint passes). `false`
    /// means no machine in `r` can hold one `unit`.
    pub fn rack_can_fit(&mut self, r: RackId, unit: &ResourceVec) -> bool {
        if !self.pruning {
            return true;
        }
        if unit.is_zero() {
            return false;
        }
        match self.racks.get_mut(r.0 as usize) {
            Some(rack) => rack.can_fit(&self.free, unit),
            None => false,
        }
    }

    /// Rack rotation order starting at the rack containing the cursor. The
    /// first rack is split so its members before the cursor are visited
    /// last, preserving the flat scan's machine-granularity rotation.
    fn rotation(&self) -> (u32, usize) {
        let n = self.capacity.len();
        let start = if (self.cursor as usize) < n { self.cursor } else { 0 };
        let start_rack = self
            .rack_of
            .get(start as usize)
            .copied()
            .unwrap_or(0) as usize;
        (start, start_rack)
    }

    /// Collects up to `max_scan` machines, in rotation order, on which at
    /// least one `unit` fits right now. Racks whose aggregate cannot fit
    /// `unit` are skipped wholesale but still charge their nonempty count
    /// against `max_scan`, so truncation matches the naive scan exactly.
    pub fn scan_fitting(&mut self, unit: &ResourceVec, max_scan: usize, out: &mut Vec<MachineId>) {
        out.clear();
        if max_scan == 0 || unit.is_zero() || self.capacity.is_empty() {
            return;
        }
        if !self.cluster_can_fit(unit) {
            return;
        }
        // Hoisted physical dims: the common all-physical unit tests against
        // the dense SoA mirrors with one branch-free compare per machine.
        let (uc, um) = (unit.cpu_milli(), unit.memory_mb());
        let pure_physical = unit.virtuals().next().is_none();
        let (start, start_rack) = self.rotation();
        let start_m = MachineId(start);
        let n_racks = self.racks.len();
        let mut scanned = 0usize;
        // Segments: tail of the start rack, every other rack in order,
        // then the head of the start rack.
        for seg in 0..=n_racks {
            if scanned >= max_scan {
                break;
            }
            let (r, lo, hi) = if seg == 0 {
                (start_rack, Some(start_m), None)
            } else if seg == n_racks {
                (start_rack, None, Some(start_m))
            } else {
                ((start_rack + seg) % n_racks, None, None)
            };
            if seg != 0 && seg != n_racks && r == start_rack {
                continue; // single-rack pool: segments 0 and n_racks cover it
            }
            let pruning = self.pruning;
            let rack = &mut self.racks[r];
            let prune = pruning && !rack.can_fit(&self.free, unit);
            let range = match (lo, hi) {
                (Some(l), None) => rack.nonempty.range(l..),
                (None, Some(h)) => rack.nonempty.range(..h),
                _ => rack.nonempty.range(..),
            };
            if prune {
                // Whole-rack counts are O(1); only the split start rack
                // pays a walk, and only when it is both pruned and split.
                scanned += match (lo, hi) {
                    (None, None) => rack.nonempty.len(),
                    _ => range.count(),
                };
                continue;
            }
            for &m in range {
                if scanned >= max_scan {
                    break;
                }
                scanned += 1;
                let i = m.0 as usize;
                let fit = if pure_physical {
                    (self.free_cpu[i] >= uc) & (self.free_mem[i] >= um)
                } else {
                    unit.fits_in(&self.free[i])
                };
                if fit {
                    out.push(m);
                }
            }
        }
    }

    /// First machine in rotation order, not in `avoid`, where at least one
    /// `unit` fits. Rack-pruned like [`scan_fitting`](Self::scan_fitting),
    /// unbounded like the master-placement scan it serves.
    pub fn first_fitting(
        &mut self,
        unit: &ResourceVec,
        avoid: &BTreeSet<MachineId>,
    ) -> Option<MachineId> {
        if unit.is_zero() || self.capacity.is_empty() || !self.cluster_can_fit(unit) {
            return None;
        }
        let (uc, um) = (unit.cpu_milli(), unit.memory_mb());
        let pure_physical = unit.virtuals().next().is_none();
        let (start, start_rack) = self.rotation();
        let start_m = MachineId(start);
        let n_racks = self.racks.len();
        for seg in 0..=n_racks {
            let (r, lo, hi) = if seg == 0 {
                (start_rack, Some(start_m), None)
            } else if seg == n_racks {
                (start_rack, None, Some(start_m))
            } else {
                ((start_rack + seg) % n_racks, None, None)
            };
            if seg != 0 && seg != n_racks && r == start_rack {
                continue;
            }
            let pruning = self.pruning;
            let rack = &mut self.racks[r];
            if pruning && !rack.can_fit(&self.free, unit) {
                continue;
            }
            let range = match (lo, hi) {
                (Some(l), None) => rack.nonempty.range(l..),
                (None, Some(h)) => rack.nonempty.range(..h),
                _ => rack.nonempty.range(..),
            };
            for &m in range {
                let i = m.0 as usize;
                let fit = if pure_physical {
                    (self.free_cpu[i] >= uc) & (self.free_mem[i] >= um)
                } else {
                    unit.fits_in(&self.free[i])
                };
                if fit && !avoid.contains(&m) {
                    return Some(m);
                }
            }
        }
        None
    }

    /// Iterates machines with free resources, starting after the rotating
    /// cursor and wrapping, visiting each at most once. No fit pruning —
    /// reporting and tests; the scheduler hot path uses
    /// [`scan_fitting`](Self::scan_fitting).
    pub fn scan_from_cursor(&self) -> impl Iterator<Item = MachineId> + '_ {
        let (start, start_rack) = self.rotation();
        let start_m = MachineId(start);
        let n_racks = self.racks.len();
        (0..=n_racks).flat_map(move |seg| {
            let (r, lo, hi) = if seg == 0 {
                (start_rack, Some(start_m), None)
            } else if seg == n_racks {
                (start_rack, None, Some(start_m))
            } else {
                ((start_rack + seg) % n_racks, None, None)
            };
            let skip = seg != 0 && seg != n_racks && r == start_rack;
            let rack = &self.racks[r];
            let iter: Box<dyn Iterator<Item = MachineId> + '_> = if skip {
                Box::new(std::iter::empty())
            } else {
                match (lo, hi) {
                    (Some(l), None) => Box::new(rack.nonempty.range(l..).copied()),
                    (None, Some(h)) => Box::new(rack.nonempty.range(..h).copied()),
                    _ => Box::new(rack.nonempty.range(..).copied()),
                }
            };
            iter
        })
    }

    /// Advances the cursor past `m` so the next scan starts elsewhere.
    pub fn advance_cursor(&mut self, m: MachineId) {
        self.cursor = m.0.wrapping_add(1);
    }

    /// Nonempty count.
    pub fn nonempty_count(&self) -> usize {
        self.nonempty_total
    }

    /// Total free resources over all machines (O(n): reporting only).
    pub fn total_free(&self) -> ResourceVec {
        let mut t = ResourceVec::ZERO;
        for f in &self.free {
            t.add(f);
        }
        t
    }

    /// Total schedulable capacity (O(n): reporting only).
    pub fn total_capacity(&self) -> ResourceVec {
        let mut t = ResourceVec::ZERO;
        for c in &self.capacity {
            t.add(c);
        }
        t
    }

    /// Test-support: verifies every fit-index invariant from scratch.
    /// Aggregates must bound member free vectors (exactly when clean), the
    /// nonempty sets must match the free vectors, and free ≤ capacity.
    #[doc(hidden)]
    pub fn assert_index_consistent(&self) {
        let mut total = 0usize;
        for (r, rack) in self.racks.iter().enumerate() {
            let mut exact = ResourceVec::ZERO;
            for &m in &rack.members {
                assert_eq!(self.rack_of[m.0 as usize] as usize, r);
                let f = &self.free[m.0 as usize];
                assert!(
                    f.fits_in(&self.capacity[m.0 as usize]),
                    "free exceeds capacity on {m}"
                );
                assert_eq!(
                    (self.free_cpu[m.0 as usize], self.free_mem[m.0 as usize]),
                    (f.cpu_milli(), f.memory_mb()),
                    "SoA mirror out of sync on {m}"
                );
                assert_eq!(
                    rack.nonempty.contains(&m),
                    !f.is_zero(),
                    "nonempty set out of sync on {m}"
                );
                exact.max_with(f);
            }
            total += rack.nonempty.len();
            assert!(
                exact.fits_in(&rack.max_free),
                "rack {r} bound below a member free vector"
            );
            if !rack.dirty {
                assert_eq!(exact, rack.max_free, "clean rack {r} bound not exact");
            }
            assert!(
                rack.max_free.fits_in(&self.cluster_max),
                "cluster bound below rack {r} bound"
            );
        }
        assert_eq!(total, self.nonempty_total, "nonempty total out of sync");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool3() -> FreePool {
        FreePool::new(vec![ResourceVec::cores_mb(12, 96 * 1024); 3])
    }

    /// 2 racks × 3 machines.
    fn pool_2x3() -> FreePool {
        let caps = vec![ResourceVec::cores_mb(12, 96 * 1024); 6];
        let rack_of = vec![
            RackId(0),
            RackId(0),
            RackId(0),
            RackId(1),
            RackId(1),
            RackId(1),
        ];
        FreePool::with_racks(caps, rack_of)
    }

    #[test]
    fn take_and_give_roundtrip() {
        let mut p = pool3();
        let unit = ResourceVec::new(500, 2048);
        assert_eq!(p.fits(MachineId(0), &unit), 24);
        p.take(MachineId(0), &unit, 24);
        assert_eq!(p.fits(MachineId(0), &unit), 0);
        assert!(p.free(MachineId(0)).memory_mb() > 0, "cpu exhausted first");
        p.give(MachineId(0), &unit, 24);
        assert_eq!(p.fits(MachineId(0), &unit), 24);
        p.assert_index_consistent();
    }

    #[test]
    fn nonempty_tracks_fully_drained_machines() {
        let mut p = FreePool::new(vec![ResourceVec::new(1000, 1000); 2]);
        let unit = ResourceVec::new(1000, 1000);
        assert_eq!(p.nonempty_count(), 2);
        p.take(MachineId(1), &unit, 1);
        assert_eq!(p.nonempty_count(), 1);
        assert_eq!(p.scan_from_cursor().collect::<Vec<_>>(), vec![MachineId(0)]);
        p.give(MachineId(1), &unit, 1);
        assert_eq!(p.nonempty_count(), 2);
        p.assert_index_consistent();
    }

    #[test]
    fn cursor_rotates_scan_order() {
        let mut p = pool3();
        let first: Vec<MachineId> = p.scan_from_cursor().collect();
        assert_eq!(first, vec![MachineId(0), MachineId(1), MachineId(2)]);
        p.advance_cursor(MachineId(0));
        let second: Vec<MachineId> = p.scan_from_cursor().collect();
        assert_eq!(second, vec![MachineId(1), MachineId(2), MachineId(0)]);
        p.advance_cursor(MachineId(2));
        let third: Vec<MachineId> = p.scan_from_cursor().collect();
        assert_eq!(third, vec![MachineId(0), MachineId(1), MachineId(2)]);
    }

    #[test]
    fn cursor_rotates_across_racks() {
        let mut p = pool_2x3();
        p.advance_cursor(MachineId(3));
        let order: Vec<u32> = p.scan_from_cursor().map(|m| m.0).collect();
        assert_eq!(order, vec![4, 5, 0, 1, 2, 3], "wraps mid-rack");
        let mut out = Vec::new();
        p.scan_fitting(&ResourceVec::new(500, 2048), usize::MAX, &mut out);
        assert_eq!(out.iter().map(|m| m.0).collect::<Vec<_>>(), vec![4, 5, 0, 1, 2, 3]);
    }

    #[test]
    fn set_capacity_to_zero_removes_machine() {
        let mut p = pool3();
        let unit = ResourceVec::new(500, 2048);
        p.take(MachineId(1), &unit, 4);
        let in_use = unit.scaled(4);
        p.set_capacity(MachineId(1), ResourceVec::ZERO, &in_use);
        assert_eq!(p.fits(MachineId(1), &unit), 0);
        assert_eq!(p.nonempty_count(), 2);
        // Bring it back with nothing in use.
        p.set_capacity(MachineId(1), ResourceVec::cores_mb(12, 96 * 1024), &ResourceVec::ZERO);
        assert_eq!(p.fits(MachineId(1), &unit), 24);
        p.assert_index_consistent();
    }

    #[test]
    fn set_capacity_respects_in_use() {
        let mut p = pool3();
        let unit = ResourceVec::new(500, 2048);
        p.take(MachineId(0), &unit, 10);
        // Capacity shrinks below what is in use: free must be zero, not wrap.
        p.set_capacity(MachineId(0), unit.scaled(5), &unit.scaled(10));
        assert!(p.free(MachineId(0)).is_zero());
        p.assert_index_consistent();
    }

    #[test]
    fn give_clamps_to_shrunken_capacity() {
        let mut p = pool3();
        let unit = ResourceVec::new(500, 2048);
        p.take(MachineId(0), &unit, 10);
        // Node flap: capacity shrinks while 10 grants are outstanding.
        p.set_capacity(MachineId(0), unit.scaled(5), &unit.scaled(10));
        // All 10 come back; free must clamp at the new capacity, not 10×unit.
        p.give(MachineId(0), &unit, 10);
        assert_eq!(p.free(MachineId(0)), &unit.scaled(5));
        p.assert_index_consistent();
    }

    #[test]
    fn totals() {
        let mut p = pool3();
        let unit = ResourceVec::new(500, 2048);
        p.take(MachineId(2), &unit, 2);
        let free = p.total_free();
        let cap = p.total_capacity();
        assert_eq!(cap.cpu_milli(), 3 * 12_000);
        assert_eq!(free.cpu_milli(), 3 * 12_000 - 1000);
        assert_eq!(free.memory_mb(), cap.memory_mb() - 4096);
    }

    #[test]
    fn zero_sized_unit_never_fits() {
        let mut p = pool3();
        assert_eq!(p.fits(MachineId(0), &ResourceVec::ZERO), 0);
        assert!(!p.cluster_can_fit(&ResourceVec::ZERO));
        let mut out = vec![MachineId(0)];
        p.scan_fitting(&ResourceVec::ZERO, usize::MAX, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn cluster_root_rejects_unfittable_unit_after_saturation() {
        let mut p = pool_2x3();
        // Fragmented saturation: drain memory everywhere, leave CPU free.
        let hog = ResourceVec::new(0, 96 * 1024);
        for i in 0..6 {
            p.take(MachineId(i), &hog, 1);
        }
        let unit = ResourceVec::new(500, 2048);
        // Every machine is nonempty (CPU left) yet nothing fits.
        assert_eq!(p.nonempty_count(), 6);
        assert!(!p.cluster_can_fit(&unit), "root bound must reject");
        let mut out = Vec::new();
        p.scan_fitting(&unit, usize::MAX, &mut out);
        assert!(out.is_empty());
        // CPU-only units still fit everywhere.
        assert!(p.cluster_can_fit(&ResourceVec::new(500, 0)));
        p.assert_index_consistent();
    }

    #[test]
    fn rack_pruning_skips_saturated_rack_only() {
        let mut p = pool_2x3();
        let hog = ResourceVec::new(0, 96 * 1024);
        for i in 0..3 {
            p.take(MachineId(i), &hog, 1); // rack 0: memory gone
        }
        let unit = ResourceVec::new(500, 2048);
        assert!(!p.rack_can_fit(RackId(0), &unit));
        assert!(p.rack_can_fit(RackId(1), &unit));
        let mut out = Vec::new();
        p.scan_fitting(&unit, usize::MAX, &mut out);
        assert_eq!(out, vec![MachineId(3), MachineId(4), MachineId(5)]);
        p.assert_index_consistent();
    }

    #[test]
    fn pruned_racks_still_charge_scan_budget() {
        let mut p = pool_2x3();
        let hog = ResourceVec::new(0, 96 * 1024);
        for i in 0..3 {
            p.take(MachineId(i), &hog, 1);
        }
        let unit = ResourceVec::new(500, 2048);
        // Budget 4: rack 0 (pruned, 3 nonempty members) charges 3, leaving
        // room for exactly one machine from rack 1 — identical to the naive
        // scan's truncation point.
        let mut pruned_out = Vec::new();
        p.scan_fitting(&unit, 4, &mut pruned_out);
        p.set_pruning(false);
        let mut naive_out = Vec::new();
        p.scan_fitting(&unit, 4, &mut naive_out);
        assert_eq!(pruned_out, vec![MachineId(3)]);
        assert_eq!(pruned_out, naive_out);
    }

    #[test]
    fn dirty_bound_recomputes_lazily_and_stays_sound() {
        let mut p = pool_2x3();
        let unit = ResourceVec::new(500, 2048);
        // Drain most of machine 0 (leaving {200, 1024}, below one unit);
        // the rack bound is stale-high until a scan consults it, but never
        // stale-low.
        p.take(MachineId(0), &ResourceVec::new(11_800, 95 * 1024), 1);
        assert!(p.rack_can_fit(RackId(0), &unit), "m1/m2 still fit");
        let mut out = Vec::new();
        p.scan_fitting(&unit, usize::MAX, &mut out);
        assert_eq!(out.len(), 5, "machine 0 no longer fits a unit");
        p.assert_index_consistent();
    }

    #[test]
    fn first_fitting_honours_avoid_and_rotation() {
        let mut p = pool_2x3();
        let unit = ResourceVec::new(500, 2048);
        let avoid: BTreeSet<MachineId> = [MachineId(0), MachineId(1)].into();
        assert_eq!(p.first_fitting(&unit, &avoid), Some(MachineId(2)));
        p.advance_cursor(MachineId(4));
        assert_eq!(p.first_fitting(&unit, &BTreeSet::new()), Some(MachineId(5)));
        // Saturate everything: no candidate, answered at the root.
        for i in 0..6 {
            p.take(MachineId(i), &ResourceVec::new(0, 96 * 1024), 1);
        }
        assert_eq!(p.first_fitting(&unit, &BTreeSet::new()), None);
    }
}
