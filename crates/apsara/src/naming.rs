//! Name service: well-known service names → current actor addresses.
//!
//! After a FuxiMaster failover the new primary registers itself under
//! `"fuxi-master"`; agents and application masters re-resolve on their next
//! heartbeat. Lookups are modelled as instantaneous shared state — in real
//! Apsara clients cache name resolutions, and the failover-visible latency
//! comes from lock leases and heartbeat intervals, which *are* simulated.

use fuxi_sim::ActorId;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Well-known name of the FuxiMaster service.
pub const FUXI_MASTER: &str = "fuxi-master";

/// Observer invoked on every *local* mutation of the name table:
/// `(name, Some(id))` for a registration, `(name, None)` for a removal.
/// The node supervisor installs one to replicate updates to peers.
pub type NameWatcher = Box<dyn Fn(&str, Option<ActorId>) + Send>;

/// A cloneable handle to the shared name table. `Arc<Mutex>`-backed so the
/// same handle serves both the single-threaded kernel and the live
/// multi-threaded runtime. In a multi-process deployment each process has
/// its own replica; a [`NameWatcher`] broadcasts local mutations and
/// [`NameRegistry::apply_remote`] applies peer updates without re-firing
/// the watcher (no echo loops).
#[derive(Clone, Default)]
pub struct NameRegistry {
    inner: Arc<Mutex<BTreeMap<String, ActorId>>>,
    watcher: Arc<Mutex<Option<NameWatcher>>>,
}

impl std::fmt::Debug for NameRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NameRegistry")
            .field("inner", &*self.inner.lock().unwrap())
            .finish_non_exhaustive()
    }
}

impl NameRegistry {
    /// Creates a new instance with the given configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the address for `name`.
    pub fn register(&self, name: &str, id: ActorId) {
        self.inner.lock().unwrap().insert(name.to_owned(), id);
        self.notify(name, Some(id));
    }

    /// Removes a registration if `id` still owns it.
    pub fn deregister(&self, name: &str, id: ActorId) {
        let removed = {
            let mut map = self.inner.lock().unwrap();
            if map.get(name) == Some(&id) {
                map.remove(name);
                true
            } else {
                false
            }
        };
        if removed {
            self.notify(name, None);
        }
    }

    /// Installs the replication watcher fired on local mutations.
    pub fn set_watcher(&self, watcher: NameWatcher) {
        *self.watcher.lock().unwrap() = Some(watcher);
    }

    /// Applies an update received from a peer process: same effect as
    /// `register`/`deregister` but never fires the watcher, so replicated
    /// updates don't echo back onto the wire.
    pub fn apply_remote(&self, name: &str, id: Option<ActorId>) {
        let mut map = self.inner.lock().unwrap();
        match id {
            Some(id) => {
                map.insert(name.to_owned(), id);
            }
            None => {
                map.remove(name);
            }
        }
    }

    /// Full snapshot of the table (seeds a peer's replica at handshake).
    pub fn dump(&self) -> Vec<(String, ActorId)> {
        self.inner
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect()
    }

    fn notify(&self, name: &str, id: Option<ActorId>) {
        let watcher = self.watcher.lock().unwrap();
        if let Some(w) = watcher.as_ref() {
            w(name, id);
        }
    }

    /// Resolves a name.
    pub fn lookup(&self, name: &str) -> Option<ActorId> {
        self.inner.lock().unwrap().get(name).copied()
    }

    /// Resolves the FuxiMaster address.
    pub fn master(&self) -> Option<ActorId> {
        self.lookup(FUXI_MASTER)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_lookup_replace() {
        let reg = NameRegistry::new();
        assert_eq!(reg.master(), None);
        reg.register(FUXI_MASTER, ActorId(1));
        assert_eq!(reg.master(), Some(ActorId(1)));
        reg.register(FUXI_MASTER, ActorId(2));
        assert_eq!(reg.master(), Some(ActorId(2)));
    }

    #[test]
    fn deregister_only_by_owner() {
        let reg = NameRegistry::new();
        reg.register("svc", ActorId(1));
        reg.deregister("svc", ActorId(9));
        assert_eq!(reg.lookup("svc"), Some(ActorId(1)));
        reg.deregister("svc", ActorId(1));
        assert_eq!(reg.lookup("svc"), None);
    }

    #[test]
    fn handles_share_state() {
        let a = NameRegistry::new();
        let b = a.clone();
        a.register("x", ActorId(7));
        assert_eq!(b.lookup("x"), Some(ActorId(7)));
    }
}
