#![warn(missing_docs)]
//! # fuxi — umbrella crate
//!
//! Re-exports the public API of every crate in the Fuxi reproduction
//! (VLDB 2014) so examples and downstream users can depend on a single
//! crate. See `README.md` for a guided tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ```
//! use fuxi::cluster::{Cluster, ClusterConfig, SubmitOpts};
//! use fuxi::job::JobDesc;
//! use fuxi::sim::SimTime;
//!
//! // A small simulated cluster with one FuxiAgent per machine.
//! let mut cluster = Cluster::new(ClusterConfig {
//!     n_machines: 8,
//!     rack_size: 4,
//!     seed: 7,
//!     ..ClusterConfig::default()
//! });
//!
//! // Jobs are described in the paper's JSON format (Figure 6).
//! let desc = JobDesc::parse(r#"{
//!     "Tasks": {
//!         "map":    {"Instances": 8, "DurationS": 2.0, "OutputMBPerInstance": 4.0,
//!                    "BinaryMB": 10.0},
//!         "reduce": {"Instances": 2, "DurationS": 2.0, "BinaryMB": 10.0}
//!     },
//!     "Pipes": [
//!         {"Source": {"AccessPoint": "map:out"},
//!          "Destination": {"AccessPoint": "reduce:in"}}
//!     ]
//! }"#).unwrap();
//!
//! let job = cluster.submit(&desc, &SubmitOpts::default());
//! let (ok, _at) = cluster
//!     .run_until_job_done(job, SimTime::from_secs(300))
//!     .expect("job finishes");
//! assert!(ok);
//! ```

pub use fuxi_agent as agent;
pub use fuxi_apsara as apsara;
pub use fuxi_baseline as baseline;
pub use fuxi_cluster as cluster;
pub use fuxi_core as core;
pub use fuxi_job as job;
pub use fuxi_obs as obs;
pub use fuxi_proto as proto;
pub use fuxi_rt as rt;
pub use fuxi_sim as sim;
pub use fuxi_workloads as workloads;
