//! Soundness of the free pool's incremental dirty-bound maintenance.
//!
//! The fit index keeps a per-rack component-wise max of member free
//! vectors. Frees widen the bound monotonically (no recompute); shrinks
//! set a dirty flag *only when they touch the bound in a dimension they
//! shrank* (see `FreePool::shrink_touches_bound`), deferring the exact
//! recompute to the next consult. These proptests interleave frees,
//! shrinks, capacity changes, and node-down/up flaps and assert after
//! every step that:
//!
//! 1. every rack bound is a sound over-approximation of the exact
//!    component-wise max of its members (and exact whenever clean) —
//!    via `FreePool::assert_index_consistent`;
//! 2. the pruning queries never reject a placement a machine could hold
//!    (no false negatives against a brute-force scan of the free vectors).

use fuxi_core::scheduler::FreePool;
use fuxi_proto::{MachineId, RackId, ResourceVec, VirtualResourceId};
use proptest::prelude::*;

const N_RACKS: usize = 3;
const PER_RACK: usize = 3;
const N: usize = N_RACKS * PER_RACK;
/// One virtual resource dimension so the bound maintenance is exercised
/// beyond the fixed-width cpu/mem struct-of-arrays fast path.
const GPU: VirtualResourceId = VirtualResourceId(0);

fn base_capacity() -> ResourceVec {
    ResourceVec::cores_mb(12, 96 * 1024).with_virtual(GPU, 4)
}

fn grant_unit() -> ResourceVec {
    ResourceVec::new(500, 2048).with_virtual(GPU, 1)
}

#[derive(Debug, Clone)]
enum Op {
    /// Grant up to `k` units on machine `m` (a shrink of its free vector).
    Take(usize, u64),
    /// Return up to `k` previously granted units (a free — monotone widen).
    Give(usize, u64),
    /// Shrink the machine's schedulable capacity to `num/4` of base.
    Shrink(usize, u64),
    /// Node down: capacity drops to zero while grants are still out.
    NodeDown(usize),
    /// Node back up at full capacity.
    NodeUp(usize),
    /// Consult the index with a probe unit scaled by `k` (forces the lazy
    /// recompute and checks the answer against a brute-force scan).
    Probe(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (0u8..6, 0usize..N, 1u64..5).prop_map(|(which, m, k)| match which {
        0 => Op::Take(m, k),
        1 => Op::Give(m, k),
        2 => Op::Shrink(m, k - 1),
        3 => Op::NodeDown(m),
        4 => Op::NodeUp(m),
        _ => Op::Probe(m as u64 * 5 + k),
    })
}

/// Brute force: does any machine (optionally restricted to rack `r`) have
/// `unit` fitting in its current free vector?
fn any_fits(pool: &FreePool, unit: &ResourceVec, rack: Option<usize>) -> bool {
    (0..N)
        .filter(|m| rack.is_none_or(|r| m / PER_RACK == r))
        .any(|m| unit.fits_in(pool.free(MachineId(m as u32))))
}

proptest! {
    #[test]
    fn dirty_bounds_stay_sound_under_interleaving(
        ops in prop::collection::vec(op_strategy(), 1..150),
    ) {
        let rack_of: Vec<RackId> = (0..N).map(|m| RackId((m / PER_RACK) as u32)).collect();
        let mut pool = FreePool::with_racks(vec![base_capacity(); N], rack_of);
        // Shadow ledger: units granted per machine, for Give/NodeDown.
        let mut held = [0u64; N];
        let unit = grant_unit();

        for op in ops {
            match op {
                Op::Take(m, k) => {
                    let mid = MachineId(m as u32);
                    let can = pool.fits(mid, &unit).min(k);
                    if can > 0 {
                        pool.take(mid, &unit, can);
                        held[m] += can;
                    }
                }
                Op::Give(m, k) => {
                    let back = held[m].min(k);
                    if back > 0 {
                        pool.give(MachineId(m as u32), &unit, back);
                        held[m] -= back;
                    }
                }
                Op::Shrink(m, q) => {
                    // q/4 of base capacity: q=0 drains the machine, q=3
                    // is a mild cut. Reconfigurations below current usage
                    // exercise the clamped (free = 0) path.
                    let shrunk = ResourceVec::cores_mb(3 * q, 24 * 1024 * q)
                        .with_virtual(GPU, q);
                    pool.set_capacity(MachineId(m as u32), shrunk, &unit.scaled(held[m]));
                }
                Op::NodeDown(m) => {
                    pool.set_capacity(MachineId(m as u32), ResourceVec::ZERO, &unit.scaled(held[m]));
                }
                Op::NodeUp(m) => {
                    pool.set_capacity(MachineId(m as u32), base_capacity(), &unit.scaled(held[m]));
                }
                Op::Probe(k) => {
                    let probe = ResourceVec::new(400, 1800).with_virtual(GPU, 1).scaled(k % 6 + 1);
                    let exact = any_fits(&pool, &probe, None);
                    let pruned = pool.cluster_can_fit(&probe);
                    // Sound pruning: never a false negative. (A true here
                    // with no fitting machine is allowed — the bound is a
                    // component-wise max, not a single machine.)
                    prop_assert!(pruned || !exact, "cluster_can_fit false negative");
                    for r in 0..N_RACKS {
                        let exact_r = any_fits(&pool, &probe, Some(r));
                        let pruned_r = pool.rack_can_fit(RackId(r as u32), &probe);
                        prop_assert!(pruned_r || !exact_r, "rack_can_fit false negative on rack {r}");
                    }
                }
            }
            pool.assert_index_consistent();
        }
    }
}
