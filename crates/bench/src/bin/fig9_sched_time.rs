//! Regenerates **Figure 9** — FuxiMaster request scheduling time under
//! 1,000 concurrent jobs. The scheduling engine runs natively inside the
//! simulated master, so the times below are real wall-clock measurements
//! of the decision path (run with --release).
//!
//! Run: `cargo run --release -p fuxi-bench --bin fig9_sched_time -- [--scale 0.04] [--duration 900]`

use fuxi_cluster::report::{downsample, print_table, sparkline};

fn main() {
    fuxi_bench::warn_if_debug();
    let args = fuxi_bench::Args::parse(0.04, 600);
    println!(
        "Synthetic workload: scale {} → {} machines, {} concurrent jobs, {}s simulated",
        args.scale,
        ((5000.0 * args.scale) as usize).max(20),
        ((1000.0 * args.scale) as usize).max(4),
        args.duration_s
    );
    let out = fuxi_bench::run_synthetic_experiment(&args);
    let m = out.cluster.world.metrics();
    let h = m.histogram("fm.sched_s").expect("scheduling happened");
    print_table(
        "Figure 9: FuxiMaster scheduling time per request",
        &["metric", "paper", "measured"],
        &[
            fuxi_bench::row(
                "average",
                "0.88 ms",
                &format!("{:.4} ms", h.mean() * 1e3),
            ),
            fuxi_bench::row("p50", "-", &format!("{:.4} ms", h.quantile(0.5) * 1e3)),
            fuxi_bench::row("p99", "-", &format!("{:.4} ms", h.quantile(0.99) * 1e3)),
            fuxi_bench::row("peak", "< 3 ms", &format!("{:.4} ms", h.max() * 1e3)),
            fuxi_bench::row("requests timed", "-", &format!("{}", h.count())),
        ],
    );
    let series = m.series("fm.sched_ms");
    println!("\nscheduling time over simulated time (ms):");
    println!("  {}", sparkline(series, 80));
    println!("\nsampled series (t_s, ms):");
    for (t, v) in downsample(series, 16) {
        println!("  {t:9.1}  {v:.4}");
    }
    println!(
        "\nShape claim reproduced: decision latency stays flat (sub-ms) as load\n\
         persists — the locality tree makes each decision O(changed part), not\n\
         O(cluster). Absolute numbers depend on host CPU; the paper measured\n\
         0.88 ms average on 2012-era Xeons inside a production master."
    );
}
