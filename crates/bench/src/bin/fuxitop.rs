//! `fuxitop` — a `top(1)`-style live view of a Fuxi cluster, fed by the
//! scrape endpoint a running `bench_live --serve <addr>` (or any
//! `LiveCluster::serve_metrics`) exposes.
//!
//! Usage:
//! ```text
//! cargo run --release -p fuxi-bench --bin fuxitop -- \
//!     [--addr 127.0.0.1:9464] [--interval 1.0] [--once]
//! ```
//!
//! Polls `GET /json`, parses the cluster view, and redraws a terminal
//! dashboard: the master rollup line, utilisation, scheduling latency
//! percentiles, the busiest agents, the jobs with the most pending
//! instances, and any active SLO alerts. `--once` prints a single frame
//! without clearing the screen (what CI smoke-tests).

use serde_json::{value_from_str, Value};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

struct TopArgs {
    addr: String,
    interval_s: f64,
    once: bool,
}

fn parse_args() -> TopArgs {
    let mut a = TopArgs { addr: "127.0.0.1:9464".to_owned(), interval_s: 1.0, once: false };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < argv.len() {
        match argv[i].as_str() {
            "--addr" => {
                a.addr = argv.get(i + 1).cloned().unwrap_or(a.addr);
                i += 2;
            }
            "--interval" => {
                a.interval_s =
                    argv.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(a.interval_s);
                i += 2;
            }
            "--once" => {
                a.once = true;
                i += 1;
            }
            other => {
                eprintln!("ignoring unknown argument {other}");
                i += 1;
            }
        }
    }
    a
}

/// Minimal HTTP/1.1 GET over a fresh connection (the endpoint answers
/// `Connection: close`, so read-to-end delimits the body).
fn http_get(addr: &str, path: &str) -> std::io::Result<String> {
    let mut s = TcpStream::connect(addr)?;
    s.set_read_timeout(Some(Duration::from_secs(5)))?;
    s.set_write_timeout(Some(Duration::from_secs(5)))?;
    write!(s, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")?;
    let mut buf = String::new();
    s.read_to_string(&mut buf)?;
    let (head, body) = buf
        .split_once("\r\n\r\n")
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "no header block"))?;
    if !head.starts_with("HTTP/1.1 200") {
        let status = head.lines().next().unwrap_or("?").to_owned();
        return Err(std::io::Error::other(format!("scrape endpoint answered {status}")));
    }
    Ok(body.to_owned())
}

/// Numeric coercion over the shim's exact-integer/float split.
fn num(v: Option<&Value>) -> f64 {
    match v {
        Some(Value::UInt(u)) => *u as f64,
        Some(Value::Int(i)) => *i as f64,
        Some(Value::Float(f)) => *f,
        _ => 0.0,
    }
}

fn bar(frac: f64, width: usize) -> String {
    let filled = ((frac.clamp(0.0, 1.0)) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '|' } else { '.' });
    }
    s
}

fn render(view: &Value, addr: &str) -> String {
    let s = view.get_field("summary");
    let f = |k: &str| num(s.and_then(|s| s.get_field(k)));
    let mut out = String::with_capacity(4096);
    out.push_str(&format!(
        "fuxitop — {addr}   epoch {}   agents {}   jobs live {}   reports {}\n",
        f("master_epoch"),
        f("agents"),
        f("jobs_live"),
        f("reports_received"),
    ));
    out.push_str(&format!(
        "jobs  {:>6.1}/s   finished {:>8}   submitted {:>8}   instances {:>7.1}/s\n",
        f("jobs_per_sec"),
        f("jobs_finished_total") as u64,
        f("jobs_submitted_total") as u64,
        f("instances_per_sec"),
    ));
    out.push_str(&format!(
        "cpu   [{}] {:5.1}%   mem [{}] {:5.1}%   frag {:4.2}\n",
        bar(f("util_cpu"), 20),
        f("util_cpu") * 100.0,
        bar(f("util_mem"), 20),
        f("util_mem") * 100.0,
        f("frag_ratio"),
    ));
    out.push_str(&format!(
        "sched p50 {:>8.1}us  p95 {:>8.1}us  p99 {:>8.1}us  ({} decisions/win)   \
         waiting {}   pending {} (oldest {:.1}s)\n",
        f("sched_p50_s") * 1e6,
        f("sched_p95_s") * 1e6,
        f("sched_p99_s") * 1e6,
        f("sched_count_win") as u64,
        f("waiting_entries") as u64,
        f("pending_instances") as u64,
        f("oldest_pending_age_s"),
    ));
    out.push_str(&format!(
        "mail  depth {}   hwm {}\n",
        f("mailbox_depth") as u64,
        f("mailbox_hwm") as u64
    ));

    let alerts = view.get_field("alerts").and_then(Value::as_array);
    match alerts {
        Some(a) if !a.is_empty() => {
            out.push_str(&format!("\nALERTS ({} active, {} raised total):\n", a.len(), f(
                "alerts_total"
            ) as u64));
            for al in a {
                out.push_str(&format!(
                    "  !! {}  value {:.3} over threshold {:.3} since t={:.1}s\n",
                    al.get_field("rule").and_then(Value::as_str).unwrap_or("?"),
                    num(al.get_field("value")),
                    num(al.get_field("threshold")),
                    num(al.get_field("t_s")),
                ));
            }
        }
        _ => out.push_str(&format!(
            "\nno active alerts ({} raised total)\n",
            f("alerts_total") as u64
        )),
    }

    if let Some(agents) = view.get_field("agents").and_then(Value::as_array) {
        let mut rows: Vec<&Value> = agents.iter().collect();
        rows.sort_by(|a, b| {
            num(b.get_field("load")).partial_cmp(&num(a.get_field("load"))).unwrap()
        });
        out.push_str(&format!("\nbusiest agents ({} reporting):\n", rows.len()));
        out.push_str("  machine  workers  used_cpu_m  used_mem_mb    load  starts  exits  launch_fail\n");
        for a in rows.iter().take(8) {
            let g = |k: &str| num(a.get_field(k));
            out.push_str(&format!(
                "  a{:<7} {:>7} {:>11} {:>12} {:>7.2} {:>7} {:>6} {:>12}\n",
                g("machine") as u64,
                g("workers") as u64,
                g("used_cpu_milli") as u64,
                g("used_mem_mb") as u64,
                g("load"),
                g("worker_starts") as u64,
                g("worker_exits") as u64,
                g("launch_failures") as u64,
            ));
        }
    }

    if let Some(jobs) = view.get_field("jobs").and_then(Value::as_array) {
        let mut rows: Vec<&Value> = jobs.iter().collect();
        rows.sort_by_key(|j| std::cmp::Reverse(num(j.get_field("pending_instances")) as u64));
        out.push_str(&format!("\njobs ({} reporting):\n", rows.len()));
        out.push_str("  app/job     tasks     instances (run/done/total)  workers  pending\n");
        for j in rows.iter().take(8) {
            let g = |k: &str| num(j.get_field(k));
            out.push_str(&format!(
                "  {:>4}/{:<5} {:>4}/{:<4}  {:>10}/{:<6}/{:<8} {:>8} {:>8}\n",
                g("app") as u64,
                g("job") as u64,
                g("tasks_finished") as u64,
                g("tasks_total") as u64,
                g("instances_running") as u64,
                g("instances_finished") as u64,
                g("instances_total") as u64,
                g("workers_active") as u64,
                g("pending_instances") as u64,
            ));
        }
    }
    out
}

fn main() {
    let args = parse_args();
    loop {
        let frame = match http_get(&args.addr, "/json") {
            Ok(body) => match value_from_str(&body) {
                Ok(view) => render(&view, &args.addr),
                Err(e) => format!("fuxitop: bad /json payload: {e:?}\n"),
            },
            Err(e) => format!("fuxitop: {} unreachable: {e}\n", args.addr),
        };
        if args.once {
            print!("{frame}");
            return;
        }
        // ANSI clear + home keeps the dashboard stable without a TUI dep.
        print!("\x1b[2J\x1b[H{frame}");
        let _ = std::io::stdout().flush();
        std::thread::sleep(Duration::from_secs_f64(args.interval_s.max(0.1)));
    }
}
