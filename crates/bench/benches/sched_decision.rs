//! Criterion: end-to-end scheduling decisions on a 5,000-machine engine —
//! the Figure 9 micro-benchmark. "When {2CPU, 10GB} of resource frees up on
//! machine A, we only need to make a decision on which application in
//! machine A's waiting queue should get this resource."

use criterion::{criterion_group, criterion_main, Criterion};
use fuxi_core::quota::QuotaManager;
use fuxi_core::scheduler::{Engine, EngineConfig};
use fuxi_proto::request::{RequestDelta, ScheduleUnitDef};
use fuxi_proto::topology::{MachineSpec, TopologyBuilder};
use fuxi_proto::{AppId, MachineId, Priority, QuotaGroupId, ResourceVec, UnitId};

/// A saturated 5,000-machine cluster with 1,000 apps: most demand granted,
/// plenty queued — the paper's operating point. App 0 is the most urgent
/// waiter with unbounded demand, so every freed container deterministically
/// cycles back to it (a stable return → decide → grant loop to measure).
fn saturated_engine() -> Engine {
    let topo = TopologyBuilder::new()
        .uniform(100, 50, MachineSpec {
            resources: ResourceVec::cores_mb(24, 96 * 1024),
            ..MachineSpec::default()
        })
        .build();
    // Preemption off: the benchmark times the waiting-queue decision, and
    // app 0's urgency would otherwise evict the whole cluster at setup.
    let cfg = EngineConfig {
        enable_priority_preemption: false,
        enable_quota_preemption: false,
        ..EngineConfig::default()
    };
    let mut e = Engine::new(topo, cfg, QuotaManager::new());
    let unit = ResourceVec::new(500, 2048);
    for a in 0..1000u32 {
        let prio = if a == 0 { Priority(1) } else { Priority(1000) };
        e.attach_app(
            AppId(a),
            QuotaGroupId(0),
            vec![ScheduleUnitDef::new(UnitId(0), prio, unit.clone())],
        );
        // 480 wanted per app: 480k total vs 240k capacity → saturation.
        // App 0 additionally wants (much) more than it can ever get.
        let want = if a == 0 { 1_000_000 } else { 480 };
        e.apply_deltas(AppId(a), &[RequestDelta::cluster(UnitId(0), want)]);
    }
    e.drain_events();
    e
}

fn bench(c: &mut Criterion) {
    c.bench_function("fig9_free_up_decision_5000_machines", |b| {
        // The hot path: one container returns on a machine, the waiting
        // queue (1,000+ entries) is consulted, a grant goes out. App 0 is
        // the most urgent waiter, so the freed container always comes back
        // to it on the same machine — a stable measurable cycle where every
        // iteration performs one real decision.
        let mut e = saturated_engine();
        // Seed the cycle: give app 0 a container everywhere it will cycle.
        let mut i = 0u32;
        b.iter(|| {
            let m = MachineId(i % 5000);
            i += 1;
            e.return_grant(AppId(0), UnitId(0), m, 1);
            let events = e.drain_events();
            debug_assert!(!events.is_empty() || e.unit_granted_total(AppId(0), UnitId(0)) > 0);
            std::hint::black_box(events);
        });
    });

    c.bench_function("fig9_request_delta_apply", |b| {
        let mut e = saturated_engine();
        let mut i = 0u32;
        b.iter(|| {
            let app = AppId(i % 1000);
            i += 1;
            // An incremental ±1 demand adjustment from one app.
            e.apply_deltas(app, &[RequestDelta::cluster(UnitId(0), 1)]);
            e.apply_deltas(app, &[RequestDelta::cluster(UnitId(0), -1)]);
            e.drain_events();
        });
    });

    c.bench_function("grant_fixed_master_placement", |b| {
        // Master placement on a busy-but-not-full cluster (the realistic
        // admission case): place, then release, so every iteration does a
        // real scan + grant.
        let topo = TopologyBuilder::new()
            .uniform(100, 50, MachineSpec {
                resources: ResourceVec::cores_mb(24, 96 * 1024),
                ..MachineSpec::default()
            })
            .build();
        let mut e = Engine::new(topo, EngineConfig::default(), QuotaManager::new());
        let unit = ResourceVec::new(500, 2048);
        for a in 0..1000u32 {
            e.attach_app(
                AppId(a),
                QuotaGroupId(0),
                vec![ScheduleUnitDef::new(UnitId(0), Priority(1000), unit.clone())],
            );
            // ~90% full: headroom remains for master placement.
            e.apply_deltas(AppId(a), &[RequestDelta::cluster(UnitId(0), 216)]);
        }
        e.drain_events();
        let res = ResourceVec::cores_mb(1, 2048);
        let avoid = Default::default();
        let mut a = 10_000u32;
        b.iter(|| {
            a += 1;
            let m = e
                .grant_fixed(AppId(a), res.clone(), &avoid)
                .expect("headroom exists");
            e.return_grant(AppId(a), fuxi_core::scheduler::MASTER_UNIT, m, 1);
            e.drain_events();
        });
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
