//! Exporters: JSONL event log, Chrome/Perfetto `trace_event` JSON, and
//! flight-dump rendering. All hand-rolled — the crate stays
//! dependency-free and only pays for strings at export time.

use std::fmt::Write;

use crate::recorder::{FlightDump, Tracer};
use crate::trace::{SpanRecord, TraceRecord};

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders `s` as a complete JSON string literal, quotes included — the
/// one escaping path shared by every hand-rolled JSON emitter (metrics
/// snapshots, the cluster-view exposition, the JSONL exporters).
pub fn json_string(s: &str) -> String {
    format!("\"{}\"", json_escape(s))
}

/// One JSONL line for an event record (no trailing newline).
pub fn record_line(r: &TraceRecord) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(
        s,
        "{{\"kind\":\"event\",\"t_s\":{:.6},\"actor\":{},\"trace\":{},\"event\":\"{}\"",
        r.t_s,
        r.actor,
        r.trace.0,
        r.event.name()
    );
    r.event.write_json_fields(&mut s);
    s.push('}');
    s
}

/// One JSONL line for a span record (no trailing newline).
pub fn span_line(r: &SpanRecord) -> String {
    format!(
        "{{\"kind\":\"span\",\"t_s\":{:.6},\"actor\":{},\"trace\":{},\"span\":\"{}\",\"wall_s\":{:.9}}}",
        r.t_s,
        r.actor,
        r.trace.0,
        r.kind.name(),
        r.wall_s
    )
}

/// Full JSONL export: every event and span, one JSON object per line.
/// Events keep recording order (which is causal order within an actor);
/// spans follow, then one `dump` line per flight dump.
pub fn export_jsonl(t: &Tracer) -> String {
    let mut out = String::with_capacity(t.records.len() * 96 + t.spans.len() * 96);
    for r in &t.records {
        out.push_str(&record_line(r));
        out.push('\n');
    }
    for s in &t.spans {
        out.push_str(&span_line(s));
        out.push('\n');
    }
    for d in &t.dumps {
        out.push_str(&dump_line(d));
        out.push('\n');
    }
    out
}

/// One JSONL line summarising a flight dump, with the frozen ring
/// contents inlined so the forensic record survives on its own.
pub fn dump_line(d: &FlightDump) -> String {
    let mut s = String::with_capacity(128 + d.total_events() * 96);
    let _ = write!(
        s,
        "{{\"kind\":\"dump\",\"t_s\":{:.6},\"reason\":\"{}\",\"rings\":[",
        d.t_s,
        json_escape(d.reason)
    );
    for (i, (actor, recs)) in d.rings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{{\"actor\":{actor},\"events\":[");
        for (j, r) in recs.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str(&record_line(r));
        }
        s.push_str("]}");
    }
    s.push_str("]}");
    s
}

// --- wall-clock (live runtime) export -----------------------------------
//
// A live run has no simulated time: every record's `t_s` holds wall-clock
// seconds since the runtime epoch. The wall export makes that explicit by
// renaming the timestamp keys, so consumers (tracetool) can tell the two
// apart instead of misreading wall seconds as simulated seconds.

/// One JSONL line for a live-runtime event: the timestamp is wall-clock
/// seconds since the runtime epoch, keyed `wall_s`; there is no `t_s`.
pub fn record_line_wall(r: &TraceRecord) -> String {
    let mut s = String::with_capacity(96);
    let _ = write!(
        s,
        "{{\"kind\":\"event\",\"wall_s\":{:.6},\"actor\":{},\"trace\":{},\"event\":\"{}\"",
        r.t_s,
        r.actor,
        r.trace.0,
        r.event.name()
    );
    r.event.write_json_fields(&mut s);
    s.push('}');
    s
}

/// One JSONL line for a live-runtime span: `t_wall_s` is the wall-clock
/// start (since the epoch), `wall_s` stays the measured duration.
pub fn span_line_wall(r: &SpanRecord) -> String {
    format!(
        "{{\"kind\":\"span\",\"t_wall_s\":{:.6},\"actor\":{},\"trace\":{},\"span\":\"{}\",\"wall_s\":{:.9}}}",
        r.t_s,
        r.actor,
        r.trace.0,
        r.kind.name(),
        r.wall_s
    )
}

/// One JSONL line for a live-runtime flight dump (`t_wall_s` trigger time,
/// ring events in the wall format).
pub fn dump_line_wall(d: &FlightDump) -> String {
    let mut s = String::with_capacity(128 + d.total_events() * 96);
    let _ = write!(
        s,
        "{{\"kind\":\"dump\",\"t_wall_s\":{:.6},\"reason\":\"{}\",\"rings\":[",
        d.t_s,
        json_escape(d.reason)
    );
    for (i, (actor, recs)) in d.rings.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{{\"actor\":{actor},\"events\":[");
        for (j, r) in recs.iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str(&record_line_wall(r));
        }
        s.push_str("]}");
    }
    s.push_str("]}");
    s
}

/// Full JSONL export of a live-runtime tracer: like [`export_jsonl`] but
/// every timestamp is wall-clock (`wall_s` on events, `t_wall_s` on spans
/// and dumps) and no simulated time appears anywhere.
pub fn export_jsonl_wall(t: &Tracer) -> String {
    let mut out = String::with_capacity(t.records.len() * 96 + t.spans.len() * 96);
    for r in &t.records {
        out.push_str(&record_line_wall(r));
        out.push('\n');
    }
    for s in &t.spans {
        out.push_str(&span_line_wall(s));
        out.push('\n');
    }
    for d in &t.dumps {
        out.push_str(&dump_line_wall(d));
        out.push('\n');
    }
    out
}

/// Chrome/Perfetto `trace_event` JSON (the `{"traceEvents": [...]}`
/// object form). Spans become `"X"` complete events whose timestamp is
/// the *simulated* microsecond and whose duration is the measured
/// *wall-clock* microseconds (the pairing behind Figure 9); events
/// become `"i"` instants. Actors map to thread ids so Perfetto draws one
/// lane per actor.
pub fn export_chrome_trace(t: &Tracer) -> String {
    let mut out = String::with_capacity(64 + (t.records.len() + t.spans.len()) * 128);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for s in &t.spans {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\"pid\":1,\"tid\":{}{}}}",
            s.kind.name(),
            s.t_s * 1e6,
            (s.wall_s * 1e6).max(0.001),
            s.actor,
            if s.trace.is_some() {
                format!(",\"args\":{{\"trace\":{}}}", s.trace.0)
            } else {
                String::new()
            }
        );
    }
    for r in &t.records {
        if !first {
            out.push(',');
        }
        first = false;
        let mut args = String::new();
        let _ = write!(args, "{{\"trace\":{}", r.trace.0);
        r.event.write_json_fields(&mut args);
        args.push('}');
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{:.3},\"pid\":1,\"tid\":{},\"args\":{}}}",
            r.event.name(),
            r.t_s * 1e6,
            // The dump marker's synthetic actor id would create a bogus lane.
            if r.actor == u32::MAX { 0 } else { r.actor },
            args
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::TracerConfig;
    use crate::trace::{SpanKind, TraceEvent, TraceId};

    fn sample_tracer() -> Tracer {
        let mut t = Tracer::new(TracerConfig::default());
        t.record(
            0.5,
            3,
            TraceId::from_job(0),
            TraceEvent::JobSubmitted { job: 0, app: 1 },
        );
        t.record(
            0.6,
            3,
            TraceId::from_job(0),
            TraceEvent::Grant {
                app: 1,
                unit: 0,
                machine: 4,
                count: 2,
            },
        );
        t.span(0.6, 3, TraceId::from_job(0), SpanKind::SchedDecision, 12e-6);
        t
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn jsonl_lines_are_objects() {
        let t = sample_tracer();
        let out = export_jsonl(&t);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "bad line: {l}");
        }
        assert!(lines[0].contains("\"event\":\"job_submitted\""));
        assert!(lines[0].contains("\"trace\":1"));
        assert!(lines[1].contains("\"count\":2"));
        assert!(lines[2].contains("\"span\":\"sched_decision\""));
    }

    #[test]
    fn dump_line_inlines_rings() {
        let mut t = sample_tracer();
        t.dump(1.0, "invariant");
        assert_eq!(t.dumps.len(), 1);
        let line = dump_line(&t.dumps[0]);
        assert!(line.contains("\"reason\":\"invariant\""));
        assert!(line.contains("\"actor\":3"));
        assert!(line.contains("job_submitted"));
    }

    #[test]
    fn wall_export_has_no_sim_time() {
        let mut t = sample_tracer();
        t.dump(1.0, "invariant");
        let out = export_jsonl_wall(&t);
        assert!(!out.contains("\"t_s\""), "live export must not claim simulated time");
        let lines: Vec<&str> = out.lines().collect();
        // 2 sample events + the FlightDumped marker, then 1 span, 1 dump.
        assert_eq!(lines.len(), 5);
        assert!(lines[0].contains("\"kind\":\"event\"") && lines[0].contains("\"wall_s\":0.500000"));
        assert!(lines[3].contains("\"kind\":\"span\"") && lines[3].contains("\"t_wall_s\":0.600000"));
        assert!(lines[3].contains("\"wall_s\":0.000012000"));
        assert!(lines[4].contains("\"kind\":\"dump\"") && lines[4].contains("\"t_wall_s\":1.000000"));
    }

    #[test]
    fn absorb_merges_and_sorts_streams() {
        let mut a = sample_tracer();
        let mut b = Tracer::new(TracerConfig::default());
        b.record(0.1, 9, TraceId::NONE, TraceEvent::NodeDown { machine: 2 });
        b.span(0.2, 9, TraceId::NONE, SpanKind::SchedDecision, 5e-6);
        a.absorb(b);
        assert_eq!(a.records.len(), 3);
        assert_eq!(a.spans.len(), 2);
        assert!(a.records.windows(2).all(|w| w[0].t_s <= w[1].t_s));
        assert!(a.spans.windows(2).all(|w| w[0].t_s <= w[1].t_s));
    }

    #[test]
    fn chrome_trace_shape() {
        let t = sample_tracer();
        let out = export_chrome_trace(&t);
        assert!(out.starts_with("{\"traceEvents\":["));
        assert!(out.ends_with("]}"));
        assert!(out.contains("\"ph\":\"X\""));
        assert!(out.contains("\"ph\":\"i\""));
        // Sim µs timestamps.
        assert!(out.contains("\"ts\":500000.000"));
        // Wall µs duration.
        assert!(out.contains("\"dur\":12.000"));
    }
}
