//! Name service: well-known service names → current actor addresses.
//!
//! After a FuxiMaster failover the new primary registers itself under
//! `"fuxi-master"`; agents and application masters re-resolve on their next
//! heartbeat. Lookups are modelled as instantaneous shared state — in real
//! Apsara clients cache name resolutions, and the failover-visible latency
//! comes from lock leases and heartbeat intervals, which *are* simulated.

use fuxi_sim::ActorId;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Well-known name of the FuxiMaster service.
pub const FUXI_MASTER: &str = "fuxi-master";

/// A cloneable handle to the shared name table. `Arc<Mutex>`-backed so the
/// same handle serves both the single-threaded kernel and the live
/// multi-threaded runtime.
#[derive(Debug, Clone, Default)]
pub struct NameRegistry {
    inner: Arc<Mutex<BTreeMap<String, ActorId>>>,
}

impl NameRegistry {
    /// Creates a new instance with the given configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the address for `name`.
    pub fn register(&self, name: &str, id: ActorId) {
        self.inner.lock().unwrap().insert(name.to_owned(), id);
    }

    /// Removes a registration if `id` still owns it.
    pub fn deregister(&self, name: &str, id: ActorId) {
        let mut map = self.inner.lock().unwrap();
        if map.get(name) == Some(&id) {
            map.remove(name);
        }
    }

    /// Resolves a name.
    pub fn lookup(&self, name: &str) -> Option<ActorId> {
        self.inner.lock().unwrap().get(name).copied()
    }

    /// Resolves the FuxiMaster address.
    pub fn master(&self) -> Option<ActorId> {
        self.lookup(FUXI_MASTER)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_lookup_replace() {
        let reg = NameRegistry::new();
        assert_eq!(reg.master(), None);
        reg.register(FUXI_MASTER, ActorId(1));
        assert_eq!(reg.master(), Some(ActorId(1)));
        reg.register(FUXI_MASTER, ActorId(2));
        assert_eq!(reg.master(), Some(ActorId(2)));
    }

    #[test]
    fn deregister_only_by_owner() {
        let reg = NameRegistry::new();
        reg.register("svc", ActorId(1));
        reg.deregister("svc", ActorId(9));
        assert_eq!(reg.lookup("svc"), Some(ActorId(1)));
        reg.deregister("svc", ActorId(1));
        assert_eq!(reg.lookup("svc"), None);
    }

    #[test]
    fn handles_share_state() {
        let a = NameRegistry::new();
        let b = a.clone();
        a.register("x", ActorId(7));
        assert_eq!(b.lookup("x"), Some(ActorId(7)));
    }
}
