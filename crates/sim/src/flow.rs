//! Event-driven fair-share disk/network flow model.
//!
//! Bulk data movement (map-phase disk reads, shuffle fetches, output writes)
//! is modelled as *flows* over per-machine resources: disk bandwidth, NIC
//! egress and NIC ingress. Each resource shares its capacity equally among
//! the flows using it; a flow's rate is the minimum share across the
//! resources it touches (a standard conservative approximation of max-min
//! fairness). Rates are recomputed only when the set of flows on an affected
//! resource changes, so cost scales with contention changes, not with time.
//!
//! This is the substitute for the paper's real hardware (12×2 TB spindles,
//! 2×1 GbE per node): throughput-shaped experiments such as GraySort
//! (Table 4) exercise real contention, stragglers and locality effects.

use crate::actor::ActorId;
use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// What a flow consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowKind {
    /// Sequential read from a machine's local disks.
    DiskRead {
        /// Machine whose disks are read.
        machine: u32,
    },
    /// Sequential write to a machine's local disks.
    DiskWrite {
        /// Machine whose disks are written.
        machine: u32,
    },
    /// Pure network transfer `src -> dst` (uses src egress + dst ingress).
    Transfer {
        /// Sending machine.
        src: u32,
        /// Receiving machine.
        dst: u32,
    },
    /// Remote read: disk at `src`, then the network to `dst`.
    RemoteRead {
        /// Machine whose disk holds the data.
        src: u32,
        /// Machine reading it.
        dst: u32,
    },
}

/// A request to start a flow. Completion is delivered to the starting actor
/// as `M::flow_done(tag, failed)`.
#[derive(Debug, Clone, Copy)]
pub struct FlowSpec {
    /// What the flow consumes.
    pub kind: FlowKind,
    /// Bytes to move, in megabytes.
    pub size_mb: f64,
    /// Correlation tag.
    pub tag: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ResKey {
    machine: u32,
    kind: ResVariety,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ResVariety {
    Disk,
    NetOut,
    NetIn,
}

#[derive(Debug)]
struct ResState {
    base_cap: f64,
    speed: f64,
    flows: HashSet<u64>,
}

impl ResState {
    fn cap(&self) -> f64 {
        (self.base_cap * self.speed).max(1e-9)
    }
}

#[derive(Debug)]
struct Flow {
    owner: ActorId,
    tag: u64,
    remaining_mb: f64,
    rate: f64,
    last_update: SimTime,
    version: u64,
    uses: [Option<ResKey>; 3],
}

/// A finished flow, to be turned into a message by the world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowDone {
    /// Actor that started the flow.
    pub owner: ActorId,
    /// Correlation tag.
    pub tag: u64,
    /// True when the flow was aborted by a machine failure.
    pub failed: bool,
}

/// The flow network. Owned by the world; actors reach it through `Ctx`.
#[derive(Debug, Default)]
pub struct FlowNet {
    resources: HashMap<ResKey, ResState>,
    flows: HashMap<u64, Flow>,
    /// Min-heap of predicted completions `(finish_us, version, flow_id)`.
    /// Entries are lazily invalidated via the per-flow version counter.
    heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
    next_id: u64,
    disk_bw: Vec<f64>,
    net_bw: Vec<f64>,
    speed: Vec<f64>,
}

impl FlowNet {
    /// Creates a new instance with the given configuration.
    pub fn new(disk_bw: Vec<f64>, net_bw: Vec<f64>) -> Self {
        let n = disk_bw.len();
        assert_eq!(n, net_bw.len());
        Self {
            resources: HashMap::new(),
            flows: HashMap::new(),
            heap: BinaryHeap::new(),
            next_id: 0,
            disk_bw,
            net_bw,
            speed: vec![1.0; n],
        }
    }

    /// Active flows.
    pub fn active_flows(&self) -> usize {
        self.flows.len()
    }

    fn res_state(&mut self, key: ResKey) -> &mut ResState {
        let disk_bw = &self.disk_bw;
        let net_bw = &self.net_bw;
        let speed = &self.speed;
        self.resources.entry(key).or_insert_with(|| {
            let base = match key.kind {
                ResVariety::Disk => disk_bw[key.machine as usize],
                ResVariety::NetOut | ResVariety::NetIn => net_bw[key.machine as usize],
            };
            ResState {
                base_cap: base,
                speed: speed[key.machine as usize],
                flows: HashSet::new(),
            }
        })
    }

    fn uses_of(kind: FlowKind) -> [Option<ResKey>; 3] {
        match kind {
            FlowKind::DiskRead { machine } | FlowKind::DiskWrite { machine } => [
                Some(ResKey {
                    machine,
                    kind: ResVariety::Disk,
                }),
                None,
                None,
            ],
            FlowKind::Transfer { src, dst } => [
                Some(ResKey {
                    machine: src,
                    kind: ResVariety::NetOut,
                }),
                Some(ResKey {
                    machine: dst,
                    kind: ResVariety::NetIn,
                }),
                None,
            ],
            FlowKind::RemoteRead { src, dst } => [
                Some(ResKey {
                    machine: src,
                    kind: ResVariety::Disk,
                }),
                Some(ResKey {
                    machine: src,
                    kind: ResVariety::NetOut,
                }),
                Some(ResKey {
                    machine: dst,
                    kind: ResVariety::NetIn,
                }),
            ],
        }
    }

    /// Starts a flow; returns immediately-completed flows (zero-size flows
    /// complete at once rather than generating degenerate heap entries).
    pub fn start(&mut self, now: SimTime, owner: ActorId, spec: FlowSpec) -> Option<FlowDone> {
        if spec.size_mb <= 0.0 {
            return Some(FlowDone {
                owner,
                tag: spec.tag,
                failed: false,
            });
        }
        let id = self.next_id;
        self.next_id += 1;
        let uses = Self::uses_of(spec.kind);
        let mut touched = Vec::with_capacity(3);
        for key in uses.iter().flatten() {
            self.res_state(*key).flows.insert(id);
            touched.push(*key);
        }
        self.flows.insert(
            id,
            Flow {
                owner,
                tag: spec.tag,
                remaining_mb: spec.size_mb,
                rate: 0.0,
                last_update: now,
                version: 0,
                uses,
            },
        );
        self.reprice_resources(now, &touched);
        None
    }

    /// Recomputes rates for every flow touching any of `keys`.
    fn reprice_resources(&mut self, now: SimTime, keys: &[ResKey]) {
        let mut affected: HashSet<u64> = HashSet::new();
        for key in keys {
            if let Some(rs) = self.resources.get(key) {
                affected.extend(rs.flows.iter().copied());
            }
        }
        for id in affected {
            self.reprice_flow(now, id);
        }
    }

    fn share_of(&self, key: ResKey) -> f64 {
        let rs = &self.resources[&key];
        rs.cap() / rs.flows.len().max(1) as f64
    }

    fn reprice_flow(&mut self, now: SimTime, id: u64) {
        let Some(flow) = self.flows.get(&id) else {
            return;
        };
        // Settle progress at the old rate.
        let elapsed = now.since(flow.last_update).as_secs_f64();
        let mut rate = f64::INFINITY;
        for key in flow.uses.iter().flatten() {
            rate = rate.min(self.share_of(*key));
        }
        let flow = self.flows.get_mut(&id).unwrap();
        flow.remaining_mb = (flow.remaining_mb - flow.rate * elapsed).max(0.0);
        flow.last_update = now;
        flow.rate = rate;
        flow.version += 1;
        let finish_s = flow.remaining_mb / rate.max(1e-9);
        let finish = now + crate::time::SimDuration::from_secs_f64(finish_s);
        self.heap
            .push(Reverse((finish.as_micros(), flow.version, id)));
    }

    /// Earliest valid predicted completion.
    pub fn next_completion(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((t, version, id))) = self.heap.peek() {
            match self.flows.get(&id) {
                Some(f) if f.version == version => return Some(SimTime(t)),
                _ => {
                    self.heap.pop();
                }
            }
        }
        None
    }

    /// Completes every flow whose predicted finish is ≤ `now`.
    pub fn advance(&mut self, now: SimTime) -> Vec<FlowDone> {
        let mut done = Vec::new();
        while let Some(&Reverse((t, version, id))) = self.heap.peek() {
            if SimTime(t) > now {
                break;
            }
            self.heap.pop();
            let valid = matches!(self.flows.get(&id), Some(f) if f.version == version);
            if !valid {
                continue;
            }
            let flow = self.remove_flow(now, id);
            done.push(FlowDone {
                owner: flow.owner,
                tag: flow.tag,
                failed: false,
            });
        }
        done
    }

    fn remove_flow(&mut self, now: SimTime, id: u64) -> Flow {
        let flow = self.flows.remove(&id).expect("flow exists");
        let mut touched = Vec::with_capacity(3);
        for key in flow.uses.iter().flatten() {
            if let Some(rs) = self.resources.get_mut(key) {
                rs.flows.remove(&id);
                touched.push(*key);
            }
        }
        self.reprice_resources(now, &touched);
        flow
    }

    /// Fails every flow touching machine `m` (machine death).
    pub fn fail_machine(&mut self, now: SimTime, m: u32) -> Vec<FlowDone> {
        let victims: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| {
                f.uses
                    .iter()
                    .flatten()
                    .any(|k| k.machine == m)
            })
            .map(|(&id, _)| id)
            .collect();
        let mut done = Vec::with_capacity(victims.len());
        for id in victims {
            let flow = self.remove_flow(now, id);
            done.push(FlowDone {
                owner: flow.owner,
                tag: flow.tag,
                failed: true,
            });
        }
        done
    }

    /// Cancels every flow owned by `owner` without notification (the owner
    /// died or no longer cares).
    pub fn cancel_owned_by(&mut self, now: SimTime, owner: ActorId) {
        let victims: Vec<u64> = self
            .flows
            .iter()
            .filter(|(_, f)| f.owner == owner)
            .map(|(&id, _)| id)
            .collect();
        for id in victims {
            self.remove_flow(now, id);
        }
    }

    /// Scales a machine's disk/NIC capacity (SlowMachine fault or recovery).
    pub fn set_speed(&mut self, now: SimTime, m: u32, factor: f64) {
        self.speed[m as usize] = factor;
        let mut touched = Vec::new();
        for (key, rs) in self.resources.iter_mut() {
            if key.machine == m {
                rs.speed = factor;
                touched.push(*key);
            }
        }
        self.reprice_resources(now, &touched);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn net2() -> FlowNet {
        // two machines, 100 MB/s disk, 50 MB/s NIC
        FlowNet::new(vec![100.0, 100.0], vec![50.0, 50.0])
    }

    fn spec(kind: FlowKind, size_mb: f64, tag: u64) -> FlowSpec {
        FlowSpec { kind, size_mb, tag }
    }

    #[test]
    fn single_disk_read_takes_size_over_cap() {
        let mut n = net2();
        let t0 = SimTime::ZERO;
        assert!(n
            .start(t0, ActorId(1), spec(FlowKind::DiskRead { machine: 0 }, 200.0, 7))
            .is_none());
        let finish = n.next_completion().unwrap();
        assert!((finish.as_secs_f64() - 2.0).abs() < 1e-6, "finish={finish}");
        let done = n.advance(finish);
        assert_eq!(done, vec![FlowDone { owner: ActorId(1), tag: 7, failed: false }]);
        assert_eq!(n.active_flows(), 0);
    }

    #[test]
    fn two_flows_share_the_disk() {
        let mut n = net2();
        let t0 = SimTime::ZERO;
        n.start(t0, ActorId(1), spec(FlowKind::DiskRead { machine: 0 }, 100.0, 1));
        n.start(t0, ActorId(2), spec(FlowKind::DiskRead { machine: 0 }, 100.0, 2));
        // Each gets 50 MB/s -> both finish at t=2s.
        let finish = n.next_completion().unwrap();
        assert!((finish.as_secs_f64() - 2.0).abs() < 1e-6);
        let done = n.advance(finish);
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn departure_speeds_up_survivor() {
        let mut n = net2();
        let t0 = SimTime::ZERO;
        n.start(t0, ActorId(1), spec(FlowKind::DiskRead { machine: 0 }, 50.0, 1));
        n.start(t0, ActorId(2), spec(FlowKind::DiskRead { machine: 0 }, 200.0, 2));
        // Flow 1 finishes at t=1s (50 MB at 50 MB/s). Flow 2 then has
        // 150 MB left at 100 MB/s -> finishes at t=2.5s.
        let f1 = n.next_completion().unwrap();
        assert!((f1.as_secs_f64() - 1.0).abs() < 1e-6);
        n.advance(f1);
        let f2 = n.next_completion().unwrap();
        assert!((f2.as_secs_f64() - 2.5).abs() < 1e-6, "f2 = {f2}");
    }

    #[test]
    fn transfer_is_bottlenecked_by_nic() {
        let mut n = net2();
        n.start(
            SimTime::ZERO,
            ActorId(1),
            spec(FlowKind::Transfer { src: 0, dst: 1 }, 100.0, 1),
        );
        // 50 MB/s NIC -> 2s.
        assert!((n.next_completion().unwrap().as_secs_f64() - 2.0).abs() < 1e-6);
    }

    #[test]
    fn remote_read_uses_disk_and_both_nics() {
        let mut n = net2();
        let t0 = SimTime::ZERO;
        // A competing local read halves the disk share (50), but NIC share
        // (50) equals it; add a second transfer out of m0 to squeeze egress.
        n.start(t0, ActorId(9), spec(FlowKind::DiskRead { machine: 0 }, 1e9, 0));
        n.start(t0, ActorId(8), spec(FlowKind::Transfer { src: 0, dst: 1 }, 1e9, 0));
        n.start(
            t0,
            ActorId(1),
            spec(FlowKind::RemoteRead { src: 0, dst: 1 }, 50.0, 5),
        );
        // disk share = 50, egress share = 25, ingress share = 25 -> 25 MB/s -> 2s.
        let f = n.next_completion().unwrap();
        assert!((f.as_secs_f64() - 2.0).abs() < 1e-6, "f = {f}");
    }

    #[test]
    fn machine_failure_fails_touching_flows() {
        let mut n = net2();
        let t0 = SimTime::ZERO;
        n.start(t0, ActorId(1), spec(FlowKind::Transfer { src: 0, dst: 1 }, 100.0, 1));
        n.start(t0, ActorId(2), spec(FlowKind::DiskRead { machine: 1 }, 100.0, 2));
        let done = n.fail_machine(SimTime::from_secs(1), 1);
        assert_eq!(done.len(), 2);
        assert!(done.iter().all(|d| d.failed));
        assert_eq!(n.active_flows(), 0);
    }

    #[test]
    fn slow_machine_stretches_completion() {
        let mut n = net2();
        let t0 = SimTime::ZERO;
        n.start(t0, ActorId(1), spec(FlowKind::DiskRead { machine: 0 }, 100.0, 1));
        n.set_speed(t0, 0, 0.5); // 50 MB/s now
        let f = n.next_completion().unwrap();
        assert!((f.as_secs_f64() - 2.0).abs() < 1e-6, "f = {f}");
    }

    #[test]
    fn zero_size_flow_completes_immediately() {
        let mut n = net2();
        let done = n
            .start(SimTime::ZERO, ActorId(1), spec(FlowKind::DiskRead { machine: 0 }, 0.0, 3))
            .unwrap();
        assert_eq!(done.tag, 3);
        assert!(!done.failed);
    }

    #[test]
    fn cancel_owned_by_removes_silently() {
        let mut n = net2();
        let t0 = SimTime::ZERO;
        n.start(t0, ActorId(1), spec(FlowKind::DiskRead { machine: 0 }, 100.0, 1));
        n.start(t0, ActorId(2), spec(FlowKind::DiskRead { machine: 0 }, 100.0, 2));
        n.cancel_owned_by(t0 + SimDuration::from_secs(1), ActorId(1));
        assert_eq!(n.active_flows(), 1);
        // survivor got repriced at t=1 with 50MB left at full 100 MB/s.
        let f = n.next_completion().unwrap();
        assert!((f.as_secs_f64() - 1.5).abs() < 1e-6, "f = {f}");
    }

    #[test]
    fn progress_is_settled_on_reprice() {
        let mut n = net2();
        let t0 = SimTime::ZERO;
        n.start(t0, ActorId(1), spec(FlowKind::DiskRead { machine: 0 }, 100.0, 1));
        // At t=0.5 add contention: 50 MB already moved, 50 left at 50 MB/s -> 1.5s.
        n.start(
            SimTime::from_secs_f64(0.5),
            ActorId(2),
            spec(FlowKind::DiskRead { machine: 0 }, 1000.0, 2),
        );
        let f = n.next_completion().unwrap();
        assert!((f.as_secs_f64() - 1.5).abs() < 1e-6, "f = {f}");
    }
}
