//! Preemption (paper Section 3.4).
//!
//! Two levels, in order:
//! 1. **Priority preemption** — "the application with higher priority
//!    submits its resource request late but the cluster resources happen to
//!    be all scheduled out. Applications with lowest priority in its quota
//!    group will be preempted to make space for higher ones."
//! 2. **Quota preemption** — "when resource requests of applications from
//!    one quota group increase and the minimal resource quota is not
//!    satisfied, the quota groups that over-use resources will be preempted
//!    to make space for this quota group."
//!
//! A cheap pre-check (`granted_by_priority` and the quota deficit test)
//! keeps the no-preemption-possible case O(log n), which matters because
//! `try_satisfy` calls this on every unsatisfied request under load.

use crate::scheduler::engine::{Engine, RevokeReason, MASTER_UNIT};
use fuxi_proto::{AppId, MachineId, Priority, UnitId};
use std::ops::Bound::{Excluded, Unbounded};

#[derive(Debug)]
struct Victim {
    priority: Priority,
    seq: u64,
    app: AppId,
    unit: UnitId,
    by_priority: bool,
}

impl Engine {
    /// Places an application-master container, preempting a lower-priority
    /// workload container if the cluster is packed. Masters run at
    /// [`fuxi_proto::Priority::HIGHEST`], so a packed cluster never blocks
    /// job admission (it would deadlock quota preemption: the preempting
    /// job's master could otherwise never start).
    pub fn place_master(
        &mut self,
        app: AppId,
        resource: fuxi_proto::ResourceVec,
        avoid: &std::collections::BTreeSet<MachineId>,
    ) -> Option<MachineId> {
        if let Some(m) = self.grant_fixed(app, resource.clone(), avoid) {
            return Some(m);
        }
        if !self.config().enable_priority_preemption {
            return None;
        }
        // Least urgent victims first.
        let mut victims: Vec<(Priority, u64, AppId, UnitId)> = Vec::new();
        for (&vapp, ventry) in &self.apps {
            if vapp == app {
                continue;
            }
            for (&vuid, vu) in &ventry.units {
                if vuid == MASTER_UNIT || vu.total_granted == 0 {
                    continue;
                }
                victims.push((vu.def.priority, vu.submit_seq, vapp, vuid));
            }
        }
        victims.sort_by(|a, b| b.0.cmp(&a.0).then(b.1.cmp(&a.1)));
        for (_, _, vapp, vuid) in victims {
            let holdings: Vec<(MachineId, u64)> = self.apps[&vapp].units[&vuid]
                .granted
                .iter()
                .filter(|(m, _)| !avoid.contains(m))
                .map(|(&m, &c)| (m, c))
                .collect();
            for (m, held) in holdings {
                // Revoke just enough on m for the master to fit.
                let mut k = 0;
                while k < held {
                    self.revoke_at(vapp, vuid, m, 1, RevokeReason::Preempted);
                    k += 1;
                    if self.free.fits(m, &resource) >= 1 {
                        return self.grant_fixed(app, resource, avoid);
                    }
                }
            }
        }
        None
    }
}

impl Engine {
    /// Attempts preemption in favour of `(app, unit)`'s outstanding demand.
    pub(crate) fn maybe_preempt(&mut self, app: AppId, unit_id: UnitId) {
        let cfg = self.config().clone();
        if !cfg.enable_priority_preemption && !cfg.enable_quota_preemption {
            return;
        }
        let Some(entry) = self.apps.get(&app) else {
            return;
        };
        let group = entry.group;
        let Some(u) = entry.units.get(&unit_id) else {
            return;
        };
        let prio = u.def.priority;
        let unit_res = u.def.resource.clone();
        if unit_res.is_zero() {
            return;
        }

        // Cheap pre-checks: is there anything at all to take?
        let lower_priority_exists = cfg.enable_priority_preemption
            && self
                .granted_by_priority
                .range((Excluded(prio), Unbounded))
                .any(|(_, &c)| c > 0);
        let quota_deficit =
            cfg.enable_quota_preemption && self.quotas.in_deficit_for(group, &unit_res);
        if !lower_priority_exists && !quota_deficit {
            return;
        }

        // Collect eligible victims.
        let mut victims: Vec<Victim> = Vec::new();
        for (&vapp, ventry) in &self.apps {
            if vapp == app {
                continue;
            }
            for (&vuid, vu) in &ventry.units {
                if vuid == MASTER_UNIT || vu.total_granted == 0 {
                    continue;
                }
                let by_priority = lower_priority_exists && vu.def.priority > prio;
                let by_quota =
                    quota_deficit && ventry.group != group && self.quotas.over_min(ventry.group);
                if by_priority || by_quota {
                    victims.push(Victim {
                        priority: vu.def.priority,
                        seq: vu.submit_seq,
                        app: vapp,
                        unit: vuid,
                        by_priority,
                    });
                }
            }
        }
        // Priority-level victims first (the paper's first level), then quota
        // victims; within each: least urgent first, youngest first.
        victims.sort_by(|a, b| {
            b.by_priority
                .cmp(&a.by_priority)
                .then(b.priority.cmp(&a.priority))
                .then(b.seq.cmp(&a.seq))
        });

        let mut budget = cfg.max_preemptions_per_attempt;
        for v in victims {
            if budget == 0 || self.unit_outstanding(app, unit_id) == 0 {
                break;
            }
            // Quota victims must still be over-quota at revoke time
            // (earlier revocations may already have fixed the imbalance).
            if !v.by_priority {
                let vgroup = self.apps[&v.app].group;
                if !self.quotas.over_min(vgroup) {
                    continue;
                }
            }
            let holdings: Vec<(MachineId, u64)> = self.apps[&v.app].units[&v.unit]
                .granted
                .iter()
                .map(|(&m, &c)| (m, c))
                .collect();
            for (m, held) in holdings {
                if budget == 0 || self.unit_outstanding(app, unit_id) == 0 {
                    break;
                }
                let mut left = held;
                while left > 0 && budget > 0 && self.unit_outstanding(app, unit_id) > 0 {
                    self.revoke_at(v.app, v.unit, m, 1, RevokeReason::Preempted);
                    left -= 1;
                    budget -= 1;
                    // Grant directly to the requester (not via the general
                    // free-up path: preempted capacity must reach the app
                    // the preemption was performed for, or a waiter from the
                    // very group being preempted could reclaim it and
                    // thrash).
                    let can = self
                        .unit_outstanding(app, unit_id)
                        .min(self.free.fits(m, &unit_res));
                    if can > 0 {
                        self.grant_for_preemption(app, unit_id, m, can);
                    }
                }
            }
        }
    }
}
