//! The TaskMaster: fine-grained instance scheduling within one task
//! (paper Section 4.4).
//!
//! "When the JobMaster intends to execute a task, an individual TaskMaster
//! object is created. The TaskMaster will conduct the fine-grained instance
//! scheduling to determine which worker to execute each instance. ...
//! a) instances will be scheduled to the worker with the most local input
//! data; b) instances are scheduled to available workers uniformly ...
//! c) the scheduling is performed incrementally by scanning only the
//! unassigned instances each time."
//!
//! A TaskMaster is a plain object owned by the JobMaster actor (exactly the
//! paper's hierarchical model, Figure 8); TaskWorkers are actors.

use crate::backup::{should_backup, BackupConfig, RuntimeStats};
use crate::blacklist::JobBlacklist;
use crate::desc::TaskDesc;
use fuxi_apsara::pangu::Chunk;
use fuxi_proto::{InstanceId, InstanceWork, MachineId, TaskId, WorkerId};
use fuxi_sim::SimTime;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Instance lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstState {
    /// Pending.
    Pending,
    /// Running.
    Running,
    /// Done.
    Done,
}

/// One live attempt of an instance.
#[derive(Debug, Clone)]
pub struct Attempt {
    /// Attempt number.
    pub attempt: u32,
    /// Worker id.
    pub worker: WorkerId,
    /// Machine this applies to.
    pub machine: MachineId,
    /// When the attempt started.
    pub started: SimTime,
    /// Confirmed alive (used during JobMaster recovery).
    pub confirmed: bool,
}

/// Runtime state of one instance.
#[derive(Debug)]
pub struct InstanceRt {
    /// Input chunks (for DFS-fed tasks); the preferred replica is chosen
    /// per-worker at assignment time.
    pub input_chunks: Vec<Chunk>,
    /// Shuffle reads (for downstream tasks): `(source machine, MB)`.
    pub shuffle_reads: Vec<(MachineId, f64)>,
    /// Pre-sampled compute seconds for this instance.
    pub compute_s: f64,
    /// Lifecycle state.
    pub state: InstState,
    /// Live attempts (more than one during a backup race).
    pub attempts: Vec<Attempt>,
    /// Next attempt number to hand out.
    pub next_attempt: u32,
    /// Backup attempts launched so far.
    pub backups_launched: u32,
    /// Where the winning attempt ran (its output lives there).
    pub output_machine: Option<MachineId>,
    /// Runtime of the winning attempt, seconds.
    pub runtime_s: Option<f64>,
}

/// One worker container as the TaskMaster tracks it.
#[derive(Debug)]
pub struct TWorker {
    /// Machine this applies to.
    pub machine: MachineId,
    /// Currently executing (instance index, attempt).
    pub busy: Option<(u32, u32)>,
    /// Has sent `WorkerRegister` (ready for assignments).
    pub registered: bool,
}

/// An assignment decision: send `AssignInstance(work)` to `worker`.
#[derive(Debug)]
pub struct AssignmentOut {
    /// Worker id.
    pub worker: WorkerId,
    /// Instance id.
    pub instance: InstanceId,
    /// Attempt number.
    pub attempt: u32,
    /// The work to execute.
    pub work: InstanceWork,
}

/// The per-task instance scheduler.
pub struct TaskMaster {
    /// Task id.
    pub task: TaskId,
    /// Task description.
    pub desc: TaskDesc,
    /// Per-instance runtime state.
    pub instances: Vec<InstanceRt>,
    /// Unassigned instance indexes (incremental scan: assigned instances
    /// are never rescanned).
    pending: VecDeque<u32>,
    /// machine → instance indexes preferring it (local input data).
    prefer: BTreeMap<MachineId, Vec<u32>>,
    /// Worker containers assigned to this task.
    pub workers: BTreeMap<WorkerId, TWorker>,
    /// Runtimes of finished instances.
    pub stats: RuntimeStats,
    /// Instances completed so far.
    pub finished: u64,
}

impl TaskMaster {
    /// Creates a new instance with the given configuration.
    pub fn new(task: TaskId, desc: TaskDesc, instances: Vec<InstanceRt>) -> Self {
        let mut prefer: BTreeMap<MachineId, Vec<u32>> = BTreeMap::new();
        let mut pending = VecDeque::new();
        for (i, inst) in instances.iter().enumerate() {
            if inst.state == InstState::Pending {
                pending.push_back(i as u32);
            }
            for chunk in &inst.input_chunks {
                for &m in &chunk.replicas {
                    prefer.entry(m).or_default().push(i as u32);
                }
            }
        }
        Self {
            task,
            desc,
            instances,
            pending,
            prefer,
            workers: BTreeMap::new(),
            stats: RuntimeStats::default(),
            finished: 0,
        }
    }

    /// Total instances.
    pub fn total_instances(&self) -> u64 {
        self.instances.len() as u64
    }

    /// Is complete.
    pub fn is_complete(&self) -> bool {
        self.finished == self.total_instances()
    }

    /// Pending count.
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Running count.
    pub fn running_count(&self) -> u64 {
        self.instances
            .iter()
            .filter(|i| i.state == InstState::Running)
            .count() as u64
    }

    /// The machines this task would like workers on, with counts — the
    /// locality hints for the resource request (top `cap` machines by
    /// local-chunk count).
    pub fn locality_hints(&self, cap: usize) -> Vec<(MachineId, u64)> {
        let mut counts: Vec<(MachineId, u64)> = self
            .prefer
            .iter()
            .map(|(&m, v)| (m, v.len() as u64))
            .collect();
        counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        counts.truncate(cap);
        counts
    }

    // ------------------------------------------------------------------
    // Worker lifecycle
    // ------------------------------------------------------------------

    /// Add worker.
    pub fn add_worker(&mut self, worker: WorkerId, machine: MachineId) {
        self.workers.entry(worker).or_insert(TWorker {
            machine,
            busy: None,
            registered: false,
        });
    }

    /// Worker registered.
    pub fn worker_registered(&mut self, worker: WorkerId, machine: MachineId) {
        let w = self.workers.entry(worker).or_insert(TWorker {
            machine,
            busy: None,
            registered: false,
        });
        w.machine = machine;
        w.registered = true;
    }

    /// Removes a worker; requeues any instance it was running. Returns the
    /// requeued instance index, if any.
    pub fn remove_worker(&mut self, worker: WorkerId) -> Option<u32> {
        let w = self.workers.remove(&worker)?;
        let (idx, attempt) = w.busy?;
        self.abandon_attempt(idx, attempt)
    }

    /// Marks one attempt dead; requeues the instance when no live attempts
    /// remain and it is not done. Returns the instance index if requeued.
    pub fn abandon_attempt(&mut self, idx: u32, attempt: u32) -> Option<u32> {
        let inst = &mut self.instances[idx as usize];
        inst.attempts.retain(|a| a.attempt != attempt);
        if inst.state == InstState::Done {
            return None;
        }
        if inst.attempts.is_empty() {
            inst.state = InstState::Pending;
            self.pending.push_back(idx);
            Some(idx)
        } else {
            None
        }
    }

    /// Workers currently on `machine`.
    pub fn workers_on(&self, machine: MachineId) -> Vec<WorkerId> {
        self.workers
            .iter()
            .filter(|(_, w)| w.machine == machine)
            .map(|(&id, _)| id)
            .collect()
    }

    /// Per-machine live worker counts (for grant reconciliation).
    pub fn worker_counts(&self) -> BTreeMap<MachineId, u64> {
        let mut out = BTreeMap::new();
        for w in self.workers.values() {
            *out.entry(w.machine).or_insert(0) += 1;
        }
        out
    }

    /// Idle registered workers.
    pub fn idle_workers(&self) -> Vec<WorkerId> {
        self.workers
            .iter()
            .filter(|(_, w)| w.registered && w.busy.is_none())
            .map(|(&id, _)| id)
            .collect()
    }

    // ------------------------------------------------------------------
    // Instance scheduling
    // ------------------------------------------------------------------

    /// Assigns pending instances to idle workers: local-preferring, then
    /// anything unassigned. Returns the assignments to send.
    pub fn try_assign(&mut self, now: SimTime, bl: &JobBlacklist) -> Vec<AssignmentOut> {
        let mut out = Vec::new();
        let idle = self.idle_workers();
        for worker in idle {
            if self.pending.is_empty() {
                break;
            }
            let machine = self.workers[&worker].machine;
            if bl.task_avoids(self.task, machine) {
                continue; // JobMaster will retire this worker
            }
            let Some(idx) = self.pick_instance_for(machine, bl) else {
                continue;
            };
            out.push(self.assign(now, worker, idx));
        }
        out
    }

    /// Picks an unassigned instance for a worker on `machine`: prefer one
    /// with a local input replica; fall back to FIFO.
    fn pick_instance_for(&mut self, machine: MachineId, bl: &JobBlacklist) -> Option<u32> {
        // Local candidates: lazily skip entries that are no longer pending
        // (incremental scan — each entry is visited at most once here).
        if let Some(local) = self.prefer.get_mut(&machine) {
            while let Some(idx) = local.pop() {
                if self.instances[idx as usize].state == InstState::Pending {
                    // Remove from the FIFO lazily via the state check below.
                    self.instances[idx as usize].state = InstState::Running;
                    return Some(idx);
                }
            }
        }
        // Global FIFO of unassigned instances, with a light locality
        // preference: among the first few pending entries, prefer an
        // *orphan* (no replica on any machine where this task has a
        // worker) so instances with a live local home are left for it —
        // the cheap cousin of delay scheduling.
        let homes: BTreeSet<MachineId> = self.workers.values().map(|w| w.machine).collect();
        let mut skipped = Vec::new();
        let mut fallback: Option<u32> = None;
        let mut found = None;
        let mut scanned = 0;
        while let Some(idx) = self.pending.pop_front() {
            let inst = &self.instances[idx as usize];
            if inst.state != InstState::Pending {
                continue; // already taken via a prefer list
            }
            if bl.instance_avoid_set(self.task, idx).contains(&machine) {
                skipped.push(idx);
                continue;
            }
            scanned += 1;
            let has_local_home = inst
                .input_chunks
                .iter()
                .flat_map(|c| c.replicas.iter())
                .any(|r| homes.contains(r));
            if !has_local_home || scanned > 16 {
                found = Some(idx);
                break;
            }
            // It has a local home elsewhere; hold it back unless nothing
            // better turns up.
            if fallback.is_none() {
                fallback = Some(idx);
            } else {
                skipped.push(idx);
            }
        }
        if found.is_none() {
            found = fallback.take();
        } else if let Some(fb) = fallback.take() {
            skipped.push(fb);
        }
        for idx in skipped {
            self.pending.push_back(idx);
        }
        if let Some(idx) = found {
            self.instances[idx as usize].state = InstState::Running;
        }
        found
    }

    fn assign(&mut self, now: SimTime, worker: WorkerId, idx: u32) -> AssignmentOut {
        let machine = self.workers[&worker].machine;
        let inst = &mut self.instances[idx as usize];
        let attempt = inst.next_attempt;
        inst.next_attempt += 1;
        inst.state = InstState::Running;
        inst.attempts.push(Attempt {
            attempt,
            worker,
            machine,
            started: now,
            confirmed: true,
        });
        let work = Self::build_work(&self.desc, inst, machine, idx);
        self.workers.get_mut(&worker).unwrap().busy = Some((idx, attempt));
        AssignmentOut {
            worker,
            instance: InstanceId::new(self.task, idx),
            attempt,
            work,
        }
    }

    /// Materialises the InstanceWork for execution on `machine`: each input
    /// chunk is read from its closest replica ("instances will be scheduled
    /// to the worker with the most local input data" — and read locally
    /// when they are).
    fn build_work(desc: &TaskDesc, inst: &InstanceRt, machine: MachineId, idx: u32) -> InstanceWork {
        let mut reads: Vec<(MachineId, f64)> = Vec::new();
        for chunk in &inst.input_chunks {
            let src = chunk
                .replicas
                .iter()
                .copied()
                .find(|&r| r == machine)
                .or_else(|| chunk.replicas.first().copied())
                .unwrap_or(machine);
            reads.push((src, chunk.size_mb));
        }
        // Stagger shuffle fetch order per instance: if every reducer pulled
        // sources in the same order, they would convoy on the same few
        // senders and waste most of the fabric (the classic randomized-
        // shuffle-fetch trick, done deterministically here).
        let mut shuffle = inst.shuffle_reads.clone();
        if !shuffle.is_empty() {
            let n = shuffle.len();
            shuffle.rotate_left(idx as usize % n);
        }
        reads.extend(shuffle);
        InstanceWork {
            compute_s: inst.compute_s,
            reads,
            write_mb: desc.output_mb_per_instance,
            use_flows: desc.data_driven,
            fetch_fanout: desc.fetch_fanout,
        }
    }

    /// Handles a successful attempt. Returns the attempts to kill (backup
    /// losers) as `(worker, instance, attempt)`.
    pub fn attempt_succeeded(
        &mut self,
        worker: WorkerId,
        idx: u32,
        attempt: u32,
        runtime_s: f64,
    ) -> Vec<(WorkerId, InstanceId, u32)> {
        if let Some(w) = self.workers.get_mut(&worker) {
            if w.busy == Some((idx, attempt)) {
                w.busy = None;
            }
        }
        let task = self.task;
        let inst = &mut self.instances[idx as usize];
        let mut losers = Vec::new();
        if inst.state == InstState::Done {
            // A backup race already decided; nothing more to do.
            inst.attempts.retain(|a| a.attempt != attempt);
            return losers;
        }
        let machine = inst
            .attempts
            .iter()
            .find(|a| a.attempt == attempt)
            .map(|a| a.machine);
        inst.state = InstState::Done;
        inst.output_machine = machine;
        inst.runtime_s = Some(runtime_s);
        for a in &inst.attempts {
            if a.attempt != attempt {
                losers.push((a.worker, InstanceId::new(task, idx), a.attempt));
            }
        }
        inst.attempts.clear();
        for &(loser_worker, _, _) in &losers {
            if let Some(w) = self.workers.get_mut(&loser_worker) {
                w.busy = None;
            }
        }
        self.finished += 1;
        self.stats.record(runtime_s);
        losers
    }

    /// Handles a failed attempt. Returns `true` if this was a real failure
    /// that should be recorded in the blacklist (machine suspect).
    pub fn attempt_failed(&mut self, worker: WorkerId, idx: u32, attempt: u32) -> bool {
        if let Some(w) = self.workers.get_mut(&worker) {
            if w.busy == Some((idx, attempt)) {
                w.busy = None;
            }
        }
        let done = self.instances[idx as usize].state == InstState::Done;
        self.abandon_attempt(idx, attempt);
        !done
    }

    // ------------------------------------------------------------------
    // Backup instances
    // ------------------------------------------------------------------

    /// Scans for long-tail instances and launches backups on idle workers
    /// (different machine than the running attempt). Returns assignments.
    pub fn backup_scan(
        &mut self,
        cfg: &BackupConfig,
        now: SimTime,
        bl: &JobBlacklist,
    ) -> Vec<AssignmentOut> {
        if !cfg.enabled || !self.pending.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let idle = self.idle_workers();
        let mut idle_iter = idle.into_iter();
        for idx in 0..self.instances.len() as u32 {
            let (started, machines, backups) = {
                let inst = &self.instances[idx as usize];
                if inst.state != InstState::Running || inst.attempts.is_empty() {
                    continue;
                }
                (
                    inst.attempts[0].started,
                    inst.attempts.iter().map(|a| a.machine).collect::<BTreeSet<_>>(),
                    inst.backups_launched,
                )
            };
            if !should_backup(
                cfg,
                now,
                started,
                self.finished,
                self.total_instances(),
                &self.stats,
                self.desc.normal_time_s,
                backups,
            ) {
                continue;
            }
            // Need an idle worker on a *different* machine.
            let candidate = loop {
                match idle_iter.next() {
                    Some(w) => {
                        let m = self.workers[&w].machine;
                        if !machines.contains(&m) && !bl.task_avoids(self.task, m) {
                            break Some(w);
                        }
                    }
                    None => break None,
                }
            };
            let Some(worker) = candidate else { break };
            self.instances[idx as usize].backups_launched += 1;
            out.push(self.assign(now, worker, idx));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blacklist::{JobBlacklist, JobBlacklistConfig};

    fn inst(chunks_on: &[u32], compute_s: f64) -> InstanceRt {
        InstanceRt {
            input_chunks: chunks_on
                .iter()
                .map(|&m| Chunk {
                    size_mb: 64.0,
                    replicas: vec![MachineId(m)],
                })
                .collect(),
            shuffle_reads: vec![],
            compute_s,
            state: InstState::Pending,
            attempts: vec![],
            next_attempt: 0,
            backups_launched: 0,
            output_machine: None,
            runtime_s: None,
        }
    }

    fn tm(instances: Vec<InstanceRt>) -> TaskMaster {
        TaskMaster::new(TaskId(0), TaskDesc::synthetic(instances.len() as u32, 10.0), instances)
    }

    fn bl() -> JobBlacklist {
        JobBlacklist::new(JobBlacklistConfig::default())
    }

    #[test]
    fn assigns_local_instance_first() {
        let mut t = tm(vec![inst(&[1], 10.0), inst(&[2], 10.0), inst(&[3], 10.0)]);
        t.add_worker(WorkerId(10), MachineId(2));
        t.worker_registered(WorkerId(10), MachineId(2));
        let out = t.try_assign(SimTime::ZERO, &bl());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].instance.index, 1, "instance with data on m2 preferred");
        // The read resolves to the local replica.
        assert_eq!(out[0].work.reads, vec![(MachineId(2), 64.0)]);
    }

    #[test]
    fn falls_back_to_fifo_when_no_local_data() {
        let mut t = tm(vec![inst(&[7], 10.0), inst(&[8], 10.0)]);
        t.worker_registered(WorkerId(1), MachineId(0));
        let out = t.try_assign(SimTime::ZERO, &bl());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].instance.index, 0, "FIFO order");
        // Remote read from the chunk's replica.
        assert_eq!(out[0].work.reads, vec![(MachineId(7), 64.0)]);
    }

    #[test]
    fn container_reuse_runs_many_instances_through_one_worker() {
        let mut t = tm((0..5).map(|_| inst(&[], 1.0)).collect());
        t.worker_registered(WorkerId(1), MachineId(0));
        let mut done = 0;
        let mut now = SimTime::ZERO;
        for round in 0..5 {
            let out = t.try_assign(now, &bl());
            assert_eq!(out.len(), 1, "round {round}");
            let a = &out[0];
            let losers = t.attempt_succeeded(a.worker, a.instance.index, a.attempt, 1.0);
            assert!(losers.is_empty());
            done += 1;
            now += fuxi_sim::SimDuration::from_secs(1);
        }
        assert_eq!(done, 5);
        assert!(t.is_complete());
        assert_eq!(t.workers.len(), 1, "one container executed all 5 instances");
    }

    #[test]
    fn failed_attempt_requeues_and_blacklist_avoids_machine() {
        let mut t = tm(vec![inst(&[], 1.0)]);
        let mut b = JobBlacklist::new(JobBlacklistConfig {
            instance_marks_to_task: 99,
            task_marks_to_job: 99,
        });
        t.worker_registered(WorkerId(1), MachineId(4));
        let out = t.try_assign(SimTime::ZERO, &b);
        assert_eq!(out.len(), 1);
        assert!(t.attempt_failed(WorkerId(1), 0, 0));
        b.record_failure(TaskId(0), 0, MachineId(4));
        assert_eq!(t.pending_count(), 1);
        // Same worker on the failing machine: instance avoids it now.
        let out = t.try_assign(SimTime::ZERO, &b);
        assert!(out.is_empty(), "instance-level blacklist holds");
        // A worker elsewhere picks it up.
        t.worker_registered(WorkerId(2), MachineId(5));
        let out = t.try_assign(SimTime::ZERO, &b);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].attempt, 1, "second attempt");
    }

    #[test]
    fn remove_worker_requeues_running_instance() {
        let mut t = tm(vec![inst(&[], 1.0)]);
        t.worker_registered(WorkerId(1), MachineId(0));
        let out = t.try_assign(SimTime::ZERO, &bl());
        assert_eq!(out.len(), 1);
        assert_eq!(t.running_count(), 1);
        let requeued = t.remove_worker(WorkerId(1));
        assert_eq!(requeued, Some(0));
        assert_eq!(t.pending_count(), 1);
        assert_eq!(t.running_count(), 0);
    }

    #[test]
    fn backup_launches_on_other_machine_and_first_wins() {
        let mut t = tm((0..10).map(|_| inst(&[], 10.0)).collect());
        for i in 0..10u64 {
            t.worker_registered(WorkerId(i), MachineId(i as u32));
        }
        let out = t.try_assign(SimTime::ZERO, &bl());
        assert_eq!(out.len(), 10);
        // 9 finish fast; instance 9 straggles.
        for a in &out {
            if a.instance.index != 9 {
                t.attempt_succeeded(a.worker, a.instance.index, a.attempt, 10.0);
            }
        }
        assert_eq!(t.finished, 9);
        let cfg = BackupConfig::default();
        // At t=50 (elapsed 50 > 2×10) a backup must fire on a different machine.
        let backups = t.backup_scan(&cfg, SimTime::from_secs(50), &bl());
        assert_eq!(backups.len(), 1);
        let b = &backups[0];
        assert_eq!(b.instance.index, 9);
        let orig_machine = MachineId(9);
        let backup_machine = t.workers[&b.worker].machine;
        assert_ne!(backup_machine, orig_machine);
        // No duplicate backups on the next scan.
        assert!(t.backup_scan(&cfg, SimTime::from_secs(60), &bl()).is_empty());
        // Backup finishes first: original attempt must be killed.
        let losers = t.attempt_succeeded(b.worker, 9, b.attempt, 5.0);
        assert_eq!(losers.len(), 1);
        assert_eq!(losers[0].2, 0, "original attempt is the loser");
        assert!(t.is_complete());
        // The loser reporting later is a no-op.
        let more = t.attempt_succeeded(losers[0].0, 9, losers[0].2, 99.0);
        assert!(more.is_empty());
        assert_eq!(t.finished, 10);
    }

    #[test]
    fn locality_hints_rank_by_chunk_count() {
        let t = tm(vec![inst(&[1, 2], 1.0), inst(&[2], 1.0), inst(&[2, 3], 1.0)]);
        let hints = t.locality_hints(2);
        assert_eq!(hints[0], (MachineId(2), 3));
        assert_eq!(hints.len(), 2);
    }

    #[test]
    fn worker_counts_by_machine() {
        let mut t = tm(vec![inst(&[], 1.0)]);
        t.add_worker(WorkerId(1), MachineId(3));
        t.add_worker(WorkerId(2), MachineId(3));
        t.add_worker(WorkerId(3), MachineId(4));
        let counts = t.worker_counts();
        assert_eq!(counts[&MachineId(3)], 2);
        assert_eq!(counts[&MachineId(4)], 1);
        assert_eq!(t.workers_on(MachineId(3)).len(), 2);
    }
}
