//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, deterministic implementation of the exact API subset
//! the simulator and workload generators use: `SmallRng` + `SeedableRng`,
//! `Rng::{gen_range, gen_bool}` over integer/float ranges, and
//! `seq::SliceRandom::{choose, shuffle}`.
//!
//! The generator is xoshiro256++ (the same family the real `SmallRng` uses
//! on 64-bit targets), seeded via SplitMix64 — high-quality, fast, and
//! reproducible across runs, which is all the deterministic simulator needs.
//! It is NOT cryptographically secure, exactly like the real `SmallRng`.

/// Seedable random generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random value generation (subset of `rand::Rng`).
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: UniformRange<T>,
    {
        range.sample_from(&mut |_| self.next_u64())
    }

    /// Bernoulli trial with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 random mantissa bits → uniform in [0, 1).
        let u = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }
}

/// Range types `gen_range` accepts. The closure argument is an entropy
/// source (its parameter is ignored; it exists so the trait stays object
/// safe for the blanket implementation above).
pub trait UniformRange<T> {
    /// Draws one uniform sample using `next` for entropy.
    fn sample_from(&self, next: &mut dyn FnMut(()) -> u64) -> T;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange<$t> for core::ops::Range<$t> {
            fn sample_from(&self, next: &mut dyn FnMut(()) -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = bounded(next, span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl UniformRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(&self, next: &mut dyn FnMut(()) -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span == 0 || span > u64::MAX as u128 + 1 {
                    return next(()) as $t; // full-width range
                }
                let v = bounded(next, span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl UniformRange<$t> for core::ops::Range<$t> {
            fn sample_from(&self, next: &mut dyn FnMut(()) -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let u = (next(()) >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                (self.start as f64 + u * (self.end as f64 - self.start as f64)) as $t
            }
        }
        impl UniformRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from(&self, next: &mut dyn FnMut(()) -> u64) -> $t {
                let (lo, hi) = (*self.start() as f64, *self.end() as f64);
                assert!(lo <= hi, "empty range");
                let u = (next(()) >> 10) as f64 * (1.0 / ((1u64 << 54) - 1) as f64);
                (lo + u * (hi - lo)) as $t
            }
        }
    )*};
}

uniform_float!(f32, f64);

/// Uniform integer in `[0, span)` by widening multiply (Lemire's method,
/// without the rejection step — the bias is < 2^-64 × span, irrelevant for
/// simulation workloads).
fn bounded(next: &mut dyn FnMut(()) -> u64, span: u128) -> u64 {
    debug_assert!(span > 0);
    if span > u64::MAX as u128 {
        return next(());
    }
    ((next(()) as u128 * span) >> 64) as u64
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, non-cryptographic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the real rand crate does.
            let mut x = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *w = z ^ (z >> 31);
            }
            // All-zero state would be degenerate; SplitMix64 of any seed
            // never produces four zero words, but be safe.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::Rng;

    /// Random slice operations (subset of `rand::seq::SliceRandom`).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn deterministic_across_runs() {
        let mut a = rngs::SmallRng::seed_from_u64(42);
        let mut b = rngs::SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rngs::SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: u32 = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = r.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = r.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: usize = r.gen_range(0..1);
            assert_eq!(u, 0);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = rngs::SmallRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((27_000..33_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_and_choose() {
        let mut r = rngs::SmallRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        let orig = v.clone();
        v.shuffle(&mut r);
        assert_ne!(v, orig, "50 elements virtually never shuffle to identity");
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle is a permutation");
        assert!(v.as_slice().choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
