//! WordCount two ways, as a Fuxi user would see it:
//!
//! 1. the *data plane*: the Streamline operator library (paper §4.1)
//!    computing real word counts — the code a user embeds via the SDK;
//! 2. the *control plane*: the same MapReduce shape running as a
//!    distributed Fuxi job over DFS-resident input, with data-locality
//!    scheduling.
//!
//! Run: `cargo run --release --example wordcount`

use fuxi::cluster::{Cluster, ClusterConfig, SubmitOpts};
use fuxi::job::streamline;
use fuxi::sim::SimTime;
use fuxi::workloads::mapreduce::{wordcount_job, MapReduceParams};

const CORPUS: &[&str] = &[
    "the quick brown fox jumps over the lazy dog",
    "the dog barks and the fox runs",
    "big data needs big clusters and bigger schedulers",
    "fuxi schedules the cluster the cluster runs the jobs",
];

fn main() {
    // ---------------- data plane: Streamline operators -----------------
    // map: tokenize + local count; shuffle: partition by word;
    // reduce: merge-sort + fold. Exactly the operators §4.1 names.
    let n_reducers = 3;
    let mut partitions: Vec<Vec<(String, u64)>> = (0..n_reducers).map(|_| Vec::new()).collect();
    for shard in CORPUS {
        let local: Vec<(String, u64)> = streamline::word_count(shard).into_iter().collect();
        for (i, bucket) in streamline::partition(local, n_reducers).into_iter().enumerate() {
            partitions[i].extend(bucket);
        }
    }
    let mut global: Vec<(String, u64)> = Vec::new();
    for bucket in partitions {
        let sorted = streamline::sort(bucket);
        let reduced = streamline::reduce(sorted, || 0u64, |acc, v| *acc += v);
        global.extend(reduced);
    }
    global.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    println!("top words (computed by Streamline operators):");
    for (w, c) in global.iter().take(5) {
        println!("  {w:10} {c}");
    }

    // ---------------- control plane: the distributed job ---------------
    let mut cluster = Cluster::new(ClusterConfig {
        n_machines: 30,
        rack_size: 10,
        seed: 7,
        ..ClusterConfig::default()
    });
    // 4 GB of logs, 64 MB chunks, 3-way replicated: the scheduler will
    // place map instances where their chunks live.
    cluster.pangu.create("logs/2014-07-07", 4096.0, 64.0, 3, &cluster.topo);
    let desc = wordcount_job(&MapReduceParams {
        maps: 32,
        reduces: 4,
        map_duration_s: 2.0,
        reduce_duration_s: 3.0,
        jitter: 0.2,
        map_output_mb: 8.0,
        input_pattern: Some("pangu://logs/*".into()),
        output_file: Some("pangu://wordcount/result".into()),
        data_driven: true,
        binary_mb: 80.0,
        ..Default::default()
    });
    let job = cluster.submit(&desc, &SubmitOpts::default());
    let (ok, at) = cluster
        .run_until_job_done(job, SimTime::from_secs(1200))
        .expect("wordcount finishes");
    assert!(ok);
    println!("\ndistributed wordcount over 4 GB finished in {at:.1} simulated seconds");
    println!(
        "  flows moved through the disk/NIC model: {}",
        cluster.world.metrics().counter("flow.started")
    );
    println!(
        "  output in DFS: pangu://wordcount/result ({} chunks)",
        cluster
            .pangu
            .file("wordcount/result")
            .map(|f| f.chunks.len())
            .unwrap_or(0)
    );
}
