//! Live demonstration of the paper's three failover mechanisms in one run:
//! the FuxiMaster dies (hot standby takes over), the JobMaster dies
//! (snapshot recovery), and a whole machine dies (blacklist + reschedule)
//! — while one job keeps running to completion.
//!
//! Run: `cargo run --release --example fault_tolerance_demo`

use fuxi::cluster::{Cluster, ClusterConfig, SubmitOpts};
use fuxi::sim::{SimDuration, SimTime};
use fuxi::workloads::mapreduce::{wordcount_job, MapReduceParams};

fn main() {
    let mut cluster = Cluster::new(ClusterConfig {
        n_machines: 16,
        rack_size: 4,
        seed: 4,
        standby_master: true,
        ..ClusterConfig::default()
    });
    let desc = wordcount_job(&MapReduceParams {
        maps: 120,
        reduces: 8,
        map_duration_s: 25.0,
        reduce_duration_s: 15.0,
        jitter: 0.2,
        max_workers: 60,
        binary_mb: 60.0,
        ..Default::default()
    });
    let job = cluster.submit(&desc, &SubmitOpts::default());
    println!("t=0      submitted {job} (120 maps + 8 reduces, ~25 s instances, 60 containers)");

    cluster.run_for(SimDuration::from_secs(15));
    let primary = cluster.current_master().expect("primary elected");
    cluster.kill_primary_master();
    println!("t=15s    KILLED the primary FuxiMaster ({primary})");

    cluster.run_for(SimDuration::from_secs(30));
    println!(
        "t=45s    standby took over (primaries elected so far: {})",
        cluster.world.metrics().counter("fm.became_primary")
    );

    let (jm_machine, jm_actor) = cluster.find_jobmaster(job).expect("JobMaster running");
    cluster.world.kill_actor(jm_actor);
    println!("t=45s    KILLED the JobMaster (was {jm_actor} on {jm_machine})");

    cluster.run_for(SimDuration::from_secs(30));
    println!(
        "t=75s    JobMaster restarted {} time(s), recovered from snapshot {} time(s)",
        cluster.world.metrics().counter("fm.jm_restarts"),
        cluster.world.metrics().counter("jm.recoveries"),
    );

    // Kill a machine currently hosting workers (but not the JobMaster).
    let jm_machine = cluster.find_jobmaster(job).map(|(m, _)| m);
    let victim = cluster
        .topo
        .machines()
        .find(|&m| Some(m) != jm_machine && !cluster.workers_on(m).is_empty());
    if let Some(m) = victim {
        cluster.world.kill_machine(m.0);
        println!("t=75s    KILLED machine {m} (workers and all)");
    }

    let (ok, at) = cluster
        .run_until_job_done(job, SimTime::from_secs(3600))
        .expect("job survives everything");
    println!(
        "t={:.0}s   job {} — user-transparent recovery throughout",
        at,
        if ok { "SUCCEEDED" } else { "FAILED" }
    );
    let m = cluster.world.metrics();
    println!("\nrecovery ledger:");
    for (label, c) in [
        ("master elections", "fm.became_primary"),
        ("soft-state rebuilds", "fm.rebuild_done"),
        ("JobMaster restarts", "fm.jm_restarts"),
        ("snapshot recoveries", "jm.recoveries"),
        ("machines excluded", "fm.machines_excluded"),
        ("instances re-run after loss", "jm.attempts_lost_on_restart"),
        ("checkpoint writes", "fm.jobs_submitted"),
    ] {
        println!("  {label:30} {}", m.counter(c));
    }
}
