//! A dependency-free HTTP scrape endpoint over `std::net`.
//!
//! One listener thread accepts connections; each request is answered from
//! a [`MetricsHub`] snapshot and the connection closed (`Connection:
//! close` keeps the loop trivially correct — Prometheus and `fuxitop`
//! both reconnect per poll). Routes:
//!
//! * `GET /metrics` — Prometheus text exposition of the cluster view;
//! * `GET /json` — the full [`fuxi_obs::ClusterView`] as JSON (agents,
//!   jobs, active alerts);
//! * anything else — `404`.
//!
//! The server holds no locks while writing to sockets: it snapshots the
//! view, renders, then writes, so a slow scraper cannot stall the master's
//! rollup path.

use fuxi_obs::MetricsHub;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port), spawns the
/// listener thread, and returns the bound address. The thread serves until
/// the process exits; connections are per-request.
pub fn serve(hub: MetricsHub, addr: &str) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let bound = listener.local_addr()?;
    std::thread::Builder::new()
        .name("fuxi-scrape".into())
        .spawn(move || {
            for conn in listener.incoming() {
                let Ok(stream) = conn else { continue };
                let hub = hub.clone();
                // One short-lived thread per request keeps a stalled
                // scraper from blocking the accept loop.
                let _ = std::thread::Builder::new()
                    .name("fuxi-scrape-conn".into())
                    .spawn(move || handle(hub, stream));
            }
        })
        .expect("spawn scrape listener thread");
    Ok(bound)
}

fn handle(hub: MetricsHub, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut line = String::new();
    {
        let mut reader = BufReader::new(&stream);
        if reader.read_line(&mut line).is_err() {
            return;
        }
        // Drain the header block so well-behaved clients see a clean close.
        let mut hdr = String::new();
        while reader.read_line(&mut hdr).is_ok() {
            if hdr == "\r\n" || hdr == "\n" || hdr.is_empty() {
                break;
            }
            hdr.clear();
        }
    }
    let path = line.split_whitespace().nth(1).unwrap_or("/");
    let view = hub.snapshot();
    let (status, ctype, body) = match path {
        "/metrics" => (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            view.to_prometheus(),
        ),
        "/json" => ("200 OK", "application/json", view.to_json()),
        _ => (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "not found: try /metrics or /json\n".to_owned(),
        ),
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        let (head, body) = buf.split_once("\r\n\r\n").unwrap();
        (head.to_owned(), body.to_owned())
    }

    #[test]
    fn serves_prometheus_and_json() {
        let hub = MetricsHub::new(1.0);
        hub.update(|v| {
            v.rollup.jobs_per_sec = 2.0;
            v.rollup.jobs_finished_total = 4;
        });
        let addr = serve(hub, "127.0.0.1:0").unwrap();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("fuxi_jobs_per_sec 2.000000"), "{body}");
        assert!(body.contains("# TYPE fuxi_jobs_per_sec gauge"), "{body}");

        let (head, body) = get(addr, "/json");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(body.contains("\"jobs_finished_total\":4"), "{body}");

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"), "{head}");
    }
}
