//! Quickstart: bring up a simulated Fuxi cluster, submit a DAG job
//! described in the paper's JSON format (Figure 6), and watch it run.
//!
//! Run: `cargo run --release --example quickstart`

use fuxi::cluster::{Cluster, ClusterConfig, SubmitOpts};
use fuxi::job::JobDesc;
use fuxi::sim::SimTime;

fn main() {
    // A 20-machine cluster: FuxiMaster + hot standby, one FuxiAgent per
    // machine, Apsara lock/naming/DFS underneath.
    let mut cluster = Cluster::new(ClusterConfig {
        n_machines: 20,
        rack_size: 5,
        seed: 42,
        standby_master: true,
        ..ClusterConfig::default()
    });

    // The paper's job description format: tasks plus data pipes.
    let desc = JobDesc::parse(
        r#"{
        "Tasks": {
            "extract":   {"Instances": 16, "DurationS": 8.0, "DurationJitter": 0.2,
                          "OutputMBPerInstance": 32.0, "BinaryMB": 120.0},
            "transform": {"Instances": 8,  "DurationS": 12.0, "DurationJitter": 0.2,
                          "OutputMBPerInstance": 16.0, "BinaryMB": 120.0},
            "load":      {"Instances": 2,  "DurationS": 6.0, "Cpu": 1.0,
                          "MemoryMB": 4096, "BinaryMB": 120.0}
        },
        "Pipes": [
            {"Source": {"AccessPoint": "extract:out"},   "Destination": {"AccessPoint": "transform:in"}},
            {"Source": {"AccessPoint": "transform:out"}, "Destination": {"AccessPoint": "load:in"}},
            {"Source": {"AccessPoint": "load:out"},      "Destination": {"FilePattern": "pangu://etl/output"}}
        ]
    }"#,
    )
    .expect("valid job description");

    let job = cluster.submit(&desc, &SubmitOpts::default());
    println!("submitted {job}: 3-stage ETL pipeline, 26 instances total");

    let (ok, finished_at) = cluster
        .run_until_job_done(job, SimTime::from_secs(600))
        .expect("job finishes");
    println!(
        "job {} after {:.1} simulated seconds",
        if ok { "SUCCEEDED" } else { "FAILED" },
        finished_at
    );

    let m = cluster.world.metrics();
    println!("\ncluster activity:");
    for (label, counter) in [
        ("tasks executed", "jm.tasks_finished"),
        ("instances executed", "jm.instances_finished"),
        ("worker containers started", "jm.workers_requested"),
        ("scheduler decisions (grant msgs)", "fm.grant_updates"),
        ("network messages", "net.sent"),
    ] {
        println!("  {label:34} {}", m.counter(counter));
    }
    if let Some(h) = m.histogram("fm.sched_s") {
        println!(
            "  scheduling time per request        avg {:.1} µs, max {:.1} µs",
            h.mean() * 1e6,
            h.max() * 1e6
        );
    }
    println!("\nthe job's declared output now exists in the DFS:");
    println!(
        "  pangu://etl/output -> {:?} chunks",
        cluster.pangu.file("etl/output").map(|f| f.chunks.len())
    );
}
